"""E-knn-mr — MapReduce-MPI kNN: speedup and the local-combine optimization.

The paper's claims: the MapReduce port "obtain[s] speedup", and "adding
local reductions at each rank … noticeably improves the communication
cost". Wall-clock scaling in the thread-rank simulator is limited by the
GIL for the Python-level parts, so the headline series here is the
*communication volume* (pairs shuffled between ranks), which is exactly
the quantity the paper's optimization targets; timings are reported
alongside.
"""

import numpy as np

from repro.knn import knn_predict_vectorized, make_blobs, run_knn_mapreduce
from repro.trace.history import result_digest
from repro.util.timing import ScalingStudy, time_call

N = 1500
D = 16
K = 5
RANKS = [1, 2, 4, 8]


def test_knn_mapreduce_speedup_and_combine(benchmark, report_writer, bench_json_writer):
    db, labels = make_blobs(N, D, 4, seed=0)
    queries, _ = make_blobs(200, D, 4, seed=1)
    serial = knn_predict_vectorized(db, labels, queries, K)

    preds, _ = benchmark(lambda: run_knn_mapreduce(4, db, labels, queries, K))
    np.testing.assert_array_equal(preds, serial)

    lines = [
        "E-knn-mr: kNN over MapReduce-MPI",
        f"n={N} q=200 d={D} k={K}",
        "",
        f"{'ranks':>6} {'seconds':>9} {'shuffled pairs (combine)':>25} {'shuffled pairs (plain)':>23}",
    ]
    study = ScalingStudy("knn_mapreduce")
    shuffle_volume = {}
    for ranks in RANKS:
        sec, (p, shipped_combine) = time_call(
            lambda r=ranks: run_knn_mapreduce(r, db, labels, queries, K), repeats=2
        )
        np.testing.assert_array_equal(p, serial)
        _, shipped_plain = run_knn_mapreduce(
            ranks, db, labels, queries, K, local_combine=False
        )
        study.record(ranks, sec)
        shuffle_volume[str(ranks)] = {"combine": shipped_combine, "plain": shipped_plain}
        lines.append(f"{ranks:>6} {sec:>9.3f} {shipped_combine:>25} {shipped_plain:>23}")
        if ranks > 1:
            # The paper's optimization: combiner cuts communication hard.
            assert shipped_combine < shipped_plain / 4
    lines.append("")
    lines.append(
        "shape: local reduction shrinks shuffle volume by orders of magnitude"
        " (paper: 'noticeably improves the communication cost')"
    )
    report_writer("knn_mapreduce", "\n".join(lines) + "\n")
    bench_json_writer(
        "knn_mapreduce",
        study,
        workload="knn_mapreduce",
        config={"n": N, "queries": 200, "d": D, "k": K, "local_combine": True},
        bit_identical=True,  # every rank count matched the vectorized serial kNN
        digest=result_digest(serial),
        shuffled_pairs=shuffle_volume,
    )
