"""Figure 2 — the NYC arrests-per-100k-per-NTA heat map pipeline.

Runs the full aggregation → cleaning → spatial-join → normalization
pipeline over synthetic stand-ins for the four NYC Open Data datasets
(arrests historic + current year, NTA boundaries, NTA population) and
renders the heat-map matrix the figure colors.
"""

import numpy as np

from repro.pipeline import arrests_per_100k, generate_arrests, generate_ntas, heat_map_matrix
from repro.spark import SparkContext

ROWS, COLS = 6, 8


def _shade(matrix: np.ndarray) -> str:
    """ASCII choropleth (darker glyph = higher rate)."""
    glyphs = " .:-=+*#%@"
    hi = matrix.max() or 1.0
    out = []
    for row in matrix:
        out.append("".join(glyphs[min(int(v / hi * (len(glyphs) - 1)), len(glyphs) - 1)] for v in row))
    return "\n".join(out)


def test_fig2_nyc_arrests_heatmap(benchmark, report_writer):
    ntas = generate_ntas(ROWS, COLS, seed=7)
    historic = generate_arrests(12_000, ntas, year=2020, seed=1)
    current = generate_arrests(6_000, ntas, year=2021, seed=1)

    def run():
        sc = SparkContext(num_workers=4)
        return arrests_per_100k(sc, [historic, current], ntas, year_filter=2021)

    rates, diagnostics = benchmark(run)

    # Shape checks: every NTA reported, rates vary across neighborhoods,
    # dirty rows were dropped by the cleaning stage.
    assert set(rates) == {nta.code for nta in ntas}
    values = np.array(list(rates.values()))
    assert values.max() > 2 * max(values.min(), 1.0)
    assert diagnostics["dropped"] > 0

    matrix = heat_map_matrix(rates, ROWS, COLS)
    top = sorted(rates.items(), key=lambda kv: -kv[1])[:5]
    lines = [
        "Figure 2 reproduction: arrests per 100,000 residents per NTA (2021)",
        f"NTAs={len(ntas)} arrests_in={len(historic) + len(current)} "
        f"dropped_by_cleaning={diagnostics['dropped']} outside_all_ntas={diagnostics['unlocated']}",
        "",
        "top-5 NTAs by rate:",
    ]
    for code, rate in top:
        lines.append(f"  {code}: {rate:8.1f} per 100k")
    lines.append("")
    lines.append("heat map (darker = more arrests per 100k):")
    lines.append(_shade(matrix))
    report_writer("fig2_nyc_pipeline", "\n".join(lines) + "\n")
