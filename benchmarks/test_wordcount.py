"""E-wordcount — the MapReduce warm-up problem at several rank counts."""

from repro.knn import run_wordcount
from repro.trace import Tracer, use_tracer
from repro.util.timing import ScalingStudy, time_call

LINES = [
    f"line {i} the quick brown fox jumps over the lazy dog number {i % 10}"
    for i in range(2000)
]


def test_wordcount_ranks(benchmark, report_writer, bench_json_writer):
    counts = benchmark(lambda: run_wordcount(4, LINES, local_combine=True))
    assert counts["the"] == 2 * len(LINES)

    rows = ["E-wordcount: Word Counting on MapReduce-MPI", f"lines={len(LINES)}", ""]
    rows.append(f"{'ranks':>6} {'combine':>8} {'seconds':>9}")
    study = ScalingStudy("wordcount")
    baseline = None
    for ranks in (1, 4):
        for combine in (False, True):
            sec, got = time_call(
                lambda r=ranks, c=combine: run_wordcount(r, LINES, local_combine=c),
                repeats=2,
            )
            assert got == counts
            if baseline is None:
                baseline = sec
            if combine:
                study.record(ranks, sec)
            rows.append(f"{ranks:>6} {str(combine):>8} {sec:>9.3f}")
    report_writer("wordcount", "\n".join(rows) + "\n")

    # One traced run supplies the communication-metrics snapshot for the
    # machine-readable report (message counts, shuffle volume, ...).
    with use_tracer(Tracer()) as tracer:
        run_wordcount(4, LINES, local_combine=True)
    bench_json_writer(
        "wordcount",
        study,
        workload="wordcount",
        config={"lines": len(LINES), "local_combine": True},
        bit_identical=True,  # every (ranks, combine) cell matched the reference counts
        metrics=tracer.metrics.snapshot(),
    )
