"""Ablation — centroid seeding: random points vs k-means++.

The assignment's starter chooses centroids randomly; k-means++ is the
natural "further optimization". The quality difference (final inertia,
iterations to converge, bad-local-optimum rate over restarts) is the
series reported.
"""

import numpy as np

from repro.kmeans import kmeans_sequential
from repro.kmeans.initialization import init_kmeans_plus_plus, init_random_points
from repro.knn.data import make_blobs
from repro.util.timing import Timer

K = 5
RESTARTS = 12


def test_init_quality_ablation(benchmark, report_writer, bench_json_writer):
    points, _ = make_blobs(1200, 2, K, seed=31, separation=8.0, spread=0.8)

    benchmark(
        lambda: kmeans_sequential(
            points, K, initial_centroids=init_kmeans_plus_plus(points, K, seed=0)
        )
    )

    rows = []
    stats = {}
    sweep_seconds = {}
    for name, init_fn in [("random", init_random_points), ("kmeans++", init_kmeans_plus_plus)]:
        inertias = []
        iterations = []
        with Timer() as sweep:
            for seed in range(RESTARTS):
                init = init_fn(points, K, seed=seed)
                result = kmeans_sequential(points, K, initial_centroids=init)
                inertias.append(result.inertia)
                iterations.append(result.iterations)
        sweep_seconds[name] = sweep.elapsed
        inertias = np.array(inertias)
        best = inertias.min()
        stats[name] = (inertias, np.mean(iterations))
        rows.append(
            f"{name:>10}: best inertia {best:10.1f}  mean {inertias.mean():10.1f}  "
            f"worst {inertias.max():10.1f}  mean iterations {np.mean(iterations):5.2f}"
        )

    rand_inertias, _ = stats["random"]
    pp_inertias, _ = stats["kmeans++"]
    # ++ is at least as good on average and has a no-worse worst case.
    assert pp_inertias.mean() <= rand_inertias.mean() * 1.01
    assert pp_inertias.max() <= rand_inertias.max() * 1.01

    lines = [
        "Ablation: centroid seeding quality over 12 restarts",
        f"n={len(points)} K={K}",
        *rows,
        "",
        "shape: k-means++ seeding avoids the worst local optima random",
        "seeding falls into (the bad restarts with split/merged blobs)",
    ]
    report_writer("ablation_kmeans_init", "\n".join(lines) + "\n")
    bench_json_writer(
        "ablation_kmeans_init",
        {"random": sweep_seconds["random"], "kmeans++": sweep_seconds["kmeans++"]},
        workload="ablation_kmeans_init",
        config={"n": len(points), "k": K, "restarts": RESTARTS},
        best_inertia={name: float(s[0].min()) for name, s in stats.items()},
        mean_iterations={name: float(s[1]) for name, s in stats.items()},
    )
