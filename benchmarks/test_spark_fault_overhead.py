"""Spark fault-layer overhead: the fault-free hot path must stay free.

The fault-tolerance hooks sit on the engine's hottest seams: one
``is None`` test per task dispatch, per shuffle registration, and per
broadcast creation; shuffle stores only turn checksums on when the
installed plan actually schedules block corruption. With an *empty*
``SparkFaultPlan`` the whole fault-aware scheduler runs — per-attempt
accumulator sinks, exactly-once commits, worker selection — but finds
nothing scheduled. Neither configuration may tax the NYC arrests
pipeline by more than 5%: robustness machinery that slows the common
case gets turned off, which is worse than not having it.

Timing uses interleaved min-of-repeats: each round times both
configurations back to back, so a transient system slowdown lands on
both alike, and the minimum across rounds is the least-noise estimator
for a deterministic workload on a shared machine.
"""

from repro.pipeline import arrests_per_100k, generate_arrests, generate_ntas
from repro.spark import SparkContext, SparkFaultPlan
from repro.util.timing import time_call

WORKERS = 4
REPEATS = 9
ROWS, COLS = 6, 8
N_HISTORIC, N_CURRENT = 12_000, 6_000
THRESHOLD = 1.05


def _one_run(datasets, ntas, fault_plan):
    def once():
        with SparkContext(WORKERS, fault_plan=fault_plan) as sc:
            return arrests_per_100k(sc, datasets, ntas, year_filter=2021)

    return time_call(once, repeats=1)


def test_spark_fault_overhead_under_five_percent(benchmark, report_writer, bench_json_writer):
    ntas = generate_ntas(ROWS, COLS, seed=7)
    historic = generate_arrests(N_HISTORIC, ntas, year=2020, seed=1)
    current = generate_arrests(N_CURRENT, ntas, year=2021, seed=1)
    datasets = [historic, current]

    benchmark(lambda: _one_run(datasets, ntas, None))

    base_sec = empty_sec = float("inf")
    base = faulted = None
    for _ in range(REPEATS):
        sec, base = _one_run(datasets, ntas, None)
        base_sec = min(base_sec, sec)
        sec, faulted = _one_run(datasets, ntas, SparkFaultPlan())
        empty_sec = min(empty_sec, sec)

    # Identical numerics first — overhead is meaningless otherwise.
    assert base == faulted  # (rates, diagnostics) bit-identical

    ratio = empty_sec / base_sec
    lines = [
        "Spark fault-layer overhead on the NYC arrests pipeline",
        f"workers={WORKERS} ntas={ROWS}x{COLS} "
        f"arrests={N_HISTORIC}+{N_CURRENT} (min of {REPEATS} interleaved runs)",
        f"fault_plan=None (hot path, one is-None test per task): {base_sec:.4f}s",
        f"empty SparkFaultPlan (ft scheduler, no events):        {empty_sec:.4f}s",
        f"ratio: {ratio:.3f}x (budget: <{THRESHOLD:.2f}x)",
        "",
        "the empty plan bounds the machinery from above: every task runs",
        "through the fault-aware scheduler — accumulator sinks, exactly-",
        "once commits, worker selection — yet injects nothing; the",
        "plan=None default every production run takes does strictly less",
    ]
    report_writer("spark_fault_overhead", "\n".join(lines) + "\n")

    bench_json_writer(
        "spark_fault_overhead",
        {"baseline": base_sec, "empty_plan": empty_sec},
        workload="spark_fault_overhead",
        config={
            "workers": WORKERS, "ntas_rows": ROWS, "ntas_cols": COLS,
            "arrests_historic": N_HISTORIC, "arrests_current": N_CURRENT,
            "year_filter": 2021, "repeats": REPEATS,
        },
        bit_identical=base == faulted,
        ratio=ratio,
        threshold=THRESHOLD,
    )

    assert ratio < THRESHOLD, (
        f"spark fault layer overhead {ratio:.3f}x exceeds {THRESHOLD}x"
    )
