"""E-kmeans-ladder — §3's programming-model comparison.

The assignment's arc: critical sections are correct but slow; atomics
are finer-grained; reductions eliminate contention entirely; MPI needs
one distributed reduction per iteration; the CUDA-style version compares
per-block reductions against global atomics. All six configurations
cluster the same cloud from the same initial centroids and must agree;
the series reported is their wall-clock times.
"""

import numpy as np

from repro.kmeans import (
    TerminationCriteria,
    kmeans_device,
    kmeans_openmp,
    kmeans_sequential,
    run_kmeans_mpi,
)
from repro.kmeans.initialization import init_random_points
from repro.knn.data import make_blobs
from repro.util.timing import time_call

N, D, K = 6000, 8, 8
THREADS = 4
CRITERIA = TerminationCriteria(max_iterations=15, min_changes=0, max_centroid_shift=0.0)


def test_kmeans_programming_models(benchmark, report_writer):
    points, _ = make_blobs(N, D, K, seed=2, separation=5.0)
    init = init_random_points(points, K, seed=9)

    reference = benchmark(
        lambda: kmeans_sequential(points, K, criteria=CRITERIA, initial_centroids=init)
    )

    configs = {
        "sequential": lambda: kmeans_sequential(
            points, K, criteria=CRITERIA, initial_centroids=init
        ),
        "openmp-critical": lambda: kmeans_openmp(
            points, K, num_threads=THREADS, variant="critical",
            criteria=CRITERIA, initial_centroids=init,
        ),
        "openmp-atomic": lambda: kmeans_openmp(
            points, K, num_threads=THREADS, variant="atomic",
            criteria=CRITERIA, initial_centroids=init,
        ),
        "openmp-reduction": lambda: kmeans_openmp(
            points, K, num_threads=THREADS, variant="reduction",
            criteria=CRITERIA, initial_centroids=init,
        ),
        "mpi-4ranks": lambda: run_kmeans_mpi(
            4, points, K, criteria=CRITERIA, initial_centroids=init
        ),
        "device-blockreduce": lambda: kmeans_device(
            points, K, block_size=512, update_mode="block_reduce",
            criteria=CRITERIA, initial_centroids=init,
        ),
        "device-globalatomic": lambda: kmeans_device(
            points, K, block_size=512, update_mode="global_atomic",
            criteria=CRITERIA, initial_centroids=init,
        ),
    }

    lines = [
        "E-kmeans-ladder: one clustering, six parallelization strategies",
        f"n={N} d={D} K={K} iterations={reference.iterations} threads/ranks={THREADS}",
        "",
        f"{'model':>22} {'seconds':>9} {'same answer':>12}",
    ]
    times = {}
    for name, task in configs.items():
        sec, result = time_call(task, repeats=2)
        agrees = bool(np.array_equal(result.assignments, reference.assignments))
        assert agrees, f"{name} diverged from the sequential reference"
        times[name] = sec
        lines.append(f"{name:>22} {sec:>9.3f} {'yes':>12}")

    # Shape assertions from the assignment's narrative:
    # the reduction rung beats the single big critical section,
    assert times["openmp-reduction"] < times["openmp-critical"]
    # and per-block reduction beats per-point global atomics on 'device'.
    assert times["device-blockreduce"] < times["device-globalatomic"]
    lines.append("")
    lines.append("shape: reduction < critical (the OpenMP ladder pays off);")
    lines.append("       block-reduce < global-atomic (the CUDA profitability question)")
    report_writer("kmeans_models", "\n".join(lines) + "\n")
