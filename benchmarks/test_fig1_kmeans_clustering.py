"""Figure 1 — K-means point assignment on a 2-D dataset with K = 3.

The paper's Figure 1 illustrates Euclidean-distance clustering of a 2-D
point cloud into three clusters. This bench regenerates it: three
Gaussian blobs, K = 3, and verifies the figure's defining property —
every point is assigned to its *nearest* centroid — plus times the
clustering loop.
"""

import numpy as np

from repro.kmeans import kmeans_sequential
from repro.knn.data import make_blobs
from repro.trace.history import result_digest
from repro.util.timing import time_call


def _ascii_scatter(points: np.ndarray, assignments: np.ndarray, size: int = 24) -> str:
    """Character-cell rendering of the clustered cloud (the 'figure')."""
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    grid = [["." for _ in range(size)] for _ in range(size)]
    glyphs = "ox+*"
    for p, a in zip(points, assignments):
        col = min(int((p[0] - lo[0]) / span[0] * (size - 1)), size - 1)
        row = min(int((p[1] - lo[1]) / span[1] * (size - 1)), size - 1)
        grid[size - 1 - row][col] = glyphs[a % len(glyphs)]
    return "\n".join("".join(row) for row in grid)


def test_fig1_kmeans_2d_three_clusters(benchmark, report_writer, bench_json_writer):
    points, true_labels = make_blobs(900, 2, 3, seed=42, separation=7.0, spread=0.9)

    # k-means++ seeding avoids the split-blob local optimum that plain
    # random seeding can land in (the assignment's "further optimization").
    from repro.kmeans import init_kmeans_plus_plus

    init = init_kmeans_plus_plus(points, 3, seed=5)
    result = benchmark(lambda: kmeans_sequential(points, 3, initial_centroids=init))

    # Defining property of the figure: nearest-centroid assignment.
    d2 = ((points[:, None, :] - result.centroids[None, :, :]) ** 2).sum(axis=2)
    np.testing.assert_array_equal(result.assignments, np.argmin(d2, axis=1))

    # The three visual clusters are recovered (bijective majority map).
    mapping = {}
    for c in range(3):
        members = true_labels[result.assignments == c]
        assert members.size > 0
        mapping[c] = np.bincount(members).argmax()
    assert sorted(mapping.values()) == [0, 1, 2]

    lines = [
        "Figure 1 reproduction: K-means, 2-D points, K=3",
        f"points={len(points)} iterations={result.iterations} "
        f"stop={result.stop_reason} inertia={result.inertia:.2f}",
        "centroids:",
    ]
    for c, centroid in enumerate(result.centroids):
        count = int((result.assignments == c).sum())
        lines.append(f"  cluster {c}: center=({centroid[0]:+.3f}, {centroid[1]:+.3f}) members={count}")
    lines.append("")
    lines.append(_ascii_scatter(points, result.assignments))
    report_writer("fig1_kmeans", "\n".join(lines) + "\n")

    sec, timed = time_call(
        lambda: kmeans_sequential(points, 3, initial_centroids=init), repeats=3
    )
    bench_json_writer(
        "fig1_kmeans",
        {"total": sec},
        workload="fig1_kmeans",
        config={"n": len(points), "k": 3, "seed": 42, "init": "kmeans++"},
        digest=result_digest((timed.centroids, timed.assignments)),
        iterations=timed.iterations,
        inertia=timed.inertia,
    )
