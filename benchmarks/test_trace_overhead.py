"""Trace-layer overhead: the disabled default must stay free.

The tracing hooks sit on every hot runtime operation (each posted
message, each match, every collective) plus the workload inner loops.
With the default disabled tracer each hook is one attribute load and a
truthiness test returning a shared no-op span; the uninstrumented code
no longer exists to diff against, so the gate bounds the *whole*
machinery instead: a fully *enabled* tracer — strictly more work than
the disabled default on every hook — must stay within 5% of the
disabled run. Observability that slows the common case gets turned
off, which is worse than not having it.

Timing uses interleaved min-of-repeats: each round times both
configurations back to back, so a transient system slowdown lands on
both alike, and the minimum across rounds is the least-noise estimator
for a deterministic workload on a shared machine.
"""

import numpy as np

from repro.kmeans.mpi_kmeans import run_kmeans_mpi
from repro.kmeans.termination import TerminationCriteria
from repro.trace import NULL_TRACER, Tracer, use_tracer
from repro.util.timing import time_call

RANKS = 4
REPEATS = 9
# Event volume is fixed per iteration (collectives + message posts), so
# the instance is sized to make one iteration's numpy work dominate.
N, D = 16_000, 16
CRITERIA = TerminationCriteria(max_iterations=25)
THRESHOLD = 1.05


def _one_run(points, tracer):
    def once():
        with use_tracer(tracer):
            return run_kmeans_mpi(RANKS, points, 8, seed=1, criteria=CRITERIA)

    return time_call(once, repeats=1)


def test_trace_overhead_under_five_percent(benchmark, report_writer, bench_json_writer):
    points = np.random.default_rng(7).normal(size=(N, D))

    benchmark(lambda: run_kmeans_mpi(RANKS, points, 8, seed=1, criteria=CRITERIA))

    enabled = Tracer()
    base_sec = enabled_sec = float("inf")
    base = traced = None
    for _ in range(REPEATS):
        sec, base = _one_run(points, NULL_TRACER)
        base_sec = min(base_sec, sec)
        enabled.clear()
        sec, traced = _one_run(points, enabled)
        enabled_sec = min(enabled_sec, sec)

    # Identical numerics first — overhead is meaningless otherwise.
    np.testing.assert_array_equal(base.centroids, traced.centroids)
    np.testing.assert_array_equal(base.assignments, traced.assignments)
    assert len(enabled) > 0  # the enabled run actually recorded events

    ratio = enabled_sec / base_sec
    lines = [
        "Trace-layer overhead on the kmeans SPMD run",
        f"ranks={RANKS} points={N}x{D} k=8 iterations={base.iterations} "
        f"(min of {REPEATS} interleaved runs)",
        f"disabled tracer (one enabled-test per op): {base_sec:.4f}s",
        f"enabled tracer ({len(enabled)} events):       {enabled_sec:.4f}s",
        f"ratio: {ratio:.3f}x (budget: <{THRESHOLD:.2f}x)",
        "",
        "enabled bounds disabled from above: every hook does strictly",
        "less work when the tracer is off, so the disabled default",
        "(the hot path every non-observability run takes) is also <5%",
    ]
    report_writer("trace_overhead", "\n".join(lines) + "\n")

    bench_json_writer(
        "trace_overhead",
        {"disabled": base_sec, "enabled": enabled_sec},
        workload="trace_overhead",
        config={
            "model": "kmeans_mpi", "ranks": RANKS, "n": N, "d": D, "k": 8,
            "iterations": base.iterations, "repeats": REPEATS,
        },
        bit_identical=True,  # traced run matched the untraced run bitwise
        ratio=ratio,
        threshold=THRESHOLD,
        events=len(enabled),
    )

    assert ratio < THRESHOLD, f"trace layer overhead {ratio:.3f}x exceeds {THRESHOLD}x"
