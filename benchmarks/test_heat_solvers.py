"""E-heat — §6: forall (part 1) vs coforall + halo exchange (part 2).

The assignment's performance story: the forall solver re-creates its
task team every time step and reads across locale boundaries
implicitly; the coforall solver spawns its tasks once and exchanges two
halo values per boundary per step. We verify both against the serial
reference and report task spawns, communication events, and wall-clock.
"""

import numpy as np

from repro.chapel import set_num_locales
from repro.heat import sine_initial_condition, solve_coforall, solve_forall, solve_serial
from repro.util.timing import ScalingStudy, time_call

N = 40_000
STEPS = 60
ALPHA = 0.25
LOCALES = [1, 2, 4]


def test_heat_forall_vs_coforall(benchmark, report_writer, bench_json_writer):
    u0 = sine_initial_condition(N)
    serial_sec, (serial_u, _) = time_call(lambda: solve_serial(u0, ALPHA, STEPS), repeats=2)

    locs4 = set_num_locales(4)
    benchmark(lambda: solve_coforall(u0, ALPHA, STEPS, locs4))

    lines = [
        "E-heat: 1-D heat equation, forall vs coforall",
        f"n={N} steps={STEPS} alpha={ALPHA}",
        "",
        f"{'solver':>10} {'locales':>8} {'seconds':>9} {'task spawns':>12} "
        f"{'remote gets':>12} {'remote puts':>12} {'exact':>6}",
        f"{'serial':>10} {1:>8} {serial_sec:>9.3f} {0:>12} {0:>12} {0:>12} {'-':>6}",
    ]
    study = ScalingStudy("heat_coforall")
    for num_locales in LOCALES:
        locs = set_num_locales(num_locales)
        fa_sec, (fa_u, fa_stats) = time_call(
            lambda: solve_forall(u0, ALPHA, STEPS, locs), repeats=2
        )
        np.testing.assert_array_equal(fa_u, serial_u)
        lines.append(
            f"{'forall':>10} {num_locales:>8} {fa_sec:>9.3f} {fa_stats.task_spawns:>12} "
            f"{fa_stats.remote_gets:>12} {fa_stats.remote_puts:>12} {'yes':>6}"
        )
        locs = set_num_locales(num_locales)
        co_sec, (co_u, co_stats) = time_call(
            lambda: solve_coforall(u0, ALPHA, STEPS, locs), repeats=2
        )
        np.testing.assert_array_equal(co_u, serial_u)
        study.record(num_locales, co_sec)
        lines.append(
            f"{'coforall':>10} {num_locales:>8} {co_sec:>9.3f} {co_stats.task_spawns:>12} "
            f"{co_stats.remote_gets:>12} {co_stats.remote_puts:>12} {'yes':>6}"
        )
        # Part 2's defining advantages, as counters:
        assert co_stats.task_spawns == num_locales             # spawned once
        assert fa_stats.task_spawns == num_locales * STEPS     # spawned per step
        if num_locales > 1:
            boundaries = num_locales - 1
            assert fa_stats.remote_gets == 2 * boundaries * STEPS
            assert co_stats.remote_puts == 2 * boundaries * STEPS
    lines.append("")
    lines.append("shape: forall spawns tasks every step; coforall spawns once and")
    lines.append("replaces implicit boundary reads with explicit halo puts")
    report_writer("heat_solvers", "\n".join(lines) + "\n")
    bench_json_writer(
        "heat_coforall",
        study,
        workload="heat_coforall",
        config={"n": N, "steps": STEPS, "alpha": ALPHA},
        bit_identical=True,  # every locale count matched the serial solver bitwise
        serial_seconds=serial_sec,
    )
