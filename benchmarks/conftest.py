"""Shared helpers for the benchmark harness.

Every table/figure benchmark both *times* its workload (pytest-benchmark)
and *regenerates the paper's rows/series*, writing them to
``benchmarks/out/<experiment>.txt`` so the artifacts survive the run and
can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def write_report(name: str, text: str) -> Path:
    """Persist one experiment's regenerated rows/series."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text)
    return path


@pytest.fixture(scope="session")
def report_writer():
    """Fixture handing benches the report writer."""
    return write_report
