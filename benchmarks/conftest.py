"""Shared helpers for the benchmark harness.

Every table/figure benchmark both *times* its workload (pytest-benchmark)
and *regenerates the paper's rows/series*, writing them to
``benchmarks/out/<experiment>.txt`` so the artifacts survive the run and
can be diffed against EXPERIMENTS.md. Scaling studies additionally emit
machine-readable ``benchmarks/out/BENCH_<name>.json`` via
:func:`write_bench_json`, so downstream tooling (plots, regression
dashboards) never has to parse the text tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import pytest

from repro.util.timing import ScalingStudy

OUT_DIR = Path(__file__).parent / "out"


def pytest_collection_modifyitems(config: Any, items: list[Any]) -> None:
    """Apply the benchmark calibration via markers, not global addopts.

    ``--benchmark-min-rounds``/``--benchmark-max-time`` used to live in
    ``pytest.ini_options.addopts``, which made *every* pytest run —
    including tier-1 CI on a minimal install — fail unless the
    pytest-benchmark plugin was importable. The calibration only
    concerns this directory, so it is attached here as a marker, and
    only when the plugin is actually present.
    """
    if not config.pluginmanager.hasplugin("benchmark"):
        return
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark(min_rounds=3, max_time=1.0))


def write_report(name: str, text: str) -> Path:
    """Persist one experiment's regenerated rows/series."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text)
    return path


def write_bench_json(
    name: str,
    study: ScalingStudy,
    *,
    metrics: dict[str, Any] | None = None,
    **extra: Any,
) -> Path:
    """Persist one scaling study as ``BENCH_<name>.json``.

    The payload is ``ScalingStudy.to_json()`` (workers/seconds/speedup/
    efficiency rows) plus an optional ``metrics`` snapshot (e.g. from
    ``tracer.metrics.snapshot()``) and any keyword extras the benchmark
    wants to pin (sizes, seeds, variants).
    """
    OUT_DIR.mkdir(exist_ok=True)
    payload = study.to_json()
    if metrics is not None:
        payload["metrics"] = metrics
    payload.update(extra)
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def report_writer():
    """Fixture handing benches the report writer."""
    return write_report


@pytest.fixture(scope="session")
def bench_json_writer():
    """Fixture handing benches the machine-readable JSON writer."""
    return write_bench_json
