"""Shared helpers for the benchmark harness.

Every table/figure benchmark both *times* its workload (pytest-benchmark)
and *regenerates the paper's rows/series*, writing them to
``benchmarks/out/<experiment>.txt`` so the artifacts survive the run and
can be diffed against EXPERIMENTS.md. Scaling studies additionally emit
machine-readable ``benchmarks/out/BENCH_<name>.json`` via
:func:`write_bench_json`, so downstream tooling (plots, regression
dashboards) never has to parse the text tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import pytest

from repro.trace.history import make_record
from repro.util.timing import ScalingStudy

OUT_DIR = Path(__file__).parent / "out"


def pytest_collection_modifyitems(config: Any, items: list[Any]) -> None:
    """Apply the benchmark calibration via markers, not global addopts.

    ``--benchmark-min-rounds``/``--benchmark-max-time`` used to live in
    ``pytest.ini_options.addopts``, which made *every* pytest run —
    including tier-1 CI on a minimal install — fail unless the
    pytest-benchmark plugin was importable. The calibration only
    concerns this directory, so it is attached here as a marker, and
    only when the plugin is actually present.
    """
    if not config.pluginmanager.hasplugin("benchmark"):
        return
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark(min_rounds=3, max_time=1.0))


def write_report(name: str, text: str) -> Path:
    """Persist one experiment's regenerated rows/series."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text)
    return path


def write_bench_json(
    name: str,
    study: ScalingStudy | Mapping[str, float],
    *,
    workload: str | None = None,
    config: Mapping[str, Any] | None = None,
    bit_identical: bool | None = None,
    digest: str | None = None,
    metrics: dict[str, Any] | None = None,
    **extra: Any,
) -> Path:
    """Persist one measurement set as a schema-v1 ``BENCH_<name>.json``.

    ``study`` is either a :class:`ScalingStudy` (its rows become
    ``workers=<n>`` timing labels, and the full rows ride along in
    ``extra``) or a plain ``{label: seconds}`` mapping for benches that
    are not strong-scaling sweeps. Every payload is validated through
    :func:`repro.trace.history.make_record` before it hits disk —
    ``tools/check_bench_schema.py`` gates the same invariant in CI —
    and carries the fields trend analysis needs: ``schema_version``,
    ``workload``, string ``config`` labels, and a ``timings`` unit.
    ``metrics`` (e.g. ``tracer.metrics.snapshot()``) and any keyword
    extras are preserved under ``extra``.
    """
    payload_extra: dict[str, Any] = dict(extra)
    if isinstance(study, ScalingStudy):
        timings = {f"workers={w}": secs for w, secs in sorted(study.measurements.items())}
        payload_extra.setdefault("rows", study.to_json()["rows"])
        payload_extra.setdefault("baseline_workers", study.baseline_workers)
    else:
        timings = dict(study)
    if metrics is not None:
        payload_extra["metrics"] = metrics
    record = make_record(
        workload or name,
        timings=timings,
        config=config,
        bit_identical=bit_identical,
        digest=digest,
        source=f"benchmarks/BENCH_{name}.json",
        extra=payload_extra,
    )
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(record.to_json(), indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def report_writer():
    """Fixture handing benches the report writer."""
    return write_report


@pytest.fixture(scope="session")
def bench_json_writer():
    """Fixture handing benches the machine-readable JSON writer."""
    return write_bench_json
