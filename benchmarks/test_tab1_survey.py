"""Table 1 — four years of course-survey outcomes.

Regenerates the table by aggregating raw item-level survey records
through the Spark pipeline and checks every cell against the published
numbers.
"""

from repro.pipeline import TABLE1_EXPECTED, aggregate_survey, raw_survey_items
from repro.pipeline.survey import raw_student_records
from repro.spark import SparkContext

_ORDER = ["2022/23", "2021/22", "2020/21", "2019/20"]


def test_tab1_survey_aggregation(benchmark, report_writer):
    items = raw_survey_items()
    students = raw_student_records()

    def run():
        sc = SparkContext(num_workers=4)
        return aggregate_survey(sc, items, students)

    table = benchmark(run)
    assert table == TABLE1_EXPECTED

    lines = [
        "Table 1 reproduction: survey outcomes (winter terms 2019/20 - 2022/23)",
        f"{'Winter':>8} | {'Exam':>4} {'Survey':>6} | {'Pos.Total':>9} {'Pos.Proj':>8} | {'Neg.Total':>9} {'Neg.Proj':>8} | paper",
    ]
    for winter in _ORDER:
        exam, survey, pt, pp, nt, np_ = table[winter]
        expected = TABLE1_EXPECTED[winter]
        match = "match" if (exam, survey, pt, pp, nt, np_) == expected else "MISMATCH"
        lines.append(
            f"{winter:>8} | {exam:>4} {survey:>6} | {pt:>9} {pp:>8} | {nt:>9} {np_:>8} | {match}"
        )
    lines.append("")
    lines.append("cross-checks from the running text:")
    lines.append(f"  surveyed students total = {sum(table[w][1] for w in _ORDER)} (paper: 43)")
    lines.append(f"  positive items total    = {sum(table[w][2] for w in _ORDER)} (paper: 33)")
    lines.append(f"  positive project items  = {sum(table[w][3] for w in _ORDER)} (paper: 13)")
    report_writer("tab1_survey", "\n".join(lines) + "\n")
