"""Serve-tier throughput and the idle-machinery overhead gate.

Two claims the serving layer must keep paying for:

1. **Idle machinery is (nearly) free.** Submitting a single job through
   an otherwise idle :class:`~repro.serve.JobService` — queue, breaker,
   watchdog, metrics, all armed but unused — may cost at most 5% over
   running the same body directly. A serving layer that taxes the
   single-tenant case gets bypassed, which is worse than not having it.
2. **Throughput and fairness under load are measured, not assumed.**
   A small multi-tenant soak (the same generator the acceptance soak
   uses) records jobs/second and the max-min fairness share into
   ``BENCH_serve.json`` so the trial harness can watch both trend lines.

Timing uses interleaved min-of-repeats: each round times both
configurations back to back, so a transient system slowdown lands on
both alike, and the minimum across rounds is the least-noise estimator
for a deterministic workload on a shared machine.
"""

import threading

from repro.serve import JobService, generate_traffic, run_soak
from repro.serve.scheduler import JobContext
from repro.trace.history import result_digest
from repro.util.timing import time_call

REPEATS = 7
THRESHOLD = 1.05
SOAK_TENANTS = 3
SOAK_JOBS_PER_TENANT = 6
SOAK_WORKERS = 3


def _single_job():
    # A scaled-up cousin of the wordcount traffic body: big enough
    # (~tens of ms) that the 5% budget is not lost in timer noise.
    from operator import add

    lines = [
        f"line {i} the quick brown fox jumps over the lazy dog token{i % 13}"
        for i in range(4_000)
    ]

    def body(ctx):
        with ctx.spark_context(2) as sc:
            counts = (
                sc.parallelize(lines, 8)
                .flat_map(str.split)
                .map(lambda w: (w, 1))
                .reduce_by_key(add)
                .collect()
            )
        return dict(sorted(counts))

    return body


def _run_direct(body):
    ctx = JobContext("solo", "direct", -1, threading.Event())
    try:
        return body(ctx)
    finally:
        ctx._cleanup()


def _run_served(service, body):
    # The service is long-lived (that is the point of a serving tier);
    # the gate prices the per-job machinery, not pool construction.
    return service.submit("t", body, name="single").result(60.0)


def test_serve_idle_overhead_under_five_percent(benchmark, report_writer, bench_json_writer):
    body = _single_job()
    benchmark(lambda: _run_direct(body))

    direct_sec = served_sec = float("inf")
    direct = served = None
    with JobService(1, capacity=4) as service:
        for _ in range(REPEATS):
            sec, direct = time_call(lambda: _run_direct(body), repeats=1)
            direct_sec = min(direct_sec, sec)
            sec, served = time_call(lambda: _run_served(service, body), repeats=1)
            served_sec = min(served_sec, sec)

    # Identical numerics first — overhead is meaningless otherwise.
    assert result_digest(direct) == result_digest(served)

    ratio = served_sec / direct_sec
    lines = [
        "Serve-tier idle-machinery overhead on a single wordcount job",
        f"(min of {REPEATS} interleaved runs)",
        f"direct call (no service):            {direct_sec:.4f}s",
        f"via idle JobService (1 worker):      {served_sec:.4f}s",
        f"ratio: {ratio:.3f}x (budget: <{THRESHOLD:.2f}x)",
        "",
        "the idle service bounds the machinery from above: admission,",
        "fair-share queue, circuit breaker, watchdog, and metrics all",
        "run, yet schedule exactly one job with no contention",
    ]
    report_writer("serve_idle_overhead", "\n".join(lines) + "\n")

    jobs = generate_traffic(17, tenants=SOAK_TENANTS, jobs_per_tenant=SOAK_JOBS_PER_TENANT)
    service = JobService(SOAK_WORKERS, capacity=16, max_retries=1)
    try:
        soak = run_soak(service, jobs, verify=False, timeout=300.0)
    finally:
        service.shutdown()
    assert sum(soak.states.values()) == len(jobs)

    bench_json_writer(
        "serve",
        {
            "direct": direct_sec,
            "served": served_sec,
            "soak_total": soak.duration,
        },
        workload="serve",
        config={
            "repeats": REPEATS,
            "soak_tenants": SOAK_TENANTS,
            "soak_jobs_per_tenant": SOAK_JOBS_PER_TENANT,
            "soak_workers": SOAK_WORKERS,
        },
        bit_identical=result_digest(direct) == result_digest(served),
        ratio=ratio,
        threshold=THRESHOLD,
        throughput_jobs_per_sec=soak.throughput,
        fairness_max_min_share=soak.fairness,
        soak_states=dict(sorted(soak.states.items())),
    )

    assert ratio < THRESHOLD, (
        f"idle serve machinery overhead {ratio:.3f}x exceeds {THRESHOLD}x"
    )
