"""Ablation (DESIGN.md decision 1) — where the thread-rank runtime can
and cannot show wall-clock scaling.

Python threads share the GIL, but numpy kernels release it. So a rank
program whose per-rank work is one vectorized kernel call overlaps in
real time, while the same work as a per-element Python loop serializes.
This bench quantifies that boundary so every other benchmark's timing
numbers can be read correctly.
"""

import numpy as np

from repro.mpi import run_spmd
from repro.util.partition import block_bounds
from repro.util.timing import time_call

N = 2_400_000
REPEAT = 12


def _vectorized_rank(comm, data):
    lo, hi = block_bounds(len(data), comm.size, comm.rank)
    chunk = data[lo:hi]
    total = 0.0
    for _ in range(REPEAT):  # numpy kernel: releases the GIL
        total += float(np.sqrt(chunk * chunk + 1.0).sum())
    return total


def _pure_python_rank(comm, data):
    lo, hi = block_bounds(len(data), comm.size, comm.rank)
    total = 0.0
    for i in range(lo, min(hi, lo + 20_000)):  # python loop: holds the GIL
        total += (data[i] * data[i] + 1.0) ** 0.5
    return total


def test_gil_boundary_ablation(benchmark, report_writer, bench_json_writer):
    data = np.random.default_rng(0).random(N)

    benchmark(lambda: run_spmd(4, _vectorized_rank, data))

    timings: dict[str, float] = {}

    lines = [
        "Ablation: vectorized vs pure-Python rank kernels under thread-ranks",
        f"array={N:,} elements, {REPEAT} kernel passes",
        "",
        f"{'ranks':>6} {'vectorized s':>13} {'speedup':>8} {'python-loop s':>14} {'speedup':>8}",
    ]
    vec_base = py_base = None
    vec_speedups = {}
    for ranks in (1, 2, 4):
        vec_sec, _ = time_call(lambda r=ranks: run_spmd(r, _vectorized_rank, data), repeats=2)
        py_sec, _ = time_call(lambda r=ranks: run_spmd(r, _pure_python_rank, data), repeats=2)
        vec_base = vec_base or vec_sec
        py_base = py_base or py_sec
        vec_speedups[ranks] = vec_base / vec_sec
        timings[f"vectorized/ranks={ranks}"] = vec_sec
        timings[f"python/ranks={ranks}"] = py_sec
        lines.append(
            f"{ranks:>6} {vec_sec:>13.3f} {vec_base / vec_sec:>8.2f} "
            f"{py_sec:>14.3f} {py_base / py_sec:>8.2f}"
        )
    import os

    cores = os.cpu_count() or 1
    lines.append("")
    lines.append(f"machine cores: {cores}")
    if cores >= 2:
        # Vectorized per-rank work must show real scaling; a regression
        # here would mean the simulator lost its GIL-release property.
        assert vec_speedups[4] > 1.3
        lines.append("shape: numpy kernels overlap across rank threads (GIL released);")
        lines.append("pure-Python loops do not — read all timing benches accordingly")
    else:
        lines.append("single-core machine: no wall-clock overlap is physically possible;")
        lines.append("the table documents that both kernel styles stay ~flat here")
    report_writer("ablation_chunking", "\n".join(lines) + "\n")
    bench_json_writer(
        "ablation_chunking",
        timings,
        workload="ablation_chunking",
        config={"n": N, "repeat": REPEAT, "cores": cores},
        vectorized_speedup_at_4=vec_speedups[4],
    )
