"""Figure 4 — ensemble uncertainty: ambiguous vs clean input.

The paper's example: a handwriting classifier with uncertainty
estimation outputs '4' for a confusing digit but with high uncertainty
(σ ≈ 0.4), while a clean image gets very low uncertainty. This bench
trains the ensemble (as HPO by-products), evaluates both inputs, and
checks the ordering and magnitudes.
"""

import numpy as np

from repro.hpo import (
    DeepEnsemble,
    hyperparameter_grid,
    make_ambiguous_digit,
    make_digit_dataset,
    render_digit,
    run_hpo_serial,
)
from repro.hpo.search import ensemble_of_top


def test_fig4_uncertainty_ordering(benchmark, report_writer):
    x, y = make_digit_dataset(800, noise=0.08, seed=0)
    train_x, train_y = x[:600], y[:600]
    val_x, val_y = x[600:], y[600:]
    grid = hyperparameter_grid(
        hidden_options=[(24,), (32,)],
        lr_options=[0.1],
        epochs_options=[15],
        seeds=[0, 1, 2],
    )
    outcomes = run_hpo_serial(grid, train_x, train_y, val_x, val_y)
    ensemble = ensemble_of_top(outcomes, 4)

    # Figure 4a: a 4/9 blend, "confusing even for humans".
    ambiguous = make_ambiguous_digit(4, 9, 0.55, seed=3)
    # Figure 4b: a clean 4.
    clean_all, clean_labels = make_digit_dataset(40, noise=0.03, seed=4)
    clean = clean_all[clean_labels == 4][0]

    def evaluate():
        return (
            ensemble.predict_with_uncertainty(ambiguous)[0],
            ensemble.predict_with_uncertainty(clean)[0],
        )

    (amb_label, amb_sigma), (clean_label, clean_sigma) = benchmark(evaluate)

    # The clean 4 is classified correctly and confidently.
    assert clean_label == 4
    assert clean_sigma < 0.1
    # The ambiguous image lands on one of the blended classes with
    # visibly higher uncertainty — the figure's qualitative claim.
    assert amb_label in (4, 9)
    assert amb_sigma > 2 * clean_sigma
    amb_entropy = float(ensemble.predictive_entropy(np.atleast_2d(ambiguous))[0])
    clean_entropy = float(ensemble.predictive_entropy(np.atleast_2d(clean))[0])
    assert amb_entropy > clean_entropy

    lines = [
        "Figure 4 reproduction: ensemble uncertainty (M=4 models from HPO)",
        f"ensemble val accuracy: {ensemble.accuracy(val_x, val_y):.3f}",
        "",
        "A) ambiguous 4/9 blend:",
        render_digit(ambiguous),
        f"   prediction={amb_label} sigma={amb_sigma:.3f} entropy={amb_entropy:.3f}   (paper: 4, sigma ~0.4)",
        "",
        "B) clean 4:",
        render_digit(clean),
        f"   prediction={clean_label} sigma={clean_sigma:.3f} entropy={clean_entropy:.3f}   (paper: 4, very low sigma)",
    ]
    report_writer("fig4_uncertainty", "\n".join(lines) + "\n")
