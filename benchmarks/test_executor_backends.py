"""Executor-backend shoot-out: process workers beat threads on the GIL.

The tentpole claim of the executor layer: on a *GIL-bound* kernel (the
pure-Python distance loops standing in for the starter code's C
arithmetic) the ``process`` backend delivers real CPU parallelism while
``thread`` serializes on the interpreter lock. The gate asserts the
process backend is at least 1.5x faster than the thread backend at 4
workers — the honest analogue of the paper's §3 speedup expectation —
and every timed run is first checked bit-identical to the serial
baseline, because a fast wrong answer is worthless.

On the numpy kernel the same harness records how the picture inverts:
numpy releases the GIL, so threads already scale and processes mostly
pay IPC. Both stories land in ``BENCH_executor_backends.json``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.executor import BACKENDS
from repro.kmeans import TerminationCriteria, kmeans_parallel
from repro.util.timing import time_call

WORKERS = 4
REPEATS = 3
N, D, K = 4_000, 8, 8
CRITERIA = TerminationCriteria(max_iterations=3)
SPEEDUP_GATE = 1.5


def _points() -> np.ndarray:
    return np.random.default_rng(5).normal(size=(N, D))


def _run(points: np.ndarray, backend: str, kernel: str):
    return kmeans_parallel(
        points,
        K,
        num_workers=WORKERS,
        backend=backend,
        kernel=kernel,
        seed=1,
        criteria=CRITERIA,
    )


def _time_backends(points: np.ndarray, kernel: str) -> dict[str, float]:
    """Min-of-repeats seconds per backend, interleaved round-robin.

    Interleaving puts transient machine noise on every backend alike;
    the minimum is the least-noise estimator for a deterministic
    workload (same idiom as the trace/fault overhead gates).
    """
    baseline = _run(points, "serial", kernel)
    seconds = {b: float("inf") for b in BACKENDS}
    for _ in range(REPEATS):
        for backend in BACKENDS:
            sec, result = time_call(lambda b=backend: _run(points, b, kernel), repeats=1)
            seconds[backend] = min(seconds[backend], sec)
            np.testing.assert_array_equal(result.assignments, baseline.assignments)
            np.testing.assert_array_equal(result.centroids, baseline.centroids)
    return seconds


@pytest.fixture(scope="module")
def timings() -> dict[str, dict[str, float]]:
    points = _points()
    return {kernel: _time_backends(points, kernel) for kernel in ("python", "numpy")}


def test_backend_timings_artifact(timings, report_writer, bench_json_writer):
    bench_json_writer(
        "executor_backends",
        {
            f"{kernel}/{backend}": sec
            for kernel, secs in timings.items()
            for backend, sec in secs.items()
        },
        workload="executor_backends",
        config={
            "n": N, "d": D, "k": K,
            "iterations": CRITERIA.max_iterations,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "repeats": REPEATS,
        },
        bit_identical=True,  # every backend matched the serial baseline bitwise
        kernels={
            kernel: {
                "seconds": secs,
                "process_speedup_vs_thread": secs["thread"] / secs["process"],
                "process_speedup_vs_serial": secs["serial"] / secs["process"],
            }
            for kernel, secs in timings.items()
        },
    )

    lines = [f"Executor backends on the kmeans assignment step ({WORKERS} workers)"]
    for kernel, secs in timings.items():
        lines.append(f"kernel={kernel}")
        for backend in BACKENDS:
            lines.append(f"  {backend:>8}: {secs[backend]:.4f}s")
        lines.append(f"  process vs thread: {secs['thread'] / secs['process']:.2f}x")
    report_writer("executor_backends", "\n".join(lines) + "\n")

    for secs in timings.values():
        assert all(s > 0 for s in secs.values())


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-vs-thread speedup needs at least 2 CPU cores",
)
def test_process_beats_thread_on_gil_bound_kernel(timings):
    secs = timings["python"]
    speedup = secs["thread"] / secs["process"]
    assert speedup >= SPEEDUP_GATE, (
        f"process backend only {speedup:.2f}x faster than thread on the "
        f"GIL-bound kernel at {WORKERS} workers (gate: {SPEEDUP_GATE}x); "
        f"seconds={secs}"
    )
