"""Executor-backend shoot-out: the persistent pool must actually win.

The tentpole claim of the pool rework, gated with real targets:

- on the *GIL-bound* pure-Python kernel (the stand-in for the starter
  code's C arithmetic) the ``process`` backend must be **≥2x faster
  than serial** at 4 workers — threads serialize on the interpreter
  lock, so only real CPU parallelism can get there;
- on the *numpy* kernel — where threads already scale because numpy
  releases the GIL — the process backend must be **at least as fast as
  thread**: zero-copy shared segments and the warm pool are what erase
  the fork+pickle tax the seed benchmarks measured (0.04x vs serial).

Every timed run is first checked bit-identical to the serial baseline
(and a dedicated test sweeps 3 seeds across all backends), because a
fast wrong answer is worthless. The multi-core gates skip on small
machines — but never silently: each gate appends an
``executor_backends_gate`` row (status ran/skipped, detected core
count) to ``benchmarks/history.jsonl``, so the TRENDS.md coverage
matrix shows *why* a datapoint is missing instead of a hole.
"""

from __future__ import annotations

import os
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.core.executor import BACKENDS
from repro.kmeans import TerminationCriteria, kmeans_parallel
from repro.trace.history import append_history, make_record
from repro.util.timing import time_call

WORKERS = 4
REPEATS = 3
N, D, K = 4_000, 8, 8
CRITERIA = TerminationCriteria(max_iterations=3)
#: Cores below which the perf gates skip (recorded, never silent).
CORES_REQUIRED = 4
#: The GIL-bound gate: process vs *serial* at 4 workers.
PYTHON_GATE_VS_SERIAL = 2.0
#: The numpy gate: process must not lose to thread.
NUMPY_GATE_VS_THREAD = 1.0

HISTORY = Path(__file__).parent / "history.jsonl"


def _points(seed: int = 5, n: int = N) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, D))


def _run(points: np.ndarray, backend: str, kernel: str, seed: int = 1):
    return kmeans_parallel(
        points,
        K,
        num_workers=WORKERS,
        backend=backend,
        kernel=kernel,
        seed=seed,
        criteria=CRITERIA,
    )


def _time_backends(points: np.ndarray, kernel: str) -> dict[str, float]:
    """Min-of-repeats seconds per backend, interleaved round-robin.

    Interleaving puts transient machine noise on every backend alike;
    the minimum is the least-noise estimator for a deterministic
    workload (same idiom as the trace/fault overhead gates).
    """
    baseline = _run(points, "serial", kernel)
    seconds = {b: float("inf") for b in BACKENDS}
    for _ in range(REPEATS):
        for backend in BACKENDS:
            sec, result = time_call(lambda b=backend: _run(points, b, kernel), repeats=1)
            seconds[backend] = min(seconds[backend], sec)
            np.testing.assert_array_equal(result.assignments, baseline.assignments)
            np.testing.assert_array_equal(result.centroids, baseline.centroids)
    return seconds


def _record_gate(gate: str, status: str, **detail: object) -> None:
    """One coverage-matrix row per gate outcome in the trials history.

    ``status=skipped`` rows are how TRENDS.md explains a missing
    datapoint (small runner) instead of showing a silent hole;
    ``status=ran`` rows carry the measured speedup for trend lines.
    """
    timings = {"speedup": float(detail.pop("speedup", 0.0))}
    record = make_record(
        "executor_backends_gate",
        timings=timings,
        unit="speedup_x",
        config={
            "gate": gate,
            "status": status,
            "cpu_count": os.cpu_count() or 1,
            "cores_required": CORES_REQUIRED,
            "workers": WORKERS,
        },
        timestamp=datetime.now(timezone.utc).isoformat(),
        source="benchmarks/test_executor_backends.py",
        extra={str(k): v for k, v in detail.items()},
    )
    append_history(HISTORY, [record])


def _skip_small_runner(gate: str) -> None:
    cores = os.cpu_count() or 1
    if cores < CORES_REQUIRED:
        _record_gate(gate, "skipped", reason="insufficient_cores")
        pytest.skip(
            f"gate {gate!r} needs >= {CORES_REQUIRED} CPU cores, detected {cores} "
            "(recorded as a coverage row in benchmarks/history.jsonl)"
        )


@pytest.fixture(scope="module")
def timings() -> dict[str, dict[str, float]]:
    points = _points()
    return {kernel: _time_backends(points, kernel) for kernel in ("python", "numpy")}


def test_bit_identity_across_seeds():
    """3 seeds x all backends x both kernels: bitwise-equal to serial.

    Runs everywhere (no core gate) — identity is about arithmetic and
    merge order, not speed, and it is the precondition that makes any
    speedup claim meaningful.
    """
    points = _points(seed=11, n=900)
    for kernel in ("python", "numpy"):
        for seed in (1, 7, 123):
            baseline = _run(points, "serial", kernel, seed=seed)
            for backend in ("thread", "process"):
                result = _run(points, backend, kernel, seed=seed)
                np.testing.assert_array_equal(result.assignments, baseline.assignments)
                np.testing.assert_array_equal(result.centroids, baseline.centroids)
                assert result.changes_history == baseline.changes_history
                assert result.inertia == baseline.inertia


def test_backend_timings_artifact(timings, report_writer, bench_json_writer):
    bench_json_writer(
        "executor_backends",
        {
            f"{kernel}/{backend}": sec
            for kernel, secs in timings.items()
            for backend, sec in secs.items()
        },
        workload="executor_backends",
        config={
            "n": N, "d": D, "k": K,
            "iterations": CRITERIA.max_iterations,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "repeats": REPEATS,
        },
        bit_identical=True,  # every backend matched the serial baseline bitwise
        kernels={
            kernel: {
                "seconds": secs,
                "process_speedup_vs_thread": secs["thread"] / secs["process"],
                "process_speedup_vs_serial": secs["serial"] / secs["process"],
            }
            for kernel, secs in timings.items()
        },
        gates={
            "python_vs_serial": PYTHON_GATE_VS_SERIAL,
            "numpy_vs_thread": NUMPY_GATE_VS_THREAD,
            "cores_required": CORES_REQUIRED,
        },
    )

    lines = [f"Executor backends on the kmeans assignment step ({WORKERS} workers)"]
    for kernel, secs in timings.items():
        lines.append(f"kernel={kernel}")
        for backend in BACKENDS:
            lines.append(f"  {backend:>8}: {secs[backend]:.4f}s")
        lines.append(f"  process vs serial: {secs['serial'] / secs['process']:.2f}x")
        lines.append(f"  process vs thread: {secs['thread'] / secs['process']:.2f}x")
    report_writer("executor_backends", "\n".join(lines) + "\n")

    for secs in timings.values():
        assert all(s > 0 for s in secs.values())


def test_process_beats_serial_on_gil_bound_kernel(timings):
    """The headline gate: >=2x over serial where the GIL binds."""
    _skip_small_runner("python_vs_serial")
    secs = timings["python"]
    speedup = secs["serial"] / secs["process"]
    _record_gate(
        "python_vs_serial", "ran", speedup=speedup,
        seconds={b: secs[b] for b in BACKENDS}, target=PYTHON_GATE_VS_SERIAL,
    )
    assert speedup >= PYTHON_GATE_VS_SERIAL, (
        f"process backend only {speedup:.2f}x faster than serial on the "
        f"GIL-bound kernel at {WORKERS} workers "
        f"(gate: {PYTHON_GATE_VS_SERIAL}x); seconds={secs}"
    )


def test_process_matches_thread_on_numpy_kernel(timings):
    """The zero-copy gate: the pool must not lose to threads on numpy."""
    _skip_small_runner("numpy_vs_thread")
    secs = timings["numpy"]
    speedup = secs["thread"] / secs["process"]
    _record_gate(
        "numpy_vs_thread", "ran", speedup=speedup,
        seconds={b: secs[b] for b in BACKENDS}, target=NUMPY_GATE_VS_THREAD,
    )
    assert speedup >= NUMPY_GATE_VS_THREAD, (
        f"process backend is {speedup:.2f}x of thread on the numpy kernel "
        f"at {WORKERS} workers (gate: >= {NUMPY_GATE_VS_THREAD}x — zero-copy "
        f"sharing should erase the IPC tax); seconds={secs}"
    )
