"""Ablation — cache effects in the k-means assign phase.

"The code presents opportunities for further optimizations based on
cache effects" (paper §3). The canonical demonstration: the same
distance computation over row-major (C-contiguous, points × features —
each point's coordinates adjacent) vs column-major (Fortran-ordered)
storage. The mathematics is identical; the stride pattern is not.
"""

import numpy as np

from repro.kmeans.sequential import assign_points
from repro.knn.data import make_blobs
from repro.util.timing import time_call

N, D, K = 40_000, 32, 16


def test_kmeans_memory_layout_ablation(benchmark, report_writer, bench_json_writer):
    points_c, _ = make_blobs(N, D, K, seed=3)
    points_c = np.ascontiguousarray(points_c)
    points_f = np.asfortranarray(points_c)
    centroids = points_c[:K].copy()
    stale = np.full(N, -1, dtype=np.int64)

    benchmark(lambda: assign_points(points_c, centroids, stale))

    c_sec, (c_assign, _) = time_call(
        lambda: assign_points(points_c, centroids, stale), repeats=3
    )
    f_sec, (f_assign, _) = time_call(
        lambda: assign_points(points_f, centroids, stale), repeats=3
    )
    np.testing.assert_array_equal(c_assign, f_assign)

    lines = [
        "Ablation: memory layout of the point array in the assign phase",
        f"n={N:,} d={D} K={K}",
        f"C-order (row-major, coordinates adjacent): {c_sec:.4f}s",
        f"F-order (column-major):                    {f_sec:.4f}s",
        f"ratio: {f_sec / c_sec:.2f}x",
        "",
        "shape: identical assignments; layout alone changes the constant —",
        "the cache-effects discussion the assignment invites (exact ratio",
        "depends on BLAS and cache sizes; on some machines it inverts for",
        "the GEMM-dominated path, which is itself the point worth teaching)",
    ]
    report_writer("ablation_kmeans_cache", "\n".join(lines) + "\n")
    bench_json_writer(
        "ablation_kmeans_cache",
        {"c_order": c_sec, "f_order": f_sec},
        workload="ablation_kmeans_cache",
        config={"n": N, "d": D, "k": K},
        bit_identical=True,  # layouts produced identical assignments
        layout_ratio=f_sec / c_sec,
    )
