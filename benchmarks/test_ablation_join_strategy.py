"""Ablation — join strategies: shuffle (cogroup) vs broadcast-hash.

The pipeline course's scalable-algorithm-design lesson in one number:
joining a large fact table against a small dimension table costs two
full shuffles with the generic join, and *zero* shuffle records with a
broadcast join. Results are identical; the engine counters prove the
plans differ.
"""

from repro.spark import SparkContext
from repro.util.timing import time_call

FACTS = 20_000
DIM_KEYS = 50


def test_join_strategy_ablation(benchmark, report_writer, bench_json_writer):
    sc = SparkContext(num_workers=4)
    facts = sc.parallelize([(i % DIM_KEYS, i) for i in range(FACTS)], 8)
    dim = sc.parallelize([(k, f"dim{k}") for k in range(DIM_KEYS)], 2)

    benchmark(lambda: facts.broadcast_join(dim).count())

    sc.reset_metrics()
    shuffle_sec, shuffle_count = time_call(lambda: facts.join(dim).count(), repeats=2)
    shuffle_records = sc.metrics.shuffle_records

    sc.reset_metrics()
    broadcast_sec, broadcast_count = time_call(
        lambda: facts.broadcast_join(dim).count(), repeats=2
    )
    broadcast_records = sc.metrics.shuffle_records

    assert shuffle_count == broadcast_count == FACTS
    assert broadcast_records == 0
    assert shuffle_records >= FACTS  # both sides cross the wire

    lines = [
        "Ablation: join strategy on a fact/dimension join",
        f"facts={FACTS:,} dimension_keys={DIM_KEYS}",
        "",
        f"{'strategy':>16} {'seconds':>9} {'shuffle records':>16}",
        f"{'shuffle join':>16} {shuffle_sec:>9.3f} {shuffle_records:>16,}",
        f"{'broadcast join':>16} {broadcast_sec:>9.3f} {broadcast_records:>16,}",
        "",
        "shape: identical results; the broadcast plan ships nothing —",
        "the join-strategy selection lesson of the pipeline course",
    ]
    report_writer("ablation_join_strategy", "\n".join(lines) + "\n")
    bench_json_writer(
        "ablation_join_strategy",
        {"shuffle_join": shuffle_sec, "broadcast_join": broadcast_sec},
        workload="ablation_join_strategy",
        config={"facts": FACTS, "dim_keys": DIM_KEYS, "workers": 4},
        bit_identical=True,  # both plans returned identical counts
        shuffle_records=shuffle_records,
        broadcast_records=broadcast_records,
    )
