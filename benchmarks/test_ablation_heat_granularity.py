"""Ablation — stencil granularity: per-element loop vs bulk slices.

The forall solver supports both the literal per-index update (what the
Chapel code *says*) and the bulk-slice form (what tuned array code
*does*). Same numbers, ~orders-of-magnitude cost difference in Python —
the vectorization lesson every scientific-Python course teaches, and
the reason all other heat benches default to the bulk form.
"""

import numpy as np

from repro.chapel import set_num_locales
from repro.heat import sine_initial_condition, solve_forall
from repro.util.timing import time_call

N = 4_000
STEPS = 10


def test_elementwise_vs_bulk(benchmark, report_writer, bench_json_writer):
    locs = set_num_locales(2)
    u0 = sine_initial_condition(N)

    bulk = benchmark(lambda: solve_forall(u0, 0.25, STEPS, locs))

    locs = set_num_locales(2)
    bulk_sec, (bulk_u, _) = time_call(lambda: solve_forall(u0, 0.25, STEPS, locs), repeats=2)
    locs = set_num_locales(2)
    elem_sec, (elem_u, elem_stats) = time_call(
        lambda: solve_forall(u0, 0.25, STEPS, locs, elementwise=True), repeats=1
    )
    np.testing.assert_allclose(elem_u, bulk_u, atol=1e-15)
    assert bulk_sec < elem_sec  # vectorization must win

    lines = [
        "Ablation: heat stencil granularity",
        f"n={N} steps={STEPS} locales=2",
        f"bulk slices:      {bulk_sec:8.4f}s",
        f"per-element loop: {elem_sec:8.4f}s   ({elem_sec / bulk_sec:,.0f}x slower)",
        f"per-element remote reads counted individually: {elem_stats.remote_gets}",
        "shape: identical values; the bulk form is the only usable one in",
        "Python — and the one whose comm counters match the halo analysis",
    ]
    report_writer("ablation_heat_granularity", "\n".join(lines) + "\n")
    bench_json_writer(
        "ablation_heat_granularity",
        {"bulk": bulk_sec, "elementwise": elem_sec},
        workload="ablation_heat_granularity",
        config={"n": N, "steps": STEPS, "locales": 2},
        elementwise_remote_gets=elem_stats.remote_gets,
    )
