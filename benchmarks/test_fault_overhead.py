"""Fault-layer overhead: the fault-free hot path must stay free.

The fault-injection hooks sit on every runtime operation (each posted
message, each receive/probe). With ``faults=None`` — the default — each
hook is one attribute load and an ``is None`` test; with an *empty*
FaultPlan the injector runs but finds nothing scheduled. Neither may
tax the kmeans SPMD run by more than 5%: robustness machinery that
slows the common case gets turned off, which is worse than not having
it.

Timing uses min-of-repeats: the minimum is the least-noise estimator
for a deterministic workload on a shared machine.
"""

import numpy as np

from repro.kmeans.mpi_kmeans import run_kmeans_mpi
from repro.kmeans.termination import TerminationCriteria
from repro.mpi import FaultPlan
from repro.util.timing import time_call

RANKS = 4
REPEATS = 5
CRITERIA = TerminationCriteria(max_iterations=25)
THRESHOLD = 1.05


def _timed_run(points, faults):
    def once():
        return run_kmeans_mpi(
            RANKS, points, 8, seed=1, criteria=CRITERIA, faults=faults
        )

    seconds, result = time_call(once, repeats=REPEATS)
    return seconds, result


def test_no_fault_path_overhead_under_five_percent(benchmark, report_writer):
    points = np.random.default_rng(7).normal(size=(4000, 8))

    benchmark(lambda: run_kmeans_mpi(RANKS, points, 8, seed=1, criteria=CRITERIA))

    base_sec, base = _timed_run(points, faults=None)
    empty_sec, empty = _timed_run(points, faults=FaultPlan())

    # Identical numerics first — overhead is meaningless otherwise.
    np.testing.assert_array_equal(base.centroids, empty.centroids)
    np.testing.assert_array_equal(base.assignments, empty.assignments)

    ratio = empty_sec / base_sec
    lines = [
        "Fault-layer overhead on the kmeans SPMD run",
        f"ranks={RANKS} points=4000x8 k=8 iterations={base.iterations} "
        f"(min of {REPEATS} runs)",
        f"faults=None (hot path, one is-None test per op): {base_sec:.4f}s",
        f"empty FaultPlan (injector active, no events):    {empty_sec:.4f}s",
        f"ratio: {ratio:.3f}x (budget: <{THRESHOLD:.2f}x)",
        "",
        "the injector costs one dict probe per runtime operation; at",
        "teaching scale both paths are indistinguishable from noise",
    ]
    report_writer("fault_overhead", "\n".join(lines) + "\n")
    assert ratio < THRESHOLD, f"fault layer overhead {ratio:.3f}x exceeds {THRESHOLD}x"
