"""E-knn-seq — the sequential kNN cost claims of §2.

The paper: a 40-dimensional instance with 5,000 database points and
5,000 queries "takes about 5 seconds sequentially", and heap-based
selection turns Θ(n log n) into Θ(n log k). We time a scaled instance
(and extrapolate to the paper's size), and measure the heap-vs-sort
selection gap directly.
"""

import numpy as np

from repro.knn import knn_predict_vectorized, make_blobs, top_k_by_sort, top_k_smallest

D = 40
K = 8
SCALE_N = 1000  # timed instance; cost extrapolates as (n*q)


def test_knn_sequential_cost(benchmark, report_writer):
    db, labels = make_blobs(SCALE_N, D, 5, seed=0)
    queries, _ = make_blobs(SCALE_N, D, 5, seed=1)

    result = benchmark(lambda: knn_predict_vectorized(db, labels, queries, K))
    assert result.shape == (SCALE_N,)

    seconds = benchmark.stats.stats.mean
    # Θ(n·q·d) ⇒ the paper's 5000×5000 instance costs ~(5000/SCALE_N)² more.
    extrapolated = seconds * (5000 / SCALE_N) ** 2

    # Bracket the paper's number with the loop-style engine too: the C++
    # starter code is per-element loops, which our heap engine mirrors.
    from repro.knn import knn_predict_heap
    from repro.util.timing import time_call

    loop_n = 200
    loop_sec, _ = time_call(
        lambda: knn_predict_heap(db[:loop_n], labels[:loop_n], queries[:loop_n], K),
        repeats=1,
    )
    loop_extrapolated = loop_sec * (5000 / loop_n) ** 2

    lines = [
        "E-knn-seq: sequential kNN cost",
        f"instance: n=q={SCALE_N}, d={D}, k={K}",
        f"vectorized engine: {seconds:.3f}s measured, {extrapolated:.2f}s extrapolated to n=q=5000",
        f"loop/heap engine:  {loop_sec:.3f}s at n=q={loop_n}, "
        f"{loop_extrapolated:.0f}s extrapolated to n=q=5000",
        "paper: 'about 5 seconds sequentially' for n=q=5000, d=40 (compiled C++",
        "loops) — bracketed between our vectorized numpy (faster) and",
        "interpreted Python loops (slower), as expected",
    ]
    # The claim's shape: the compiled-loop figure sits inside the bracket.
    assert extrapolated < 5.0 < loop_extrapolated
    report_writer("knn_sequential_cost", "\n".join(lines) + "\n")


def test_knn_heap_vs_sort_selection(benchmark, report_writer):
    """The Θ(n log k) vs Θ(n log n) ablation (DESIGN.md decision 2)."""
    rng = np.random.default_rng(0)
    n, k = 200_000, 8
    keys = rng.random(n).tolist()

    heap_result = benchmark(lambda: top_k_smallest(keys, None, k))
    sort_result = top_k_by_sort(keys, None, k)
    assert [d for d, _ in heap_result] == [d for d, _ in sort_result]

    from repro.util.timing import time_call

    heap_s, _ = time_call(lambda: top_k_smallest(keys, None, k), repeats=3)
    sort_s, _ = time_call(lambda: top_k_by_sort(keys, None, k), repeats=3)
    lines = [
        "E-knn-seq ablation: heap Θ(n log k) vs sort Θ(n log n) top-k selection",
        f"n={n} k={k}",
        f"heap: {heap_s:.4f}s   sort: {sort_s:.4f}s   speedup: {sort_s / heap_s:.2f}x",
        "shape check: heap wins (paper cites CLRS for the same argument)",
    ]
    # The heap should win on large n / small k.
    assert heap_s < sort_s
    report_writer("knn_heap_vs_sort", "\n".join(lines) + "\n")
