"""Sanitizer overhead: the off-by-default gate must stay free.

The sanitizer hooks sit on the shared-memory hot paths — every
``Atomic`` operation, critical section, barrier, parallel region, and
annotated access. Disabled (the default for every run that is not a
race-detection campaign), each hook is one module-global read plus a
``None`` test. The uninstrumented code no longer exists to diff
against, so — exactly like the trace-overhead gate — this bench bounds
the *whole* machinery from above: an **observe-mode** sanitizer (real
vector-clock bookkeeping on every hook, strictly more work than the
disabled ``None`` test) must stay within 5% of the disabled run on a
workload whose kernels dominate. Exploration mode serializes threads by
design and is not a hot path; it is never gated.

Timing uses interleaved min-of-repeats: each round times both
configurations back to back so transient system noise lands on both
alike, and the minimum is the least-noise estimator.
"""

import numpy as np

from repro.kmeans.openmp_kmeans import kmeans_openmp
from repro.kmeans.termination import TerminationCriteria
from repro.sanitizer import Sanitizer, use_sanitizer
from repro.util.timing import time_call

THREADS = 4
REPEATS = 9
# Hook volume is fixed per iteration (one region, one reduction slot and
# a handful of annotated writes per thread), so the instance is sized to
# make one iteration's numpy work dominate the constant hook cost.
N, D, K = 96_000, 16, 8
CRITERIA = TerminationCriteria(max_iterations=10)
THRESHOLD = 1.05


def _run(points, init):
    # The reduction rung: deterministic thread-order merge, so the
    # disabled and observed runs are bit-comparable.
    return kmeans_openmp(
        points, K, num_threads=THREADS, variant="reduction",
        criteria=CRITERIA, initial_centroids=init,
    )


def test_sanitizer_overhead_under_five_percent(benchmark, report_writer, bench_json_writer):
    points = np.random.default_rng(7).normal(size=(N, D))
    from repro.kmeans.initialization import init_random_points

    init = init_random_points(points, K, seed=1)

    benchmark(lambda: _run(points, init))

    disabled_sec = enabled_sec = float("inf")
    base = observed = sanitizer = None
    for _ in range(REPEATS):
        sec, base = time_call(lambda: _run(points, init), repeats=1)
        disabled_sec = min(disabled_sec, sec)

        sanitizer = Sanitizer()  # fresh shadow state each round

        def observed_run():
            with use_sanitizer(sanitizer):
                return _run(points, init)

        sec, observed = time_call(observed_run, repeats=1)
        enabled_sec = min(enabled_sec, sec)

    # Identical numerics first — overhead is meaningless otherwise.
    np.testing.assert_array_equal(base.centroids, observed.centroids)
    np.testing.assert_array_equal(base.assignments, observed.assignments)
    # The observed run really instrumented the teams and found no races.
    assert sanitizer.races == ()
    assert len(sanitizer.detector.clock_of("omp0:t0")) > 0

    ratio = enabled_sec / disabled_sec
    lines = [
        "Sanitizer overhead on the openmp kmeans reduction rung",
        f"threads={THREADS} points={N}x{D} k={K} iterations={base.iterations} "
        f"(min of {REPEATS} interleaved runs)",
        f"disabled sanitizer (one None-test per hook): {disabled_sec:.4f}s",
        f"observe-mode sanitizer (full HB bookkeeping): {enabled_sec:.4f}s",
        f"ratio: {ratio:.3f}x (budget: <{THRESHOLD:.2f}x)",
        "",
        "observe mode bounds disabled from above: every hook does",
        "strictly less work when no sanitizer is installed, so the",
        "disabled default (the path every non-campaign run takes) is",
        "also under the 5% budget",
    ]
    report_writer("sanitizer_overhead", "\n".join(lines) + "\n")

    bench_json_writer(
        "sanitizer_overhead",
        {"disabled": disabled_sec, "observed": enabled_sec},
        workload="sanitizer_overhead",
        config={
            "model": "kmeans_openmp", "variant": "reduction",
            "threads": THREADS, "n": N, "d": D, "k": K,
            "iterations": base.iterations, "repeats": REPEATS,
        },
        bit_identical=True,  # observed run matched the disabled run bitwise
        ratio=ratio,
        threshold=THRESHOLD,
        races=len(sanitizer.races),
    )

    assert ratio < THRESHOLD, f"sanitizer overhead {ratio:.3f}x exceeds {THRESHOLD}x"
