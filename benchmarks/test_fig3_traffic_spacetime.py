"""Figure 3 — Nagel–Schreckenberg space-time diagram, paper parameters.

200 cars, road length 1000, p = 0.13, v_max = 5. The figure's claims:
(a) jams (clusters of stopped cars) appear and persist, (b) they
propagate *backwards* along the road, and (c) "without randomness,
these do not occur". All three are checked quantitatively.
"""

import numpy as np

from repro.traffic import (
    TrafficParams,
    count_stopped,
    detect_jams,
    simulate_serial,
    space_time_diagram,
)
from repro.traffic.analysis import jam_drift

STEPS = 300
WARMUP = 100


def test_fig3_spacetime_jams(benchmark, report_writer):
    params = TrafficParams()  # the exact Figure 3 parameter set

    final, trajectory = benchmark(lambda: simulate_serial(params, STEPS, record=True))
    spacetime = space_time_diagram(trajectory)
    assert spacetime.shape == (STEPS + 1, params.road_length)

    # (a) with p=0.13, jams exist after warm-up.
    stopped_counts = [count_stopped(s) for s in trajectory[WARMUP:]]
    jam_steps = sum(1 for s in trajectory[WARMUP:] if detect_jams(s))
    assert np.mean(stopped_counts) > 0.5
    assert jam_steps > len(stopped_counts) * 0.3

    # (b) jams drift backwards (upstream): negative mean displacement.
    drift = jam_drift(spacetime, window=150)
    assert drift < 0.0

    # (c) without randomness, no jams: flow settles into a uniform state
    # with zero stopped cars. (At density 0.2 the steady velocity is the
    # mean gap, 4 — below v_max, but perfectly smooth.)
    free_params = TrafficParams(p_slow=0.0)
    free_final, free_traj = simulate_serial(free_params, STEPS, record=True)
    assert np.all(free_final.velocities == free_final.velocities[0])
    assert free_final.velocities[0] >= 4
    assert count_stopped(free_final) == 0
    assert all(not detect_jams(s) for s in free_traj[WARMUP:])

    # Render the classic diagram: last 60 steps, first 120 cells.
    glyph = {-1: " ", 0: "#"}
    window = spacetime[-60:, :120]
    rows = [
        "".join(glyph.get(int(v), ".") for v in row)  # '#'=stopped, '.'=moving
        for row in window
    ]
    lines = [
        "Figure 3 reproduction: space-time diagram (excerpt)",
        f"cars={params.num_cars} road={params.road_length} p={params.p_slow} vmax={params.v_max}",
        f"mean stopped cars (post-warmup): {np.mean(stopped_counts):.2f}",
        f"steps with detected jams: {jam_steps}/{len(stopped_counts)}",
        f"jam drift: {drift:+.3f} cells/step (negative = backwards, as the figure shows)",
        f"p=0 control: stopped cars = {count_stopped(free_final)}, uniform v = {int(free_final.velocities[0])}",
        "",
        "time ↓, road position →   ('#' stopped car, '.' moving car)",
        *rows,
    ]
    report_writer("fig3_traffic_spacetime", "\n".join(lines) + "\n")
