"""The align family head to head: every model, one integer answer.

Two artifacts, same discipline as the other bench lanes:

- ``BENCH_align.json`` — a schema-v1 model shoot-out over the wavefront
  (sequential numpy/python kernels, the OpenMP reduction rung, the MPI
  block-row sweep, and the tiled executor wavefront on all three
  backends), each run first checked **bit-identical** to the sequential
  oracle and the shared result fingerprinted with
  :func:`repro.trace.history.result_digest` — a fast wrong wavefront is
  worthless.
- the idle-instrumentation gate: the sequential numpy kernel with the
  default disabled tracer must stay within 5% of a fully *enabled*
  tracer run. As with the trace/sanitizer gates, enabled bounds
  disabled from above — every hook does strictly less work when the
  tracer is off — so the hot path every non-observability run takes is
  also under the budget.

Timing uses interleaved min-of-repeats throughout: each round times all
configurations back to back so transient machine noise lands on every
cell alike, and the minimum is the least-noise estimator for a
deterministic integer workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import align_executor, align_openmp, align_sequential, generate_pair
from repro.align.mpi_align import run_align_mpi
from repro.core.executor import BACKENDS
from repro.trace import NULL_TRACER, Tracer, use_tracer
from repro.trace.history import result_digest
from repro.util.timing import time_call

SEED = 5
LENGTH = 120
WORKERS = 4
RANKS = 4
TILE = 24
REPEATS = 3

# Overhead gate: long enough that the per-diagonal numpy work dominates
# the strided instants; the hook volume is ~(n+m) enabled-tests plus
# ~32 instants either way.
GATE_LENGTH = 640
GATE_REPEATS = 9
GATE_INNER = 3  # time_call takes the min of this many back-to-back calls
THRESHOLD = 1.05


@pytest.fixture(scope="module")
def pair():
    return generate_pair(SEED, LENGTH)


@pytest.fixture(scope="module")
def oracle(pair):
    a, b = pair
    return align_sequential(a, b)


def _fingerprint(result):
    return (result.matrix, tuple(result.path))


def _model_runners(a, b):
    """label -> zero-arg runner, every one answering the same instance."""
    runners = {
        "sequential/numpy": lambda: align_sequential(a, b, kernel="numpy"),
        "sequential/python": lambda: align_sequential(a, b, kernel="python"),
        "openmp/reduction": lambda: align_openmp(
            a, b, num_threads=WORKERS, variant="reduction"
        ),
        f"mpi/{RANKS}ranks": lambda: run_align_mpi(RANKS, a, b),
    }
    for backend in BACKENDS:
        runners[f"executor/{backend}"] = lambda bk=backend: align_executor(
            a, b, num_workers=WORKERS, backend=bk, tile=TILE
        )
    return runners


def test_idle_instrumentation_overhead_under_five_percent(
    report_writer, bench_json_writer
):
    a, b = generate_pair(SEED + 1, GATE_LENGTH)

    def run_with(tracer):
        def once():
            with use_tracer(tracer):
                return align_sequential(a, b)

        return time_call(once, repeats=GATE_INNER)

    enabled = Tracer()
    disabled_sec = enabled_sec = float("inf")
    base = traced = None
    for _ in range(GATE_REPEATS):
        sec, base = run_with(NULL_TRACER)
        disabled_sec = min(disabled_sec, sec)
        enabled.clear()
        sec, traced = run_with(enabled)
        enabled_sec = min(enabled_sec, sec)

    # Identical numerics first — overhead is meaningless otherwise.
    np.testing.assert_array_equal(base.matrix, traced.matrix)
    assert base.path == traced.path
    assert len(enabled) > 0  # the enabled run actually recorded events

    ratio = enabled_sec / disabled_sec
    lines = [
        "Idle instrumentation overhead on the sequential align kernel",
        f"n=m={GATE_LENGTH} kernel=numpy "
        f"(min of {GATE_REPEATS}x{GATE_INNER} interleaved runs)",
        f"disabled tracer (one enabled-test per diagonal): {disabled_sec:.4f}s",
        f"enabled tracer ({len(enabled)} events):            {enabled_sec:.4f}s",
        f"ratio: {ratio:.3f}x (budget: <{THRESHOLD:.2f}x)",
        "",
        "enabled bounds disabled from above: every hook does strictly",
        "less work when the tracer is off, so the disabled default is",
        "also under the 5% budget",
    ]
    report_writer("align_overhead", "\n".join(lines) + "\n")

    bench_json_writer(
        "align_overhead",
        {"disabled": disabled_sec, "enabled": enabled_sec},
        workload="align_overhead",
        config={
            "model": "sequential", "kernel": "numpy",
            "length": GATE_LENGTH, "repeats": GATE_REPEATS,
        },
        bit_identical=True,  # traced run matched the untraced run bitwise
        ratio=ratio,
        threshold=THRESHOLD,
        events=len(enabled),
    )

    assert ratio < THRESHOLD, f"idle align overhead {ratio:.3f}x exceeds {THRESHOLD}x"


def test_model_shootout_bit_identical_and_recorded(
    pair, oracle, benchmark, report_writer, bench_json_writer
):
    a, b = pair
    runners = _model_runners(a, b)

    benchmark(runners["sequential/numpy"])

    seconds = {label: float("inf") for label in runners}
    for _ in range(REPEATS):
        for label, runner in runners.items():
            sec, result = time_call(runner, repeats=1)
            seconds[label] = min(seconds[label], sec)
            # Identity before speed: every model, bitwise.
            np.testing.assert_array_equal(result.matrix, oracle.matrix)
            assert result.path == oracle.path
            assert result.score == oracle.score
            assert result.match_events == oracle.match_events

    digest = result_digest(_fingerprint(oracle))

    lines = [
        f"Wavefront alignment model shoot-out (n=m={LENGTH}, seed={SEED})",
        f"workers/threads/ranks={WORKERS} tile={TILE} "
        f"(min of {REPEATS} interleaved runs; all bit-identical, digest {digest[:12]})",
    ]
    lines += [f"  {label:>18}: {seconds[label]:.4f}s" for label in sorted(seconds)]
    report_writer("align_models", "\n".join(lines) + "\n")

    bench_json_writer(
        "align",
        seconds,
        workload="align_models",
        config={
            "seed": SEED, "length": LENGTH, "workers": WORKERS,
            "ranks": RANKS, "tile": TILE, "repeats": REPEATS,
            "mode": "global",
        },
        bit_identical=True,  # every model matched the oracle bitwise above
        digest=digest,
        score=oracle.score,
        match_events=oracle.match_events,
    )

    assert all(sec > 0 for sec in seconds.values())
