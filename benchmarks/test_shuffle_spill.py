"""Out-of-core shuffle: spill costs, compression trade-off, hot-path gate.

Two questions, one workload (an over-budget Spark wordcount):

1. What does going out-of-core cost? Timed side by side: the unbounded
   in-memory run, a budget forcing heavy spilling, and the same budget
   with zlib-compressed runs. These are informational — spilling *is*
   allowed to be slower; that's the graceful-degradation trade.
2. What does the machinery cost when it *doesn't* engage? A budget too
   large to ever spill runs the accounting on every put but never
   touches disk. That ratio is gated <5%: a memory_budget knob nobody
   sets may not tax the in-memory engine.

Timing uses interleaved min-of-repeats: each round times every
configuration back to back, so a transient system slowdown lands on
all alike, and the minimum across rounds is the least-noise estimator
for a deterministic workload on a shared machine.
"""

from repro.spark import SparkContext
from repro.util.timing import time_call

WORKERS = 4
REPEATS = 7
N_LINES = 20_000
PARTITIONS = 16
SPILL_BUDGET = 64 * 1024
HUGE_BUDGET = 1 << 30  # accounting on, disk never touched
THRESHOLD = 1.05

WORDS = "the quick brown fox jumps over lazy dogs while zebras vex daft wizards".split()
LINES = [
    " ".join(WORDS[(i * 7 + j) % len(WORDS)] for j in range(10)) + f" tail{i % 503}"
    for i in range(N_LINES)
]


def _one_run(memory_budget, compress=False):
    def once():
        with SparkContext(
            WORKERS, memory_budget=memory_budget, spill_compress=compress
        ) as sc:
            counts = dict(
                sc.parallelize(LINES, PARTITIONS)
                .flat_map(str.split)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            return counts, dict(sc.metrics.extra)

    sec, (counts, extra) = time_call(once, repeats=1)
    return sec, counts, extra


def test_shuffle_spill_costs_and_hot_path_gate(benchmark, report_writer, bench_json_writer):
    benchmark(lambda: _one_run(None))

    configs = {
        "in_memory": (None, False),
        "no_spill_budget": (HUGE_BUDGET, False),
        "spill": (SPILL_BUDGET, False),
        "spill_compressed": (SPILL_BUDGET, True),
    }
    best = {name: float("inf") for name in configs}
    results: dict = {}
    extras: dict = {}
    for _ in range(REPEATS):
        for name, (budget, compress) in configs.items():
            sec, counts, extra = _one_run(budget, compress)
            best[name] = min(best[name], sec)
            results[name] = counts
            extras[name] = extra

    # Identical numerics first — timings are meaningless otherwise.
    assert all(counts == results["in_memory"] for counts in results.values())
    assert extras["spill"]["spark.spill_files"] >= 1  # the budget bit
    assert extras["no_spill_budget"].get("spark.spill_files", 0) == 0

    gate_ratio = best["no_spill_budget"] / best["in_memory"]
    spill_ratio = best["spill"] / best["in_memory"]
    compressed_ratio = best["spill_compressed"] / best["in_memory"]

    lines = [
        "Out-of-core shuffle on Spark wordcount "
        f"({N_LINES} lines, {PARTITIONS} partitions, workers={WORKERS})",
        f"min of {REPEATS} interleaved runs",
        f"in-memory (budget=None):             {best['in_memory']:.4f}s",
        f"budget too big to spill:             {best['no_spill_budget']:.4f}s "
        f"({gate_ratio:.3f}x, gated <{THRESHOLD:.2f}x)",
        f"budget={SPILL_BUDGET} (spills):          {best['spill']:.4f}s "
        f"({spill_ratio:.3f}x, {extras['spill']['spark.spill_files']} files, "
        f"{extras['spill']['spark.spill_bytes']} bytes)",
        f"budget={SPILL_BUDGET} + zlib:            {best['spill_compressed']:.4f}s "
        f"({compressed_ratio:.3f}x, "
        f"{extras['spill_compressed']['spark.spill_bytes']} bytes)",
        "",
        "all four configurations are bit-identical; only the idle-",
        "machinery ratio is gated — spilling itself is the graceful-",
        "degradation trade and may cost what it costs",
    ]
    report_writer("shuffle_spill", "\n".join(lines) + "\n")

    bench_json_writer(
        "shuffle_spill",
        {name: sec for name, sec in best.items()},
        workload="shuffle_spill",
        config={
            "workers": WORKERS, "lines": N_LINES, "partitions": PARTITIONS,
            "spill_budget_bytes": SPILL_BUDGET, "repeats": REPEATS,
        },
        bit_identical=True,
        ratio=gate_ratio,
        threshold=THRESHOLD,
        spill_ratio=spill_ratio,
        spill_compressed_ratio=compressed_ratio,
        spill_files=extras["spill"]["spark.spill_files"],
        spill_bytes=extras["spill"]["spark.spill_bytes"],
        spill_bytes_compressed=extras["spill_compressed"]["spark.spill_bytes"],
        merge_passes=extras["spill"]["spark.merge_passes"],
    )

    assert gate_ratio < THRESHOLD, (
        f"idle out-of-core machinery costs {gate_ratio:.3f}x on the in-memory "
        f"hot path, exceeding {THRESHOLD}x"
    )
