"""E-hpo-dist — §7: distributing T models over N nodes when N ∤ T.

Claims checked: the round-robin map balances loads to within one task
for any (T, N); the distributed search returns exactly the serial
search's ranking and models; and the ensemble's uncertainty machinery
works on the distributed product.
"""

import numpy as np

from repro.hpo import (
    hyperparameter_grid,
    make_digit_dataset,
    run_distributed_hpo,
    run_hpo_serial,
)
from repro.hpo.scheduler import greedy_lpt_schedule, round_robin_schedule
from repro.util.partition import distribute_tasks
from repro.util.timing import ScalingStudy, time_call

T = 10  # ensemble-training tasks
NODES = [3, 4, 6]


def test_hpo_task_distribution(benchmark, report_writer, bench_json_writer):
    x, y = make_digit_dataset(500, noise=0.1, seed=0)
    train_x, train_y, val_x, val_y = x[:350], y[:350], x[350:], y[350:]
    grid = hyperparameter_grid(
        hidden_options=[(16,), (24,)],
        lr_options=[0.1],
        epochs_options=[5],
        seeds=[0, 1, 2, 3, 4],
    )
    assert len(grid) == T
    serial = run_hpo_serial(grid, train_x, train_y, val_x, val_y)

    ensemble, outcomes = benchmark(
        lambda: run_distributed_hpo(4, grid, train_x, train_y, val_x, val_y, top_m=5)
    )
    assert [o.params for o in outcomes] == [o.params for o in serial]

    lines = [
        "E-hpo-dist: 10 ensemble-training tasks over N nodes (N does not divide 10)",
        "",
        f"{'nodes':>6} {'loads':>16} {'max-min':>8} {'seconds':>9} {'same ranking':>13}",
    ]
    study = ScalingStudy("hpo_distribution")
    for nodes in NODES:
        assignment = distribute_tasks(T, nodes)
        loads = [len(a) for a in assignment]
        sec, (ens, out) = time_call(
            lambda n=nodes: run_distributed_hpo(
                n, grid, train_x, train_y, val_x, val_y, top_m=5
            ),
            repeats=1,
        )
        same = [o.params for o in out] == [o.params for o in serial]
        assert same
        assert max(loads) - min(loads) <= 1
        study.record(nodes, sec)
        lines.append(
            f"{nodes:>6} {str(loads):>16} {max(loads) - min(loads):>8} {sec:>9.3f} {'yes':>13}"
        )

    # The uneven-cost variation: LPT vs round-robin on heterogeneous models.
    costs = [float(p.epochs * sum(p.hidden_sizes)) for p in grid]
    rr = round_robin_schedule(costs, 4)
    lpt = greedy_lpt_schedule(costs, 4)
    lines.append("")
    lines.append(
        f"heterogeneous-cost variation: round-robin makespan={rr.makespan:.0f} "
        f"(imbalance {rr.imbalance:.2f}), LPT makespan={lpt.makespan:.0f} "
        f"(imbalance {lpt.imbalance:.2f})"
    )
    assert lpt.makespan <= rr.makespan
    lines.append(f"ensemble of top-5 val accuracy: {ensemble.accuracy(val_x, val_y):.3f}")
    report_writer("hpo_distribution", "\n".join(lines) + "\n")
    bench_json_writer(
        "hpo_distribution",
        study,
        workload="hpo_distribution",
        config={"tasks": T, "top_m": 5},
        bit_identical=True,  # every node count reproduced the serial ranking
    )
