"""Extension bench — the §5 variations: MPI traffic and open boundaries.

Two series beyond the paper's figures:

1. the distributed-memory (MPI) implementation must stay bitwise-equal
   to serial at every rank count, with one small collective per step;
2. the open-boundary variant's throughput as a function of the exit
   rate ``p_out`` — the bottleneck phase transition (throughput is
   choked by the exit, not the inflow, once ``p_out`` is small).
"""

from repro.traffic import TrafficParams, simulate_mpi, simulate_serial
from repro.traffic.open_road import OpenRoadParams, simulate_open_road
from repro.util.timing import time_call

import numpy as np

STEPS = 120


def test_traffic_mpi_variant(benchmark, report_writer):
    params = TrafficParams(road_length=500, num_cars=100, p_slow=0.13, seed=13)
    serial_sec, (serial, _) = time_call(lambda: simulate_serial(params, STEPS), repeats=2)

    benchmark(lambda: simulate_mpi(params, STEPS, num_ranks=4))

    lines = [
        "Extension: distributed-memory (MPI) Nagel-Schreckenberg",
        f"cars={params.num_cars} road={params.road_length} steps={STEPS}",
        "",
        f"{'ranks':>6} {'seconds':>9} {'identical to serial':>20}",
        f"{'serial':>6} {serial_sec:>9.3f} {'-':>20}",
    ]
    for ranks in (1, 2, 4, 8):
        sec, state = time_call(lambda r=ranks: simulate_mpi(params, STEPS, num_ranks=r), repeats=2)
        same = bool(
            np.array_equal(state.positions, serial.positions)
            and np.array_equal(state.velocities, serial.velocities)
        )
        assert same
        lines.append(f"{ranks:>6} {sec:>9.3f} {'yes':>20}")
    lines.append("")
    lines.append("shape: the reproducibility contract survives distribution —")
    lines.append("one allgather of block heads per step is the only communication")
    report_writer("traffic_mpi_variant", "\n".join(lines) + "\n")


def test_open_boundary_throughput(benchmark, report_writer):
    base = dict(road_length=200, p_in=0.9, p_slow=0.1, seed=5)

    benchmark(lambda: simulate_open_road(OpenRoadParams(p_out=0.5, **base), 300))

    lines = [
        "Extension: open-boundary variant — exit rate vs throughput",
        f"segment={base['road_length']} p_in={base['p_in']} p_slow={base['p_slow']} steps=600",
        "",
        f"{'p_out':>6} {'exited':>7} {'on road':>8} {'throughput/step':>16}",
    ]
    throughputs = []
    for p_out in (1.0, 0.7, 0.4, 0.1):
        final, _ = simulate_open_road(OpenRoadParams(p_out=p_out, **base), 600)
        throughput = final.exited_total / 600
        throughputs.append(throughput)
        lines.append(
            f"{p_out:>6.1f} {final.exited_total:>7} {final.num_cars:>8} {throughput:>16.3f}"
        )
    # The bottleneck phase: choking the exit monotonically kills flow.
    assert all(a >= b for a, b in zip(throughputs, throughputs[1:]))
    assert throughputs[0] > 3 * throughputs[-1]
    lines.append("")
    lines.append("shape: throughput falls monotonically as the exit chokes —")
    lines.append("the boundary-induced jam regime ('change boundary conditions')")
    report_writer("traffic_open_boundary", "\n".join(lines) + "\n")
