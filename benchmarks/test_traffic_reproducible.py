"""E-traffic-repro — §5's acceptance criteria, measured.

Claims checked: (1) the parallel code's output is identical to serial
for every thread count; (2) scaling "depends highly on how well they
reduced the cost of fast-forwarding" — we report times per thread count
and the fast-forward ablation (O(log n) jump vs naive stepping).
"""

import numpy as np

from repro.rng.lcg import MINSTD, LinearCongruential
from repro.traffic import TrafficParams, simulate_parallel, simulate_serial
from repro.util.timing import time_call

STEPS = 150
THREADS = [1, 2, 4, 8]


def test_traffic_parallel_reproducibility_and_scaling(benchmark, report_writer):
    params = TrafficParams()  # Figure 3 parameters
    serial_sec, (serial_state, _) = time_call(
        lambda: simulate_serial(params, STEPS), repeats=2
    )

    benchmark(lambda: simulate_parallel(params, STEPS, num_threads=4))

    lines = [
        "E-traffic-repro: reproducible parallel Nagel-Schreckenberg",
        f"cars={params.num_cars} road={params.road_length} p={params.p_slow} steps={STEPS}",
        "",
        f"{'threads':>8} {'seconds':>9} {'identical to serial':>20}",
        f"{'serial':>8} {serial_sec:>9.3f} {'-':>20}",
    ]
    for threads in THREADS:
        sec, (state, _) = time_call(
            lambda t=threads: simulate_parallel(params, STEPS, num_threads=t), repeats=2
        )
        identical = bool(
            np.array_equal(state.positions, serial_state.positions)
            and np.array_equal(state.velocities, serial_state.velocities)
        )
        assert identical, f"thread count {threads} changed the physics!"
        lines.append(f"{threads:>8} {sec:>9.3f} {'yes':>20}")
    lines.append("")
    lines.append("shape: bitwise-identical output at every thread count (the")
    lines.append("assignment's requirement); absolute scaling is GIL-limited here")
    report_writer("traffic_reproducible", "\n".join(lines) + "\n")


def test_fastforward_ablation(benchmark, report_writer):
    """DESIGN.md decision 5: log-time jump vs naive step-by-step skipping."""
    jump_distance = 2_000_000

    def log_jump():
        gen = LinearCongruential(MINSTD, seed=1)
        gen.jump(jump_distance)
        return gen.state

    def naive_skip():
        gen = LinearCongruential(MINSTD, seed=1)
        for _ in range(jump_distance):
            gen.next_raw()
        return gen.state

    fast = benchmark(log_jump)
    jump_sec, _ = time_call(log_jump, repeats=5)
    naive_sec, slow = time_call(naive_skip, repeats=1)
    assert fast == slow  # same stream position, same state
    assert jump_sec * 100 < naive_sec
    lines = [
        "E-traffic-repro ablation: PRNG fast-forward",
        f"jump distance: {jump_distance:,} draws",
        f"O(log n) affine-power jump: {jump_sec * 1e6:9.1f} us",
        f"naive step-by-step skip:    {naive_sec * 1e3:9.1f} ms",
        f"speedup: {naive_sec / jump_sec:,.0f}x",
        "shape: the jump is what makes reproducible parallel RNG affordable",
        "(the paper: scaling 'depends highly on ... the cost of fast-forwarding')",
    ]
    report_writer("fastforward_ablation", "\n".join(lines) + "\n")
