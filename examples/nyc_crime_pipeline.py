#!/usr/bin/env python
"""The Figure 2 student project, end to end (paper §4).

Builds the NYC-crime analysis as a proper course submission: a
:class:`ProjectSpec` with two datasets and three analysis problems,
validated against the assignment rubric, with the headline problem —
arrests per 100 000 residents per neighborhood — rendered as a terminal
heat map.

Usage::

    python examples/nyc_crime_pipeline.py
"""

import numpy as np

from repro.pipeline import (
    Pipeline,
    ProjectSpec,
    StageKind,
    arrests_per_100k,
    generate_arrests,
    generate_ntas,
    heat_map_matrix,
    validate_project,
)
from repro.spark import SparkContext
from repro.spark.dag import execution_stages

ROWS, COLS = 5, 7


def shade(matrix: np.ndarray) -> str:
    glyphs = " .:-=+*#%@"
    hi = matrix.max() or 1.0
    return "\n".join(
        "".join(glyphs[min(int(v / hi * 9), 9)] for v in row) for row in matrix
    )


def main() -> None:
    ntas = generate_ntas(ROWS, COLS, seed=3)
    historic = generate_arrests(8000, ntas, year=2020, seed=5)
    current = generate_arrests(4000, ntas, year=2021, seed=5)
    sc = SparkContext(num_workers=4)

    # ---- problem 1: arrests per 100k per NTA (the Figure 2 pipeline) ----
    rates, diag = arrests_per_100k(sc, [historic, current], ntas, year_filter=2021)
    print("Problem 1: arrests per 100k per NTA (2021)")
    print(f"  rows dropped by cleaning: {diag['dropped']}")
    matrix = heat_map_matrix(rates, ROWS, COLS)
    print(shade(matrix))
    worst = max(rates, key=rates.get)
    print(f"  hottest neighborhood: {worst} ({rates[worst]:.0f} per 100k)\n")

    # ---- problem 2: offense mix ----------------------------------------
    offenses = (
        sc.parallelize(historic + current)
        .filter(lambda a: a.valid)
        .map(lambda a: (a.offense, 1))
        .reduce_by_key(lambda x, y: x + y)
    )
    print("Problem 2: offense mix")
    for offense, count in sorted(offenses.collect(), key=lambda kv: -kv[1]):
        print(f"  {offense:<10} {count:>6}")
    print(f"  (this plan has {len(execution_stages(offenses))} Spark stages)\n")

    # ---- problem 3: year-over-year change per borough --------------------
    nta_borough = {n.code: n.borough for n in ntas}
    from repro.pipeline.nyc import locate_nta

    def tag_borough(arrest):
        code = locate_nta(arrest.x, arrest.y, ntas)
        return [( (nta_borough[code], arrest.year), 1)] if code else []

    by_borough_year = (
        sc.parallelize(historic + current)
        .filter(lambda a: a.valid)
        .flat_map(tag_borough)
        .reduce_by_key(lambda x, y: x + y)
        .collect_as_map()
    )
    print("Problem 3: year-over-year arrests by borough")
    boroughs = sorted({b for b, _ in by_borough_year})
    for b in boroughs:
        y0 = by_borough_year.get((b, 2020), 0)
        y1 = by_borough_year.get((b, 2021), 0)
        change = (y1 * 2 - y0) / y0 * 100 if y0 else float("nan")  # 2021 is a half-size sample
        print(f"  {b:<14} 2020={y0:>5} 2021={y1:>5}")
    print()

    # ---- wrap it as a submission and grade it against the rubric --------
    def as_pipeline(name: str) -> Pipeline:
        return (
            Pipeline(name)
            .add_stage("union datasets", StageKind.AGGREGATION, lambda d: d)
            .add_stage("drop dirty rows", StageKind.CLEANING, lambda d: d)
            .add_stage("aggregate", StageKind.ANALYSIS, lambda d: d)
            .add_stage("render", StageKind.VISUALIZATION, lambda d: d)
        )

    spec = ProjectSpec(
        title="Aspects of crime in New York City",
        dataset_names=["nypd-arrests-historic", "nypd-arrests-ytd", "nta-boundaries", "nta-population"],
        problems=[as_pipeline("rates"), as_pipeline("offenses"), as_pipeline("yoy")],
        report_text="We combined four NYC Open Data datasets ...",
        presented_in_class=True,
        code_submitted=True,
    )
    violations = validate_project(spec)
    print("rubric check:", "ADMISSIBLE (prerequisite for the exam)" if not violations else violations)


if __name__ == "__main__":
    main()
