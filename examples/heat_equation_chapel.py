#!/usr/bin/env python
"""The two-part Chapel heat-equation assignment (paper §6).

Part 1: the high-level ``forall`` over a Block-distributed domain.
Part 2: explicit ``coforall`` tasks with halo exchange and barriers.
Both must match the serial solver bitwise; what differs is overhead,
shown here as task-spawn and communication counters plus wall-clock.

Usage::

    python examples/heat_equation_chapel.py
"""

import numpy as np

from repro.chapel import set_num_locales
from repro.heat import (
    discrete_sine_solution,
    sine_initial_condition,
    solve_coforall,
    solve_forall,
    solve_serial,
)
from repro.util.timing import time_call

N = 20_000
STEPS = 80
ALPHA = 0.25


def sparkline(u: np.ndarray, width: int = 64) -> str:
    glyphs = " .:-=+*#%@"
    idx = np.linspace(0, len(u) - 1, width).astype(int)
    lo, hi = u.min(), u.max()
    span = hi - lo or 1.0
    return "".join(glyphs[min(int((u[i] - lo) / span * 9), 9)] for i in idx)


def main() -> None:
    u0 = sine_initial_condition(N)
    print(f"1-D heat equation: n={N}, {STEPS} steps, alpha={ALPHA}")
    print(f"t=0      |{sparkline(u0)}|")

    serial_sec, (serial_u, _) = time_call(lambda: solve_serial(u0, ALPHA, STEPS), repeats=3)
    print(f"t={STEPS:<7}|{sparkline(serial_u)}|")

    # The discrete eigenmode decay is known exactly — verify against it.
    exact = discrete_sine_solution(N, ALPHA, STEPS)
    print(f"max |solver - exact eigenmode decay| = {np.abs(serial_u - exact).max():.2e}")

    print(f"\n{'solver':>10} {'locales':>8} {'seconds':>9} {'spawns':>7} "
          f"{'remote gets':>12} {'halo puts':>10}")
    print(f"{'serial':>10} {'-':>8} {serial_sec:>9.4f} {'-':>7} {'-':>12} {'-':>10}")
    for locales in (1, 2, 4):
        locs = set_num_locales(locales)
        fa_sec, (fa_u, fa) = time_call(lambda: solve_forall(u0, ALPHA, STEPS, locs), repeats=3)
        assert np.array_equal(fa_u, serial_u)
        print(f"{'forall':>10} {locales:>8} {fa_sec:>9.4f} {fa.task_spawns:>7} "
              f"{fa.remote_gets:>12} {'-':>10}")
        locs = set_num_locales(locales)
        co_sec, (co_u, co) = time_call(lambda: solve_coforall(u0, ALPHA, STEPS, locs), repeats=3)
        assert np.array_equal(co_u, serial_u)
        print(f"{'coforall':>10} {locales:>8} {co_sec:>9.4f} {co.task_spawns:>7} "
              f"{'-':>12} {co.remote_puts:>10}")

    print("\nlesson: part 2 reuses one task team for the whole run (spawns ==")
    print("locales, not locales x steps) and turns implicit fine-grained remote")
    print("reads into two explicit halo transfers per boundary per step")


if __name__ == "__main__":
    main()
