#!/usr/bin/env python
"""Choosing K and choosing a programming model (paper §3, extended).

Two practical questions around the K-means assignment:

1. *What K?* — elbow curve, silhouette scores, and the automatic
   suggestion, on a cloud whose true cluster count is hidden from the
   algorithms;
2. *Which parallelization?* — the race-repair ladder (critical → atomic
   → reduction), MPI, and the device-style kernels, all timed on the
   same input and verified to agree exactly.

Usage::

    python examples/kmeans_model_selection.py
"""

import numpy as np

from repro.kmeans import (
    elbow_curve,
    kmeans_device,
    kmeans_openmp,
    kmeans_sequential,
    run_kmeans_mpi,
    silhouette_score,
    suggest_k,
)
from repro.kmeans.initialization import init_random_points
from repro.knn.data import make_blobs
from repro.util.timing import time_call

TRUE_K = 4


def main() -> None:
    points, _ = make_blobs(1500, 2, TRUE_K, seed=12, separation=9.0, spread=0.9)
    print(f"point cloud: {len(points)} points (true cluster count hidden: ?)\n")

    # ---- 1. choose K ---------------------------------------------------
    curve = elbow_curve(points, list(range(1, 9)), seed=0)
    max_inertia = curve[0][1]
    print("elbow curve (inertia vs K):")
    for k, inertia in curve:
        bar = "#" * int(inertia / max_inertia * 50)
        print(f"  K={k}: {inertia:10.1f} {bar}")
    pick = suggest_k(points, k_max=8, seed=0)
    print(f"suggested K = {pick} (true K = {TRUE_K})")

    print("\nsilhouette check around the suggestion:")
    for k in (pick - 1, pick, pick + 1):
        if k < 2:
            continue
        result = kmeans_sequential(points, k, seed=0)
        print(f"  K={k}: silhouette = {silhouette_score(points, result.assignments):.3f}")

    # ---- 2. choose a programming model ----------------------------------
    init = init_random_points(points, pick, seed=3)
    reference = kmeans_sequential(points, pick, initial_centroids=init)
    contenders = {
        "sequential": lambda: kmeans_sequential(points, pick, initial_centroids=init),
        "openmp-critical": lambda: kmeans_openmp(
            points, pick, num_threads=4, variant="critical", initial_centroids=init
        ),
        "openmp-atomic": lambda: kmeans_openmp(
            points, pick, num_threads=4, variant="atomic", initial_centroids=init
        ),
        "openmp-reduction": lambda: kmeans_openmp(
            points, pick, num_threads=4, variant="reduction", initial_centroids=init
        ),
        "mpi (4 ranks)": lambda: run_kmeans_mpi(4, points, pick, initial_centroids=init),
        "device": lambda: kmeans_device(points, pick, initial_centroids=init),
    }
    print(f"\nprogramming-model ladder (K={pick}, {reference.iterations} iterations each):")
    for name, task in contenders.items():
        seconds, result = time_call(task, repeats=2)
        same = np.array_equal(result.assignments, reference.assignments)
        print(f"  {name:<18} {seconds:7.3f}s  identical={same}")
        assert same


if __name__ == "__main__":
    main()
