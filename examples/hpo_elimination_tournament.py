#!/usr/bin/env python
"""The §7 variations, end to end: monitoring + elimination tournament.

1. trains one model with periodic validation checks and early stopping
   (the "check the accuracy at regular intervals" variation);
2. runs a successive-halving tournament — the worst performers are
   killed each round and their training budget is handed to the
   survivors (the "kill the lowest performing … and reassign their
   resources" variation) — serially and on SPMD ranks, verifying they
   agree exactly;
3. compares the tournament's winner to naive fixed-budget HPO at equal
   total epochs.

Usage::

    python examples/hpo_elimination_tournament.py
"""

from repro.hpo import (
    MLP,
    hyperparameter_grid,
    learning_curve,
    make_digit_dataset,
    run_elimination_mpi,
    run_hpo_serial,
    successive_halving,
)


def main() -> None:
    x, y = make_digit_dataset(700, noise=0.1, seed=0)
    train_x, train_y = x[:500], y[:500]
    val_x, val_y = x[500:], y[500:]

    # ---- 1. periodic accuracy checks + early stopping ------------------
    print("periodic monitoring (interval=2, patience=3):")
    model = MLP((64, 24, 10), seed=0)
    curve = learning_curve(
        model, train_x, train_y, val_x, val_y,
        epochs=100, interval=2, patience=3,
    )
    for epoch, accuracy in curve[:6]:
        print(f"  epoch {epoch:>3}: val accuracy {accuracy:.3f}")
    if len(curve) > 6:
        print(f"  ... ({len(curve)} checks total)")
    print(f"stopped after epoch {curve[-1][0]} "
          f"(best {max(a for _, a in curve):.3f}) instead of burning all 100 epochs\n")

    # ---- 2. the elimination tournament ----------------------------------
    grid = hyperparameter_grid(
        hidden_options=[(8,), (16,), (24,), (32,), (32, 16)],
        lr_options=[0.1, 0.02],
        epochs_options=[1],
        seeds=[0],
    )
    budget = 40
    print(f"successive halving: {len(grid)} configurations, {budget}-epoch total budget")
    report = successive_halving(grid, train_x, train_y, val_x, val_y,
                                total_epoch_budget=budget)
    for record in report.rounds:
        survivors = ", ".join(grid[c].describe() for c in record.survivors)
        print(f"  round {record.round_index}: {len(record.scores)} alive × "
              f"{record.epochs_each} epochs -> keep [{survivors}]")
    winner = grid[report.winner]
    print(f"tournament winner: {winner.describe()} "
          f"(val {report.final_scores[report.winner]:.3f})")

    distributed = run_elimination_mpi(3, grid, train_x, train_y, val_x, val_y,
                                      total_epoch_budget=budget)
    assert distributed.winner == report.winner
    print("distributed tournament (3 ranks, per-round resource reassignment): same winner\n")

    # ---- 3. tournament vs naive fixed budget ----------------------------
    per_config = max(budget // len(grid), 1)
    naive_grid = [
        g.__class__(**{**g.__dict__, "epochs": per_config}) for g in grid
    ]
    naive = run_hpo_serial(naive_grid, train_x, train_y, val_x, val_y)
    print(f"same {budget}-epoch budget spent naively ({per_config} epochs each): "
          f"best val {naive[0].val_accuracy:.3f}")
    print(f"tournament winner's val accuracy:                    "
          f"{report.final_scores[report.winner]:.3f}")
    print("-> reassigned resources buy the finalists far more training")


if __name__ == "__main__":
    main()
