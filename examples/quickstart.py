#!/usr/bin/env python
"""Quickstart: a five-minute tour of all six Peachy assignments.

Runs a miniature version of every assignment in the paper, printing one
summary block each. Everything is deterministic and laptop-sized.

Usage::

    python examples/quickstart.py
"""

import numpy as np


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def knn_section() -> None:
    banner("S2  k-Nearest Neighbor with MapReduce-MPI")
    from repro.knn import KNNClassifier, make_banknote_like, run_knn_mapreduce, train_test_split

    pts, labels = make_banknote_like(600, seed=0)
    tr_x, tr_y, te_x, te_y = train_test_split(pts, labels, seed=0)
    serial = KNNClassifier(k=5).fit(tr_x, tr_y)
    preds, shuffled = run_knn_mapreduce(4, tr_x, tr_y, te_x, k=5)
    assert np.array_equal(preds, serial.predict(te_x))
    print(f"banknote-style dataset: {len(tr_x)} database points, {len(te_x)} queries")
    print(f"accuracy: {float(np.mean(preds == te_y)):.3f} (MapReduce on 4 ranks == serial)")
    print(f"pairs shuffled between ranks (with local combine): {shuffled}")


def kmeans_section() -> None:
    banner("S3  K-means in four programming models")
    from repro.kmeans import kmeans_openmp, kmeans_sequential, run_kmeans_mpi
    from repro.kmeans.initialization import init_random_points
    from repro.knn.data import make_blobs

    points, _ = make_blobs(800, 2, 4, seed=1, separation=7.0)
    init = init_random_points(points, 4, seed=3)
    seq = kmeans_sequential(points, 4, initial_centroids=init)
    omp = kmeans_openmp(points, 4, num_threads=4, variant="reduction", initial_centroids=init)
    mpi = run_kmeans_mpi(4, points, 4, initial_centroids=init)
    assert np.array_equal(seq.assignments, omp.assignments)
    assert np.array_equal(seq.assignments, mpi.assignments)
    print(f"{len(points)} points, K=4: converged in {seq.iterations} iterations ({seq.stop_reason})")
    print("sequential == OpenMP(reduction) == MPI(4 ranks): identical assignments")


def pipeline_section() -> None:
    banner("S4  Data science pipeline on mini-Spark")
    from repro.pipeline import arrests_per_100k, generate_arrests, generate_ntas
    from repro.spark import SparkContext

    ntas = generate_ntas(3, 4, seed=7)
    arrests = [generate_arrests(2000, ntas, year=y, seed=1) for y in (2020, 2021)]
    sc = SparkContext(num_workers=4)
    rates, diag = arrests_per_100k(sc, arrests, ntas)
    top_code, top_rate = max(rates.items(), key=lambda kv: kv[1])
    print(f"{sum(len(a) for a in arrests)} arrests over {len(ntas)} NTAs")
    print(f"cleaning dropped {diag['dropped']} dirty rows")
    print(f"highest rate: {top_code} at {top_rate:.0f} arrests per 100k")
    print(f"engine ran {sc.metrics.jobs} jobs, {sc.metrics.shuffles} shuffles")


def traffic_section() -> None:
    banner("S5  Nagel-Schreckenberg with reproducible parallel RNG")
    from repro.traffic import TrafficParams, count_stopped, simulate_parallel, simulate_serial

    params = TrafficParams(road_length=300, num_cars=60, p_slow=0.13, seed=13)
    serial, _ = simulate_serial(params, 100)
    for threads in (2, 4):
        parallel, _ = simulate_parallel(params, 100, num_threads=threads)
        assert np.array_equal(parallel.positions, serial.positions)
    print(f"60 cars, 100 steps: {count_stopped(serial)} cars currently stopped in jams")
    print("parallel output is bitwise-identical to serial for 2 and 4 threads")


def heat_section() -> None:
    banner("S6  1D heat equation, Chapel style")
    from repro.chapel import set_num_locales
    from repro.heat import sine_initial_condition, solve_coforall, solve_forall, solve_serial

    locs = set_num_locales(3)
    u0 = sine_initial_condition(120)
    serial, _ = solve_serial(u0, 0.25, 50)
    forall_u, fa = solve_forall(u0, 0.25, 50, locs)
    coforall_u, co = solve_coforall(u0, 0.25, 50, locs)
    assert np.array_equal(serial, forall_u) and np.array_equal(serial, coforall_u)
    print("both solvers bitwise-match the serial reference on 3 locales")
    print(f"forall:   {fa.task_spawns} task spawns, {fa.remote_gets} implicit remote reads")
    print(f"coforall: {co.task_spawns} task spawns, {co.remote_puts} explicit halo writes")


def hpo_section() -> None:
    banner("S7  Deep-ensemble uncertainty via distributed HPO")
    from repro.hpo import (
        hyperparameter_grid,
        make_ambiguous_digit,
        make_digit_dataset,
        run_distributed_hpo,
    )

    x, y = make_digit_dataset(500, noise=0.08, seed=0)
    grid = hyperparameter_grid(
        hidden_options=[(24,)], lr_options=[0.1], epochs_options=[12], seeds=[0, 1, 2]
    )
    ensemble, outcomes = run_distributed_hpo(
        2, grid, x[:350], y[:350], x[350:], y[350:], top_m=3
    )
    clean = x[350:][y[350:] == 4][0]
    blend = make_ambiguous_digit(4, 9, 0.55, seed=3)
    (cl, cs), = ensemble.predict_with_uncertainty(clean)
    (al, as_), = ensemble.predict_with_uncertainty(blend)
    print(f"3 models trained on 2 ranks; best val accuracy {outcomes[0].val_accuracy:.3f}")
    print(f"clean '4'      -> predicted {cl}, sigma={cs:.3f}")
    print(f"4/9 blend      -> predicted {al}, sigma={as_:.3f}  (higher = less trustworthy)")


if __name__ == "__main__":
    knn_section()
    kmeans_section()
    pipeline_section()
    traffic_section()
    heat_section()
    hpo_section()
    print()
    print("all six assignments ran and verified — see examples/ for deeper dives")
