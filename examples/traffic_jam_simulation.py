#!/usr/bin/env python
"""Traffic jams, randomness, and reproducibility (paper §5, Figure 3).

Simulates the Nagel–Schreckenberg model at the paper's exact parameters,
renders a space-time diagram in the terminal, shows that jams vanish
when the random slowdown is disabled, and demonstrates the central
lesson: fast-forwarded shared-sequence RNG gives bitwise-identical
results for any thread count, while naive per-thread seeding does not.

Usage::

    python examples/traffic_jam_simulation.py
"""

import numpy as np

from repro.traffic import (
    TrafficParams,
    count_stopped,
    detect_jams,
    simulate_parallel,
    simulate_serial,
    space_time_diagram,
)
from repro.traffic.analysis import flow_rate, fundamental_diagram, jam_drift


def render(spacetime: np.ndarray, steps: int = 40, cells: int = 100) -> str:
    rows = []
    for row in spacetime[-steps:, :cells]:
        rows.append("".join("#" if v == 0 else ("." if v > 0 else " ") for v in row))
    return "\n".join(rows)


def main() -> None:
    params = TrafficParams()  # 200 cars, road 1000, p=0.13, v_max=5
    print(f"Nagel-Schreckenberg: {params.num_cars} cars / {params.road_length} cells, "
          f"p={params.p_slow}, v_max={params.v_max}")

    final, trajectory = simulate_serial(params, 300, record=True)
    spacetime = space_time_diagram(trajectory)
    print("\nspace-time diagram (last 40 steps, first 100 cells; '#'=stopped, '.'=moving):\n")
    print(render(spacetime))
    print(f"\nstopped cars now: {count_stopped(final)}   "
          f"jams: {len(detect_jams(final))}   "
          f"jam drift: {jam_drift(spacetime):+.2f} cells/step (negative = upstream)")
    print(f"flow: {flow_rate(trajectory[100:]):.3f} cars/cell/step")

    # Without randomness the jams disappear.
    calm, calm_traj = simulate_serial(TrafficParams(p_slow=0.0), 300, record=True)
    print(f"\nwith p=0 (no randomness): stopped cars = {count_stopped(calm)}, "
          f"jams = {len(detect_jams(calm))} — 'without randomness, these do not occur'")

    # Reproducibility: same physics for every thread count.
    print("\nreproducibility check (the assignment's requirement):")
    for threads in (1, 2, 4, 8):
        parallel, _ = simulate_parallel(params, 300, num_threads=threads)
        same = np.array_equal(parallel.positions, final.positions)
        print(f"  {threads} thread(s): identical to serial = {same}")
        assert same

    # The fundamental diagram: flow peaks at a critical density.
    print("\nfundamental diagram (density vs flow):")
    series = fundamental_diagram(400, [0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7], num_steps=150)
    peak = max(series, key=lambda df: df[1])
    for density, flow in series:
        bar = "*" * int(flow * 80)
        marker = "  <- peak" if (density, flow) == peak else ""
        print(f"  rho={density:4.2f}  q={flow:5.3f} {bar}{marker}")

    # Variation: distributed memory (MPI), same reproducibility contract.
    from repro.traffic import simulate_mpi

    mpi_state = simulate_mpi(params, 300, num_ranks=4)
    assert np.array_equal(mpi_state.positions, final.positions)
    print("\nMPI variation (4 ranks): bitwise-identical to serial = True")

    # Variation: self-describing trajectory files (the NetCDF stand-in).
    import tempfile
    from pathlib import Path

    from repro.traffic import read_trajectory, write_trajectory

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "figure3.trj"
        write_trajectory(path, trajectory)
        stored_params, stored = read_trajectory(path)
        assert stored_params == params
        assert np.array_equal(stored[-1].positions, final.positions)
        print(f"self-describing trajectory file: {path.stat().st_size:,} bytes, "
              f"{len(stored)} states, schema travels with the data")


if __name__ == "__main__":
    main()
