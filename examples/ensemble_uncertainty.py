#!/usr/bin/env python
"""Deep-ensemble uncertainty via distributed HPO (paper §7, Figure 4).

Trains an ensemble of MLPs as hyper-parameter-search by-products on
SPMD ranks, then interrogates it: clean digits come back confident,
ambiguous blends come back with high sigma — so the caller can route
"I don't know" cases to a human, which is the assignment's motivating
story (the graffitied stop sign).

Usage::

    python examples/ensemble_uncertainty.py
"""

import numpy as np

from repro.hpo import (
    hyperparameter_grid,
    make_ambiguous_digit,
    make_digit_dataset,
    render_digit,
    run_distributed_hpo,
)
from repro.util.partition import distribute_tasks


def main() -> None:
    x, y = make_digit_dataset(900, noise=0.08, seed=0)
    train_x, train_y = x[:650], y[:650]
    val_x, val_y = x[650:], y[650:]

    grid = hyperparameter_grid(
        hidden_options=[(24,), (32,), (32, 16)],
        lr_options=[0.1, 0.05],
        epochs_options=[14],
        seeds=[0],
    )
    nodes = 4
    print(f"{len(grid)} HPO tasks over {nodes} nodes "
          f"(uneven: {nodes} does not divide {len(grid)})")
    for node, tasks in enumerate(distribute_tasks(len(grid), nodes)):
        print(f"  node {node}: tasks {tasks}")

    ensemble, outcomes = run_distributed_hpo(
        nodes, grid, train_x, train_y, val_x, val_y, top_m=4
    )
    print("\nHPO leaderboard:")
    for o in outcomes:
        print(f"  {o.params.describe():<24} val={o.val_accuracy:.3f} train={o.train_accuracy:.3f}")
    print(f"\nensemble (top 4): val accuracy {ensemble.accuracy(val_x, val_y):.3f}")

    # Figure 4, live:
    clean = val_x[val_y == 4][0]
    blend = make_ambiguous_digit(4, 9, 0.55, seed=7)
    for title, image in [("clean '4'", clean), ("ambiguous 4/9 blend", blend)]:
        (label, sigma), = ensemble.predict_with_uncertainty(image)
        entropy = float(ensemble.predictive_entropy(np.atleast_2d(image))[0])
        print(f"\n{title}:")
        print(render_digit(image))
        print(f"prediction={label} sigma={sigma:.3f} entropy={entropy:.3f}")
        if sigma > 0.05:
            print("-> high uncertainty: the application should ask a human")
        else:
            print("-> confident: safe to act on automatically")


if __name__ == "__main__":
    main()
