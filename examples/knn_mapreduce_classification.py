#!/usr/bin/env python
"""kNN classification as the full application (paper §2, all variants).

Covers the assignment plus both adaptations the paper suggests:

1. the "early programming course" variant — parse the database and
   queries from CSV files, classify, write predictions back to CSV;
2. the MapReduce-MPI parallelization with the local-reduction
   communication optimization;
3. the Data-Structures variant — the k-d tree with box lower-bound
   pruning, with its node-visit savings printed.

Usage::

    python examples/knn_mapreduce_classification.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.knn import (
    KDTree,
    KNNClassifier,
    make_leaf_like,
    run_knn_mapreduce,
    train_test_split,
)
from repro.util.tabular import read_points_csv, write_points_csv


def main() -> None:
    # ---- the whole application, CSV to CSV --------------------------------
    pts, labels = make_leaf_like(1200, num_species=12, seed=4)
    tr_x, tr_y, te_x, te_y = train_test_split(pts, labels, seed=4)

    with tempfile.TemporaryDirectory() as tmp:
        db_csv = Path(tmp) / "database.csv"
        q_csv = Path(tmp) / "queries.csv"
        out_csv = Path(tmp) / "predictions.csv"
        write_points_csv(db_csv, tr_x, tr_y)
        write_points_csv(q_csv, te_x)
        print(f"wrote database ({db_csv.stat().st_size} bytes) and queries to CSV")

        database, db_labels = read_points_csv(db_csv, labelled=True)
        queries, _ = read_points_csv(q_csv, labelled=False)
        clf = KNNClassifier(k=5).fit(database, db_labels)
        predictions = clf.predict(queries)
        write_points_csv(out_csv, queries, predictions)
        print(f"classified {len(queries)} leaf samples "
              f"(accuracy vs held-out truth: {np.mean(predictions == te_y):.3f})")

    # ---- MapReduce-MPI parallelization ------------------------------------
    print("\nMapReduce-MPI (4 ranks):")
    for combine in (False, True):
        preds, shipped = run_knn_mapreduce(4, tr_x, tr_y, te_x, k=5, local_combine=combine)
        assert np.array_equal(preds, predictions)
        tag = "with local reduction" if combine else "without local reduction"
        print(f"  {tag:<24} pairs shuffled: {shipped:>8}")
    print("  -> the optimization the paper highlights: same answer, far less traffic")

    # ---- the Data-Structures variant: k-d tree pruning ---------------------
    tree = KDTree.build(tr_x, tr_y)
    tree_preds = tree.predict(te_x[:50], 5)
    assert np.array_equal(tree_preds, predictions[:50])
    tree.query(te_x[0], 5)
    print(f"\nk-d tree: {tree.num_points} points indexed; one query visited "
          f"{tree.last_nodes_visited} tree nodes (box lower-bound pruning)")


if __name__ == "__main__":
    main()
