#!/usr/bin/env sh
# One-command local equivalent of .github/workflows/ci.yml.
#
#   sh tools/ci_local.sh              # lint + tier-1 + api-index (the blocking jobs)
#   sh tools/ci_local.sh --perf       # additionally run the non-blocking tripwires
#   sh tools/ci_local.sh --sanitizer  # additionally run the CI sanitizer job
#                                     # (slow DFS tests + the seed-matrix campaign)
#   sh tools/ci_local.sh --trials     # additionally run the CI trials job (seeded
#                                     # campaign -> history.jsonl + TRENDS.md)
#   sh tools/ci_local.sh --serve      # additionally run the CI serve-soak job
#                                     # (full tests/serve incl. the slow
#                                     # acceptance soak + serve benchmarks)
#   sh tools/ci_local.sh --pool       # additionally run the CI executor-pool
#                                     # job (pool correctness + determinism
#                                     # suites + the multi-core speedup gates;
#                                     # gates skip-with-a-recorded-row < 4 cores)
#
# Requires only the baked-in toolchain (python + pytest + numpy). ruff
# and actionlint are picked up when installed and skipped with a
# warning otherwise, so the script never fails for a missing linter
# the CI lint job would have caught anyway.

set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks tools
else
    echo "ruff not installed (pip install -e '.[dev]') -- skipping lint"
fi
python -m compileall -q src
if command -v actionlint >/dev/null 2>&1; then
    actionlint
else
    echo "actionlint not installed -- skipping workflow lint"
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== api index =="
python tools/check_api_index.py --check

echo "== bench output schema =="
python tools/check_bench_schema.py --check

if [ "${1:-}" = "--perf" ]; then
    echo "== perf tripwires (non-blocking in CI) =="
    python -m pytest -q \
        tests/trace/test_overhead_gate.py \
        tests/spark/test_fault_overhead_gate.py \
        tests/spark/test_spill_overhead_gate.py \
        tests/serve/test_serve_overhead_gate.py \
        benchmarks/test_executor_backends.py \
        benchmarks/test_shuffle_spill.py \
        benchmarks/test_serve_throughput.py \
        benchmarks/test_align.py
fi

if [ "${1:-}" = "--sanitizer" ]; then
    echo "== sanitizer suite (including slow systematic-DFS tests) =="
    python -m pytest -q tests/sanitizer -m 'slow or not slow'
    echo "== align conformance (cross-model bit-identity) =="
    python -m pytest -q tests/integration/test_model_conformance.py -k Align
    echo "== ladder certification campaign (k-means + align, seed matrix) =="
    for seed in 0 7 123; do
        python tools/sanitizer_campaign.py --seed "$seed" --schedules 50 \
            --out sanitizer-reports
    done
fi

if [ "${1:-}" = "--trials" ]; then
    echo "== trial campaign + trend report (non-blocking in CI) =="
    python tools/trials --ingest-bench --fail-on never
fi

if [ "${1:-}" = "--pool" ]; then
    echo "== executor pool (correctness + determinism) =="
    python -m pytest -q \
        tests/core/test_executor.py \
        tests/core/test_executor_pool.py \
        tests/core/test_shm_lifecycle.py \
        tests/core/test_executor_determinism.py \
        tests/core/test_executor_interrupt.py
    echo "== executor pool speedup gates (skip-with-record < 4 cores) =="
    python -m pytest -q -rs benchmarks/test_executor_backends.py
fi

if [ "${1:-}" = "--serve" ]; then
    echo "== serve soak (multi-tenant, fault-injected) =="
    python -m pytest -q -m 'slow or not slow' \
        tests/serve \
        tests/spark/test_cancellation.py \
        tests/core/test_executor_interrupt.py
    echo "== serve throughput + idle-overhead bench =="
    python -m pytest -q benchmarks/test_serve_throughput.py
fi

echo "ci_local: all checks passed"
