#!/usr/bin/env python
"""Run the rung ladders through the schedule explorer; write race reports.

Two ladder families share the certification bar: the OpenMP k-means
reduction ladder and the align wavefront ladder (``repro.align``). The
CI ``sanitizer`` job runs this across a fixed seed matrix and uploads
the reports as artifacts:

    python tools/sanitizer_campaign.py --seed 0 --schedules 50 --out sanitizer-reports

Exit status is the certificate: 0 iff, for every family, the racy rung
is flagged AND every guarded rung (critical / atomic / reduction) is
race-free across all explored schedules. The per-rung plain-text
reports (including the replay command for every racy schedule) are
written either way, so a red run leaves its evidence behind.
"""

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.align import align_openmp, generate_pair
from repro.align.openmp_align import ALL_VARIANTS as ALIGN_VARIANTS
from repro.kmeans.initialization import init_random_points
from repro.kmeans.openmp_kmeans import ALL_VARIANTS, kmeans_openmp
from repro.kmeans.termination import TerminationCriteria
from repro.sanitizer import explore, write_report


def make_body(points, init, variant):
    criteria = TerminationCriteria(max_iterations=2)

    def body():
        result = kmeans_openmp(
            points, 2, num_threads=2, variant=variant,
            initial_centroids=init, criteria=criteria,
        )
        return (tuple(result.changes_history), result.centroids.tobytes())

    return body


def make_align_body(a, b, variant):
    def body():
        result = align_openmp(a, b, num_threads=2, variant=variant)
        return (result.match_events, result.best_score, result.best_cell)

    return body


def run_family(family, variants, body_for, args) -> list[str]:
    """Explore every rung of one ladder; return the misbehaving rungs."""
    failures = []
    for variant in variants:
        result = explore(body_for(variant), schedules=args.schedules, seed=args.seed)
        path = args.out / f"{family}-{variant}-seed{args.seed}.txt"
        write_report(result, path, title=f"{family} variant={variant!r} seed={args.seed}")
        expected_racy = variant == "racy"
        ok = result.race_free != expected_racy
        verdict = "race-free" if result.race_free else f"{len(result.races)} distinct race(s)"
        status = "ok" if ok else "UNEXPECTED"
        print(
            f"[{status}] {family}:{variant:<9} seed={args.seed} "
            f"schedules={result.schedules_run} "
            f"distinct={result.distinct_interleavings()} -> {verdict}  ({path})"
        )
        if not ok:
            failures.append(f"{family}:{variant}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0, help="schedule-stream seed")
    parser.add_argument("--schedules", type=int, default=50, help="schedules per rung")
    parser.add_argument("--out", type=Path, default=Path("sanitizer-reports"))
    args = parser.parse_args(argv)

    rng = np.random.default_rng(11)
    points = rng.normal(size=(24, 2))
    init = init_random_points(points, 2, seed=3)
    a, b = generate_pair(5, 8)

    failures = run_family(
        "kmeans", ALL_VARIANTS, lambda v: make_body(points, init, v), args
    )
    failures += run_family(
        "align", ALIGN_VARIANTS, lambda v: make_align_body(a, b, v), args
    )

    if failures:
        print(f"sanitizer campaign FAILED for: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"sanitizer campaign passed (seed={args.seed}); reports in {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
