#!/usr/bin/env python
"""Check (or refresh) docs/API.md against the live package.

CI-friendly companion to ``gen_api_index.py``::

    python tools/check_api_index.py --check   # exit 1 + diff summary if stale
    python tools/check_api_index.py           # rewrite docs/API.md if stale

``--check`` never writes; it prints which sections drifted so the fix
(`python tools/gen_api_index.py`) is obvious from the failure alone.
The tier-1 suite runs the same comparison via
``tests/core/test_api_index.py``.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from gen_api_index import build_index, main as regenerate  # noqa: E402

__all__ = ["check", "main"]

DEFAULT_PATH = Path(__file__).parent.parent / "docs" / "API.md"
#: Cap on printed diff lines so a wholesale rewrite stays readable.
MAX_DIFF_LINES = 40


def check(path: Path = DEFAULT_PATH) -> tuple[bool, str]:
    """Compare the checked-in index against a fresh build.

    Returns ``(is_current, report)``; ``report`` is a human-readable
    unified-diff excerpt when stale ("" when current or missing).
    """
    expected = build_index()
    if not path.exists():
        return False, f"{path} does not exist — run `python tools/gen_api_index.py`"
    actual = path.read_text()
    if actual == expected:
        return True, ""
    diff = list(
        difflib.unified_diff(
            actual.splitlines(),
            expected.splitlines(),
            fromfile=str(path),
            tofile="freshly generated",
            lineterm="",
        )
    )
    shown = diff[:MAX_DIFF_LINES]
    if len(diff) > MAX_DIFF_LINES:
        shown.append(f"... ({len(diff) - MAX_DIFF_LINES} more diff lines)")
    return False, "\n".join(shown)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="only verify; exit 1 with a diff if docs/API.md is stale",
    )
    parser.add_argument(
        "path", nargs="?", default=None, help="index file (default: docs/API.md)"
    )
    args = parser.parse_args(argv)
    path = Path(args.path) if args.path else DEFAULT_PATH

    current, report = check(path)
    if current:
        print(f"{path} is current")
        return 0
    if args.check:
        print(f"{path} is STALE — regenerate with `python tools/gen_api_index.py`")
        print(report)
        return 1
    written = regenerate(str(path))
    print(f"rewrote {written}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
