#!/usr/bin/env python
"""Validate every ``BENCH_*.json`` under ``benchmarks/out/``.

CI-friendly companion to ``tools/trials`` (the ``check_api_index.py``
idiom applied to bench output)::

    python tools/check_bench_schema.py --check   # exit 1 + problem list

Every file must either already be a schema-v1 record or be upgradable
through :func:`repro.trace.history.migrate_bench_payload` — a bench
that emits JSON the trend pipeline cannot read is a broken bench. The
tier-1 suite runs the same comparison via
``tests/core/test_bench_schema.py``; ``benchmarks/history.jsonl`` is
reported informationally (its loader is tolerant by design, but silent
rot should still be visible).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.trace.history import (  # noqa: E402
    BenchRecord,
    load_history,
    migrate_bench_payload,
)

__all__ = ["check", "main"]

DEFAULT_OUT_DIR = ROOT / "benchmarks" / "out"
DEFAULT_HISTORY = ROOT / "benchmarks" / "history.jsonl"


def check(out_dir: Path = DEFAULT_OUT_DIR) -> tuple[bool, str]:
    """Validate all bench JSON under ``out_dir``: ``(ok, report)``.

    ``report`` lists one line per problem (empty when everything
    validates, including when the directory is missing or holds no
    BENCH files — a fresh clone has nothing to gate).
    """
    problems: list[str] = []
    files = sorted(out_dir.glob("BENCH_*.json")) if out_dir.is_dir() else []
    for path in files:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            problems.append(f"{path.name}: unreadable JSON ({exc})")
            continue
        try:
            BenchRecord.from_json(migrate_bench_payload(payload, source=path.name),
                                  source=path.name)
        except ValueError as exc:
            problems.append(f"{path.name}: {exc}")
    return not problems, "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", nargs="?", default=str(DEFAULT_OUT_DIR))
    parser.add_argument("--history", default=str(DEFAULT_HISTORY))
    parser.add_argument("--check", action="store_true",
                        help="accepted for symmetry with check_api_index (always checks)")
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    ok, report = check(out_dir)
    n_files = len(list(out_dir.glob("BENCH_*.json"))) if out_dir.is_dir() else 0
    if ok:
        print(f"bench schema OK: {n_files} BENCH_*.json file(s) under {out_dir}")
    else:
        print(f"MALFORMED bench output under {out_dir}:\n{report}")

    history = Path(args.history)
    if history.exists():
        records, skipped = load_history(history)
        note = f" ({skipped} malformed line(s) skipped)" if skipped else ""
        print(f"history: {len(records)} record(s) in {history.name}{note}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
