"""Continuous trial harness: the campaign matrix runner.

``python tools/trials`` executes a configurable matrix of (benchmark
suite × executor backend × fault plan × sanitizer schedule × seed)
trials, appends timestamped, git-SHA-stamped :class:`BenchRecord` rows
to ``benchmarks/history.jsonl``, runs the rolling-baseline trend
analysis from ``repro.trace.history``, and renders
``benchmarks/out/TRENDS.md``. See docs/trials.md.
"""

from trials.campaign import (
    CampaignInjection,
    CampaignResult,
    TrialSpec,
    build_matrix,
    default_git_sha,
    run_campaign,
)

__all__ = [
    "TrialSpec",
    "CampaignInjection",
    "CampaignResult",
    "build_matrix",
    "run_campaign",
    "default_git_sha",
]
