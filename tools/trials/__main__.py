"""CLI for the continuous trial harness.

Run from the repo root (no install needed)::

    python tools/trials                      # campaign -> history -> TRENDS.md
    python tools/trials --ingest-bench       # also fold BENCH_*.json snapshots in
    python tools/trials --analyze-only       # re-analyze existing history
    python tools/trials --seeds 0,1 --suites kmeans,wordcount --repeats 3

The campaign appends to ``benchmarks/history.jsonl`` and rewrites
``benchmarks/out/TRENDS.md``. Exit status is governed by ``--fail-on``
(default ``never`` — CI runs this job non-blocking).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(ROOT / "tools"))
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.trace.history import (  # noqa: E402
    analyze_trends,
    append_history,
    load_bench_dir,
    load_history,
    render_trends,
)
from trials.campaign import (  # noqa: E402
    DEFAULT_SUITES,
    HISTORY_MAX_BYTES,
    build_matrix,
    default_git_sha,
    run_campaign,
)

__all__ = ["main"]

_FAIL_LEVELS = {"never": None, "critical": {"critical"}, "major": {"critical", "major"}}


def _csv(value: str) -> list[str]:
    return [item for item in (part.strip() for part in value.split(",")) if item]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="trials", description="campaign runner + perf-trend regression detection"
    )
    parser.add_argument("--suites", default=",".join(DEFAULT_SUITES),
                        help=f"comma-separated suites (default: all of {DEFAULT_SUITES})")
    parser.add_argument("--backends", default="serial,thread")
    parser.add_argument("--fault-plans", default="none,spark")
    parser.add_argument("--sanitizer", default="off,observe",
                        help="sanitizer schedules for the openmp suite")
    parser.add_argument("--seeds", default="0")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--history", default=str(ROOT / "benchmarks" / "history.jsonl"))
    parser.add_argument("--trends", default=str(ROOT / "benchmarks" / "out" / "TRENDS.md"))
    parser.add_argument("--bench-dir", default=str(ROOT / "benchmarks" / "out"))
    parser.add_argument("--baseline-window", type=int, default=5)
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="slowdown flag threshold (0.10 = +10%%)")
    parser.add_argument("--ingest-bench", action="store_true",
                        help="append the BENCH_*.json snapshots to history first")
    parser.add_argument("--analyze-only", action="store_true",
                        help="skip the campaign; re-analyze the existing history")
    parser.add_argument("--fail-on", choices=sorted(_FAIL_LEVELS), default="never")
    args = parser.parse_args(argv)

    history = Path(args.history)
    trends = Path(args.trends)
    stamp = datetime.now(timezone.utc).isoformat()
    sha = default_git_sha()

    if args.ingest_bench:
        snapshots = load_bench_dir(args.bench_dir)
        stamped = [
            replace(r, timestamp=r.timestamp or stamp, git_sha=r.git_sha or sha,
                    source=r.source or "bench-ingest")
            for r in snapshots
        ]
        n = append_history(history, stamped, max_bytes=HISTORY_MAX_BYTES)
        print(f"ingested {n} BENCH_*.json snapshot(s) from {args.bench_dir}")

    if not args.analyze_only:
        specs = build_matrix(
            suites=tuple(_csv(args.suites)),
            backends=tuple(_csv(args.backends)),
            fault_plans=tuple(_csv(args.fault_plans)),
            sanitizer_schedules=tuple(_csv(args.sanitizer)),
            seeds=tuple(int(s) for s in _csv(args.seeds)),
        )
        result = run_campaign(
            specs, history_path=history, repeats=args.repeats,
            now=lambda: stamp, git_sha=sha,
        )
        print(
            f"campaign: {len(result.records)}/{len(specs)} trials in "
            f"{result.wall_seconds:.2f}s -> {history}"
        )
        for err in result.errors:
            print(f"  trial failed: {err}", file=sys.stderr)

    records, skipped = load_history(history)
    findings = analyze_trends(
        records, baseline_window=args.baseline_window, slowdown_threshold=args.threshold
    )
    report = render_trends(
        records, findings=findings, skipped=skipped,
        baseline_window=args.baseline_window, slowdown_threshold=args.threshold,
    )
    trends.parent.mkdir(parents=True, exist_ok=True)
    trends.write_text(report)

    by_severity = {sev: sum(1 for f in findings if f.severity == sev)
                   for sev in ("critical", "major", "minor")}
    print(
        f"analyzed {len(records)} record(s) ({skipped} skipped): "
        f"{by_severity['critical']} critical / {by_severity['major']} major / "
        f"{by_severity['minor']} minor finding(s) -> {trends}"
    )
    for f in findings:
        print(f"  [{f.severity}] {f.kind}: {f.workload} ({f.config}) — {f.detail}")

    gate = _FAIL_LEVELS[args.fail_on]
    if gate and any(f.severity in gate for f in findings):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
