"""Campaign matrix construction and execution.

A *campaign* is one sweep over the trial matrix: benchmark suites ×
executor backends × fault plans × sanitizer schedules × seeds. Each
cell is a :class:`TrialSpec` — a named workload closure with string
config labels — and :func:`run_campaign` times every cell
(min-of-repeats), fingerprints its result for bit-identity, and emits
canonical :class:`repro.trace.history.BenchRecord` rows.

Campaign execution is itself traceable: every trial runs inside a
``repro.trace`` span (category ``"trials"``) with ``trials.trials`` /
``trials.failures`` counters and a ``trials.trial_seconds`` histogram,
so the harness obeys the same observability discipline it measures.

:class:`CampaignInjection` is the trend pipeline's own seeded fault
injection (the ``repro.mpi.faults`` idiom applied to measurement):
multiply a cell's recorded seconds or break its digest so regression
detection can be exercised end-to-end without waiting for a real
regression.
"""

from __future__ import annotations

import subprocess
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.trace import Tracer, use_tracer
from repro.trace.history import BenchRecord, append_history, make_record, result_digest

__all__ = [
    "TrialSpec",
    "CampaignInjection",
    "CampaignResult",
    "build_matrix",
    "run_campaign",
    "default_git_sha",
    "DEFAULT_SUITES",
]

#: Suites the default matrix covers, and the dimension each one sweeps.
DEFAULT_SUITES = (
    "kmeans", "kmeans_openmp", "wordcount", "heat", "knn_mapreduce", "serve", "align",
)


@dataclass(frozen=True)
class TrialSpec:
    """One campaign cell: a workload closure plus its series identity."""

    workload: str
    config: tuple[tuple[str, str], ...]
    runner: Callable[[], Any] = field(compare=False)

    @property
    def config_label(self) -> str:
        """``"backend=thread,seed=0"`` — matches ``BenchRecord.config_label``."""
        return ",".join(f"{k}={v}" for k, v in self.config) or "default"


def _spec(workload: str, config: Mapping[str, Any], runner: Callable[[], Any]) -> TrialSpec:
    return TrialSpec(
        workload=workload,
        config=tuple(sorted((str(k), str(v)) for k, v in config.items())),
        runner=runner,
    )


@dataclass(frozen=True)
class CampaignInjection:
    """Measurement-level fault injection for the trend pipeline itself.

    ``slowdowns`` multiplies the recorded seconds of matching
    ``(workload, config_label)`` cells; ``digest_breaks`` perturbs their
    result fingerprint. Neither touches the workload — they corrupt the
    *measurement*, which is exactly what the analyzer must catch.
    """

    slowdowns: Mapping[tuple[str, str], float] = field(default_factory=dict)
    digest_breaks: frozenset[tuple[str, str]] = frozenset()


@dataclass
class CampaignResult:
    """What one campaign run produced."""

    records: list[BenchRecord]
    errors: list[str]
    wall_seconds: float
    metrics: dict[str, Any]
    appended: int = 0


def default_git_sha() -> str | None:
    """The repo's short HEAD SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


# ----------------------------------------------------------------------
# the default matrix
# ----------------------------------------------------------------------

def _kmeans_trials(backends: Sequence[str], seed: int) -> list[TrialSpec]:
    from repro.kmeans import TerminationCriteria, kmeans_parallel
    from repro.knn.data import make_blobs

    points, _ = make_blobs(2_000, 8, 8, seed=seed)
    criteria = TerminationCriteria(max_iterations=5)
    specs = []
    for backend in backends:
        def runner(b: str = backend) -> Any:
            result = kmeans_parallel(
                points, 8, num_workers=4, backend=b, kernel="numpy",
                seed=seed, criteria=criteria,
            )
            return (result.centroids, result.assignments)

        specs.append(_spec("kmeans", {"backend": backend, "seed": seed}, runner))
    return specs


def _kmeans_openmp_trials(schedules: Sequence[str], seed: int) -> list[TrialSpec]:
    from repro.kmeans import TerminationCriteria, kmeans_openmp
    from repro.knn.data import make_blobs
    from repro.sanitizer import Sanitizer, use_sanitizer

    points, _ = make_blobs(1_200, 8, 8, seed=seed)
    criteria = TerminationCriteria(max_iterations=4)

    def plain() -> Any:
        result = kmeans_openmp(
            points, 8, num_threads=4, variant="reduction", seed=seed, criteria=criteria
        )
        return (result.centroids, result.assignments)

    def observed() -> Any:
        with use_sanitizer(Sanitizer()):
            return plain()

    runners = {"off": plain, "observe": observed}
    return [
        _spec("kmeans_openmp", {"sanitizer": sched, "seed": seed}, runners[sched])
        for sched in schedules
        if sched in runners
    ]


def _wordcount_trials(fault_plans: Sequence[str], seed: int) -> list[TrialSpec]:
    from repro.knn.wordcount import wordcount_spark
    from repro.spark.faults import SparkFaultPlan

    lines = [
        f"line {i} the quick brown fox jumps over the lazy dog number {i % 10}"
        for i in range(800)
    ]

    def make_plan(kind: str) -> Any:
        if kind == "none":
            return None
        return SparkFaultPlan.sample(
            seed, jobs=2, partitions=8, task_fail_prob=0.15, attempts=3
        )

    specs = []
    for kind in fault_plans:
        def runner(k: str = kind) -> Any:
            return wordcount_spark(lines, num_workers=4, fault_plan=make_plan(k))

        specs.append(_spec("wordcount", {"faults": kind, "seed": seed}, runner))
    return specs


def _heat_trials(seed: int) -> list[TrialSpec]:
    from repro.chapel import set_num_locales
    from repro.heat import sine_initial_condition, solve_coforall

    u0 = sine_initial_condition(20_000, mode=1 + seed % 3)
    specs = []
    for locales in (1, 2):
        def runner(n: int = locales) -> Any:
            u, _stats = solve_coforall(u0, 0.25, 20, set_num_locales(n))
            return u

        specs.append(_spec("heat_coforall", {"locales": locales, "seed": seed}, runner))
    return specs


def _knn_mapreduce_trials(seed: int) -> list[TrialSpec]:
    from repro.knn import make_blobs, run_knn_mapreduce

    db, labels = make_blobs(600, 8, 4, seed=seed)
    queries, _ = make_blobs(80, 8, 4, seed=seed + 1)

    def runner() -> Any:
        preds, shipped = run_knn_mapreduce(4, db, labels, queries, 5)
        return (preds, shipped)

    return [_spec("knn_mapreduce", {"ranks": 4, "seed": seed}, runner)]


def _serve_trials(fault_plans: Sequence[str], seed: int) -> list[TrialSpec]:
    from repro.serve import JobService, ServeFaultPlan, generate_traffic, run_soak

    jobs = generate_traffic(seed, tenants=3, jobs_per_tenant=4)

    def make_plan(kind: str) -> Any:
        if kind == "none":
            return None
        return ServeFaultPlan.sample(
            seed, submissions=len(jobs), workers=2,
            poison_prob=0.05, worker_loss_prob=0.03, stall_prob=0.05,
        )

    specs = []
    for kind in fault_plans:
        def runner(k: str = kind) -> Any:
            service = JobService(
                2, capacity=8, max_retries=1, fault_plan=make_plan(k),
                circuit_threshold=100,
            )
            try:
                result = run_soak(service, jobs, verify=False, timeout=120.0)
            finally:
                service.shutdown()
            # The digestable witness: terminal states + per-tenant shares.
            return (sorted(result.states.items()), sorted(result.completions.items()))

        specs.append(_spec("serve_soak", {"faults": kind, "seed": seed}, runner))
    return specs


def _align_trials(backends: Sequence[str], seed: int) -> list[TrialSpec]:
    from repro.align import align_executor, align_sequential, generate_pair

    a, b = generate_pair(seed, 96)

    def oracle() -> Any:
        result = align_sequential(a, b)
        return (result.matrix, tuple(result.path))

    specs = [_spec("align", {"model": "sequential", "seed": seed}, oracle)]
    for backend in backends:
        def runner(bk: str = backend) -> Any:
            result = align_executor(a, b, num_workers=4, backend=bk, tile=24)
            return (result.matrix, tuple(result.path))

        specs.append(
            _spec("align", {"model": "executor", "backend": backend, "seed": seed}, runner)
        )
    return specs


def build_matrix(
    *,
    suites: Sequence[str] = DEFAULT_SUITES,
    backends: Sequence[str] = ("serial", "thread"),
    fault_plans: Sequence[str] = ("none", "spark"),
    sanitizer_schedules: Sequence[str] = ("off", "observe"),
    seeds: Sequence[int] = (0,),
) -> list[TrialSpec]:
    """The campaign matrix: every suite crossed with its dimensions.

    Each dimension applies where it is meaningful — backends sweep the
    executor-backed k-means, fault plans sweep the Spark wordcount and
    the serve soak (``none`` vs a scheduler-level ``ServeFaultPlan``),
    sanitizer schedules sweep the OpenMP k-means rung, locales sweep the
    heat solver, and backends also sweep the executor wavefront against
    its sequential oracle (same digest across the model dimension = the
    bit-identity witness) — and every suite is swept over ``seeds``.
    """
    unknown = set(suites) - set(DEFAULT_SUITES)
    if unknown:
        raise ValueError(f"unknown suites {sorted(unknown)}; choose from {DEFAULT_SUITES}")
    specs: list[TrialSpec] = []
    for seed in seeds:
        if "kmeans" in suites:
            specs.extend(_kmeans_trials(backends, seed))
        if "kmeans_openmp" in suites:
            specs.extend(_kmeans_openmp_trials(sanitizer_schedules, seed))
        if "wordcount" in suites:
            specs.extend(_wordcount_trials(fault_plans, seed))
        if "heat" in suites:
            specs.extend(_heat_trials(seed))
        if "knn_mapreduce" in suites:
            specs.extend(_knn_mapreduce_trials(seed))
        if "serve" in suites:
            specs.extend(_serve_trials(fault_plans, seed))
        if "align" in suites:
            specs.extend(_align_trials(backends, seed))
    return specs


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

#: Default size bound on the live ``history.jsonl`` before it rotates
#: to numbered segments (see :func:`repro.trace.history.append_history`).
HISTORY_MAX_BYTES = 4 * 1024 * 1024


def run_campaign(
    specs: Iterable[TrialSpec],
    *,
    history_path: str | Path | None = None,
    history_max_bytes: int | None = HISTORY_MAX_BYTES,
    repeats: int = 2,
    clock: Callable[[], float] = time.perf_counter,
    now: Callable[[], str] | None = None,
    git_sha: str | None = None,
    injection: CampaignInjection | None = None,
    tracer: Tracer | None = None,
) -> CampaignResult:
    """Time every trial, fingerprint its result, emit canonical records.

    Each cell is timed min-of-``repeats`` (the least-noise estimator the
    overhead gates use), its last result is hashed via
    :func:`repro.trace.history.result_digest`, and a
    :class:`BenchRecord` is stamped with ``now()`` and ``git_sha``. A
    trial that raises is counted in ``errors`` and skipped — one broken
    workload must not kill the campaign. When ``history_path`` is given
    the records are appended to it. ``clock`` is injectable so tests can
    drive the pipeline with deterministic timings.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    specs = list(specs)
    injection = injection or CampaignInjection()
    stamp = now() if now is not None else datetime.now(timezone.utc).isoformat()
    sha = git_sha if git_sha is not None else default_git_sha()
    tracer = tracer if tracer is not None else Tracer()

    records: list[BenchRecord] = []
    errors: list[str] = []
    wall_start = time.perf_counter()
    with use_tracer(tracer):
        with tracer.span("campaign", category="trials", trials=len(specs)):
            for spec in specs:
                cell = (spec.workload, spec.config_label)
                tracer.metrics.counter("trials.trials").inc()
                try:
                    with tracer.span(
                        f"trial:{spec.workload}", category="trials", config=spec.config_label
                    ):
                        best = float("inf")
                        result: Any = None
                        for _ in range(repeats):
                            t0 = clock()
                            result = spec.runner()
                            best = min(best, clock() - t0)
                except Exception as exc:  # noqa: BLE001 — campaign must survive any trial
                    tracer.metrics.counter("trials.failures").inc()
                    tracer.instant(
                        "trials.trial_failed", category="trials",
                        workload=spec.workload, config=spec.config_label,
                        error=type(exc).__name__,
                    )
                    errors.append(f"{spec.workload}[{spec.config_label}]: {exc!r}")
                    continue
                digest = result_digest(result)
                if cell in injection.slowdowns:
                    best *= float(injection.slowdowns[cell])
                    tracer.metrics.counter("trials.injected_slowdowns").inc()
                if cell in injection.digest_breaks:
                    digest = f"{digest}:injected-break"
                    tracer.metrics.counter("trials.injected_digest_breaks").inc()
                tracer.metrics.histogram("trials.trial_seconds").observe(best)
                records.append(make_record(
                    spec.workload,
                    config=dict(spec.config),
                    timings={"total": best},
                    digest=digest,
                    timestamp=stamp,
                    git_sha=sha,
                    source="campaign",
                ))
    wall = time.perf_counter() - wall_start

    appended = 0
    if history_path is not None:
        appended = append_history(history_path, records, max_bytes=history_max_bytes)
    return CampaignResult(
        records=records,
        errors=errors,
        wall_seconds=wall,
        metrics=tracer.metrics.snapshot(),
        appended=appended,
    )
