"""Tests for atomics, reductions, and threadprivate storage."""

import numpy as np
import pytest

from repro.openmp import Atomic, ReductionVar, ThreadPrivate, parallel_reduce, parallel_region


class TestAtomic:
    def test_concurrent_adds_lose_nothing(self):
        cell = Atomic(0)
        parallel_region(8, lambda ctx: [cell.add(1) for _ in range(5000)] and None)
        assert cell.value == 40000

    def test_max_min(self):
        cell = Atomic(10)
        assert cell.max(3) == 10
        assert cell.max(42) == 42
        assert cell.min(40) == 40
        assert cell.min(50) == 40

    def test_compare_exchange(self):
        cell = Atomic("a")
        assert cell.compare_exchange("a", "b") is True
        assert cell.compare_exchange("a", "c") is False
        assert cell.value == "b"

    def test_update_arbitrary_function(self):
        cell = Atomic(2)
        assert cell.update(lambda x: x**3) == 8

    def test_store(self):
        cell = Atomic(1)
        cell.store(99)
        assert cell.value == 99

    def test_concurrent_max_finds_global_max(self):
        cell = Atomic(-1)
        values = list(range(1000))

        def body(ctx):
            lo, hi = ctx.static_bounds(len(values))
            for v in values[lo:hi]:
                cell.max(v)

        parallel_region(4, body)
        assert cell.value == 999


class TestParallelReduce:
    def test_sum_matches_serial(self):
        total = parallel_reduce(1000, 4, lambda lo, hi: sum(range(lo, hi)), lambda a, b: a + b)
        assert total == sum(range(1000))

    def test_identity_seeds_fold(self):
        total = parallel_reduce(
            10, 3, lambda lo, hi: hi - lo, lambda a, b: a + b, identity=100
        )
        assert total == 110

    def test_mutable_identity_not_shared_between_calls(self):
        ident = [0]
        op = lambda a, b: [a[0] + (b[0] if isinstance(b, list) else b)]
        first = parallel_reduce(5, 2, lambda lo, hi: [hi - lo], op, identity=ident)
        second = parallel_reduce(5, 2, lambda lo, hi: [hi - lo], op, identity=ident)
        assert first == second == [5]
        assert ident == [0]

    def test_array_reduction(self):
        def local(lo, hi):
            acc = np.zeros(3)
            for i in range(lo, hi):
                acc[i % 3] += i
            return acc

        total = parallel_reduce(99, 4, local, lambda a, b: a + b, identity=np.zeros(3))
        expect = np.zeros(3)
        for i in range(99):
            expect[i % 3] += i
        np.testing.assert_allclose(total, expect)


class TestReductionVar:
    def test_per_thread_accumulators_merge_in_order(self):
        red = ReductionVar(lambda: np.zeros(4), lambda a, b: a + b, num_threads=4)

        def body(ctx):
            local = red.local(ctx)
            lo, hi = ctx.static_bounds(100)
            for i in range(lo, hi):
                local[i % 4] += 1.0

        parallel_region(4, body)
        np.testing.assert_array_equal(red.result(), [25, 25, 25, 25])

    def test_scalar_accumulators_via_set_local(self):
        red = ReductionVar(lambda: 0, lambda a, b: a + b, num_threads=3)

        def body(ctx):
            lo, hi = ctx.static_bounds(30)
            red.set_local(ctx, sum(range(lo, hi)))

        parallel_region(3, body)
        assert red.result() == sum(range(30))

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ReductionVar(lambda: 0, lambda a, b: a + b, num_threads=0)


class TestThreadPrivate:
    def test_each_thread_gets_own_copy(self):
        tp = ThreadPrivate(lambda: {"count": 0})

        def body(ctx):
            for _ in range(100):
                tp.value["count"] += 1
            return tp.value["count"]

        assert parallel_region(4, body) == [100, 100, 100, 100]
        assert len(tp.instances()) >= 4

    def test_persists_across_loop_iterations(self):
        tp = ThreadPrivate(lambda: [])

        def body(ctx):
            for i in ctx.for_range(12):
                tp.value.append(i)
            return sorted(tp.value)

        results = parallel_region(3, body)
        assert [len(r) for r in results] == [4, 4, 4]

    def test_set_replaces_value(self):
        tp = ThreadPrivate(lambda: 0)

        def body(ctx):
            tp.set(ctx.thread_id * 10)
            return tp.value

        assert parallel_region(3, body) == [0, 10, 20]
