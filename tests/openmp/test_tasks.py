"""Tests for the OpenMP task model."""

import threading

import pytest

from repro.openmp.tasks import TaskGroup, task_parallel


class TestTaskGroup:
    def test_results_in_submission_order(self):
        with TaskGroup(3) as group:
            for i in range(10):
                group.submit(lambda i=i: i * 2)
            assert group.taskwait() == [i * 2 for i in range(10)]

    def test_group_reusable_after_taskwait(self):
        with TaskGroup(2) as group:
            group.submit(lambda: "a")
            assert group.taskwait() == ["a"]
            group.submit(lambda: "b")
            assert group.taskwait() == ["b"]

    def test_nested_submission_recursive_fibonacci(self):
        # Tasks submitting tasks: the canonical recursive pattern.
        with TaskGroup(4) as group:
            results = {}
            lock = threading.Lock()

            def fib(n):
                if n < 2:
                    return n
                return fib(n - 1) + fib(n - 2)

            def task_for(n):
                def run():
                    if n >= 2:
                        group.submit(task_for(n - 1))  # nested deferred work
                    value = fib(n)
                    with lock:
                        results[n] = value
                    return value
                return run

            group.submit(task_for(10))
            group.taskwait()
            assert results[10] == 55
            assert results[9] == 34  # the nested task also ran

    def test_tasks_run_concurrently(self):
        first = threading.Event()
        second = threading.Event()

        with TaskGroup(2) as group:
            def a():
                first.set()
                assert second.wait(timeout=10.0)

            def b():
                second.set()
                assert first.wait(timeout=10.0)

            group.submit(a)
            group.submit(b)
            group.taskwait()

    def test_error_surfaces_at_taskwait_and_clears(self):
        with TaskGroup(2) as group:
            group.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                group.taskwait()
            group.submit(lambda: 42)
            assert group.taskwait() == [42]

    def test_submit_after_shutdown_rejected(self):
        group = TaskGroup(1)
        group.submit(lambda: None)
        group.taskwait()
        group.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            group.submit(lambda: None)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            TaskGroup(0)


class TestTaskParallel:
    def test_producer_pattern(self):
        out = task_parallel(
            3, lambda submit: [submit(lambda i=i: i + 100) for i in range(6)] and None
        )
        assert out == [100, 101, 102, 103, 104, 105]

    def test_empty_producer(self):
        assert task_parallel(2, lambda submit: None) == []
