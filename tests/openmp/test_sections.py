"""Tests for the sections and ordered constructs."""

import threading

import pytest

from repro.openmp import OrderedRegion, parallel_region, parallel_sections


class TestParallelSections:
    def test_each_section_runs_once_results_in_order(self):
        calls = []
        lock = threading.Lock()

        def make(i):
            def section():
                with lock:
                    calls.append(i)
                return i * 10
            return section

        results = parallel_sections([make(i) for i in range(5)])
        assert results == [0, 10, 20, 30, 40]
        assert sorted(calls) == [0, 1, 2, 3, 4]

    def test_fewer_threads_than_sections(self):
        results = parallel_sections([lambda i=i: i for i in range(6)], num_threads=2)
        assert results == list(range(6))

    def test_sections_run_concurrently(self):
        # Two sections that each wait for the other via an event pair
        # complete only if they genuinely overlap.
        a_ready = threading.Event()
        b_ready = threading.Event()

        def section_a():
            a_ready.set()
            assert b_ready.wait(timeout=10.0)
            return "a"

        def section_b():
            b_ready.set()
            assert a_ready.wait(timeout=10.0)
            return "b"

        assert parallel_sections([section_a, section_b]) == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_sections([])

    def test_section_exception_propagates(self):
        def bad():
            raise RuntimeError("section failed")

        with pytest.raises(RuntimeError, match="section failed"):
            parallel_sections([lambda: 1, bad])


class TestOrderedRegion:
    def test_commits_execute_in_iteration_order(self):
        n = 40
        region = OrderedRegion(total=n)
        out = []

        def body(ctx):
            for i in ctx.for_range(n, schedule="dynamic"):
                value = i * i  # parallel compute
                region.commit(i, lambda v=value: out.append(v))

        parallel_region(4, body)
        assert out == [i * i for i in range(n)]
        assert region.committed == n

    def test_double_commit_detected(self):
        region = OrderedRegion(total=3)
        region.commit(0, lambda: None)
        with pytest.raises(RuntimeError, match="committed twice"):
            region.commit(0, lambda: None)

    def test_out_of_range_iteration(self):
        region = OrderedRegion(total=2)
        with pytest.raises(ValueError):
            region.commit(5, lambda: None)

    def test_commit_returns_action_result(self):
        region = OrderedRegion(total=1)
        assert region.commit(0, lambda: "value") == "value"

    def test_action_exception_still_advances(self):
        # If iteration i's action raises, iteration i+1 must not deadlock.
        region = OrderedRegion(total=2)
        with pytest.raises(RuntimeError):
            region.commit(0, lambda: (_ for _ in ()).throw(RuntimeError("bad")))
        assert region.commit(1, lambda: "ok") == "ok"

    def test_skipped_commit_times_out_instead_of_hanging(self):
        region = OrderedRegion(total=3)
        region.commit(0, lambda: None)
        # Iteration 1 never commits; iteration 2 must fail fast, not hang.
        with pytest.raises(TimeoutError, match="skipped"):
            region.commit(2, lambda: None, timeout=0.3)
