"""Tests for parallel regions and scheduling."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openmp import parallel_region
from repro.openmp.loops import chunked_for, parallel_for


class TestParallelRegion:
    def test_results_in_thread_order(self):
        assert parallel_region(4, lambda ctx: ctx.thread_id) == [0, 1, 2, 3]

    def test_num_threads_visible(self):
        assert parallel_region(3, lambda ctx: ctx.num_threads) == [3, 3, 3]

    def test_exception_propagates(self):
        def body(ctx):
            if ctx.thread_id == 1:
                raise ValueError("thread 1 failed")

        with pytest.raises(ValueError, match="thread 1 failed"):
            parallel_region(3, body)

    def test_exception_does_not_deadlock_barrier_waiters(self):
        # Thread 1 dies before the barrier; others blocked in barrier()
        # must be released (broken barrier), not hang.
        def body(ctx):
            if ctx.thread_id == 1:
                raise RuntimeError("early death")
            ctx.barrier()

        with pytest.raises(RuntimeError, match="early death"):
            parallel_region(3, body)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            parallel_region(0, lambda ctx: None)

    def test_args_passed(self):
        out = parallel_region(2, lambda ctx, a, b=0: a + b + ctx.thread_id, 10, b=5)
        assert out == [15, 16]


class TestBarrierAndMaster:
    def test_barrier_separates_phases(self):
        log = []
        lock = threading.Lock()

        def body(ctx):
            with lock:
                log.append(("pre", ctx.thread_id))
            ctx.barrier()
            with lock:
                log.append(("post", ctx.thread_id))

        parallel_region(4, body)
        phases = [p for p, _ in log]
        assert phases[:4] == ["pre"] * 4 and phases[4:] == ["post"] * 4

    def test_master_is_thread_zero(self):
        assert parallel_region(3, lambda ctx: ctx.master()) == [True, False, False]

    def test_single_claimed_once_per_occurrence(self):
        claims = []
        lock = threading.Lock()

        def body(ctx):
            ctx.barrier()
            for occurrence in range(3):
                if ctx.single():
                    with lock:
                        claims.append(occurrence)
                ctx.barrier()

        parallel_region(4, body)
        assert sorted(claims) == [0, 1, 2]


class TestCritical:
    def test_critical_protects_compound_update(self):
        counter = {"n": 0}

        def body(ctx):
            for _ in range(2000):
                with ctx.critical("count"):
                    counter["n"] += 1

        parallel_region(4, body)
        assert counter["n"] == 8000

    def test_named_criticals_are_independent(self):
        # A thread holding critical "a" must not block one entering "b".
        order = []
        lock = threading.Lock()

        def body(ctx):
            name = "a" if ctx.thread_id == 0 else "b"
            with ctx.critical(name):
                ctx.barrier()  # both inside simultaneously -> not same lock
                with lock:
                    order.append(name)

        parallel_region(2, body)
        assert sorted(order) == ["a", "b"]


class TestForRange:
    @pytest.mark.parametrize("schedule", ["static", "static-cyclic", "dynamic", "guided"])
    def test_every_index_visited_exactly_once(self, schedule):
        visited = []
        lock = threading.Lock()

        def body(ctx):
            mine = list(ctx.for_range(101, schedule=schedule, chunk=3))
            with lock:
                visited.extend(mine)

        parallel_region(4, body)
        assert sorted(visited) == list(range(101))

    def test_static_blocks_are_contiguous(self):
        blocks = parallel_region(3, lambda ctx: list(ctx.for_range(10)))
        assert blocks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_static_cyclic_layout(self):
        blocks = parallel_region(2, lambda ctx: list(ctx.for_range(8, "static-cyclic", chunk=2)))
        assert blocks == [[0, 1, 4, 5], [2, 3, 6, 7]]

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            parallel_region(1, lambda ctx: list(ctx.for_range(4, "bogus")))

    def test_two_sequential_dynamic_loops_do_not_crosstalk(self):
        def body(ctx):
            first = list(ctx.for_range(20, "dynamic"))
            ctx.barrier()
            second = list(ctx.for_range(20, "dynamic"))
            return (first, second)

        results = parallel_region(3, body)
        all_first = sorted(i for f, _ in results for i in f)
        all_second = sorted(i for _, s in results for i in s)
        assert all_first == list(range(20))
        assert all_second == list(range(20))

    @given(st.integers(0, 200), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_property_static_partition_complete(self, n, threads):
        blocks = parallel_region(threads, lambda ctx: list(ctx.for_range(n)))
        flat = sorted(i for b in blocks for i in b)
        assert flat == list(range(n))


class TestParallelFor:
    def test_applies_body_to_all_indices(self):
        out = [0] * 50
        parallel_for(50, 4, lambda i: out.__setitem__(i, i * i))
        assert out == [i * i for i in range(50)]

    def test_pass_ctx_enables_critical(self):
        total = {"v": 0}

        def body(ctx, i):
            with ctx.critical():
                total["v"] += i

        parallel_for(100, 4, body, pass_ctx=True)
        assert total["v"] == sum(range(100))

    def test_chunked_for_covers_range(self):
        import numpy as np

        out = np.zeros(97)
        chunked_for(97, 4, lambda lo, hi: out.__setitem__(slice(lo, hi), 1.0))
        assert out.sum() == 97
