"""Failure-injection tests: errors must surface loudly, never corrupt state.

Each test wounds one layer of the stack and checks the failure is
contained and reported — the behaviour students rely on when their own
code is the thing that is broken.
"""

import numpy as np
import pytest

from repro.mpi import DeadlockError, RankFailedError, run_spmd
from repro.openmp import parallel_region
from repro.spark import SparkContext


class TestSparkFailures:
    def test_task_exception_propagates_from_worker_thread(self):
        sc = SparkContext(num_workers=4)

        def poison(x):
            if x == 37:
                raise RuntimeError("poisoned record 37")
            return x

        rdd = sc.parallelize(range(100)).map(poison)
        with pytest.raises(RuntimeError, match="poisoned record 37"):
            rdd.collect()

    def test_failure_inside_shuffle_map_side(self):
        sc = SparkContext(num_workers=2)

        def bad_pair(x):
            if x == 5:
                raise ValueError("cannot key record 5")
            return (x % 2, x)

        rdd = sc.parallelize(range(10)).map(bad_pair).reduce_by_key(lambda a, b: a + b)
        with pytest.raises(ValueError, match="cannot key record 5"):
            rdd.collect()

    def test_failed_job_leaves_context_usable(self):
        sc = SparkContext(num_workers=2)
        with pytest.raises(ZeroDivisionError):
            sc.parallelize([1]).map(lambda x: 1 / 0).collect()
        # The next, healthy job must still run.
        assert sc.parallelize([1, 2, 3]).sum() == 6

    def test_cached_rdd_not_poisoned_by_failed_compute(self):
        sc = SparkContext(num_workers=2)
        attempts = {"n": 0}

        def flaky(x):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("first attempt dies")
            return x

        rdd = sc.parallelize([1], num_partitions=1).map(flaky).persist()
        with pytest.raises(RuntimeError):
            rdd.collect()
        # Retry succeeds and caches the good value, not the failure.
        assert rdd.collect() == [1]
        assert rdd.collect() == [1]


class TestMpiFailures:
    def test_collective_with_dead_partner_reports_original_error(self):
        def program(comm):
            if comm.rank == 0:
                raise KeyError("rank 0 corrupted its input")
            comm.allreduce(1)

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(3, program, timeout=20.0)
        assert 0 in excinfo.value.failures
        assert isinstance(excinfo.value.failures[0], KeyError)

    def test_mutual_recv_deadlock_is_diagnosed_not_hung(self):
        def program(comm):
            # Classic student bug: everyone receives before anyone sends.
            peer = (comm.rank + 1) % comm.size
            data = comm.recv(source=peer)
            comm.send(comm.rank, dest=peer)
            return data

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, timeout=0.4)
        assert any(isinstance(e, DeadlockError) for e in excinfo.value.failures.values())

    def test_unpicklable_payload_fails_at_send(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(lambda x: x, dest=1)  # lambdas cannot pickle
            else:
                comm.recv(source=0)

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, timeout=10.0)
        assert 0 in excinfo.value.failures

    def test_partial_collective_does_not_poison_next_run(self):
        def bad(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(RankFailedError):
            run_spmd(2, bad, timeout=10.0)
        # A fresh world is completely independent.
        assert run_spmd(2, lambda comm: comm.allreduce(1)) == [2, 2]


class TestOpenmpFailures:
    def test_worker_exception_released_barrier_waiters(self):
        def body(ctx):
            if ctx.thread_id == 2:
                raise ValueError("thread 2 exploded")
            ctx.barrier()
            return "unreachable for thread 2"

        with pytest.raises(ValueError, match="thread 2 exploded"):
            parallel_region(4, body)

    def test_exception_in_dynamic_loop(self):
        def body(ctx):
            for i in ctx.for_range(100, schedule="dynamic"):
                if i == 50:
                    raise RuntimeError("iteration 50 failed")

        with pytest.raises(RuntimeError, match="iteration 50 failed"):
            parallel_region(3, body)

    def test_critical_lock_released_after_exception(self):
        # A thread dying inside a critical section must not leave the
        # lock held for the next region using the same name.
        def dying(ctx):
            with ctx.critical("shared"):
                raise RuntimeError("died holding the lock")

        with pytest.raises(RuntimeError):
            parallel_region(1, dying)

        counter = {"n": 0}

        def healthy(ctx):
            with ctx.critical("shared"):
                counter["n"] += 1

        parallel_region(4, healthy)
        assert counter["n"] == 4


class TestNumericGuards:
    def test_kmeans_rejects_nan_free_but_weird_inputs_gracefully(self):
        from repro.kmeans import kmeans_sequential

        # Coincident points with several clusters: must terminate, not loop.
        result = kmeans_sequential(np.zeros((20, 3)), 4)
        assert result.iterations <= 100

    def test_heat_rejects_unstable_alpha_before_any_work(self):
        from repro.chapel import set_num_locales
        from repro.heat import solve_coforall

        locs = set_num_locales(2)
        with pytest.raises(ValueError, match="alpha"):
            solve_coforall(np.zeros(10), 0.75, 5, locs)
