"""Cross-model conformance: every parallel substrate agrees with its reference.

The paper's assignments all share one correctness story — the parallel
program must compute *the same answer* as the serial one. This suite
pins that story end to end at fixed seeds:

- k-means: sequential == openmp (every correct rung) == mpi == the
  executor-backed variant on every backend, centroid-for-centroid;
- traffic: serial and parallel simulations are bit-identical (the
  shared-LCG contract of paper §5);
- heat: the forall and coforall solvers match both the serial stencil
  (bitwise) and the analytic eigenmode solution (within tolerance);
- align: the wavefront family — sequential (both kernels), every
  guarded OpenMP rung, MPI block rows, and every executor backend
  produce bit-identical score matrices *and* traceback paths (integer
  scoring makes exact equality the contract, not a tolerance).
"""

import numpy as np
import pytest

from repro.align import (
    ScoringScheme,
    align_executor,
    align_openmp,
    align_sequential,
    generate_pair,
    run_align_mpi,
)
from repro.align.openmp_align import VARIANTS as ALIGN_VARIANTS
from repro.chapel import set_num_locales
from repro.core.executor import BACKENDS
from repro.heat.analytic import discrete_sine_solution, sine_initial_condition
from repro.heat.coforall_solver import solve_coforall
from repro.heat.forall_solver import solve_forall
from repro.heat.serial import solve_serial
from repro.kmeans import (
    TerminationCriteria,
    kmeans_openmp,
    kmeans_parallel,
    kmeans_sequential,
    run_kmeans_mpi,
)
from repro.kmeans.initialization import init_random_points
from repro.kmeans.openmp_kmeans import VARIANTS
from repro.traffic import TrafficParams, simulate_parallel, simulate_serial

SEEDS = (0, 7, 123)
KMEANS_SIZES = ((48, 2), (90, 3))
CRITERIA = TerminationCriteria(max_iterations=12)
#: Two sequence-length classes: short (fits one tile/thread block) and
#: long (many anti-diagonals per rank/thread, uneven partitions).
ALIGN_LENGTHS = (40, 96)


def make_points(seed: int, shape: tuple[int, int]) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=shape)


class TestKMeansConformance:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shape", KMEANS_SIZES)
    def test_all_models_agree_centroid_for_centroid(self, seed, shape):
        points = make_points(seed, shape)
        k = 3
        init = init_random_points(points, k, seed=seed)
        reference = kmeans_sequential(
            points, k, criteria=CRITERIA, initial_centroids=init
        )

        candidates = {
            f"openmp-{variant}": kmeans_openmp(
                points, k, num_threads=3, variant=variant,
                criteria=CRITERIA, initial_centroids=init,
            )
            for variant in VARIANTS
        }
        candidates["mpi"] = run_kmeans_mpi(
            3, points, k, criteria=CRITERIA, initial_centroids=init
        )
        for backend in BACKENDS:
            candidates[f"parallel-{backend}"] = kmeans_parallel(
                points, k, num_workers=3, backend=backend,
                criteria=CRITERIA, initial_centroids=init,
            )

        for name, result in candidates.items():
            np.testing.assert_array_equal(
                result.assignments, reference.assignments, err_msg=name
            )
            np.testing.assert_allclose(
                result.centroids, reference.centroids, atol=1e-9, err_msg=name
            )
            assert result.iterations == reference.iterations, name
            assert result.changes_history == reference.changes_history, name

    @pytest.mark.parametrize("seed", SEEDS)
    def test_executor_backends_bit_identical(self, seed):
        points = make_points(seed, (60, 2))
        init = init_random_points(points, 3, seed=seed)
        results = [
            kmeans_parallel(
                points, 3, num_workers=4, backend=backend,
                criteria=CRITERIA, initial_centroids=init,
            )
            for backend in BACKENDS
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(other.centroids, results[0].centroids)
            np.testing.assert_array_equal(other.assignments, results[0].assignments)


class TestAlignConformance:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("length", ALIGN_LENGTHS)
    def test_all_models_agree_bitwise(self, seed, length):
        a, b = generate_pair(seed, length)
        reference = align_sequential(a, b)

        candidates = {"sequential-python": align_sequential(a, b, kernel="python")}
        for variant in ALIGN_VARIANTS:
            candidates[f"openmp-{variant}"] = align_openmp(
                a, b, num_threads=3, variant=variant
            )
        candidates["mpi"] = run_align_mpi(3, a, b)
        for backend in BACKENDS:
            candidates[f"executor-{backend}"] = align_executor(
                a, b, backend=backend, num_workers=3, tile=16
            )

        for name, result in candidates.items():
            np.testing.assert_array_equal(result.matrix, reference.matrix, err_msg=name)
            assert result.path == reference.path, name
            assert result.score == reference.score, name
            assert result.aligned_a == reference.aligned_a, name
            assert result.aligned_b == reference.aligned_b, name
            assert result.best_score == reference.best_score, name
            assert result.best_cell == reference.best_cell, name
            assert result.match_events == reference.match_events, name

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "mode,band", [("local", None), ("global", 12), ("local", 10)]
    )
    def test_modes_and_bands_agree_bitwise(self, seed, mode, band):
        a, b = generate_pair(seed, 60)
        scheme = ScoringScheme(mode=mode)
        if band is not None and mode == "global":
            band = max(band, abs(len(a) - len(b)))
        reference = align_sequential(a, b, scheme=scheme, band=band)
        candidates = {
            "openmp-reduction": align_openmp(
                a, b, num_threads=3, scheme=scheme, band=band
            ),
            "mpi": run_align_mpi(3, a, b, scheme=scheme, band=band),
            "executor-thread": align_executor(
                a, b, backend="thread", num_workers=3, tile=16, scheme=scheme, band=band
            ),
        }
        for name, result in candidates.items():
            np.testing.assert_array_equal(result.matrix, reference.matrix, err_msg=name)
            assert result.path == reference.path, name
            assert result.score == reference.score, name


class TestTrafficConformance:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("road_length,num_cars", [(120, 30), (250, 80)])
    def test_serial_and_parallel_bit_identical(self, seed, road_length, num_cars):
        params = TrafficParams(road_length=road_length, num_cars=num_cars, seed=seed)
        serial, _ = simulate_serial(params, 40)
        for num_threads in (1, 3, 4):
            parallel, _ = simulate_parallel(params, 40, num_threads)
            np.testing.assert_array_equal(parallel.positions, serial.positions)
            np.testing.assert_array_equal(parallel.velocities, serial.velocities)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_trajectories_bit_identical(self, seed):
        params = TrafficParams(road_length=100, num_cars=25, seed=seed)
        _, serial_traj = simulate_serial(params, 15, record=True)
        _, parallel_traj = simulate_parallel(params, 15, 3, record=True)
        assert len(serial_traj) == len(parallel_traj)
        for s, p in zip(serial_traj, parallel_traj):
            np.testing.assert_array_equal(p.positions, s.positions)


class TestHeatConformance:
    @pytest.fixture(autouse=True)
    def reset_locales(self):
        set_num_locales(1)
        yield
        set_num_locales(1)

    @pytest.mark.parametrize("n,num_steps", [(48, 30), (96, 60)])
    @pytest.mark.parametrize("num_locales", [2, 3])
    def test_solvers_match_analytic_solution(self, n, num_steps, num_locales):
        alpha = 0.25
        u0 = sine_initial_condition(n)
        exact = discrete_sine_solution(n, alpha, num_steps)
        locs = set_num_locales(num_locales)
        forall, _ = solve_forall(u0, alpha, num_steps, locs)
        coforall, _ = solve_coforall(u0, alpha, num_steps, locs)
        np.testing.assert_allclose(forall, exact, atol=1e-12)
        np.testing.assert_allclose(coforall, exact, atol=1e-12)

    @pytest.mark.parametrize("n,num_steps", [(48, 30), (96, 60)])
    def test_solvers_match_serial_bitwise(self, n, num_steps):
        alpha = 0.2
        u0 = sine_initial_condition(n)
        serial, _ = solve_serial(u0, alpha, num_steps)
        locs = set_num_locales(3)
        forall, _ = solve_forall(u0, alpha, num_steps, locs)
        coforall, _ = solve_coforall(u0, alpha, num_steps, locs)
        np.testing.assert_array_equal(forall, serial)
        np.testing.assert_array_equal(coforall, serial)
