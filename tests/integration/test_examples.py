"""Smoke tests: every shipped example must run cleanly end to end.

Each example self-verifies (asserts on its own results), so a clean
exit is a meaningful check, not just an import test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_all_examples_are_covered(self):
        # If an example is added, it gets smoke-tested automatically.
        assert len(ALL_EXAMPLES) >= 8

    @pytest.mark.parametrize("script", ALL_EXAMPLES)
    def test_example_runs_clean(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, (
            f"{script} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
            f"\n--- stderr ---\n{result.stderr[-2000:]}"
        )
        assert result.stdout.strip(), f"{script} produced no output"
