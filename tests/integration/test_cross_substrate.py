"""Integration tests spanning substrate boundaries.

Each test exercises a full assignment-sized stack: application code on
top of one or more substrates, verifying end-to-end behaviour rather
than single modules.
"""

import numpy as np
import pytest

from repro.knn import KNNClassifier, make_blobs, run_knn_mapreduce, train_test_split
from repro.kmeans import kmeans_sequential, run_kmeans_mpi
from repro.kmeans.initialization import init_random_points
from repro.mpi import SUM, run_spmd
from repro.spark import SparkContext
from repro.traffic import TrafficParams, simulate_parallel, simulate_serial


class TestKnnOverMapReduceOverMpi:
    """kNN → MapReduce engine → SPMD runtime, end to end."""

    def test_full_stack_classification_quality(self):
        pts, labels = make_blobs(400, 8, 3, seed=0)
        tr_x, tr_y, te_x, te_y = train_test_split(pts, labels, seed=0)
        preds, _ = run_knn_mapreduce(4, tr_x, tr_y, te_x, k=5)
        accuracy = float(np.mean(preds == te_y))
        serial_acc = KNNClassifier(k=5).fit(tr_x, tr_y).score(te_x, te_y)
        assert accuracy == pytest.approx(serial_acc)
        assert accuracy > 0.9

    def test_rank_count_invariance_of_full_stack(self):
        pts, labels = make_blobs(200, 4, 3, seed=1)
        queries, _ = make_blobs(30, 4, 3, seed=2)
        results = [
            run_knn_mapreduce(r, pts, labels, queries, k=3)[0] for r in (1, 2, 5)
        ]
        for got in results[1:]:
            np.testing.assert_array_equal(got, results[0])


class TestKmeansAcrossModels:
    """The same clustering answered identically by every programming model."""

    def test_all_four_models_agree(self):
        from repro.kmeans import kmeans_device, kmeans_openmp

        points, _ = make_blobs(500, 3, 4, seed=3, separation=6.0)
        init = init_random_points(points, 4, seed=11)
        seq = kmeans_sequential(points, 4, initial_centroids=init)
        omp = kmeans_openmp(points, 4, num_threads=3, initial_centroids=init)
        mpi = run_kmeans_mpi(3, points, 4, initial_centroids=init)
        dev = kmeans_device(points, 4, block_size=128, initial_centroids=init)
        for other in (omp, mpi, dev):
            np.testing.assert_array_equal(other.assignments, seq.assignments)
            assert other.iterations == seq.iterations


class TestTrafficOverRngOverOpenmp:
    """Traffic → shared RNG sequence → thread team, the §5 stack."""

    def test_figure3_configuration_reproducible_across_threads(self):
        params = TrafficParams()  # the paper's exact parameters
        serial, _ = simulate_serial(params, 60)
        for threads in (2, 5):
            parallel, _ = simulate_parallel(params, 60, num_threads=threads)
            np.testing.assert_array_equal(parallel.positions, serial.positions)
            np.testing.assert_array_equal(parallel.velocities, serial.velocities)


class TestSparkOverThreads:
    """A realistic multi-stage pipeline through the RDD engine."""

    def test_multi_join_aggregation(self):
        sc = SparkContext(num_workers=4)
        orders = sc.parallelize(
            [(f"cust{i % 5}", 10.0 * (i % 7 + 1)) for i in range(100)], 4
        )
        segments = sc.parallelize(
            [(f"cust{i}", "gold" if i < 2 else "basic") for i in range(5)]
        )
        revenue_by_segment = (
            orders.join(segments)
            .map(lambda kv: (kv[1][1], kv[1][0]))
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        total = sum(v for _, v in orders.collect())
        assert revenue_by_segment["gold"] + revenue_by_segment["basic"] == pytest.approx(total)


class TestMpiComposition:
    """Sub-communicators running independent collectives concurrently."""

    def test_split_teams_run_independent_reductions(self):
        def program(comm):
            team = comm.split(color=comm.rank % 2, key=comm.rank)
            team_sum = team.allreduce(comm.rank, SUM)
            world_sum = comm.allreduce(comm.rank, SUM)
            return (team_sum, world_sum)

        results = run_spmd(6, program)
        evens = 0 + 2 + 4
        odds = 1 + 3 + 5
        assert results[0] == (evens, 15)
        assert results[1] == (odds, 15)
