"""Cross-substrate property-based tests.

Randomized inputs through full stacks, checking the invariants each
assignment's correctness argument rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn import knn_predict_heap, knn_predict_vectorized
from repro.kmeans import kmeans_openmp, kmeans_sequential
from repro.kmeans.initialization import init_random_points
from repro.mapreduce import MapReduce
from repro.mpi import SUM, run_spmd
from repro.spark import SparkContext
from repro.traffic import TrafficParams, simulate_parallel, simulate_serial


class TestMpiProperties:
    @given(
        st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=5),
        st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_scan_prefixes_match_python(self, values, extra):
        size = len(values)

        def program(comm):
            return comm.scan(values[comm.rank], SUM)

        results = run_spmd(size, program)
        expect = np.cumsum(values).tolist()
        assert results == expect

    @given(st.lists(st.text(max_size=8), min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_alltoall_is_transpose(self, tokens):
        size = len(tokens)

        def program(comm):
            out = [f"{tokens[comm.rank]}->{dest}" for dest in range(size)]
            return comm.alltoall(out)

        results = run_spmd(size, program)
        for dest in range(size):
            assert results[dest] == [f"{tokens[src]}->{dest}" for src in range(size)]

    @given(st.integers(2, 6), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_split_partitions_ranks_exactly(self, size, salt):
        def program(comm):
            color = (comm.rank + salt) % 2
            sub = comm.split(color=color, key=comm.rank)
            return (color, sub.size, sub.rank)

        results = run_spmd(size, program)
        by_color = {}
        for color, sub_size, sub_rank in results:
            by_color.setdefault(color, []).append((sub_size, sub_rank))
        for color, members in by_color.items():
            sizes = {s for s, _ in members}
            assert sizes == {len(members)}
            assert sorted(r for _, r in members) == list(range(len(members)))


class TestMapReduceProperties:
    @given(st.lists(st.text(alphabet="abc ", min_size=1, max_size=20), max_size=15),
           st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_wordcount_matches_counter(self, lines, ranks):
        from collections import Counter

        expect = Counter(w for line in lines for w in line.split())

        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(lines, lambda line, kv: [kv.add(w, 1) for w in line.split()])
            mr.collate()
            mr.reduce(lambda w, ones, kv: kv.add(w, sum(ones)))
            return dict(mr.gather_all())

        assert run_spmd(ranks, program)[0] == dict(expect)


class TestSparkProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 9), st.integers(-1000, 1000)), max_size=60),
        st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_reduce_by_key_matches_dict_fold(self, pairs, nparts):
        expect: dict[int, int] = {}
        for k, v in pairs:
            expect[k] = expect.get(k, 0) + v
        sc = SparkContext(num_workers=2)
        got = (
            sc.parallelize(pairs, num_partitions=nparts)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert got == expect

    @given(st.lists(st.integers(-50, 50), max_size=40), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_distinct_matches_set(self, data, nparts):
        sc = SparkContext(num_workers=2)
        got = sc.parallelize(data, num_partitions=nparts).distinct().collect()
        assert sorted(got) == sorted(set(data))
        assert len(got) == len(set(data))


class TestKnnProperties:
    @given(st.integers(0, 10_000), st.integers(1, 7))
    @settings(max_examples=10, deadline=None)
    def test_heap_and_vectorized_engines_agree(self, seed, k):
        rng = np.random.default_rng(seed)
        db = rng.normal(size=(60, 3))
        labels = rng.integers(0, 3, size=60)
        queries = rng.normal(size=(10, 3))
        a = knn_predict_heap(db, labels, queries, k)
        b = knn_predict_vectorized(db, labels, queries, k)
        np.testing.assert_array_equal(a, b)


class TestKmeansProperties:
    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_openmp_matches_sequential_on_random_clouds(self, seed, k, threads):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(120, 2)) * 3.0
        init = init_random_points(points, k, seed=seed)
        seq = kmeans_sequential(points, k, initial_centroids=init)
        omp = kmeans_openmp(
            points, k, num_threads=threads, variant="reduction", initial_centroids=init
        )
        np.testing.assert_array_equal(seq.assignments, omp.assignments)
        assert seq.iterations == omp.iterations


class TestTrafficProperties:
    @given(st.integers(0, 10_000), st.integers(1, 5))
    @settings(max_examples=8, deadline=None)
    def test_parallel_serial_equality_random_configs(self, seed, threads):
        rng = np.random.default_rng(seed)
        length = int(rng.integers(20, 80))
        cars = int(rng.integers(1, length // 2 + 1))
        params = TrafficParams(
            road_length=length,
            num_cars=cars,
            p_slow=float(rng.uniform(0, 1)),
            v_max=int(rng.integers(1, 6)),
            seed=seed,
        )
        serial, _ = simulate_serial(params, 25)
        parallel, _ = simulate_parallel(params, 25, num_threads=threads)
        np.testing.assert_array_equal(parallel.positions, serial.positions)
        np.testing.assert_array_equal(parallel.velocities, serial.velocities)


class TestDataFrameProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(-100, 100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_group_agg_matches_manual_fold(self, pairs):
        from repro.spark.dataframe import DataFrame

        sc = SparkContext(num_workers=2)
        rows = [{"k": k, "v": v} for k, v in pairs]
        df = DataFrame.from_rows(sc, rows, columns=["k", "v"])
        got = {
            r["k"]: (r["total"], r["n"])
            for r in df.group_by("k").agg({"total": ("v", "sum"), "n": ("v", "count")}).collect()
        }
        expect: dict = {}
        for k, v in pairs:
            t, n = expect.get(k, (0, 0))
            expect[k] = (t + v, n + 1)
        assert got == expect

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    @settings(max_examples=20, deadline=None)
    def test_order_by_matches_sorted(self, values):
        from repro.spark.dataframe import DataFrame

        sc = SparkContext(num_workers=2)
        df = DataFrame.from_rows(sc, [{"v": v} for v in values], columns=["v"])
        got = [r["v"] for r in df.order_by("v").collect()]
        assert got == sorted(values)

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 50)), max_size=25),
        st.lists(st.tuples(st.integers(0, 5), st.text(max_size=4)), max_size=25),
    )
    @settings(max_examples=15, deadline=None)
    def test_inner_join_matches_nested_loop(self, left, right):
        from repro.spark.dataframe import DataFrame

        sc = SparkContext(num_workers=2)
        ldf = DataFrame.from_rows(sc, [{"k": k, "lv": v} for k, v in left], columns=["k", "lv"])
        rdf = DataFrame.from_rows(sc, [{"k": k, "rv": v} for k, v in right], columns=["k", "rv"])
        got = sorted(
            (r["k"], r["lv"], r["rv"]) for r in ldf.join(rdf, on="k").collect()
        )
        expect = sorted(
            (lk, lv, rv) for lk, lv in left for rk, rv in right if lk == rk
        )
        assert got == expect
