"""Medium-scale smoke tests: the stacks at sizes past the unit-test range.

Each stays under a few seconds but uses inputs an order of magnitude
beyond the unit tests, catching quadratic blowups, recursion limits,
and queue-contention pathologies that toy sizes never would.
"""

import numpy as np
import pytest

from repro.knn import KDTree, knn_predict_vectorized, make_blobs
from repro.kmeans import kmeans_sequential
from repro.mpi import SUM, run_spmd
from repro.spark import SparkContext
from repro.traffic import TrafficParams, simulate_parallel, simulate_serial


class TestScaleSmoke:
    def test_knn_paper_sized_instance(self):
        # The paper's timing instance at full size (n=q=5000, d=40).
        db, labels = make_blobs(5000, 40, 5, seed=0)
        queries, _ = make_blobs(5000, 40, 5, seed=1)
        preds = knn_predict_vectorized(db, labels, queries, 8)
        assert preds.shape == (5000,)
        assert set(np.unique(preds)) <= set(range(5))

    def test_kdtree_scales_to_fifty_thousand_points(self):
        db, labels = make_blobs(50_000, 3, 4, seed=2)
        tree = KDTree.build(db, labels)
        nearest = tree.query(db[123], 5)
        assert nearest[0][0] == 0.0  # the point itself
        # Pruning must keep the visit count sublinear.
        assert tree.last_nodes_visited < 2_000

    def test_kmeans_hundred_thousand_points(self):
        points, _ = make_blobs(100_000, 4, 8, seed=3)
        result = kmeans_sequential(points, 8, seed=3)
        assert result.iterations >= 1
        assert result.assignments.shape == (100_000,)

    def test_traffic_full_figure3_length(self):
        # The paper's configuration, full 1000-step horizon, with the
        # reproducibility contract intact.
        params = TrafficParams()
        serial, _ = simulate_serial(params, 1000)
        parallel, _ = simulate_parallel(params, 1000, num_threads=4)
        np.testing.assert_array_equal(parallel.positions, serial.positions)

    def test_spark_wide_job(self):
        sc = SparkContext(num_workers=4)
        counts = (
            sc.parallelize(range(200_000), 16)
            .map(lambda x: (x % 1000, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert len(counts) == 1000
        assert all(v == 200 for v in counts.values())

    def test_mpi_sixteen_ranks_collectives(self):
        def program(comm):
            total = comm.allreduce(comm.rank, SUM)
            gathered = comm.allgather(comm.rank)
            comm.barrier()
            return (total, len(gathered))

        results = run_spmd(16, program)
        assert all(r == (120, 16) for r in results)

    def test_mpi_many_small_messages(self):
        def program(comm):
            peer = comm.rank ^ 1
            for i in range(500):
                if comm.rank % 2 == 0:
                    comm.send(i, dest=peer, tag=i % 7)
                    assert comm.recv(source=peer, tag=i % 7) == i
                else:
                    assert comm.recv(source=peer, tag=i % 7) == i
                    comm.send(i, dest=peer, tag=i % 7)
            return True

        assert all(run_spmd(4, program))
