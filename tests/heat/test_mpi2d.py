"""Tests for the 2-D MPI heat solver over the Cartesian topology."""

import numpy as np
import pytest

from repro.heat.mpi2d import run_mpi_2d, solve_serial_2d


def plate(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    u = rng.uniform(-1, 1, (rows, cols))
    return u


class TestSerial2D:
    def test_boundaries_fixed(self):
        u0 = plate(10, 12)
        got = solve_serial_2d(u0, 0.2, 50)
        np.testing.assert_array_equal(got[0, :], u0[0, :])
        np.testing.assert_array_equal(got[-1, :], u0[-1, :])
        np.testing.assert_array_equal(got[:, 0], u0[:, 0])
        np.testing.assert_array_equal(got[:, -1], u0[:, -1])

    def test_max_principle(self):
        u0 = plate(16, 16, seed=1)
        got = solve_serial_2d(u0, 0.25, 200)
        assert got.max() <= u0.max() + 1e-12
        assert got.min() >= u0.min() - 1e-12

    def test_separable_eigenmode_decay(self):
        # sin(pi x) sin(pi y) decays by a known per-step factor.
        n = 33
        x = np.linspace(0, 1, n)
        u0 = np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
        u0[0, :] = u0[-1, :] = u0[:, 0] = u0[:, -1] = 0.0
        alpha = 0.2
        lam = 1.0 - 8.0 * alpha * np.sin(np.pi / (2 * (n - 1))) ** 2
        got = solve_serial_2d(u0, alpha, 40)
        np.testing.assert_allclose(got, lam**40 * u0, atol=1e-10)

    def test_unstable_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            solve_serial_2d(plate(5, 5), 0.3, 1)

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            solve_serial_2d(np.zeros((2, 5)), 0.2, 1)


class TestMpi2D:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 6])
    def test_bitwise_equal_to_serial(self, ranks):
        u0 = plate(19, 23, seed=2)
        serial = solve_serial_2d(u0, 0.2, 30)
        dist = run_mpi_2d(ranks, u0, 0.2, 30)
        np.testing.assert_array_equal(dist, serial)

    def test_nonsquare_grids(self):
        u0 = plate(8, 40, seed=3)
        serial = solve_serial_2d(u0, 0.25, 20)
        dist = run_mpi_2d(4, u0, 0.25, 20)
        np.testing.assert_array_equal(dist, serial)

    def test_prime_rank_count(self):
        # dims_create(5, 2) = [5, 1]: a degenerate strip decomposition.
        u0 = plate(15, 15, seed=4)
        serial = solve_serial_2d(u0, 0.2, 15)
        dist = run_mpi_2d(5, u0, 0.2, 15)
        np.testing.assert_array_equal(dist, serial)

    def test_zero_steps(self):
        u0 = plate(6, 6)
        np.testing.assert_array_equal(run_mpi_2d(2, u0, 0.2, 0), u0)
