"""Tests for the heat solvers: serial reference, forall, coforall."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chapel import set_num_locales
from repro.heat import (
    discrete_sine_solution,
    sine_initial_condition,
    solve_coforall,
    solve_forall,
    solve_serial,
    steady_state,
)
from repro.heat.analytic import decay_factor


@pytest.fixture(autouse=True)
def reset_locales():
    set_num_locales(1)
    yield
    set_num_locales(1)


class TestSerial:
    def test_matches_discrete_eigenmode_decay(self):
        n, alpha, steps = 64, 0.25, 50
        u0 = sine_initial_condition(n)
        got, _ = solve_serial(u0, alpha, steps)
        np.testing.assert_allclose(got, discrete_sine_solution(n, alpha, steps), atol=1e-12)

    def test_higher_modes_decay_faster(self):
        n, alpha = 64, 0.25
        assert decay_factor(n, alpha, mode=4) < decay_factor(n, alpha, mode=1)

    def test_converges_to_linear_steady_state(self):
        n = 32
        u0 = np.zeros(n)
        u0[0], u0[-1] = 1.0, 3.0
        got, _ = solve_serial(u0, 0.5, 5000)
        np.testing.assert_allclose(got, steady_state(n, 1.0, 3.0), atol=1e-8)

    def test_boundaries_fixed(self):
        u0 = np.array([5.0, 0.0, 0.0, 0.0, -2.0])
        got, _ = solve_serial(u0, 0.3, 100)
        assert got[0] == 5.0 and got[-1] == -2.0

    def test_max_principle(self):
        # Values never exceed the initial/boundary extrema.
        rng = np.random.default_rng(0)
        u0 = rng.uniform(-1, 1, 50)
        got, _ = solve_serial(u0, 0.5, 200)
        assert got.max() <= u0.max() + 1e-12
        assert got.min() >= u0.min() - 1e-12

    def test_zero_steps_identity(self):
        u0 = np.array([1.0, 2.0, 3.0])
        got, _ = solve_serial(u0, 0.25, 0)
        np.testing.assert_array_equal(got, u0)

    def test_input_not_mutated(self):
        u0 = sine_initial_condition(10)
        before = u0.copy()
        solve_serial(u0, 0.25, 10)
        np.testing.assert_array_equal(u0, before)

    def test_unstable_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            solve_serial(np.zeros(10), 0.6, 1)
        with pytest.raises(ValueError, match="alpha"):
            solve_serial(np.zeros(10), 0.0, 1)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            solve_serial(np.zeros(2), 0.25, 1)

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_property_energy_decays(self, seed):
        rng = np.random.default_rng(seed)
        u0 = rng.uniform(-1, 1, 40)
        u0[0] = u0[-1] = 0.0
        half, _ = solve_serial(u0, 0.4, 25)
        full, _ = solve_serial(u0, 0.4, 50)
        assert np.abs(full).sum() <= np.abs(half).sum() + 1e-9


class TestForall:
    @pytest.mark.parametrize("num_locales", [1, 2, 3, 4])
    def test_bitwise_equal_to_serial(self, num_locales):
        locs = set_num_locales(num_locales)
        u0 = sine_initial_condition(64)
        serial, _ = solve_serial(u0, 0.25, 40)
        dist, _ = solve_forall(u0, 0.25, 40, locs)
        np.testing.assert_array_equal(dist, serial)

    def test_elementwise_mode_equal_too(self):
        locs = set_num_locales(3)
        u0 = sine_initial_condition(30)
        serial, _ = solve_serial(u0, 0.25, 10)
        dist, _ = solve_forall(u0, 0.25, 10, locs, elementwise=True)
        np.testing.assert_allclose(dist, serial, atol=1e-15)

    def test_task_spawns_grow_with_steps(self):
        locs = set_num_locales(2)
        u0 = sine_initial_condition(32)
        _, stats10 = solve_forall(u0, 0.25, 10, locs)
        _, stats20 = solve_forall(u0, 0.25, 20, locs)
        assert stats10.task_spawns == 20
        assert stats20.task_spawns == 40

    def test_remote_gets_scale_with_boundaries(self):
        locs = set_num_locales(4)
        u0 = sine_initial_condition(64)
        _, stats = solve_forall(u0, 0.25, 10, locs)
        # Each of the 3 interior block boundaries costs 2 remote reads per step.
        assert stats.remote_gets == 10 * 2 * 3

    def test_single_locale_no_comm(self):
        locs = set_num_locales(1)
        u0 = sine_initial_condition(32)
        _, stats = solve_forall(u0, 0.25, 10, locs)
        assert stats.remote_gets == 0 and stats.remote_puts == 0


class TestCoforall:
    @pytest.mark.parametrize("num_locales", [1, 2, 3, 4, 7])
    def test_bitwise_equal_to_serial(self, num_locales):
        locs = set_num_locales(num_locales)
        u0 = sine_initial_condition(65)
        serial, _ = solve_serial(u0, 0.25, 40)
        dist, _ = solve_coforall(u0, 0.25, 40, locs)
        np.testing.assert_array_equal(dist, serial)

    def test_spawns_tasks_once(self):
        locs = set_num_locales(4)
        u0 = sine_initial_condition(64)
        _, stats = solve_coforall(u0, 0.25, 50, locs)
        assert stats.task_spawns == 4  # independent of step count
        assert stats.barrier_waits == 100

    def test_halo_puts_counted(self):
        locs = set_num_locales(3)
        u0 = sine_initial_condition(60)
        _, stats = solve_coforall(u0, 0.25, 10, locs)
        # tasks 0 and 2 publish one edge, task 1 publishes two: 4 puts/step.
        assert stats.remote_puts == 40

    def test_zero_steps(self):
        locs = set_num_locales(2)
        u0 = sine_initial_condition(16)
        got, _ = solve_coforall(u0, 0.25, 0, locs)
        np.testing.assert_array_equal(got, u0)

    def test_blocks_of_size_one(self):
        locs = set_num_locales(5)
        u0 = sine_initial_condition(5)
        serial, _ = solve_serial(u0, 0.25, 20)
        dist, _ = solve_coforall(u0, 0.25, 20, locs)
        np.testing.assert_array_equal(dist, serial)

    def test_nonzero_boundaries_preserved(self):
        locs = set_num_locales(3)
        u0 = np.zeros(30)
        u0[0], u0[-1] = 2.0, -1.0
        got, _ = solve_coforall(u0, 0.5, 4000, locs)
        serial, _ = solve_serial(u0, 0.5, 4000)
        assert got[0] == 2.0 and got[-1] == -1.0
        np.testing.assert_array_equal(got, serial)
        np.testing.assert_allclose(got, steady_state(30, 2.0, -1.0), atol=1e-6)
