"""Tests for the grid-convergence verification study."""

import numpy as np
import pytest

from repro.heat.convergence import (
    continuous_sine_solution,
    convergence_study,
    observed_order,
)


class TestContinuousSolution:
    def test_boundary_zero_and_decay(self):
        u = continuous_sine_solution(50, 0.25, 100)
        assert u[0] == pytest.approx(0.0, abs=1e-12)
        assert u[-1] == pytest.approx(0.0, abs=1e-12)
        assert np.abs(u).max() < 1.0  # decayed below the initial amplitude

    def test_zero_steps_is_initial_condition(self):
        u = continuous_sine_solution(30, 0.25, 0)
        x = np.linspace(0, 1, 30)
        np.testing.assert_allclose(u, np.sin(np.pi * x), atol=1e-12)


class TestConvergence:
    def test_error_shrinks_with_refinement(self):
        study = convergence_study([17, 33, 65, 129], alpha=0.25)
        errors = [err for _, err in study]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_observed_order_near_two(self):
        study = convergence_study([17, 33, 65, 129, 257], alpha=0.25)
        order = observed_order(study)
        assert 1.7 < order < 2.3

    def test_higher_mode_converges_too(self):
        study = convergence_study([33, 65, 129], alpha=0.25, mode=2)
        errors = [err for _, err in study]
        assert errors[-1] < errors[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            convergence_study([])
        with pytest.raises(ValueError):
            convergence_study([2])
        with pytest.raises(ValueError):
            observed_order([(17, 0.1)])
