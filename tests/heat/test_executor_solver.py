"""The executor-pool heat solver: bit-identity to serial on every backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import BACKENDS, ProcessExecutor
from repro.heat import solve_executor, solve_serial
from repro.heat.analytic import sine_initial_condition


def _u0(n: int = 65) -> np.ndarray:
    return 1.5 * sine_initial_condition(n, mode=2)


class TestBitIdentity:
    @pytest.mark.parametrize("backend", list(BACKENDS))
    @pytest.mark.parametrize("num_steps", [0, 1, 7, 24])
    def test_matches_serial_exactly(self, backend, num_steps):
        expected, _ = solve_serial(_u0(), 0.25, num_steps)
        got, stats = solve_executor(_u0(), 0.25, num_steps, backend=backend, num_workers=3)
        np.testing.assert_array_equal(got, expected)
        assert stats.task_spawns == num_steps * stats.extra["blocks"]

    def test_uneven_blocks_and_tiny_grids(self):
        for n in (3, 4, 5, 11):
            expected, _ = solve_serial(_u0(n), 0.5, 5)
            got, _ = solve_executor(_u0(n), 0.5, 5, backend="serial", num_workers=4)
            np.testing.assert_array_equal(got, expected)

    def test_boundaries_held_fixed(self):
        u0 = _u0()
        u0[0], u0[-1] = 3.0, -2.0
        got, _ = solve_executor(u0, 0.25, 9, backend="thread")
        assert got[0] == 3.0 and got[-1] == -2.0

    def test_input_not_mutated(self):
        u0 = _u0()
        keep = u0.copy()
        solve_executor(u0, 0.25, 4, backend="serial")
        np.testing.assert_array_equal(u0, keep)


class TestExecutorReuse:
    def test_warm_pool_across_solves(self):
        expected, _ = solve_serial(_u0(), 0.25, 6)
        with ProcessExecutor(2) as executor:
            for _ in range(3):
                got, stats = solve_executor(_u0(), 0.25, 6, backend=executor)
                np.testing.assert_array_equal(got, expected)
                assert stats.extra["backend"] == "process"
            # The shared executor survives the solves (caller-owned).
            assert executor.map(lambda i, x: x + 1, [1, 2]) == [2, 3]


class TestValidation:
    def test_rejects_unstable_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            solve_executor(_u0(), 0.75, 1)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError, match="1-D"):
            solve_executor(np.zeros((4, 4)), 0.25, 1)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            solve_executor(_u0(), 0.25, 1, backend="gpu")
