"""Fast tier-1 overhead gate for the idle serve machinery.

The authoritative <5% budget for the single-job path lives in
``benchmarks/test_serve_throughput.py`` (min-of-interleaved-runs on a
benchmark-sized workload). This gate is its tier-1 tripwire: a tiny
workload, few repeats, and a deliberately loose threshold, so it only
fires on a *gross* regression (a hot lock on the submit path, the
watchdog polling the records table unprompted, per-job allocations
ballooning) rather than on scheduler noise — while staying fast enough
for every sweep.
"""

import threading
from operator import add

from repro.serve import JobService
from repro.serve.scheduler import JobContext
from repro.util.timing import time_call

REPEATS = 3
# Gross-regression tripwire only; the tight 1.05x budget is benchmarks'.
THRESHOLD = 2.0

LINES = [f"alpha beta gamma delta epsilon zeta line{i % 97}" for i in range(2_000)]


def _body(ctx):
    with ctx.spark_context(2) as sc:
        return dict(
            sc.parallelize(LINES, 8)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(add)
            .collect()
        )


def _run_direct():
    ctx = JobContext("solo", "direct", -1, threading.Event())
    try:
        return _body(ctx)
    finally:
        ctx._cleanup()


def test_idle_serve_machinery_overhead_tripwire():
    direct_sec = served_sec = float("inf")
    direct = served = None
    with JobService(1, capacity=4) as service:
        for _ in range(REPEATS):
            sec, direct = time_call(_run_direct, repeats=1)
            direct_sec = min(direct_sec, sec)
            sec, served = time_call(
                lambda: service.submit("t", _body).result(60.0), repeats=1
            )
            served_sec = min(served_sec, sec)

    assert served == direct  # idle machinery: bit-identical results
    ratio = served_sec / direct_sec
    assert ratio < THRESHOLD, (
        f"idle serve machinery tripwire: served/direct ratio {ratio:.2f}x exceeds "
        f"{THRESHOLD}x — the single-job path has probably grown locking or "
        "polling it shouldn't have"
    )
