"""FairShareQueue: bounds, backpressure hints, fairness, shedding."""

import threading

import pytest

from repro.serve.admission import FairShareQueue, QueueFullError


class TestBounds:
    def test_global_capacity_rejects_with_retry_after(self):
        q = FairShareQueue(2, service_time_hint=0.01)
        q.push("a", 1)
        q.push("a", 2)
        with pytest.raises(QueueFullError) as err:
            q.push("b", 3)
        assert err.value.capacity == 2
        assert err.value.depth == 2
        assert err.value.retry_after == pytest.approx(0.02)
        assert err.value.tenant == "b"
        assert "retry in" in str(err.value)

    def test_per_tenant_capacity(self):
        q = FairShareQueue(10, per_tenant_capacity=1)
        q.push("a", 1)
        with pytest.raises(QueueFullError):
            q.push("a", 2)
        q.push("b", 2)  # other tenants unaffected

    def test_retry_after_deterministic(self):
        hints = []
        for _ in range(2):
            q = FairShareQueue(1, service_time_hint=0.003)
            q.push("a", 1)
            with pytest.raises(QueueFullError) as err:
                q.push("a", 2)
            hints.append(err.value.retry_after)
        assert hints[0] == hints[1]

    def test_requeue_bypasses_capacity(self):
        q = FairShareQueue(1)
        q.push("a", "job")
        # Recovery path: re-admission must never bounce.
        assert q.requeue("a", "recovered") == 2
        assert q.depth() == 2

    def test_requeue_accepted_after_close(self):
        q = FairShareQueue(1)
        q.close()
        with pytest.raises(RuntimeError):
            q.push("a", 1)
        q.requeue("a", "recovered")
        assert q.pop(timeout=0) == ("a", "recovered")


class TestFairness:
    def test_round_robin_across_backlogged_tenants(self):
        q = FairShareQueue(16)
        for i in range(4):
            q.push("a", f"a{i}")
        for i in range(4):
            q.push("b", f"b{i}")
        order = [q.pop(timeout=0)[0] for _ in range(8)]
        assert order == ["a", "b"] * 4

    def test_flooding_tenant_cannot_starve_others(self):
        q = FairShareQueue(32)
        for i in range(10):
            q.push("flood", i)
        q.push("quiet", "x")
        # The quiet tenant is served within one round-robin cycle.
        tenants = [q.pop(timeout=0)[0] for _ in range(2)]
        assert "quiet" in tenants

    def test_priority_within_tenant_fifo_among_equals(self):
        q = FairShareQueue(8)
        q.push("a", "low1", priority=0)
        q.push("a", "high", priority=5)
        q.push("a", "low2", priority=0)
        items = [q.pop(timeout=0)[1] for _ in range(3)]
        assert items == ["high", "low1", "low2"]

    def test_pop_blocks_until_push(self):
        q = FairShareQueue(4)
        got = []
        t = threading.Thread(target=lambda: got.append(q.pop(timeout=5)))
        t.start()
        q.push("a", "late")
        t.join(timeout=5)
        assert got == [("a", "late")]


class TestShedding:
    def test_shed_lowest_priority_newest_first(self):
        q = FairShareQueue(8)
        q.push("a", "old-low", priority=0)
        q.push("b", "high", priority=9)
        q.push("c", "new-low", priority=0)
        shed = q.shed_lowest(1)
        assert shed == [("c", 0, "new-low")]
        assert len(q) == 2

    def test_shed_more_than_queued(self):
        q = FairShareQueue(8)
        q.push("a", 1)
        assert len(q.shed_lowest(5)) == 1
        assert len(q) == 0

    def test_shed_returns_accounting_triples(self):
        q = FairShareQueue(8)
        q.push("a", "x", priority=2)
        [(tenant, priority, item)] = q.shed_lowest(1)
        assert (tenant, priority, item) == ("a", 2, "x")


class TestLifecycle:
    def test_close_drains_then_none(self):
        q = FairShareQueue(4)
        q.push("a", 1)
        q.close()
        assert q.closed
        assert q.pop(timeout=0) == ("a", 1)
        assert q.pop(timeout=0) is None

    def test_iter_drains_without_blocking(self):
        q = FairShareQueue(4)
        q.push("a", 1)
        q.push("b", 2)
        assert sorted(dict(q).items()) == [("a", 1), ("b", 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            FairShareQueue(0)
        with pytest.raises(ValueError):
            FairShareQueue(4, per_tenant_capacity=0)
        with pytest.raises(ValueError):
            FairShareQueue(4, service_time_hint=-1.0)

    def test_repr(self):
        q = FairShareQueue(4)
        q.push("a", 1)
        assert "1/4 queued" in repr(q)
