"""Traffic generation + soak runs: fairness, bit-identity, degradation.

The tier-1 soak keeps the load small (seconds, not minutes); the
acceptance-scale soak from the issue — 4 tenants x 200 mixed-priority
jobs under an active ServeFaultPlan — runs under ``-m slow`` in the CI
serve job.
"""

import pytest

from repro.serve import (
    JobService,
    ServeFaultPlan,
    TrafficJob,
    generate_traffic,
    job_body,
    max_min_share,
    run_soak,
    run_solo,
)
from repro.trace.history import result_digest


class TestGenerator:
    def test_bit_identical_per_seed(self):
        a = generate_traffic(5, tenants=3, jobs_per_tenant=10)
        b = generate_traffic(5, tenants=3, jobs_per_tenant=10)
        assert a == b
        assert a != generate_traffic(6, tenants=3, jobs_per_tenant=10)

    def test_tenant_streams_independent(self):
        # Adding a tenant must not move the existing tenants' draws.
        small = generate_traffic(5, tenants=2, jobs_per_tenant=8)
        big = generate_traffic(5, tenants=3, jobs_per_tenant=8)
        keep = lambda jobs: sorted(
            (j.tenant, j.workload, j.priority, j.name) for j in jobs if j.tenant != "tenant2"
        )
        assert keep(small) == keep(big)

    def test_mix_covers_workloads_and_priorities(self):
        jobs = generate_traffic(1, tenants=4, jobs_per_tenant=12)
        assert {j.workload for j in jobs} == {"wordcount", "kmeans", "nyc"}
        assert len({j.priority for j in jobs}) > 1
        assert len({j.seed for j in jobs}) == len(jobs)

    def test_arrivals_sorted_and_seeded(self):
        jobs = generate_traffic(2, tenants=2, jobs_per_tenant=5, mean_gap=0.01)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_traffic(0, tenants=0)
        with pytest.raises(ValueError):
            generate_traffic(0, workloads=("quantum",))
        with pytest.raises(ValueError):
            TrafficJob("t", "quantum", 0, 0, 0.0, "x")


class TestSoloOracle:
    @pytest.mark.parametrize("workload", ["wordcount", "kmeans", "nyc"])
    def test_solo_runs_are_bit_reproducible(self, workload):
        job = TrafficJob("t", workload, 0, 3, 0.0, "probe")
        assert result_digest(run_solo(job)) == result_digest(run_solo(job))

    def test_bodies_pure_in_seed(self):
        a = TrafficJob("t", "wordcount", 0, 1, 0.0, "a")
        b = TrafficJob("u", "wordcount", 2, 1, 0.5, "b")  # same seed, rest differs
        assert result_digest(run_solo(a)) == result_digest(run_solo(b))
        c = TrafficJob("t", "wordcount", 0, 2, 0.0, "c")
        assert result_digest(run_solo(a)) != result_digest(run_solo(c))

    def test_job_body_is_callable_per_workload(self):
        for workload in ("wordcount", "kmeans", "nyc"):
            assert callable(job_body(TrafficJob("t", workload, 0, 0, 0.0, "x")))


class TestMaxMinShare:
    def test_perfectly_fair(self):
        assert max_min_share({"a": 5, "b": 5}) == 1.0

    def test_starved_tenant(self):
        assert max_min_share({"a": 10, "b": 1}) == pytest.approx(0.1)

    def test_degenerate_cases(self):
        assert max_min_share({}) == 1.0
        assert max_min_share({"a": 0}) == 1.0


class TestSoak:
    def test_clean_soak_fair_and_bit_identical(self):
        jobs = generate_traffic(7, tenants=3, jobs_per_tenant=6)
        svc = JobService(3, capacity=8, max_retries=1)
        try:
            result = run_soak(svc, jobs, timeout=90.0)
        finally:
            svc.shutdown()
        assert result.states == {"done": 18}
        assert result.mismatched == []
        assert result.fairness == 1.0  # every tenant finished everything
        assert result.throughput > 0
        assert "18 job(s)" in result.summary()

    def test_soak_under_faults_degrades_gracefully(self):
        tenants, per = 4, 8
        jobs = generate_traffic(13, tenants=tenants, jobs_per_tenant=per)
        plan = ServeFaultPlan.sample(
            13, submissions=tenants * per, workers=2,
            poison_prob=0.08, worker_loss_prob=0.03, stall_prob=0.08,
        )
        svc = JobService(
            2, capacity=12, max_retries=1, fault_plan=plan, circuit_threshold=100,
        )
        try:
            result = run_soak(svc, jobs, timeout=120.0)
        finally:
            svc.shutdown()
        # Every job reached a terminal state (no deadlocks, no losses)...
        assert sum(result.states.values()) == tenants * per
        # ...the only failures are the injected poisons...
        assert result.states.get("failed", 0) == len(
            [e for e in plan.events if e.kind == "poison" and e.unit < tenants * per]
        )
        # ...and every job that completed matches its solo run exactly.
        assert result.mismatched == []
        # The evidence trail is structured, not anecdotal.
        assert svc.fault_report is not None
        assert set(svc.fault_report.trace()) <= set(
            (e.kind, e.worker, e.unit) for e in plan.events
        ) or svc.fault_report.requeued_jobs >= 0


@pytest.mark.slow
class TestAcceptanceSoak:
    def test_four_tenants_two_hundred_jobs_under_faults(self):
        tenants, per = 4, 50  # 200 jobs total, mixed priorities
        jobs = generate_traffic(29, tenants=tenants, jobs_per_tenant=per)
        plan = ServeFaultPlan.sample(
            29, submissions=tenants * per, workers=4,
            poison_prob=0.05, worker_loss_prob=0.02, stall_prob=0.05,
        )
        svc = JobService(
            4, capacity=32, max_retries=2, fault_plan=plan, circuit_threshold=1000,
        )
        try:
            result = run_soak(svc, jobs, timeout=600.0)
        finally:
            svc.shutdown()
        assert sum(result.states.values()) == tenants * per  # zero deadlocks
        assert result.mismatched == []  # bit-identical to solo, all of them
        # Max-min fairness within tolerance: poisons are seeded uniformly,
        # so completed shares stay close across tenants.
        assert result.fairness >= 0.75, result.summary()
        assert result.states.get("done", 0) >= tenants * per * 0.8
