"""ServeFaultPlan: reproducible sampling, slot semantics, the report."""

import pytest

from repro.serve.faults import (
    PoisonedJobError,
    ServeFaultEvent,
    ServeFaultPlan,
    ServeFaultReport,
    ServeInjectionRecord,
)


class TestEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ServeFaultEvent("meteor", 0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            ServeFaultEvent("poison", -1)
        with pytest.raises(ValueError):
            ServeFaultEvent("queue_stall", 0, seconds=-0.1)

    def test_duplicate_slot_rejected(self):
        with pytest.raises(ValueError):
            ServeFaultPlan([ServeFaultEvent("poison", 3), ServeFaultEvent("poison", 3)])


class TestConstructors:
    def test_poison_job(self):
        plan = ServeFaultPlan.poison_job(5)
        assert plan.poisons(5)
        assert not plan.poisons(4)

    def test_kill_worker(self):
        plan = ServeFaultPlan.kill_worker(2, after_jobs=3)
        assert plan.kills_worker(2, 3)
        assert not plan.kills_worker(2, 2)
        assert not plan.kills_worker(1, 3)

    def test_stall_queue(self):
        plan = ServeFaultPlan.stall_queue(4, seconds=0.007)
        event = plan.stall_event(4)
        assert event is not None and event.seconds == 0.007
        assert plan.stall_event(3) is None


class TestSampling:
    def test_bit_identical_per_seed(self):
        kwargs = dict(
            submissions=64, workers=4,
            poison_prob=0.1, worker_loss_prob=0.05, stall_prob=0.1,
        )
        a = ServeFaultPlan.sample(11, **kwargs)
        b = ServeFaultPlan.sample(11, **kwargs)
        assert a.trace() == b.trace()
        assert a.trace() != ServeFaultPlan.sample(12, **kwargs).trace()

    def test_streams_independent_of_other_families(self):
        # Turning stalls off must not move the poison draws: each
        # family owns a disjoint block of the LCG sequence.
        a = ServeFaultPlan.sample(3, submissions=64, poison_prob=0.2, stall_prob=0.3)
        b = ServeFaultPlan.sample(3, submissions=64, poison_prob=0.2, stall_prob=0.0)
        assert {e.unit for e in a.events if e.kind == "poison"} == {
            e.unit for e in b.events if e.kind == "poison"
        }

    def test_worker_losses_capped(self):
        plan = ServeFaultPlan.sample(
            0, submissions=8, workers=4, worker_loss_prob=1.0
        )
        losses = [e for e in plan.events if e.kind == "worker_loss"]
        # Default budget keeps at least one worker undisturbed...
        assert len(losses) == 3
        # ...and each worker dies at most once.
        assert len({e.worker for e in losses}) == len(losses)

    def test_max_worker_losses_zero_disables(self):
        plan = ServeFaultPlan.sample(
            0, submissions=8, workers=4, worker_loss_prob=1.0, max_worker_losses=0
        )
        assert all(e.kind != "worker_loss" for e in plan.events)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ServeFaultPlan.sample(0, submissions=8, poison_prob=1.5)
        with pytest.raises(ValueError):
            ServeFaultPlan.sample(0, submissions=0)

    def test_zero_probs_empty_plan(self):
        plan = ServeFaultPlan.sample(0, submissions=16)
        assert len(plan) == 0
        assert plan.trace() == ()


class TestReport:
    def test_thread_safe_accounting_and_summary(self):
        report = ServeFaultReport()
        report.record_injection(ServeInjectionRecord("poison", 2))
        report.record_injection(ServeInjectionRecord("worker_loss", 0, worker=1))
        report.record_requeue()
        report.record_worker_respawn(1)
        assert report.trace() == (("poison", 0, 2), ("worker_loss", 1, 0))
        text = report.summary()
        assert "2 fault(s) fired" in text
        assert "worker 1 respawned 1 time(s)" in text
        assert "1 job(s) requeued" in text

    def test_poisoned_job_error_carries_submission(self):
        err = PoisonedJobError(7)
        assert err.submission == 7
        assert "poisoned" in str(err)
