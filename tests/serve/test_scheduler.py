"""JobService: lifecycle, deadlines, cancellation, faults, degradation."""

import threading
import time

import pytest

from repro.serve import (
    CircuitOpenError,
    DeadlineExpired,
    JobService,
    PoisonedJobError,
    QueueFullError,
    ServeFaultPlan,
)
from repro.spark.context import SparkJobCancelled


class TestBasics:
    def test_submit_wait_result(self):
        with JobService(2) as svc:
            h = svc.submit("t", lambda ctx: 40 + 2, name="add")
            assert h.result(5.0) == 42
            assert h.state == "done"
            assert h.attempts == 1
        assert svc.metrics.completed == 1

    def test_context_manager_shutdown_idempotent(self):
        svc = JobService(1)
        svc.shutdown()
        svc.shutdown()
        with pytest.raises(RuntimeError):
            svc.submit("t", lambda ctx: 1)

    def test_failure_reraised_from_result(self):
        with JobService(1, max_retries=0) as svc:
            h = svc.submit("t", lambda ctx: 1 / 0, name="boom")
            h.wait(5.0)
            assert h.state == "failed"
            with pytest.raises(ZeroDivisionError):
                h.result()

    def test_retries_then_success(self):
        attempts = []

        def flaky(ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "ok"

        with JobService(1, max_retries=3) as svc:
            h = svc.submit("t", flaky)
            assert h.result(5.0) == "ok"
            assert h.attempts == 3
        assert svc.metrics.retries == 2

    def test_drain_waits_for_everything(self):
        with JobService(2) as svc:
            handles = [svc.submit("t", lambda ctx: i, name=f"j{i}") for i in range(8)]
            assert svc.drain(timeout=10.0)
            assert all(h.state == "done" for h in handles)

    def test_job_records_in_submission_order(self):
        with JobService(1) as svc:
            svc.submit("a", lambda ctx: 1)
            svc.submit("b", lambda ctx: 2)
            svc.drain(5.0)
            assert [h.tenant for h in svc.job_records()] == ["a", "b"]


class TestBackpressure:
    def _blocked_service(self, **kwargs):
        svc = JobService(1, **kwargs)
        gate = threading.Event()
        svc.submit("t", lambda ctx: gate.wait(10), name="blocker")
        time.sleep(0.05)  # let the worker pick it up
        return svc, gate

    def test_queue_full_raises_with_hint(self):
        svc, gate = self._blocked_service(capacity=1)
        try:
            svc.submit("t", lambda ctx: 1)
            with pytest.raises(QueueFullError) as err:
                svc.submit("t", lambda ctx: 2)
            assert err.value.retry_after > 0
            assert svc.metrics.rejected_full == 1
        finally:
            gate.set()
            svc.shutdown()

    def test_shed_on_full_displaces_lower_priority(self):
        svc, gate = self._blocked_service(capacity=2, shed_on_full=True)
        try:
            low1 = svc.submit("a", lambda ctx: 1, priority=0, name="low1")
            low2 = svc.submit("b", lambda ctx: 1, priority=0, name="low2")
            vip = svc.submit("c", lambda ctx: "vip", priority=5, name="vip")
            gate.set()
            assert vip.result(5.0) == "vip"
            svc.drain(5.0)
            # The newest equal-priority victim was shed, the other ran.
            assert sorted([low1.state, low2.state]) == ["done", "shed"]
            assert [r.name for r in svc.shed_report.records] == ["low2"]
            assert "overload" in svc.shed_report.records[0].reason
            assert svc.metrics.shed == 1
        finally:
            svc.shutdown()

    def test_shed_on_full_still_rejects_equal_priority(self):
        svc, gate = self._blocked_service(capacity=1, shed_on_full=True)
        try:
            svc.submit("a", lambda ctx: 1, priority=3)
            with pytest.raises(QueueFullError):
                svc.submit("b", lambda ctx: 2, priority=3)  # no one outranked
            assert len(svc.shed_report) == 0
        finally:
            gate.set()
            svc.shutdown()

    def test_explicit_shed_queued(self):
        svc, gate = self._blocked_service(capacity=8)
        try:
            handles = [svc.submit("t", lambda ctx: 1, priority=i, name=f"p{i}") for i in range(3)]
            assert svc.shed_queued(2, reason="maintenance") == 2
            gate.set()
            svc.drain(5.0)
            assert [h.state for h in handles] == ["shed", "shed", "done"]
            assert svc.shed_report.by_tenant() == {"t": 2}
        finally:
            svc.shutdown()


class TestDeadlinesAndCancellation:
    def test_deadline_expires_in_queue(self):
        svc = JobService(1)
        gate = threading.Event()
        try:
            svc.submit("t", lambda ctx: gate.wait(10), name="blocker")
            time.sleep(0.05)
            late = svc.submit("t", lambda ctx: 2, deadline=0.01, name="late")
            time.sleep(0.1)
            gate.set()
            late.wait(5.0)
            assert late.state == "expired"
            with pytest.raises(DeadlineExpired):
                late.result()
            assert svc.metrics.expired == 1
        finally:
            gate.set()
            svc.shutdown()

    def test_wall_timeout_cancels_spark_job_cleanly(self, tmp_path):
        def slow(ctx):
            with ctx.spark_context(2, spill_dir=str(tmp_path)) as sc:
                return (
                    sc.parallelize(range(64), 16)
                    .map(lambda x: (time.sleep(0.05), x)[1])
                    .collect()
                )

        with JobService(1, default_timeout=0.15, watchdog_interval=0.005) as svc:
            h = svc.submit("t", slow, name="slow")
            h.wait(20.0)
            assert h.state == "timeout"
            with pytest.raises(SparkJobCancelled):
                h.result()
            assert svc.metrics.timeouts == 1
        # Engine state left clean: every spill dir reclaimed.
        assert list(tmp_path.iterdir()) == []

    def test_cancel_queued_job(self):
        svc = JobService(1)
        gate = threading.Event()
        try:
            svc.submit("t", lambda ctx: gate.wait(10))
            time.sleep(0.05)
            victim = svc.submit("t", lambda ctx: 3, name="victim")
            victim.cancel()
            gate.set()
            victim.wait(5.0)
            assert victim.state == "cancelled"
            assert svc.metrics.cancelled == 1
        finally:
            gate.set()
            svc.shutdown()

    def test_cancel_running_job_cooperative(self):
        started = threading.Event()

        def cooperative(ctx):
            started.set()
            while True:
                ctx.check_cancelled()
                time.sleep(0.002)

        with JobService(1) as svc:
            h = svc.submit("t", cooperative)
            assert started.wait(5.0)
            h.cancel()
            h.wait(5.0)
            assert h.state == "cancelled"

    def test_shutdown_nodrain_cancels_queued(self):
        svc = JobService(1)
        gate = threading.Event()
        svc.submit("t", lambda ctx: gate.wait(10), name="running")
        time.sleep(0.05)
        queued = svc.submit("t", lambda ctx: 1, name="queued")
        gate.set()
        svc.shutdown(drain=False)
        assert queued.state == "cancelled"


class TestCircuitIntegration:
    def test_breaker_trips_and_recovers(self):
        clock = [0.0]
        with JobService(
            1, max_retries=0, circuit_threshold=2, circuit_recovery=5.0,
            clock=lambda: clock[0],
        ) as svc:
            for _ in range(2):
                h = svc.submit("bad", lambda ctx: 1 / 0)
                h.wait(5.0)
            with pytest.raises(CircuitOpenError) as err:
                svc.submit("bad", lambda ctx: 1)
            assert err.value.retry_after > 0
            assert svc.metrics.rejected_circuit == 1
            # Other tenants are unaffected.
            assert svc.submit("good", lambda ctx: "fine").result(5.0) == "fine"
            # After the cool-down a probe is admitted and closes it.
            clock[0] += 5.0
            assert svc.submit("bad", lambda ctx: "recovered").result(5.0) == "recovered"
            assert svc.breaker("bad").state == "closed"


class TestFaultInjection:
    def test_poisoned_job_fails_every_attempt(self):
        with JobService(
            1, max_retries=2, fault_plan=ServeFaultPlan.poison_job(0),
            circuit_threshold=100,
        ) as svc:
            h = svc.submit("t", lambda ctx: "never", name="poisoned")
            h.wait(5.0)
            assert h.state == "failed"
            assert h.attempts == 3
            with pytest.raises(PoisonedJobError):
                h.result()
            # One injection per attempt — retries burned out for real.
            assert svc.fault_report.trace() == (("poison", 0, 0),) * 3

    def test_worker_loss_requeues_and_respawns(self):
        with JobService(1, fault_plan=ServeFaultPlan.kill_worker(0, after_jobs=0)) as svc:
            h = svc.submit("t", lambda ctx: "alive", name="survivor")
            assert h.result(10.0) == "alive"
            report = svc.fault_report
            assert report.requeued_jobs == 1
            assert report.worker_respawns == {0: 1}
            assert report.trace() == (("worker_loss", 0, 0),)

    def test_queue_stall_delays_but_loses_nothing(self):
        plan = ServeFaultPlan.stall_queue(0, seconds=0.02)
        with JobService(1, fault_plan=plan) as svc:
            h = svc.submit("t", lambda ctx: "ok")
            assert h.result(5.0) == "ok"
            assert svc.fault_report.trace() == (("queue_stall", 0, 0),)

    def test_no_plan_no_report(self):
        with JobService(1) as svc:
            svc.submit("t", lambda ctx: 1).wait(5.0)
            assert svc.fault_report is None
