"""CircuitBreaker state machine under an injected clock (no sleeps)."""

import pytest

from repro.serve.circuit import CircuitBreaker, CircuitOpenError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("t", failure_threshold=3, recovery_time=1.0, clock=clock)


class TestTrip:
    def test_stays_closed_below_threshold(self, breaker):
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == "closed"
        breaker.allow()  # still admitting

    def test_trips_at_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.record_failure() is True
        assert breaker.state == "open"
        assert breaker.opens == 1

    def test_open_rejects_with_retry_after(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(0.25)
        with pytest.raises(CircuitOpenError) as err:
            breaker.allow()
        assert err.value.tenant == "t"
        assert err.value.failures == 3
        assert err.value.retry_after == pytest.approx(0.75)

    def test_success_resets_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.record_failure() is True  # needed a fresh streak of 3


class TestRecovery:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_half_open_after_cooldown_admits_one_probe(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.0)
        assert breaker.state == "half_open"
        breaker.allow()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # everyone behind the probe still waits

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()
        breaker.allow()  # fully open for business again

    def test_probe_failure_reopens_full_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.0)
        breaker.allow()
        assert breaker.record_failure() is True  # re-trips immediately
        assert breaker.state == "open"
        assert breaker.opens == 2
        clock.advance(0.5)
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(0.5)
        assert breaker.state == "half_open"


class TestValidation:
    def test_bad_params(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("t", recovery_time=-1.0)

    def test_repr(self, breaker):
        assert "tenant='t'" in repr(breaker)
        assert "state='closed'" in repr(breaker)
