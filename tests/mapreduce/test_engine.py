"""Tests for the MapReduce engine over the SPMD runtime."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import KeyMultiValue, KeyValue, MapReduce, stable_hash
from repro.mapreduce.hashing import partition_for
from repro.mpi import RankFailedError, run_spmd


class TestStableHash:
    def test_deterministic_for_common_types(self):
        for key in ["word", 42, 3.14, (1, "a"), b"bytes", None, True, False, (1, (2, 3))]:
            assert stable_hash(key) == stable_hash(key)

    def test_bool_and_int_distinct(self):
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(False) != stable_hash(0)

    def test_str_and_bytes_distinct(self):
        assert stable_hash("ab") != stable_hash(b"ab")

    def test_nested_tuples_distinct(self):
        assert stable_hash((1, 2, 3)) != stable_hash(((1, 2), 3))

    def test_partition_in_range(self):
        for key in range(100):
            assert 0 <= partition_for(key, 7) < 7

    def test_partition_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            partition_for("k", 0)

    @given(st.text(max_size=30))
    @settings(max_examples=50)
    def test_property_spread_is_plausible(self, s):
        # Not a statistical test, just that hashing never raises and is stable.
        assert stable_hash(s) == stable_hash(s)


class TestKeyValueStores:
    def test_keyvalue_preserves_insertion_order(self):
        kv = KeyValue()
        kv.add("b", 1)
        kv.add("a", 2)
        kv.add("b", 3)
        assert kv.pairs() == [("b", 1), ("a", 2), ("b", 3)]
        assert kv.keys() == ["b", "a", "b"]
        assert len(kv) == 3

    def test_keymultivalue_groups_in_first_seen_order(self):
        kmv = KeyMultiValue.from_pairs([("x", 1), ("y", 2), ("x", 3)])
        assert kmv.keys() == ["x", "y"]
        assert kmv.values_for("x") == [1, 3]
        assert "y" in kmv and "z" not in kmv
        assert len(kmv) == 2


class TestWordCountStyle:
    """The classic warm-up problem, run at several rank counts."""

    CORPUS = [
        "the quick brown fox",
        "the lazy dog",
        "the quick dog jumps",
        "brown dog brown fox",
    ]

    @staticmethod
    def expected_counts():
        counts = {}
        for line in TestWordCountStyle.CORPUS:
            for w in line.split():
                counts[w] = counts.get(w, 0) + 1
        return counts

    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_wordcount_matches_serial(self, size):
        corpus = self.CORPUS

        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(corpus, lambda line, kv: [kv.add(w, 1) for w in line.split()])
            mr.collate()
            mr.reduce(lambda word, ones, kv: kv.add(word, sum(ones)))
            pairs = mr.gather()
            return dict(pairs) if comm.rank == 0 else None

        results = run_spmd(size, program)
        assert results[0] == self.expected_counts()

    def test_map_tasks_cyclic_distribution(self):
        def program(comm):
            mr = MapReduce(comm)
            total = mr.map_tasks(10, lambda task, kv: kv.add(task, comm.rank))
            assert total == 10
            return sorted(k for k, _ in mr.kv)

        results = run_spmd(3, program)
        assert results[0] == [0, 3, 6, 9]
        assert results[1] == [1, 4, 7]
        assert results[2] == [2, 5, 8]

    def test_aggregate_places_keys_consistently(self):
        def program(comm):
            mr = MapReduce(comm)
            # Every rank emits the same keys; after aggregate, each key
            # must live on exactly one rank.
            mr.map_items(list(range(comm.size)), lambda i, kv: [kv.add(k, i) for k in "abcdef"])
            mr.aggregate()
            return set(mr.kv.keys())

        results = run_spmd(4, program)
        all_keys = set("abcdef")
        seen = set()
        for owned in results:
            assert seen.isdisjoint(owned)
            seen |= owned
        assert seen == all_keys

    def test_custom_partitioner(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(list(range(8)), lambda i, kv: kv.add(i, i * i))
            mr.aggregate(partitioner=lambda key: key)  # key k -> rank k % size
            return sorted(mr.kv.keys())

        results = run_spmd(2, program)
        assert results[0] == [0, 2, 4, 6]
        assert results[1] == [1, 3, 5, 7]

    def test_reduce_without_collate_raises(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.reduce(lambda k, vs, kv: None)

        with pytest.raises(RankFailedError, match="collate"):
            run_spmd(1, program)

    def test_local_combine_reduces_shuffle_volume(self):
        words = ["apple"] * 50 + ["pear"] * 50

        def program(comm, combine):
            mr = MapReduce(comm)
            mr.map_items(words, lambda w, kv: kv.add(w, 1))
            if combine:
                mr.local_combine(lambda w, ones, kv: kv.add(w, sum(ones)))
            shipped = mr.aggregate()
            mr.convert()
            mr.reduce(lambda w, counts, kv: kv.add(w, sum(counts)))
            pairs = mr.gather()
            return (shipped, dict(pairs) if comm.rank == 0 else None)

        no_combine = run_spmd(4, program, False)
        with_combine = run_spmd(4, program, True)
        # Same answer either way...
        assert no_combine[0][1] == with_combine[0][1] == {"apple": 50, "pear": 50}
        # ...but the combiner ships far fewer pairs.
        assert with_combine[0][0] < no_combine[0][0]

    def test_gather_all_and_counts(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items([1, 2, 3, 4], lambda i, kv: kv.add(i, i))
            everyone = mr.gather_all()
            return (sorted(everyone), mr.num_pairs_global())

        results = run_spmd(2, program)
        for pairs, total in results:
            assert pairs == [(1, 1), (2, 2), (3, 3), (4, 4)]
            assert total == 4

    def test_sort_by_key(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items([3, 1, 2], lambda i, kv: kv.add(i, str(i)))
            mr.sort_by_key()
            return mr.kv.pairs()

        results = run_spmd(1, program)
        assert results[0] == [(1, "1"), (2, "2"), (3, "3")]

    def test_map_append_mode(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items([1], lambda i, kv: kv.add("a", i))
            mr.map_items([2], lambda i, kv: kv.add("b", i), append=True)
            return len(mr.kv)

        assert run_spmd(1, program) == [2]

    @pytest.mark.parametrize("size", [1, 2, 5])
    def test_results_independent_of_rank_count(self, size):
        corpus = [f"line {i} word{i % 3}" for i in range(20)]

        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(corpus, lambda line, kv: [kv.add(w, 1) for w in line.split()])
            mr.collate()
            mr.reduce(lambda w, ones, kv: kv.add(w, sum(ones)))
            pairs = mr.gather()
            return sorted(pairs) if comm.rank == 0 else None

        assert run_spmd(size, program)[0] == run_spmd(1, program)[0]
