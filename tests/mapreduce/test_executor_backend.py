"""MapReduce local map/reduce dispatch over the executor backends.

Each SPMD rank's local loops (``map_tasks`` / ``map_items`` /
``map_files`` / ``reduce``) can fan out over
:mod:`repro.core.executor`; the merged pair stream must be
bit-identical to the serial in-line loop for every backend.
"""

from __future__ import annotations

import pytest

from repro.core.executor import BACKENDS
from repro.mapreduce import MapReduce
from repro.mpi import run_spmd

LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "quick quick slow",
] * 4


def _count_words(comm, *, backend):
    mr = MapReduce(comm, backend=backend, num_workers=3)

    def emit(line, kv):
        for word in line.split():
            kv.add(word, 1)

    mr.map_items(LINES, emit)
    mr.collate()
    mr.reduce(lambda word, counts, kv: kv.add(word, sum(counts)))
    return mr.gather_all()


def _count_tasks(comm, *, backend):
    mr = MapReduce(comm, backend=backend, num_workers=3)
    mr.map_tasks(10, lambda task, kv: kv.add(task % 3, task))
    mr.collate()
    mr.reduce(lambda key, values, kv: kv.add(key, sum(values)))
    return mr.gather_all()


class TestBackendsBitIdentical:
    @pytest.mark.parametrize("size", [1, 3])
    def test_map_items_pipeline(self, size):
        runs = {b: run_spmd(size, _count_words, backend=b) for b in BACKENDS}
        assert runs["serial"] == runs["thread"] == runs["process"]
        counts = dict(runs["serial"][0])
        assert counts["the"] == 12 and counts["quick"] == 12

    def test_map_tasks_pipeline(self):
        runs = {b: run_spmd(2, _count_tasks, backend=b) for b in BACKENDS}
        assert runs["serial"] == runs["thread"] == runs["process"]

    def test_map_files_pipeline(self, tmp_path):
        paths = []
        for i, text in enumerate(["alpha beta", "beta gamma", "gamma alpha alpha"]):
            p = tmp_path / f"part{i}.txt"
            p.write_text(text)
            paths.append(p)

        def count_files(comm, *, backend):
            mr = MapReduce(comm, backend=backend, num_workers=2)

            def emit(path, text, kv):
                for word in text.split():
                    kv.add(word, 1)

            mr.map_files(paths, emit)
            mr.collate()
            mr.reduce(lambda word, counts, kv: kv.add(word, sum(counts)))
            return mr.gather_all()

        runs = {b: run_spmd(1, count_files, backend=b) for b in BACKENDS}
        assert runs["serial"] == runs["thread"] == runs["process"]
        assert dict(runs["serial"][0]) == {"alpha": 3, "beta": 2, "gamma": 2}


class TestEngineKnobs:
    def test_unknown_backend_rejected(self):
        # Backend validation fires before the communicator is touched.
        with pytest.raises(ValueError, match="backend"):
            MapReduce(None, backend="quantum")

    def test_single_task_stays_inline(self):
        # One task per rank: the parallel path is skipped, results unchanged.
        def one(comm, *, backend):
            mr = MapReduce(comm, backend=backend, num_workers=4)
            mr.map_tasks(1, lambda task, kv: kv.add("only", task))
            mr.collate()
            mr.reduce(lambda key, values, kv: kv.add(key, sum(values)))
            return mr.gather_all()

        assert run_spmd(1, one, backend="process") == run_spmd(1, one, backend="serial")
