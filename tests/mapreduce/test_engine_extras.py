"""Tests for the MR-MPI engine's remaining operations."""

import pytest

from repro.mapreduce import MapReduce
from repro.mpi import RankFailedError, run_spmd


class TestSortByValue:
    def test_local_value_order(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items([("a", 3), ("b", 1), ("c", 2)], lambda kv, out: out.add(*kv))
            mr.sort_by_value()
            return mr.kv.pairs()

        assert run_spmd(1, program)[0] == [("b", 1), ("c", 2), ("a", 3)]


class TestAdd:
    def test_merges_two_datasets(self):
        def program(comm):
            a = MapReduce(comm)
            a.map_items([1, 2], lambda i, kv: kv.add(i, "a"))
            b = MapReduce(comm)
            b.map_items([3], lambda i, kv: kv.add(i, "b"))
            total = a.add(b)
            return (total, sorted(a.gather_all()))

        results = run_spmd(2, program)
        total, pairs = results[0]
        assert total == 3
        assert pairs == [(1, "a"), (2, "a"), (3, "b")]

    def test_different_comms_rejected(self):
        def program(comm):
            sub = comm.split(color=0, key=comm.rank)
            a = MapReduce(comm)
            b = MapReduce(sub)
            a.add(b)

        with pytest.raises(RankFailedError, match="same communicator"):
            run_spmd(2, program)


class TestMapKv:
    def test_chains_stages(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(["aa bb", "bb cc"], lambda line, kv: [kv.add(w, 1) for w in line.split()])
            mr.collate()
            mr.reduce(lambda w, ones, kv: kv.add(w, sum(ones)))
            # Second stage: invert to (count, word) for a frequency ranking.
            mr.map_kv(lambda word, count, kv: kv.add(count, word))
            mr.collate()
            mr.reduce(lambda count, words, kv: kv.add(count, sorted(words)))
            return dict(mr.gather_all())

        results = run_spmd(3, program)
        assert results[0] == {1: ["aa", "cc"], 2: ["bb"]}


class TestScrunch:
    def test_everything_lands_on_root(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(list(range(10)), lambda i, kv: kv.add(i % 3, i))
            unique_on_me = mr.scrunch(root=0)
            return (unique_on_me, mr.num_pairs_local)

        results = run_spmd(4, program)
        assert results[0] == (3, 10)
        assert all(r == (0, 0) for r in results[1:])

    def test_root_can_reduce_globally_after_scrunch(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(list(range(20)), lambda i, kv: kv.add("all", i))
            mr.scrunch(root=0)
            # reduce() is collective (it allreduces the pair count), so
            # every rank calls it; non-root ranks hold an empty grouping.
            mr.reduce(lambda k, vs, kv: kv.add(k, max(vs)))
            return mr.kv.pairs() if comm.rank == 0 else None

        results = run_spmd(3, program)
        assert results[0] == [("all", 19)]
