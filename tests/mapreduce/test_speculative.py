"""Speculative re-execution of map tasks owned by a dead rank."""

import pytest

from repro.mapreduce import MapReduce
from repro.mpi import FaultEvent, FaultPlan, RankFailedError, run_spmd

CORPUS = [
    "the quick brown fox",
    "the lazy dog",
    "the quick dog jumps",
    "brown dog brown fox",
    "fox and dog and fox",
    "lazy summer afternoon",
]


def expected_counts():
    counts = {}
    for line in CORPUS:
        for w in line.split():
            counts[w] = counts.get(w, 0) + 1
    return counts


def wordcount_speculative(comm):
    mr = MapReduce(comm)
    mr.map_tasks_speculative(
        len(CORPUS), lambda t, kv: [kv.add(w, 1) for w in CORPUS[t].split()]
    )
    mr.collate()
    mr.reduce(lambda word, ones, kv: kv.add(word, sum(ones)))
    pairs = mr.gather()
    return dict(pairs) if comm.rank == 0 else None


class TestSpeculativeMap:
    def test_fault_free_path_matches_map_tasks(self):
        results = run_spmd(4, wordcount_speculative)
        assert results[0] == expected_counts()

    @pytest.mark.parametrize("victim", [1, 2, 3])
    def test_dead_ranks_tasks_are_readopted(self, victim):
        results = run_spmd(
            4,
            wordcount_speculative,
            faults=FaultPlan.crash(victim, 0),
            on_failure="tolerate",
            timeout=10.0,
        )
        assert results[victim] is None
        assert results[0] == expected_counts()

    def test_two_simultaneous_deaths(self):
        plan = FaultPlan([FaultEvent("crash", 1, 0), FaultEvent("crash", 3, 0)])
        results, report = run_spmd(
            4,
            wordcount_speculative,
            faults=plan,
            on_failure="tolerate",
            timeout=10.0,
            return_report=True,
        )
        assert report.dead_ranks == [1, 3]
        assert results[0] == expected_counts()

    def test_emitted_pair_count_covers_orphans(self):
        def program(comm):
            mr = MapReduce(comm)
            return mr.map_tasks_speculative(9, lambda t, kv: kv.add(t, t))

        results = run_spmd(
            3,
            program,
            faults=FaultPlan.crash(2, 0),
            on_failure="tolerate",
            timeout=10.0,
        )
        # All 9 tasks emitted exactly once, counted over the survivors.
        assert results[0] == 9 and results[1] == 9 and results[2] is None

    def test_negative_task_count_rejected(self):
        def program(comm):
            MapReduce(comm).map_tasks_speculative(-1, lambda t, kv: None)

        with pytest.raises(RankFailedError, match="num_tasks"):
            run_spmd(2, program)
