"""Tests for the counter-based (stateless) generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.counter import CounterRNG


class TestCounterRNG:
    def test_deterministic_per_index(self):
        a = CounterRNG(seed=1)
        b = CounterRNG(seed=1)
        assert [a.raw(i) for i in range(10)] == [b.raw(i) for i in range(10)]

    def test_seed_changes_outputs(self):
        a = CounterRNG(seed=1)
        b = CounterRNG(seed=2)
        assert [a.raw(i) for i in range(8)] != [b.raw(i) for i in range(8)]

    def test_stream_changes_outputs(self):
        a = CounterRNG(seed=1, stream=0)
        b = CounterRNG(seed=1, stream=1)
        assert [a.raw(i) for i in range(8)] != [b.raw(i) for i in range(8)]

    def test_block_matches_scalar(self):
        r = CounterRNG(seed=123, stream=4)
        block = r.raw_block(10, 50)
        scalar = np.array([r.raw(10 + i) for i in range(50)], dtype=np.uint64)
        np.testing.assert_array_equal(block, scalar)

    def test_uniform_block_matches_scalar_and_range(self):
        r = CounterRNG(seed=5)
        block = r.uniform_block(0, 100)
        assert np.all((block >= 0.0) & (block < 1.0))
        np.testing.assert_allclose(block, [r.uniform(i) for i in range(100)])

    def test_negative_index_rejected(self):
        r = CounterRNG(seed=5)
        with pytest.raises(ValueError):
            r.raw(-1)
        with pytest.raises(ValueError):
            r.raw_block(-1, 3)

    def test_outputs_roughly_uniform(self):
        # Crude distribution sanity check: mean of 64-bit uniforms near 0.5.
        r = CounterRNG(seed=2024)
        u = r.uniform_block(0, 20_000)
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(u.var() - 1 / 12) < 0.005

    @given(st.integers(0, 2**63), st.integers(0, 1000), st.integers(1, 200))
    @settings(max_examples=30)
    def test_property_block_windows_agree(self, seed, start, count):
        r = CounterRNG(seed=seed)
        whole = r.raw_block(start, count)
        assert whole[0] == r.raw(start)
        assert whole[-1] == r.raw(start + count - 1)
