"""Tests for the LCG fast-forward machinery — the traffic assignment's core lesson."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.lcg import KNUTH_LCG, MINSTD, MINSTD0, AffineMap, LcgParams, LinearCongruential

ALL_PARAMS = [MINSTD0, MINSTD, KNUTH_LCG]


class TestAffineMap:
    def test_identity_power_zero(self):
        f = AffineMap(5, 3, 101)
        ident = f.power(0)
        for x in range(10):
            assert ident(x) == x

    def test_compose_order(self):
        # self.compose(other) applies other first.
        f = AffineMap(2, 1, 101)  # x -> 2x+1
        g = AffineMap(3, 0, 101)  # x -> 3x
        assert f.compose(g)(5) == f(g(5))
        assert g.compose(f)(5) == g(f(5))

    def test_power_matches_repeated_application(self):
        f = AffineMap(48271, 12345, 2**31 - 1)
        x = 42
        expect = x
        for n in range(1, 20):
            expect = f(expect)
            assert f.power(n)(x) == expect

    def test_mixed_moduli_rejected(self):
        with pytest.raises(ValueError):
            AffineMap(2, 1, 101).compose(AffineMap(2, 1, 103))

    @given(st.integers(0, 10_000), st.integers(0, 2**31 - 2))
    @settings(max_examples=50)
    def test_power_is_homomorphism(self, n, x):
        f = MINSTD.step_map
        # f^(n+1) == f ∘ f^n
        assert f.power(n + 1)(x) == f(f.power(n)(x))


class TestLcgParams:
    def test_known_engines(self):
        assert MINSTD0.a == 16807 and MINSTD0.m == 2**31 - 1
        assert MINSTD.a == 48271
        assert KNUTH_LCG.m == 2**64

    def test_validation(self):
        with pytest.raises(ValueError):
            LcgParams(a=0, c=0, m=7)
        with pytest.raises(ValueError):
            LcgParams(a=3, c=9, m=7)
        with pytest.raises(ValueError):
            LcgParams(a=3, c=0, m=1)


class TestLinearCongruential:
    @pytest.mark.parametrize("params", ALL_PARAMS, ids=lambda p: p.name)
    def test_jump_equals_sequential_steps(self, params):
        for n in [0, 1, 2, 7, 63, 1000]:
            seq = LinearCongruential(params, seed=2024)
            values = [seq.next_raw() for _ in range(n + 1)]
            jumped = LinearCongruential(params, seed=2024)
            jumped.jump(n)
            assert jumped.next_raw() == values[n]

    @pytest.mark.parametrize("params", ALL_PARAMS, ids=lambda p: p.name)
    def test_jump_is_additive(self, params):
        g = LinearCongruential(params, seed=99)
        g.jump(100)
        g.jump(23)
        h = LinearCongruential(params, seed=99)
        h.jump(123)
        assert g.state == h.state
        assert g.position == h.position == 123

    def test_zero_seed_replaced_for_multiplicative(self):
        g = LinearCongruential(MINSTD, seed=0)
        assert g.state == 1
        assert g.next_raw() != 0

    def test_zero_seed_kept_for_mixed(self):
        g = LinearCongruential(KNUTH_LCG, seed=0)
        assert g.state == 0
        assert g.next_raw() == KNUTH_LCG.c

    def test_clone_independent(self):
        g = LinearCongruential(MINSTD, seed=5)
        g.next_raw()
        h = g.clone()
        assert h.next_raw() == g.clone().next_raw()
        g.next_raw()
        assert g.position == h.position  # both advanced once after clone

    def test_jumped_leaves_original(self):
        g = LinearCongruential(MINSTD, seed=5)
        h = g.jumped(10)
        assert g.position == 0
        assert h.position == 10

    def test_uniform_in_unit_interval(self):
        g = LinearCongruential(MINSTD, seed=7)
        for _ in range(1000):
            u = g.next_uniform()
            assert 0.0 <= u < 1.0

    def test_minstd_known_10000th_value(self):
        # Park & Miller: starting from seed 1, the 10000th minstd_rand0
        # output is 1043618065 (the classic validation constant).
        g = LinearCongruential(MINSTD0, seed=1)
        for _ in range(9999):
            g.next_raw()
        assert g.next_raw() == 1043618065

    @given(st.integers(0, 10**9), st.integers(1, 2**31 - 2))
    @settings(max_examples=30)
    def test_property_jump_matches_position(self, n, seed):
        g = LinearCongruential(MINSTD, seed=seed)
        g.jump(n)
        assert g.position == n
        # state equals step_map^n applied to the seeded state
        start = LinearCongruential(MINSTD, seed=seed).state
        assert g.state == MINSTD.step_map.power(n)(start)

    def test_negative_jump_rejected(self):
        g = LinearCongruential(MINSTD, seed=5)
        with pytest.raises(ValueError):
            g.jump(-1)
