"""Tests for the distribution helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng.distributions import bernoulli, uniform, uniform_int


class TestUniform:
    def test_scalar_mapping(self):
        assert uniform(0.0, 2.0, 6.0) == 2.0
        assert uniform(0.5, 2.0, 6.0) == 4.0

    def test_array_mapping(self):
        u = np.array([0.0, 0.25, 0.75])
        np.testing.assert_allclose(uniform(u, -1.0, 1.0), [-1.0, -0.5, 0.5])

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            uniform(0.5, 3.0, 2.0)

    @given(st.floats(0, 1, exclude_max=True), st.floats(-100, 100), st.floats(0, 100))
    def test_property_result_in_range(self, u, lo, width):
        hi = lo + width
        v = uniform(u, lo, hi)
        assert lo <= v <= hi


class TestUniformInt:
    def test_scalar_truncation(self):
        assert uniform_int(0.0, 0, 10) == 0
        assert uniform_int(0.999, 0, 10) == 9

    def test_array(self):
        u = np.array([0.0, 0.5, 0.99])
        np.testing.assert_array_equal(uniform_int(u, 0, 4), [0, 2, 3])

    def test_edge_u_equal_one_clamped(self):
        assert uniform_int(1.0, 0, 5) == 4

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            uniform_int(0.5, 3, 3)

    @given(st.floats(0, 1, exclude_max=True), st.integers(-50, 50), st.integers(1, 100))
    def test_property_in_half_open_range(self, u, lo, width):
        v = uniform_int(u, lo, lo + width)
        assert lo <= v < lo + width


class TestBernoulli:
    def test_p_zero_never_fires(self):
        u = np.linspace(0, 0.999, 100)
        assert not np.any(bernoulli(u, 0.0))

    def test_p_one_always_fires(self):
        u = np.linspace(0, 0.999, 100)
        assert np.all(bernoulli(u, 1.0))

    def test_scalar_returns_bool(self):
        assert bernoulli(0.1, 0.5) is True
        assert bernoulli(0.9, 0.5) is False

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            bernoulli(0.5, 1.5)
        with pytest.raises(ValueError):
            bernoulli(0.5, -0.1)

    def test_empirical_rate(self):
        rng = np.random.default_rng(0)
        u = rng.random(50_000)
        rate = bernoulli(u, 0.13).mean()
        assert abs(rate - 0.13) < 0.01
