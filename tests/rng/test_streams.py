"""Tests for shared-sequence carving strategies (block split, leapfrog)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.lcg import MINSTD, KNUTH_LCG, LinearCongruential
from repro.rng.streams import BlockSplitter, LeapfrogStream, SharedSequence


class TestSharedSequence:
    def test_draws_match_serial_generator(self):
        seq = SharedSequence(MINSTD, seed=11)
        serial = LinearCongruential(MINSTD, seed=11)
        expect = [serial.next_uniform() for _ in range(20)]
        np.testing.assert_allclose(seq.draws(0, 20), expect)
        np.testing.assert_allclose(seq.draws(5, 10), expect[5:15])

    def test_random_access_is_pure(self):
        seq = SharedSequence(MINSTD, seed=3)
        a = seq.draws(100, 5)
        b = seq.draws(100, 5)
        np.testing.assert_array_equal(a, b)

    def test_generator_at_position(self):
        seq = SharedSequence(MINSTD, seed=3)
        g = seq.generator_at(7)
        assert g.next_uniform() == seq.draws(7, 1)[0]

    @given(st.integers(0, 500), st.integers(0, 50))
    @settings(max_examples=25)
    def test_windows_concatenate(self, start, count):
        seq = SharedSequence(KNUTH_LCG, seed=1)
        whole = seq.draws(start, count)
        split = count // 2
        parts = np.concatenate([seq.draws(start, split), seq.draws(start + split, count - split)])
        np.testing.assert_array_equal(whole, parts)


class TestBlockSplitter:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_workers_reconstruct_serial_batch(self, workers):
        seq = SharedSequence(MINSTD, seed=42)
        split = BlockSplitter(seq, batch=37, workers=workers)
        for step in range(3):
            serial = split.step_draws(step)
            stitched = np.concatenate(
                [split.worker_draws(step, w) for w in range(workers)]
            )
            np.testing.assert_array_equal(stitched, serial)

    def test_steps_are_disjoint_windows(self):
        seq = SharedSequence(MINSTD, seed=42)
        split = BlockSplitter(seq, batch=10, workers=2)
        s0 = split.step_draws(0)
        s1 = split.step_draws(1)
        np.testing.assert_array_equal(np.concatenate([s0, s1]), seq.draws(0, 20))

    def test_validation(self):
        seq = SharedSequence(MINSTD, seed=42)
        with pytest.raises(ValueError):
            BlockSplitter(seq, batch=10, workers=0)
        with pytest.raises(ValueError):
            BlockSplitter(seq, batch=-1, workers=2)


class TestLeapfrogStream:
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_leapfrog_interleaves_to_serial(self, workers):
        serial = SharedSequence(MINSTD, seed=9).serial_draws(workers * 10)
        streams = [LeapfrogStream(MINSTD, 9, w, workers) for w in range(workers)]
        rebuilt = np.empty_like(serial)
        for w, stream in enumerate(streams):
            for i in range(10):
                rebuilt[w + i * workers] = stream.next_uniform()
        np.testing.assert_array_equal(rebuilt, serial)

    def test_worker_out_of_range(self):
        with pytest.raises(ValueError):
            LeapfrogStream(MINSTD, 9, worker=3, workers=3)
        with pytest.raises(ValueError):
            LeapfrogStream(MINSTD, 9, worker=-1, workers=3)
