"""Property-based seed sweeps for the RNG substrate.

The sanitizer's replay guarantee leans entirely on two RNG contracts —
``jump(n)`` lands exactly where ``n`` sequential draws land, and
block-split streams never overlap within their drawn prefixes — so this
suite pins both as *properties over seeds*, not single examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.lcg import KNUTH_LCG, MINSTD, MINSTD0, LinearCongruential
from repro.rng.streams import BlockSplitter, LeapfrogStream, SharedSequence
from repro.sanitizer.schedule import SCHEDULE_STREAM_SPACING, schedule_stream

PARAMS = (MINSTD0, MINSTD, KNUTH_LCG)

seeds = st.integers(0, 2**32 - 1)
small_n = st.integers(0, 300)


class TestJumpEqualsSequentialDraws:
    @given(seed=seeds, n=small_n, params=st.sampled_from(PARAMS))
    @settings(max_examples=60, deadline=None)
    def test_jump_n_equals_n_draws(self, seed, n, params):
        stepped = LinearCongruential(params, seed)
        for _ in range(n):
            stepped.next_raw()
        jumped = LinearCongruential(params, seed)
        jumped.jump(n)
        assert jumped.state == stepped.state
        assert jumped.position == stepped.position == n
        assert jumped.next_raw() == stepped.next_raw()

    @given(seed=seeds, a=st.integers(0, 150), b=st.integers(0, 150))
    @settings(max_examples=40, deadline=None)
    def test_jump_is_additive_over_seeds(self, seed, a, b):
        split = LinearCongruential(KNUTH_LCG, seed)
        split.jump(a)
        split.jump(b)
        whole = LinearCongruential(KNUTH_LCG, seed)
        whole.jump(a + b)
        assert split.state == whole.state


class TestBlockSplitStreamsNeverOverlap:
    @given(seed=seeds, batch=st.integers(1, 40), workers=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_worker_prefixes_tile_the_serial_sequence(self, seed, batch, workers):
        sequence = SharedSequence(MINSTD, seed)
        splitter = BlockSplitter(sequence, batch, workers)
        drawn = [
            value
            for step in range(2)
            for worker in range(workers)
            for value in splitter.worker_draws(step, worker)
        ]
        serial = list(sequence.serial_draws(2 * batch))
        # Concatenated worker windows ARE the serial prefix: every draw
        # appears exactly once — disjointness and coverage in one shot.
        assert drawn == serial

    @given(seed=seeds, count=st.integers(1, 60), lead=st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_windows_at_distinct_offsets_are_disjoint(self, seed, count, lead):
        sequence = SharedSequence(KNUTH_LCG, seed)
        first = sequence.draws(0, count)
        second = sequence.draws(count + lead, count)
        # Positions never overlap, so re-drawing both windows retraces
        # the same values (purity) and uses distinct stream positions.
        assert list(first) == list(sequence.draws(0, count))
        assert list(second) == list(sequence.draws(count + lead, count))

    @given(seed=seeds, workers=st.integers(1, 5), rounds=st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_leapfrog_union_is_the_serial_sequence(self, seed, workers, rounds):
        serial = LinearCongruential(MINSTD, seed)
        expected = [serial.next_raw() for _ in range(workers * rounds)]
        streams = [LeapfrogStream(MINSTD, seed, w, workers) for w in range(workers)]
        interleaved = [
            streams[w].next_raw() for _ in range(rounds) for w in range(workers)
        ]
        assert interleaved == expected


class TestScheduleStreams:
    @given(seed=seeds, sid=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_schedule_stream_is_a_block_split(self, seed, sid):
        stream = schedule_stream(seed, sid)
        assert stream.position == sid * SCHEDULE_STREAM_SPACING
        base = LinearCongruential(KNUTH_LCG, seed).jumped(sid * SCHEDULE_STREAM_SPACING)
        assert stream.next_raw() == base.next_raw()

    @given(seed=seeds, sid=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_adjacent_schedule_streams_share_no_prefix_draws(self, seed, sid):
        # Positions [sid*S, sid*S + 512) and [(sid+1)*S, ...) are disjoint
        # by construction; the drawn values at equal offsets still differ
        # somewhere (streams are not phase-locked copies).
        a = schedule_stream(seed, sid)
        b = schedule_stream(seed, sid + 1)
        assert [a.next_raw() for _ in range(8)] != [b.next_raw() for _ in range(8)]
