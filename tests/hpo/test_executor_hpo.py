"""The HPO trial farm over executor backends matches the serial search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import BACKENDS
from repro.hpo import hyperparameter_grid, make_digit_dataset, run_hpo_serial
from repro.hpo.search import run_hpo_executor


@pytest.fixture(scope="module")
def data():
    x, y = make_digit_dataset(100, seed=1)
    return x[:80], y[:80], x[80:], y[80:]


@pytest.fixture(scope="module")
def grid():
    return hyperparameter_grid([(8,), (12,)], [0.1], [2], seeds=[0])


class TestExecutorFarm:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_serial_search(self, backend, data, grid):
        tx, ty, vx, vy = data
        serial = run_hpo_serial(grid, tx, ty, vx, vy)
        farmed = run_hpo_executor(grid, tx, ty, vx, vy, backend=backend, num_workers=2)
        assert [o.params for o in farmed] == [o.params for o in serial]
        assert [o.val_accuracy for o in farmed] == [o.val_accuracy for o in serial]
        for a, b in zip(serial, farmed):
            assert np.array_equal(a.model.predict_proba(vx), b.model.predict_proba(vx))

    def test_ranking_best_first_with_stable_ties(self, data, grid):
        tx, ty, vx, vy = data
        out = run_hpo_executor(grid, tx, ty, vx, vy, backend="process", num_workers=2)
        accs = [o.val_accuracy for o in out]
        assert accs == sorted(accs, reverse=True)

    def test_unknown_backend_rejected(self, data, grid):
        tx, ty, vx, vy = data
        with pytest.raises(ValueError, match="backend"):
            run_hpo_executor(grid, tx, ty, vx, vy, backend="tpu")
