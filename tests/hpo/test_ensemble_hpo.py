"""Tests for digits, ensembles, the HPO search, scheduling, and the
distributed driver."""

import numpy as np
import pytest

from repro.hpo import (
    DeepEnsemble,
    HyperParams,
    MLP,
    greedy_lpt_schedule,
    hyperparameter_grid,
    make_ambiguous_digit,
    make_digit_dataset,
    render_digit,
    run_distributed_hpo,
    run_hpo_serial,
    simulate_schedule,
)
from repro.hpo.scheduler import round_robin_schedule
from repro.hpo.search import ensemble_of_top, train_one


@pytest.fixture(scope="module")
def digit_data():
    x, y = make_digit_dataset(600, noise=0.1, seed=0)
    return x[:400], y[:400], x[400:], y[400:]


@pytest.fixture(scope="module")
def small_grid():
    return hyperparameter_grid(
        hidden_options=[(16,), (24,)],
        lr_options=[0.1],
        epochs_options=[6],
        seeds=[0, 1, 2],
    )


@pytest.fixture(scope="module")
def serial_outcomes(digit_data, small_grid):
    return run_hpo_serial(small_grid, *digit_data)


class TestDigits:
    def test_shapes_and_range(self):
        x, y = make_digit_dataset(50, seed=1)
        assert x.shape == (50, 64)
        assert np.all((x >= 0) & (x <= 1))
        assert set(np.unique(y)) <= set(range(10))

    def test_deterministic(self):
        a, _ = make_digit_dataset(20, seed=5)
        b, _ = make_digit_dataset(20, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_class_balanced(self):
        _, y = make_digit_dataset(100, seed=0)
        assert np.bincount(y, minlength=10).tolist() == [10] * 10

    def test_ambiguous_blend_validates(self):
        with pytest.raises(ValueError):
            make_ambiguous_digit(4, 19)
        with pytest.raises(ValueError):
            make_ambiguous_digit(4, 9, alpha=1.5)

    def test_render(self):
        img = make_ambiguous_digit(4, 9, seed=0)
        text = render_digit(img)
        assert len(text.splitlines()) == 8
        with pytest.raises(ValueError):
            render_digit(np.zeros(10))

    def test_classes_distinguishable(self, digit_data):
        train_x, train_y, val_x, val_y = digit_data
        model = MLP((64, 32, 10), seed=0).fit(train_x, train_y, epochs=10)
        assert model.accuracy(val_x, val_y) > 0.9


class TestEnsemble:
    @pytest.fixture(scope="class")
    def trained_ensemble(self, digit_data):
        train_x, train_y, *_ = digit_data
        models = [
            MLP((64, 24, 10), seed=s).fit(train_x, train_y, epochs=15)
            for s in range(4)
        ]
        return DeepEnsemble(models)

    def test_probability_simplex(self, digit_data, trained_ensemble):
        ens = trained_ensemble
        _, _, val_x, _ = digit_data
        probs = ens.predict_proba(val_x[:10])
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), atol=1e-9)

    def test_ensemble_at_least_decent(self, digit_data, trained_ensemble):
        train_x, train_y, val_x, val_y = digit_data
        ens = trained_ensemble
        assert ens.accuracy(val_x, val_y) > 0.85

    def test_figure4_ambiguous_has_higher_uncertainty(self, digit_data, trained_ensemble):
        ens = trained_ensemble
        clean, _ = make_digit_dataset(20, noise=0.05, seed=9)
        ambiguous = np.stack(
            [make_ambiguous_digit(4, 9, 0.5, seed=s) for s in range(20)]
        )
        clean_entropy = ens.predictive_entropy(clean).mean()
        amb_entropy = ens.predictive_entropy(ambiguous).mean()
        assert amb_entropy > 1.5 * clean_entropy
        assert ens.class_probability_std(ambiguous).mean() > 2 * ens.class_probability_std(clean).mean()

    def test_predict_with_uncertainty_shape(self, digit_data, trained_ensemble):
        ens = trained_ensemble
        out = ens.predict_with_uncertainty(make_ambiguous_digit(4, 9, seed=0))
        assert len(out) == 1
        label, sigma = out[0]
        assert 0 <= label <= 9 and sigma >= 0.0

    def test_single_model_zero_std(self, digit_data):
        train_x, train_y, val_x, _ = digit_data
        ens = DeepEnsemble([MLP((64, 16, 10), seed=0).fit(train_x, train_y, epochs=3)])
        np.testing.assert_allclose(ens.class_probability_std(val_x[:5]), 0.0)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            DeepEnsemble([])

    def test_mismatched_members_rejected(self):
        with pytest.raises(ValueError):
            DeepEnsemble([MLP((4, 2), seed=0), MLP((5, 2), seed=0)])


class TestSearch:
    def test_grid_size(self, small_grid):
        assert len(small_grid) == 2 * 1 * 1 * 3

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            hyperparameter_grid(hidden_options=[], lr_options=[])

    def test_outcomes_sorted_best_first(self, serial_outcomes):
        accs = [o.val_accuracy for o in serial_outcomes]
        assert accs == sorted(accs, reverse=True)

    def test_train_one_deterministic(self, digit_data, small_grid):
        a = train_one(small_grid[0], *digit_data)
        b = train_one(small_grid[0], *digit_data)
        for wa, wb in zip(a.model.get_weights(), b.model.get_weights()):
            np.testing.assert_array_equal(wa, wb)

    def test_ensemble_of_top(self, serial_outcomes):
        ens = ensemble_of_top(serial_outcomes, 3)
        assert len(ens) == 3
        with pytest.raises(ValueError):
            ensemble_of_top(serial_outcomes, 0)

    def test_describe_tag(self):
        tag = HyperParams(hidden_sizes=(32, 16), learning_rate=0.05, epochs=4, seed=2).describe()
        assert tag == "h32x16-lr0.05-e4-s2"


class TestScheduling:
    def test_round_robin_balanced_counts(self):
        report = round_robin_schedule([1.0] * 10, 4)
        assert sorted(len(n) for n in report.assignment) == [2, 2, 3, 3]
        assert report.makespan == 3.0
        assert report.imbalance == pytest.approx(3.0 / 2.5)

    def test_lpt_beats_round_robin_on_skewed_costs(self):
        costs = [8.0, 1.0, 1.0, 1.0, 7.0, 1.0, 1.0, 1.0]
        rr = round_robin_schedule(costs, 2)
        lpt = greedy_lpt_schedule(costs, 2)
        assert lpt.makespan < rr.makespan
        # Integer costs summing to 21: the best achievable makespan is 11.
        assert lpt.makespan == 11.0

    def test_simulate_schedule_validates(self):
        with pytest.raises(ValueError, match="assigned twice"):
            simulate_schedule([1.0, 2.0], [[0, 0], [1]])
        with pytest.raises(ValueError, match="out of range"):
            simulate_schedule([1.0], [[0, 1]])
        with pytest.raises(ValueError, match="every task"):
            simulate_schedule([1.0, 2.0], [[0], []])

    def test_empty_tasks(self):
        report = round_robin_schedule([], 3)
        assert report.makespan == 0.0
        assert report.imbalance == 1.0


class TestDistributed:
    @pytest.mark.parametrize("ranks", [1, 3, 4])
    def test_distributed_matches_serial(self, digit_data, small_grid, serial_outcomes, ranks):
        # 6 tasks over 4 ranks: the uneven case the assignment teaches.
        ensemble, outcomes = run_distributed_hpo(ranks, small_grid, *digit_data, top_m=3)
        assert len(ensemble) == 3
        assert [o.params for o in outcomes] == [o.params for o in serial_outcomes]
        assert [o.val_accuracy for o in outcomes] == [
            o.val_accuracy for o in serial_outcomes
        ]
        # The winning models are bit-identical to serial training.
        for da, sa in zip(outcomes[0].model.get_weights(), serial_outcomes[0].model.get_weights()):
            np.testing.assert_array_equal(da, sa)

    def test_more_ranks_than_tasks(self, digit_data):
        grid = hyperparameter_grid(
            hidden_options=[(8,)], lr_options=[0.1], epochs_options=[2], seeds=[0, 1]
        )
        ensemble, outcomes = run_distributed_hpo(5, grid, *digit_data, top_m=1)
        assert len(outcomes) == 2

    def test_empty_grid_rejected(self, digit_data):
        from repro.mpi import RankFailedError

        with pytest.raises(RankFailedError, match="empty"):
            run_distributed_hpo(2, [], *digit_data)
