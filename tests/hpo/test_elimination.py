"""Tests for the elimination tournament (successive halving) variation."""

import numpy as np
import pytest

from repro.hpo import (
    hyperparameter_grid,
    make_digit_dataset,
    run_elimination_mpi,
    successive_halving,
)
from repro.hpo.elimination import _plan


@pytest.fixture(scope="module")
def data():
    x, y = make_digit_dataset(400, noise=0.1, seed=0)
    return x[:280], y[:280], x[280:], y[280:]


@pytest.fixture(scope="module")
def grid():
    return hyperparameter_grid(
        hidden_options=[(8,), (16,), (24,), (32,)],
        lr_options=[0.1, 0.02],
        epochs_options=[1],  # epochs come from the tournament budget
        seeds=[0],
    )


@pytest.fixture(scope="module")
def serial_report(grid, data):
    return successive_halving(grid, *data, total_epoch_budget=24, keep_fraction=0.5)


class TestPlan:
    def test_population_shrinks_to_one(self):
        schedule = _plan(8, 48, 0.5)
        populations = [pop for pop, _ in schedule]
        assert populations[0] == 8
        assert populations[-1] == 1
        assert all(a > b for a, b in zip(populations, populations[1:]))

    def test_survivors_get_more_epochs(self):
        schedule = _plan(8, 48, 0.5)
        epochs = [e for _, e in schedule]
        assert epochs[-1] > epochs[0]

    def test_single_config(self):
        schedule = _plan(1, 10, 0.5)
        assert schedule == [(1, 10)]


class TestSuccessiveHalving:
    def test_rounds_shrink_population(self, serial_report, grid):
        populations = [len(r.scores) for r in serial_report.rounds]
        assert populations[0] == len(grid)
        assert populations[-1] == 1
        assert all(a >= b for a, b in zip(populations, populations[1:]))

    def test_eliminated_are_the_worst(self, serial_report):
        for record in serial_report.rounds[:-1]:
            if not record.eliminated:
                continue
            worst_survivor = min(record.scores[c] for c in record.survivors)
            best_eliminated = max(record.scores[c] for c in record.eliminated)
            # Ties break by config index, so allow equality.
            assert best_eliminated <= worst_survivor

    def test_final_models_survived_everything(self, serial_report):
        final = set(serial_report.final_models)
        assert final == set(serial_report.rounds[-1].survivors)
        assert len(final) == 1

    def test_winner_and_ensemble(self, serial_report):
        winner = serial_report.winner
        assert winner in serial_report.final_models
        ens = serial_report.ensemble()
        assert len(ens) == len(serial_report.final_models)

    def test_winner_is_reasonably_good(self, serial_report, data):
        *_ , val_x, val_y = data
        model = serial_report.final_models[serial_report.winner]
        assert model.accuracy(val_x, val_y) > 0.7

    def test_validation(self, data):
        with pytest.raises(ValueError, match="empty"):
            successive_halving([], *data)
        g = hyperparameter_grid(hidden_options=[(8,)], lr_options=[0.1])
        with pytest.raises(ValueError, match="keep_fraction"):
            successive_halving(g, *data, keep_fraction=1.0)


class TestDistributedElimination:
    @pytest.mark.parametrize("ranks", [1, 2, 3])
    def test_matches_serial_exactly(self, grid, data, serial_report, ranks):
        report = run_elimination_mpi(
            ranks, grid, *data, total_epoch_budget=24, keep_fraction=0.5
        )
        assert len(report.rounds) == len(serial_report.rounds)
        for got, want in zip(report.rounds, serial_report.rounds):
            assert got.survivors == want.survivors
            assert got.eliminated == want.eliminated
            assert got.scores == want.scores
        assert report.winner == serial_report.winner
        got_w = report.final_models[report.winner].get_weights()
        want_w = serial_report.final_models[serial_report.winner].get_weights()
        for a, b in zip(got_w, want_w):
            np.testing.assert_array_equal(a, b)

    def test_resources_reassigned_each_round(self, grid, data):
        # With 4 ranks and 8 configs, after one halving only 4 survive —
        # every rank still gets work (1 config each), which is the point.
        report = run_elimination_mpi(4, grid, *data, total_epoch_budget=24)
        assert len(report.rounds[1].scores) == 4

    def test_empty_grid_rejected(self, data):
        with pytest.raises(ValueError, match="empty"):
            run_elimination_mpi(2, [], *data)
