"""Fault-tolerant distributed HPO: deaths cost time, never accuracy.

The PR's acceptance criterion lives here: a seeded FaultPlan killing a
rank mid-search must still yield a DeepEnsemble bit-identical to the
fault-free *serial* search, and one seed must reproduce one fault trace.
"""

import numpy as np
import pytest

from repro.hpo import (
    hyperparameter_grid,
    make_digit_dataset,
    run_distributed_hpo_ft,
    run_hpo_serial,
)
from repro.hpo.search import ensemble_of_top
from repro.mpi import FaultEvent, FaultPlan, RankFailedError


@pytest.fixture(scope="module")
def digit_data():
    x, y = make_digit_dataset(300, noise=0.1, seed=0)
    return x[:200], y[:200], x[200:], y[200:]


@pytest.fixture(scope="module")
def small_grid():
    return hyperparameter_grid(
        hidden_options=[(12,)],
        lr_options=[0.1],
        epochs_options=[3],
        seeds=[0, 1, 2, 3, 4, 5],
    )


@pytest.fixture(scope="module")
def serial_ensemble(digit_data, small_grid):
    return ensemble_of_top(run_hpo_serial(small_grid, *digit_data), 2)


def assert_ensembles_bit_identical(a, b):
    assert len(a.models) == len(b.models)
    for ma, mb in zip(a.models, b.models):
        for wa, wb in zip(ma.get_weights(), mb.get_weights()):
            np.testing.assert_array_equal(wa, wb)


class TestFaultTolerantHpo:
    def test_fault_free_matches_serial(self, digit_data, small_grid, serial_ensemble):
        ensemble, outcomes, report = run_distributed_hpo_ft(
            4, small_grid, *digit_data, top_m=2
        )
        assert len(outcomes) == len(small_grid)
        assert report.failures == {}
        assert_ensembles_bit_identical(ensemble, serial_ensemble)

    def test_rank_death_mid_search_is_bit_transparent(
        self, digit_data, small_grid, serial_ensemble
    ):
        # Rank 2 dies at its first runtime operation — after training its
        # share, before delivering it. The root must reassign and the
        # ensemble must not change by a single bit.
        ensemble, outcomes, report = run_distributed_hpo_ft(
            4, small_grid, *digit_data, top_m=2, faults=FaultPlan.crash(2, 0)
        )
        assert len(outcomes) == len(small_grid)
        assert report.dead_ranks == [2]
        assert report.trace() == (("crash", 2, 0, "gather_tolerant"),)
        assert_ensembles_bit_identical(ensemble, serial_ensemble)

    def test_sampled_plan_same_seed_same_trace_same_ensemble(
        self, digit_data, small_grid, serial_ensemble
    ):
        # One seed → one plan → one fired trace, run after run; and the
        # injected death still cannot perturb the result.
        def search():
            plan = FaultPlan.sample(23, size=4, horizon=2, crash_prob=0.9)
            assert any(e.kind == "crash" for e in plan.events)
            return run_distributed_hpo_ft(
                4, small_grid, *digit_data, top_m=2, faults=plan
            )

        first = search()
        second = search()
        assert first[2].trace() == second[2].trace()
        assert len(first[2].trace()) >= 1
        assert_ensembles_bit_identical(first[0], serial_ensemble)
        assert_ensembles_bit_identical(second[0], serial_ensemble)

    def test_root_death_is_unrecoverable(self, digit_data, small_grid):
        plan = FaultPlan([FaultEvent("crash", 0, 0)])
        with pytest.raises(RankFailedError):
            run_distributed_hpo_ft(
                3, small_grid, *digit_data, top_m=2, faults=plan, timeout=1.0
            )
