"""Tests for the pure-numpy neural-network substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hpo.nn import MLP, SGD, Adam, Dense, softmax, softmax_cross_entropy
from repro.hpo.nn.activations import ACTIVATIONS
from repro.hpo.nn.losses import one_hot


class TestActivations:
    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "identity"])
    def test_gradient_matches_finite_difference(self, name):
        act = ACTIVATIONS[name]
        x = np.linspace(-2.0, 2.0, 41) + 0.013  # avoid relu kink at 0
        out = act.forward(x)
        analytic = act.backward(out)
        eps = 1e-6
        numeric = (act.forward(x + eps) - act.forward(x - eps)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_sigmoid_stable_at_extremes(self):
        out = ACTIVATIONS["sigmoid"].forward(np.array([-1000.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
        assert np.all(probs >= 0)

    def test_softmax_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(probs).all()

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_cross_entropy_gradient_finite_difference(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(4):
            for j in range(5):
                bumped = logits.copy()
                bumped[i, j] += eps
                up, _ = softmax_cross_entropy(bumped, labels)
                bumped[i, j] -= 2 * eps
                down, _ = softmax_cross_entropy(bumped, labels)
                np.testing.assert_allclose(grad[i, j], (up - down) / (2 * eps), atol=1e-4)

    def test_one_hot(self):
        oh = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(oh, [[1, 0, 0], [0, 0, 1]])
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_label_shape_validated(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))


class TestDense:
    def test_backward_gradient_check(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, "tanh", rng)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x, train=True)
        upstream = rng.normal(size=out.shape)
        layer.backward(upstream)
        eps = 1e-6
        # check dW numerically at a few entries
        for (i, j) in [(0, 0), (2, 1), (3, 2)]:
            layer.W[i, j] += eps
            up = (layer.forward(x) * upstream).sum()
            layer.W[i, j] -= 2 * eps
            down = (layer.forward(x) * upstream).sum()
            layer.W[i, j] += eps
            np.testing.assert_allclose(layer.dW[i, j], (up - down) / (2 * eps), atol=1e-4)

    def test_backward_without_forward_raises(self):
        layer = Dense(2, 2, "relu", np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_unknown_activation(self):
        with pytest.raises(ValueError, match="unknown activation"):
            Dense(2, 2, "swish", np.random.default_rng(0))


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        p = np.array([5.0])
        opt = SGD(lr=0.1)
        for _ in range(100):
            opt.step([p], [2 * p])  # d/dp p^2
        assert abs(p[0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            p = np.array([5.0])
            opt = SGD(lr=0.01, momentum=momentum)
            traj = []
            for _ in range(50):
                opt.step([p], [2 * p])
                traj.append(abs(p[0]))
            return traj[-1]

        assert run(0.9) < run(0.0)

    def test_adam_descends(self):
        p = np.array([3.0, -4.0])
        opt = Adam(lr=0.1)
        for _ in range(300):
            opt.step([p], [2 * p])
        np.testing.assert_allclose(p, [0.0, 0.0], atol=1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=-1.0)


class TestMLP:
    def test_deterministic_construction_and_training(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 8))
        y = (x[:, 0] > 0).astype(np.int64)
        a = MLP((8, 16, 2), seed=3).fit(x, y, epochs=3)
        b = MLP((8, 16, 2), seed=3).fit(x, y, epochs=3)
        for wa, wb in zip(a.get_weights(), b.get_weights()):
            np.testing.assert_array_equal(wa, wb)

    def test_learns_linearly_separable(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 4))
        y = (x @ np.array([1.0, -2.0, 0.5, 0.0]) > 0).astype(np.int64)
        model = MLP((4, 16, 2), seed=0).fit(x, y, epochs=30)
        assert model.accuracy(x, y) > 0.95

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 6))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        model = MLP((6, 12, 2), seed=0).fit(x, y, epochs=15)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_predict_proba_simplex(self):
        model = MLP((5, 8, 3), seed=0)
        probs = model.predict_proba(np.random.default_rng(0).normal(size=(10, 5)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10))

    def test_weights_roundtrip(self):
        a = MLP((4, 6, 2), seed=1)
        b = MLP((4, 6, 2), seed=2)
        b.set_weights(a.get_weights())
        x = np.random.default_rng(0).normal(size=(3, 4))
        np.testing.assert_array_equal(a.logits(x), b.logits(x))

    def test_set_weights_validates(self):
        a = MLP((4, 6, 2), seed=1)
        with pytest.raises(ValueError):
            a.set_weights(a.get_weights()[:-1])
        with pytest.raises(ValueError):
            b = MLP((4, 7, 2), seed=1)
            a.set_weights(b.get_weights())

    def test_input_shape_validated(self):
        model = MLP((4, 2), seed=0)
        with pytest.raises(ValueError):
            model.logits(np.zeros((3, 5)))

    def test_too_few_layers(self):
        with pytest.raises(ValueError):
            MLP((4,))

    @given(
        hnp.arrays(np.float64, (8, 3), elements=st.floats(-5, 5, allow_nan=False))
    )
    @settings(max_examples=20, deadline=None)
    def test_property_probabilities_valid(self, x):
        model = MLP((3, 5, 4), seed=0)
        probs = model.predict_proba(x)
        assert np.all(probs >= 0) and np.all(probs <= 1)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(8), atol=1e-9)
