"""Tests for periodic accuracy monitoring and early stopping."""

import numpy as np
import pytest

from repro.hpo import MLP, make_digit_dataset
from repro.hpo.monitoring import AccuracyMonitor, StopTraining, learning_curve


@pytest.fixture(scope="module")
def data():
    x, y = make_digit_dataset(400, noise=0.1, seed=0)
    return x[:300], y[:300], x[300:], y[300:]


class TestAccuracyMonitor:
    def test_records_at_interval(self, data):
        train_x, train_y, val_x, val_y = data
        monitor = AccuracyMonitor(val_x, val_y, interval=3)
        MLP((64, 16, 10), seed=0).fit(train_x, train_y, epochs=9, monitor=monitor)
        assert [e for e, _ in monitor.history] == [2, 5, 8]

    def test_accuracy_improves_over_training(self, data):
        train_x, train_y, val_x, val_y = data
        monitor = AccuracyMonitor(val_x, val_y, interval=1)
        MLP((64, 24, 10), seed=0).fit(train_x, train_y, epochs=12, monitor=monitor)
        first = monitor.history[0][1]
        assert monitor.best_accuracy > first
        assert monitor.best_epoch >= 0

    def test_early_stopping_raises(self, data):
        train_x, train_y, val_x, val_y = data
        monitor = AccuracyMonitor(val_x, val_y, interval=1, patience=2)
        with pytest.raises(StopTraining, match="no improvement"):
            # Train far past convergence so accuracy plateaus.
            MLP((64, 24, 10), seed=0).fit(train_x, train_y, epochs=200, monitor=monitor)
        assert len(monitor.history) < 200

    def test_validation(self, data):
        _, _, val_x, val_y = data
        with pytest.raises(ValueError):
            AccuracyMonitor(val_x, val_y, interval=0)
        with pytest.raises(ValueError):
            AccuracyMonitor(val_x, val_y, patience=0)


class TestLearningCurve:
    def test_curve_shape_and_early_stop_absorbed(self, data):
        train_x, train_y, val_x, val_y = data
        model = MLP((64, 24, 10), seed=1)
        curve = learning_curve(
            model, train_x, train_y, val_x, val_y,
            epochs=200, interval=2, patience=3,
        )
        assert curve  # stopped early but returned the history
        epochs = [e for e, _ in curve]
        assert epochs == sorted(epochs)
        assert all(0.0 <= a <= 1.0 for _, a in curve)
        # Model is trained (usable) after the helper returns.
        assert model.accuracy(val_x, val_y) > 0.5

    def test_no_patience_runs_all_epochs(self, data):
        train_x, train_y, val_x, val_y = data
        curve = learning_curve(
            MLP((64, 8, 10), seed=2), train_x, train_y, val_x, val_y,
            epochs=5, interval=1,
        )
        assert len(curve) == 5
