"""End-to-end acceptance for the continuous trial harness.

A seeded mini-campaign runs twice into one history file; the second run
carries an injected >10% slowdown on one (workload, config) cell and an
injected bit-identity break on another. The analyzer must name exactly
those two pairs — bit-identically across repeated runs — and tolerate
malformed and legacy history lines alongside the campaign's records.
"""

import json
import sys
import time
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from repro.trace import Tracer  # noqa: E402
from repro.trace.history import (  # noqa: E402
    analyze_trends,
    load_history,
    render_trends,
)
from trials.campaign import (  # noqa: E402
    DEFAULT_SUITES,
    CampaignInjection,
    TrialSpec,
    build_matrix,
    run_campaign,
)

SLOW_CELL = ("kmeans", "backend=serial,seed=0")
BREAK_CELL = ("wordcount", "faults=none,seed=0")


def _mini_matrix():
    return build_matrix(
        suites=("kmeans", "wordcount"),
        backends=("serial",),
        fault_plans=("none",),
        seeds=(0,),
    )


def _fake_clock(step: float = 0.01):
    """A deterministic perf_counter: every interval measures exactly ``step``."""
    ticks = iter(range(10_000))

    def clock() -> float:
        return next(ticks) * step

    return clock


def _run_twice(history):
    """The seeded mini-campaign: clean baseline, then an injected second run."""
    first = run_campaign(
        _mini_matrix(), history_path=history, repeats=1,
        clock=_fake_clock(), now=lambda: "2026-08-01T00:00:00+00:00",
        git_sha="aaa0001",
    )
    second = run_campaign(
        _mini_matrix(), history_path=history, repeats=1,
        clock=_fake_clock(), now=lambda: "2026-08-02T00:00:00+00:00",
        git_sha="bbb0002",
        injection=CampaignInjection(
            slowdowns={SLOW_CELL: 1.5},
            digest_breaks=frozenset({BREAK_CELL}),
        ),
    )
    return first, second


class TestMatrix:
    def test_default_matrix_covers_every_suite(self):
        specs = build_matrix()
        assert {s.workload for s in specs} == {
            "kmeans", "kmeans_openmp", "wordcount", "heat_coforall", "knn_mapreduce",
            "serve_soak", "align",
        }
        # dimensions sweep where they apply
        kmeans = [s for s in specs if s.workload == "kmeans"]
        assert {dict(s.config)["backend"] for s in kmeans} == {"serial", "thread"}
        align = [s for s in specs if s.workload == "align"]
        assert {dict(s.config)["model"] for s in align} == {"sequential", "executor"}
        heat = [s for s in specs if s.workload == "heat_coforall"]
        assert {dict(s.config)["locales"] for s in heat} == {"1", "2"}

    def test_seeds_multiply_the_matrix(self):
        one = build_matrix(suites=("kmeans",), seeds=(0,))
        two = build_matrix(suites=("kmeans",), seeds=(0, 1))
        assert len(two) == 2 * len(one)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suites"):
            build_matrix(suites=("kmeans", "nope"))
        assert set(DEFAULT_SUITES) >= {"kmeans", "wordcount"}

    def test_config_label_matches_record_identity(self):
        spec = _mini_matrix()[0]
        assert spec.config_label == "backend=serial,seed=0"


class TestCampaignRun:
    def test_records_are_canonical_and_stamped(self, tmp_path):
        history = tmp_path / "history.jsonl"
        result = run_campaign(
            _mini_matrix(), history_path=history, repeats=1,
            clock=_fake_clock(), now=lambda: "2026-08-01T00:00:00+00:00",
            git_sha="abc1234",
        )
        assert result.errors == []
        assert result.appended == len(result.records) == 2
        for rec in result.records:
            assert rec.schema_version == 1
            assert rec.timestamp == "2026-08-01T00:00:00+00:00"
            assert rec.git_sha == "abc1234"
            assert rec.source == "campaign"
            assert rec.digest and rec.digest.startswith("sha256:")
            assert rec.timings_dict() == {"total": pytest.approx(0.01)}

    def test_digests_are_reproducible_across_runs(self, tmp_path):
        a = run_campaign(_mini_matrix(), repeats=1, clock=_fake_clock(),
                         now=lambda: "t0", git_sha="x")
        b = run_campaign(_mini_matrix(), repeats=1, clock=_fake_clock(),
                         now=lambda: "t1", git_sha="y")
        assert [r.digest for r in a.records] == [r.digest for r in b.records]

    def test_campaign_is_traced(self, tmp_path):
        tracer = Tracer()
        result = run_campaign(
            _mini_matrix(), repeats=1, clock=_fake_clock(),
            now=lambda: "t", git_sha="x", tracer=tracer,
        )
        assert result.metrics["trials.trials"]["value"] == 2
        assert result.metrics["trials.trial_seconds"]["count"] == 2
        names = {e.name for e in tracer.events()}
        assert "campaign" in names and "trial:kmeans" in names

    def test_failing_trial_does_not_kill_the_campaign(self, tmp_path):
        def boom():
            raise RuntimeError("kaput")

        specs = [
            TrialSpec("broken", (("seed", "0"),), boom),
            *_mini_matrix(),
        ]
        result = run_campaign(specs, repeats=1, clock=_fake_clock(),
                              now=lambda: "t", git_sha="x")
        assert len(result.records) == 2  # the healthy cells still ran
        assert len(result.errors) == 1 and "kaput" in result.errors[0]
        assert result.metrics["trials.failures"]["value"] == 1

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError, match="repeats"):
            run_campaign([], repeats=0)


class TestEndToEndTrends:
    """The acceptance scenario from the issue, verbatim."""

    def test_injected_regressions_are_named_exactly(self, tmp_path):
        history = tmp_path / "history.jsonl"
        _run_twice(history)

        records, skipped = load_history(history)
        assert skipped == 0 and len(records) == 4
        findings = analyze_trends(records)

        flagged = {(f.workload, f.config, f.kind) for f in findings}
        assert flagged == {
            (*BREAK_CELL, "bit_identity"),
            (*SLOW_CELL, "slowdown"),
        }
        by_kind = {f.kind: f for f in findings}
        assert by_kind["bit_identity"].severity == "critical"
        assert by_kind["slowdown"].severity == "major"  # 1.5x >= 1.25x
        assert by_kind["slowdown"].ratio == pytest.approx(1.5)

    def test_trends_report_is_bit_identical_across_repeated_analysis(self, tmp_path):
        history = tmp_path / "history.jsonl"
        _run_twice(history)

        def analyze_and_render() -> str:
            records, skipped = load_history(history)
            findings = analyze_trends(records)
            return render_trends(records, findings=findings, skipped=skipped)

        first = analyze_and_render()
        assert first == analyze_and_render() == analyze_and_render()

        regressions = first.split("## Regressions")[1].split("## Per-workload")[0]
        assert "| critical | bit_identity | wordcount | faults=none,seed=0 |" in regressions
        assert "| major | slowdown | kmeans | backend=serial,seed=0 |" in regressions
        # exactly the two injected pairs — no collateral findings
        assert sum(1 for ln in regressions.splitlines()
                   if ln.startswith("|") and "severity" not in ln and "---" not in ln) == 2
        assert "aaa0001 → bbb0002" in first

    def test_tolerates_malformed_and_legacy_history_lines(self, tmp_path):
        history = tmp_path / "history.jsonl"
        history.write_text(
            "{broken json\n"
            + json.dumps({"name": "legacy_bench", "run_sec": 1.0}) + "\n"
            + json.dumps({"workload": "no timings"}) + "\n"
        )
        _run_twice(history)

        records, skipped = load_history(history)
        assert skipped == 2  # the legacy line migrates; the junk is skipped
        assert {r.workload for r in records} == {"legacy_bench", "kmeans", "wordcount"}
        findings = analyze_trends(records)
        report = render_trends(records, findings=findings, skipped=skipped)
        assert "2 malformed history lines skipped." in report
        assert {(f.workload, f.config) for f in findings} == {SLOW_CELL, BREAK_CELL}

    def test_analyzer_overhead_under_five_percent_of_campaign(self, tmp_path):
        history = tmp_path / "history.jsonl"
        # Real wall-clock campaign (default clock) — the denominator.
        result = run_campaign(
            _mini_matrix(), history_path=history, repeats=1,
            now=lambda: "2026-08-01T00:00:00+00:00", git_sha="abc1234",
        )
        assert result.wall_seconds > 0

        t0 = time.perf_counter()
        records, skipped = load_history(history)
        findings = analyze_trends(records)
        render_trends(records, findings=findings, skipped=skipped)
        analyze_sec = time.perf_counter() - t0

        assert analyze_sec < 0.05 * result.wall_seconds, (
            f"analysis took {analyze_sec:.4f}s vs campaign "
            f"{result.wall_seconds:.4f}s"
        )


class TestCli:
    def test_analyze_only_writes_trends_and_fail_on_gates(self, tmp_path, capsys):
        from trials.__main__ import main

        history = tmp_path / "history.jsonl"
        _run_twice(history)
        trends = tmp_path / "TRENDS.md"
        args = [
            "--analyze-only",
            "--history", str(history),
            "--trends", str(trends),
            "--bench-dir", str(tmp_path / "empty"),
        ]
        assert main(args) == 0  # default --fail-on never
        report = trends.read_text()
        assert "| critical | bit_identity | wordcount |" in report
        out = capsys.readouterr().out
        assert "1 critical / 1 major / 0 minor" in out

        assert main([*args, "--fail-on", "critical"]) == 1
        assert main([*args, "--fail-on", "major"]) == 1

    def test_ingest_bench_folds_snapshots_into_history(self, tmp_path, capsys):
        from trials.__main__ import main

        bench_dir = tmp_path / "out"
        bench_dir.mkdir()
        (bench_dir / "BENCH_legacy.json").write_text(
            json.dumps({"name": "legacy", "run_sec": 0.25})
        )
        history = tmp_path / "history.jsonl"
        trends = tmp_path / "TRENDS.md"
        assert main([
            "--analyze-only", "--ingest-bench",
            "--history", str(history),
            "--trends", str(trends),
            "--bench-dir", str(bench_dir),
        ]) == 0
        records, skipped = load_history(history)
        assert skipped == 0
        assert [r.workload for r in records] == ["legacy"]
        assert records[0].timestamp  # ingest stamps undated snapshots
        assert "ingested 1 BENCH_*.json snapshot(s)" in capsys.readouterr().out
