"""Tests for the DataFrame-dialect NYC pipeline."""

import pytest

from repro.pipeline import arrests_per_100k, generate_arrests, generate_ntas
from repro.pipeline.nyc import arrests_dataframe, rates_via_dataframe
from repro.spark import SparkContext


@pytest.fixture(scope="module")
def world():
    ntas = generate_ntas(3, 4, seed=9)
    arrests = generate_arrests(2500, ntas, year=2021, seed=3)
    return ntas, arrests


class TestArrestsDataFrame:
    def test_schema_and_cleaning(self, world):
        ntas, arrests = world
        sc = SparkContext(num_workers=3)
        df = arrests_dataframe(sc, arrests, ntas)
        assert df.columns == ["nta", "borough", "year", "offense"]
        clean = sum(1 for a in arrests if a.valid)
        assert df.count() <= clean
        assert df.count() > 0.9 * clean  # only boundary misses dropped

    def test_borough_lookup_consistent(self, world):
        ntas, arrests = world
        sc = SparkContext(num_workers=2)
        df = arrests_dataframe(sc, arrests, ntas)
        borough_of = {n.code: n.borough for n in ntas}
        for row in df.limit(50).collect():
            assert row["borough"] == borough_of[row["nta"]]

    def test_offense_breakdown_via_group_by(self, world):
        ntas, arrests = world
        sc = SparkContext(num_workers=2)
        breakdown = (
            arrests_dataframe(sc, arrests, ntas)
            .group_by("offense")
            .count()
            .collect()
        )
        total = sum(r["count"] for r in breakdown)
        df = arrests_dataframe(sc, arrests, ntas)
        assert total == df.count()


class TestRatesViaDataFrame:
    def test_agrees_with_rdd_pipeline(self, world):
        ntas, arrests = world
        sc = SparkContext(num_workers=3)
        rdd_rates, _ = arrests_per_100k(sc, [arrests], ntas)
        df_rates = rates_via_dataframe(sc, arrests, ntas)
        assert set(df_rates) == set(rdd_rates)
        for code in rdd_rates:
            assert df_rates[code] == pytest.approx(rdd_rates[code])
