"""Tests for the pipeline framework, geometry, NYC exemplar, and survey."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import (
    TABLE1_EXPECTED,
    Pipeline,
    Polygon,
    ProjectSpec,
    StageKind,
    aggregate_survey,
    arrests_per_100k,
    generate_arrests,
    generate_ntas,
    heat_map_matrix,
    raw_survey_items,
    validate_project,
)
from repro.pipeline.nyc import locate_nta
from repro.pipeline.survey import raw_student_records
from repro.spark import SparkContext


class TestPolygon:
    def test_rectangle_contains(self):
        r = Polygon.rectangle(0.0, 0.0, 1.0, 1.0)
        assert r.contains(0.5, 0.5)
        assert not r.contains(1.5, 0.5)
        assert not r.contains(0.5, -0.1)

    def test_triangle_contains(self):
        t = Polygon([(0, 0), (4, 0), (0, 4)])
        assert t.contains(1.0, 1.0)
        assert not t.contains(3.0, 3.0)

    def test_area_and_centroid(self):
        r = Polygon.rectangle(0.0, 0.0, 2.0, 3.0)
        assert r.area() == pytest.approx(6.0)
        assert r.centroid() == pytest.approx((1.0, 1.5))

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_degenerate_rectangle(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(0, 0, 0, 1)

    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    @settings(max_examples=30)
    def test_property_grid_tiles_partition(self, x, y):
        # Every interior point belongs to exactly one tile of a 3x3 grid.
        ntas = generate_ntas(3, 3, seed=0)
        owners = [nta.code for nta in ntas if nta.polygon.contains(x, y)]
        assert len(owners) == 1


class TestPipelineFramework:
    def make_pipeline(self):
        return (
            Pipeline("demo")
            .add_stage("load", StageKind.AGGREGATION, lambda _: list(range(10)))
            .add_stage("drop-odd", StageKind.CLEANING, lambda xs: [x for x in xs if x % 2 == 0])
            .add_stage("sum", StageKind.ANALYSIS, lambda xs: sum(xs))
            .add_stage("format", StageKind.VISUALIZATION, lambda s: f"total={s}")
        )

    def test_run_threads_outputs(self):
        assert self.make_pipeline().run(None) == "total=20"

    def test_reports_one_per_stage(self):
        p = self.make_pipeline()
        p.run(None)
        assert [r.name for r in p.reports] == ["load", "drop-odd", "sum", "format"]
        assert all(r.seconds >= 0 for r in p.reports)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="no stages"):
            Pipeline("empty").run(None)

    def test_kinds_used(self):
        assert self.make_pipeline().kinds_used() == set(StageKind)


class TestRubric:
    def complete_spec(self):
        p = TestPipelineFramework().make_pipeline()
        return ProjectSpec(
            title="NYC crime",
            dataset_names=["arrests-historic", "nta-population"],
            problems=[p, p, p],
            report_text="We analyzed...",
            presented_in_class=True,
            code_submitted=True,
        )

    def test_complete_project_passes(self):
        assert validate_project(self.complete_spec()) == []

    def test_single_dataset_fails(self):
        spec = self.complete_spec()
        spec.dataset_names = ["arrests-historic", "arrests-historic"]
        assert any("two distinct" in v for v in validate_project(spec))

    def test_two_problems_fail(self):
        spec = self.complete_spec()
        spec.problems = spec.problems[:2]
        assert any("three data analysis problems" in v for v in validate_project(spec))

    def test_missing_visualization_fails(self):
        bare = Pipeline("bare").add_stage("x", StageKind.ANALYSIS, lambda d: d)
        spec = self.complete_spec()
        spec.problems = [bare, bare, bare]
        violations = validate_project(spec)
        assert any("aggregation" in v and "visualization" in v for v in violations)

    def test_no_report_fails(self):
        spec = self.complete_spec()
        spec.report_text = "  "
        assert any("report" in v for v in validate_project(spec))


class TestNycPipeline:
    @pytest.fixture(scope="class")
    def world(self):
        ntas = generate_ntas(4, 5, seed=1)
        historic = generate_arrests(3000, ntas, year=2020, seed=2)
        current = generate_arrests(1500, ntas, year=2021, seed=2)
        return ntas, historic, current

    def test_rates_cover_all_ntas(self, world):
        ntas, historic, current = world
        sc = SparkContext(num_workers=4)
        rates, diag = arrests_per_100k(sc, [historic, current], ntas)
        assert set(rates) == {nta.code for nta in ntas}
        assert all(rate >= 0 for rate in rates.values())

    def test_cleaning_drops_dirty_rows(self, world):
        ntas, historic, current = world
        sc = SparkContext(num_workers=4)
        _, diag = arrests_per_100k(sc, [historic, current], ntas)
        dirty = sum(1 for a in historic + current if not a.valid)
        assert diag["dropped"] == dirty
        assert dirty > 0  # generator produced some

    def test_rates_match_direct_computation(self, world):
        ntas, historic, current = world
        sc = SparkContext(num_workers=3)
        rates, _ = arrests_per_100k(sc, [historic, current], ntas)
        pop = {nta.code: nta.population for nta in ntas}
        manual: dict[str, int] = {}
        for a in historic + current:
            if a.valid:
                code = locate_nta(a.x, a.y, ntas)
                if code:
                    manual[code] = manual.get(code, 0) + 1
        for code, count in manual.items():
            assert rates[code] == pytest.approx(100_000.0 * count / pop[code])

    def test_year_filter(self, world):
        ntas, historic, current = world
        sc = SparkContext(num_workers=2)
        all_rates, _ = arrests_per_100k(sc, [historic, current], ntas)
        rates_2021, _ = arrests_per_100k(sc, [historic, current], ntas, year_filter=2021)
        assert sum(rates_2021.values()) < sum(all_rates.values())

    def test_heat_map_matrix_layout(self, world):
        ntas, historic, current = world
        sc = SparkContext(num_workers=2)
        rates, _ = arrests_per_100k(sc, [historic, current], ntas)
        matrix = heat_map_matrix(rates, 4, 5)
        assert matrix.shape == (4, 5)
        assert matrix[2, 3] == rates["NTA0203"]
        assert matrix.sum() == pytest.approx(sum(rates.values()))

    def test_generators_validate(self):
        with pytest.raises(ValueError):
            generate_arrests(10, [], year=2020)
        with pytest.raises(ValueError):
            generate_ntas(0, 3)


class TestSurveyTable1:
    def test_aggregation_reproduces_table1_exactly(self):
        sc = SparkContext(num_workers=2)
        table = aggregate_survey(sc, raw_survey_items(), raw_student_records())
        assert table == TABLE1_EXPECTED

    def test_paper_totals(self):
        # "Forty-three students contributed 33 positive items ... 13 of
        # them specifically about the project."
        items = raw_survey_items()
        assert sum(1 for i in items if i.positive) == 33
        assert sum(1 for i in items if i.positive and i.about_project) == 13
        students = raw_student_records()
        assert sum(1 for s in students if s.answered_survey) == 43

    def test_negative_items_last_two_years_only_five_project(self):
        # "The five negative items raised in the last two years" refers
        # to project-specific negatives: 4 (2022/23) + 1 (2021/22).
        items = raw_survey_items()
        recent = [
            i for i in items
            if not i.positive and i.about_project and i.winter in ("2022/23", "2021/22")
        ]
        assert len(recent) == 5
