"""Tests for the second worked pipeline project (transit vs weather)."""

import pytest

from repro.pipeline.transit import (
    CONDITION_DELAY_SHIFT,
    cancellation_by_condition,
    delay_by_condition,
    generate_trips,
    generate_weather,
    worst_routes,
)
from repro.spark import SparkContext


@pytest.fixture(scope="module")
def world():
    weather = generate_weather(120, seed=7)
    trips = generate_trips(weather, routes=6, trips_per_route_day=5, seed=7)
    return weather, trips


@pytest.fixture()
def sc():
    return SparkContext(num_workers=3)


class TestGenerators:
    def test_weather_shapes(self, world):
        weather, _ = world
        assert len(weather) == 120
        assert {w.condition for w in weather} <= set(CONDITION_DELAY_SHIFT)
        assert [w.day for w in weather] == list(range(120))

    def test_trips_reference_valid_days(self, world):
        weather, trips = world
        days = {w.day for w in weather}
        assert all(t.day in days for t in trips)
        assert len(trips) == 120 * 6 * 5

    def test_deterministic(self, world):
        weather, trips = world
        again = generate_trips(weather, routes=6, trips_per_route_day=5, seed=7)
        assert trips == again

    def test_cancelled_trips_have_zero_delay(self, world):
        _, trips = world
        assert all(t.delay_minutes == 0.0 for t in trips if t.cancelled)


class TestProblem1:
    def test_delay_ordering_follows_ground_truth(self, world, sc):
        weather, trips = world
        means = delay_by_condition(sc, weather, trips)
        # Generator adds 0 / 4 / 12 / 20 minutes by condition.
        assert means["clear"] < means["rain"] < means["snow"] < means["storm"]

    def test_magnitudes_near_ground_truth(self, world, sc):
        weather, trips = world
        means = delay_by_condition(sc, weather, trips)
        for condition, (shift, _) in CONDITION_DELAY_SHIFT.items():
            if condition in means:
                # Base route delays average 3 + mean(route r/2) = ~4.25.
                assert means[condition] == pytest.approx(4.25 + shift, abs=1.5)


class TestProblem2:
    def test_worst_routes_are_the_highest_numbered(self, world, sc):
        weather, trips = world
        ranking = worst_routes(sc, weather, trips, top=3)
        # Route r adds r/2 minutes, so R05 > R04 > R03 ...
        assert [route for route, _ in ranking] == ["R05", "R04", "R03"]
        delays = [d for _, d in ranking]
        assert delays == sorted(delays, reverse=True)

    def test_top_validation(self, world, sc):
        weather, trips = world
        with pytest.raises(ValueError):
            worst_routes(sc, weather, trips, top=0)


class TestProblem3:
    def test_cancellation_rises_with_severity(self, world, sc):
        weather, trips = world
        rates = cancellation_by_condition(sc, weather, trips)
        assert rates["clear"] < rates["snow"]
        if "storm" in rates:
            assert rates["snow"] <= rates["storm"] + 0.05
        assert all(0.0 <= r <= 1.0 for r in rates.values())
