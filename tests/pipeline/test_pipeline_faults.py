"""The NYC exemplar under fault injection: bit-identical or bust.

``nyc_arrests_pipeline`` surfaces the engine's ``fault_plan=`` knob on
the workflow itself; for every sampled plan the heat-map matrix, the
rates, and the accumulator diagnostics must match the fault-free run
exactly.
"""

import numpy as np
import pytest

from repro.pipeline import (
    SparkPipeline,
    StageKind,
    arrests_per_100k,
    generate_arrests,
    generate_ntas,
    nyc_arrests_pipeline,
)
from repro.spark import SparkContext, SparkFaultEvent, SparkFaultPlan, SparkJobFailedError

ROWS, COLS = 4, 5


@pytest.fixture(scope="module")
def datasets():
    ntas = generate_ntas(ROWS, COLS, seed=7)
    historic = generate_arrests(3_000, ntas, year=2020, seed=1)
    current = generate_arrests(1_500, ntas, year=2021, seed=1)
    return ntas, [historic, current]


@pytest.fixture(scope="module")
def fault_free(datasets):
    ntas, arrests = datasets
    pipeline = nyc_arrests_pipeline(ntas, ROWS, COLS, year_filter=2021)
    matrix = pipeline.run(arrests)
    return matrix, pipeline.rates, pipeline.diagnostics


class TestNycPipelineBuilder:
    def test_matches_plain_function(self, datasets, fault_free):
        ntas, arrests = datasets
        matrix, rates, diagnostics = fault_free
        with SparkContext(4) as sc:
            want_rates, want_diag = arrests_per_100k(sc, arrests, ntas, year_filter=2021)
        assert rates == want_rates
        assert diagnostics == want_diag
        assert matrix.shape == (ROWS, COLS)

    def test_covers_all_rubric_kinds(self, datasets):
        ntas, _ = datasets
        pipeline = nyc_arrests_pipeline(ntas, ROWS, COLS)
        assert pipeline.kinds_used() == {
            StageKind.AGGREGATION,
            StageKind.CLEANING,
            StageKind.ANALYSIS,
            StageKind.VISUALIZATION,
        }

    def test_reports_and_metrics_populated(self, datasets):
        ntas, arrests = datasets
        pipeline = nyc_arrests_pipeline(ntas, ROWS, COLS)
        pipeline.run(arrests)
        assert [r.name for r in pipeline.reports] == [
            "aggregate", "clean", "analyze", "visualize",
        ]
        assert pipeline.last_metrics.jobs > 0
        assert pipeline.last_fault_report is None  # no plan installed

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="at least one NTA"):
            nyc_arrests_pipeline([], ROWS, COLS)


class TestNycPipelineUnderFaults:
    @pytest.mark.parametrize("seed", range(8))
    def test_sampled_plans_bit_identical(self, seed, datasets, fault_free):
        ntas, arrests = datasets
        want_matrix, want_rates, want_diag = fault_free
        plan = SparkFaultPlan.sample(
            seed,
            jobs=10,
            partitions=8,
            task_fail_prob=0.08,
            blacklist_prob=0.04,
            straggle_prob=0.04,
            shuffle_corrupt_prob=0.15,
            broadcast_corrupt_prob=0.50,
            seconds=0.0005,
        )
        pipeline = nyc_arrests_pipeline(ntas, ROWS, COLS, year_filter=2021, fault_plan=plan)
        matrix = pipeline.run(arrests)
        assert np.array_equal(matrix, want_matrix)
        assert pipeline.rates == want_rates
        assert pipeline.diagnostics == want_diag

    def test_surviving_run_reports_recovery(self, datasets, fault_free):
        ntas, arrests = datasets
        plan = SparkFaultPlan(
            [SparkFaultEvent("task", 0, 1), SparkFaultEvent("shuffle", 0, 2)]
        )
        pipeline = nyc_arrests_pipeline(ntas, ROWS, COLS, year_filter=2021, fault_plan=plan)
        matrix = pipeline.run(arrests)
        assert np.array_equal(matrix, fault_free[0])
        report = pipeline.last_fault_report
        assert report is not None and len(report.injected) == 2
        extra = pipeline.last_metrics.extra
        assert extra["spark.task_retries"] == 1
        assert extra["spark.recomputed_partitions"] == 1

    def test_unrecoverable_plan_raises_with_report(self, datasets):
        ntas, arrests = datasets
        plan = SparkFaultPlan([SparkFaultEvent("task", 0, 0, attempts=20)])
        pipeline = nyc_arrests_pipeline(
            ntas, ROWS, COLS, year_filter=2021, fault_plan=plan, max_task_retries=2
        )
        with pytest.raises(SparkJobFailedError) as exc_info:
            pipeline.run(arrests)
        assert exc_info.value.report.injected  # structured evidence attached


class TestSparkPipeline:
    def test_stages_share_one_managed_context(self):
        seen = []
        pipeline = SparkPipeline("shared-ctx")
        pipeline.add_stage(
            "make", StageKind.AGGREGATION, lambda sc, n: (seen.append(sc), sc.parallelize(range(n)))[1]
        )
        pipeline.add_stage(
            "count", StageKind.ANALYSIS, lambda sc, rdd: (seen.append(sc), rdd.count())[1]
        )
        assert pipeline.run(10) == 10
        assert seen[0] is seen[1]
        # The managed context is stopped once the run finishes.
        with pytest.raises(RuntimeError, match="has been stopped"):
            seen[0].parallelize([1])

    def test_each_run_gets_a_fresh_context(self):
        seen = []
        pipeline = SparkPipeline("fresh-ctx")
        pipeline.add_stage(
            "touch", StageKind.ANALYSIS, lambda sc, x: (seen.append(sc), x)[1]
        )
        pipeline.run(1)
        pipeline.run(2)
        assert seen[0] is not seen[1]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="no stages"):
            SparkPipeline("empty").run(None)
