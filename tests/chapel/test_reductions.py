"""Tests for forall reduce intents."""

import operator

import numpy as np
import pytest

from repro.chapel import BlockDist, set_num_locales, here
from repro.chapel.reductions import forall_reduce


@pytest.fixture(autouse=True)
def reset_locales():
    set_num_locales(1)
    yield
    set_num_locales(1)


class TestForallReduce:
    def test_sum_over_range(self):
        assert forall_reduce(100, lambda i: i, operator.add) == sum(range(100))

    def test_max_over_block_domain(self):
        locs = set_num_locales(3)
        dom = BlockDist.create_domain(50, locs)
        assert forall_reduce(dom, lambda i: (i * 7) % 13, max) == 12

    def test_runs_on_owning_locale(self):
        locs = set_num_locales(3)
        dom = BlockDist.create_domain(9, locs)
        locales_seen = forall_reduce(
            dom, lambda i: {here().id}, lambda a, b: a | b
        )
        assert locales_seen == {0, 1, 2}

    def test_identity_seeds_fold(self):
        assert forall_reduce(5, lambda i: i, operator.add, identity=1000) == 1010

    def test_empty_space_needs_identity(self):
        assert forall_reduce(0, lambda i: i, operator.add, identity=0) == 0
        with pytest.raises(ValueError, match="identity"):
            forall_reduce(0, lambda i: i, operator.add)

    def test_deterministic_float_order(self):
        locs = set_num_locales(4)
        dom = BlockDist.create_domain(1000, locs)
        a = forall_reduce(dom, lambda i: 0.1 * i, operator.add)
        b = forall_reduce(dom, lambda i: 0.1 * i, operator.add)
        assert a == b  # bitwise: locale-ordered merge

    def test_energy_norm_of_heat_solution(self):
        # The motivating use: ||u||^2 over a distributed array.
        from repro.chapel import BlockArray
        from repro.heat import sine_initial_condition

        locs = set_num_locales(2)
        dom = BlockDist.create_domain(64, locs)
        u = BlockArray(dom)
        u.fill_from(sine_initial_condition(64))
        # Inside the forall, each index runs on its owning locale, so the
        # element reads below are all local (comm counters stay at 0).
        norm2 = forall_reduce(dom, lambda i: u[i] ** 2, operator.add)
        assert norm2 == pytest.approx((sine_initial_condition(64) ** 2).sum())
        assert all(loc.remote_gets == 0 for loc in locs)
