"""Tests for the Chapel-style locale/domain/array/loop constructs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chapel import (
    BlockArray,
    BlockDist,
    Domain,
    TaskBarrier,
    coforall,
    forall,
    foreach,
    here,
    locales,
    on,
    set_num_locales,
)


@pytest.fixture(autouse=True)
def reset_locales():
    set_num_locales(1)
    yield
    set_num_locales(1)


class TestLocales:
    def test_default_single_locale(self):
        assert len(locales()) == 1
        assert here() is locales()[0]

    def test_set_num_locales(self):
        locs = set_num_locales(4)
        assert [l.id for l in locs] == [0, 1, 2, 3]

    def test_on_statement_moves_here(self):
        locs = set_num_locales(3)
        with on(locs[2]):
            assert here().id == 2
            with on(locs[1]):
                assert here().id == 1
            assert here().id == 2
        assert here().id == 0

    def test_invalid_locale_count(self):
        with pytest.raises(ValueError):
            set_num_locales(0)

    def test_here_is_per_thread(self):
        locs = set_num_locales(2)
        seen = {}

        def body(loc):
            with on(loc):
                seen[loc.id] = here().id

        coforall(locs, body)
        assert seen == {0: 0, 1: 1}


class TestDomains:
    def test_domain_basics(self):
        d = Domain(0, 10)
        assert d.size == 10
        assert list(d)[:3] == [0, 1, 2]
        assert 9 in d and 10 not in d

    def test_interior_strips_boundaries(self):
        d = Domain(0, 10)
        inner = d.interior()
        assert (inner.low, inner.high) == (1, 9)

    def test_inverted_domain_rejected(self):
        with pytest.raises(ValueError):
            Domain(5, 3)

    def test_block_domain_tiles_indices(self):
        locs = set_num_locales(3)
        dom = BlockDist.create_domain(10, locs)
        subs = [dom.local_subdomain(i) for i in range(3)]
        assert [(s.low, s.high) for s in subs] == [(0, 4), (4, 7), (7, 10)]

    def test_owner_matches_subdomain(self):
        locs = set_num_locales(4)
        dom = BlockDist.create_domain(21, locs)
        for i in dom.indices():
            owner_idx = dom.owner_index(i)
            assert i in dom.local_subdomain(owner_idx)
            assert dom.owner(i) is locs[owner_idx]

    def test_create_domain_from_range(self):
        dom = BlockDist.create_domain(range(5, 15))
        assert (dom.low, dom.high) == (5, 15)

    def test_strided_range_rejected(self):
        with pytest.raises(ValueError):
            BlockDist.create_domain(range(0, 10, 2))

    @given(st.integers(1, 500), st.integers(1, 8))
    @settings(max_examples=25)
    def test_property_owner_consistent(self, n, num_locs):
        locs = set_num_locales(num_locs)
        dom = BlockDist.create_domain(n, locs)
        counts = [dom.local_subdomain(i).size for i in range(num_locs)]
        assert sum(counts) == n
        assert max(counts) - min(counts) <= 1


class TestBlockArray:
    def test_from_function_and_indexing(self):
        set_num_locales(2)
        dom = BlockDist.create_domain(6)
        a = BlockArray.from_function(dom, lambda i: i * i)
        assert [a[i] for i in range(6)] == [0, 1, 4, 9, 16, 25]

    def test_remote_access_counted(self):
        locs = set_num_locales(2)
        dom = BlockDist.create_domain(10, locs)
        a = BlockArray(dom)
        with on(locs[0]):
            a[9] = 1.0        # owned by locale 1 -> remote put
            _ = a[0]          # local -> free
            _ = a[9]          # remote get
        assert locs[1].remote_puts == 1
        assert locs[1].remote_gets == 1
        assert locs[0].remote_gets == 0

    def test_slice_counts_per_element_overlap(self):
        locs = set_num_locales(2)
        dom = BlockDist.create_domain(10, locs)
        a = BlockArray(dom)
        with on(locs[0]):
            _ = a.get_slice(3, 8)  # 2 local (3,4) + 3 remote (5,6,7)
        assert locs[1].remote_gets == 3
        assert locs[0].remote_gets == 0

    def test_local_view_is_mutable_window(self):
        locs = set_num_locales(2)
        dom = BlockDist.create_domain(8, locs)
        a = BlockArray(dom)
        a.local_view(1)[:] = 7.0
        np.testing.assert_array_equal(a.to_numpy(), [0, 0, 0, 0, 7, 7, 7, 7])

    def test_swap_is_constant_time_exchange(self):
        set_num_locales(1)
        dom = BlockDist.create_domain(4)
        a = BlockArray(dom, fill=1.0)
        b = BlockArray(dom, fill=2.0)
        a.swap_with(b)
        assert a.to_numpy()[0] == 2.0 and b.to_numpy()[0] == 1.0

    def test_out_of_domain_access(self):
        dom = BlockDist.create_domain(4)
        a = BlockArray(dom)
        with pytest.raises(IndexError):
            _ = a[4]

    def test_fill_from_validates_length(self):
        a = BlockArray(BlockDist.create_domain(4))
        with pytest.raises(ValueError):
            a.fill_from(np.zeros(3))


class TestLoops:
    def test_forall_over_int_covers_space(self):
        out = np.zeros(100)
        forall(100, lambda i: out.__setitem__(i, 1.0), num_tasks=4)
        assert out.sum() == 100

    def test_forall_over_block_domain_runs_on_owner(self):
        locs = set_num_locales(3)
        dom = BlockDist.create_domain(9, locs)
        where = [None] * 9
        forall(dom, lambda i: where.__setitem__(i, here().id))
        assert where == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_forall_error_propagates(self):
        def body(i):
            if i == 3:
                raise RuntimeError("iteration failed")

        with pytest.raises(RuntimeError, match="iteration failed"):
            forall(10, body)

    def test_coforall_one_task_per_item(self):
        import threading

        names = coforall(range(5), lambda i: threading.current_thread().name)
        assert len(set(names)) == 5  # genuinely distinct tasks

    def test_coforall_returns_results_in_order(self):
        assert coforall([3, 1, 2], lambda x: x * 10) == [30, 10, 20]

    def test_foreach_serial_in_order(self):
        seen = []
        foreach(range(5), seen.append)
        assert seen == [0, 1, 2, 3, 4]

    def test_forall_empty_space(self):
        forall(0, lambda i: (_ for _ in ()).throw(AssertionError))


class TestTaskBarrier:
    def test_barrier_synchronizes_team(self):
        b = TaskBarrier(4)
        log = []
        import threading

        lock = threading.Lock()

        def task(tid):
            with lock:
                log.append("pre")
            b.wait()
            with lock:
                log.append("post")

        coforall(range(4), task)
        assert log[:4] == ["pre"] * 4 and log[4:] == ["post"] * 4

    def test_barrier_reusable_across_steps(self):
        b = TaskBarrier(3)
        counter = {"v": 0}
        import threading

        lock = threading.Lock()

        def task(tid):
            for _ in range(10):
                with lock:
                    counter["v"] += 1
                b.wait()

        coforall(range(3), task)
        assert counter["v"] == 30

    def test_abort_breaks_waiters(self):
        b = TaskBarrier(2)

        def task(tid):
            if tid == 0:
                b.abort()
            else:
                b.wait()

        with pytest.raises(RuntimeError, match="barrier broken"):
            coforall(range(2), task)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TaskBarrier(0)
