"""Property tests for the shared deterministic retry/backoff helper.

The contract both the serve scheduler and the engine retry loops lean
on: a :class:`~repro.util.backoff.BackoffPolicy` schedule is a pure
function of ``(attempt, seed)`` — bit-identical across calls, runs, and
call orders — and always bounded by ``cap``. The jitter-free default
reproduces the historical ``base * factor**attempt`` schedules exactly,
which is what made refactoring ``run_spmd`` respawn and the Spark task
retry onto it a behavior-preserving change (asserted below against the
:class:`~repro.mpi.faults.FaultReport` evidence).
"""

import pytest

from repro.mpi import FaultPlan, run_spmd
from repro.util.backoff import BackoffPolicy


class TestSchedule:
    def test_jitter_free_is_exact_geometric(self):
        policy = BackoffPolicy(0.01)
        assert policy.delays(5) == (0.01, 0.02, 0.04, 0.08, 0.16)

    def test_factor_and_cap(self):
        policy = BackoffPolicy(1.0, factor=3.0, cap=10.0)
        assert policy.delays(4) == (1.0, 3.0, 9.0, 10.0)

    def test_bit_identical_per_seed(self):
        a = BackoffPolicy(0.5, jitter=0.9, seed=42)
        b = BackoffPolicy(0.5, jitter=0.9, seed=42)
        # Same seed: identical schedule, however and whenever evaluated.
        assert a.delays(32) == b.delays(32)
        # Random-access equals sequential (pure in attempt, no state).
        assert tuple(a.delay(i) for i in reversed(range(32))) == tuple(
            reversed(a.delays(32))
        )

    def test_different_seeds_decorrelate(self):
        a = BackoffPolicy(0.5, jitter=0.9, seed=1).delays(16)
        b = BackoffPolicy(0.5, jitter=0.9, seed=2).delays(16)
        assert a != b

    def test_reseeded_matches_fresh_policy(self):
        base = BackoffPolicy(0.25, jitter=0.5, seed=0)
        assert base.reseeded(7).delays(8) == BackoffPolicy(0.25, jitter=0.5, seed=7).delays(8)

    @pytest.mark.parametrize("seed", range(20))
    def test_jitter_bounded(self, seed):
        policy = BackoffPolicy(0.1, cap=1.0, jitter=1.0, seed=seed)
        raw = BackoffPolicy(0.1, cap=1.0)
        for attempt in range(24):
            d = policy.delay(attempt)
            # Full jitter subtracts at most the whole capped delay.
            assert 0.0 <= d <= raw.delay(attempt)

    def test_monotone_without_jitter(self):
        delays = BackoffPolicy(0.001, cap=0.5).delays(24)
        assert delays == tuple(sorted(delays))
        assert max(delays) == 0.5

    def test_sleep_uses_injected_sleeper_and_returns_delay(self):
        calls = []
        policy = BackoffPolicy(0.125)
        got = policy.sleep(2, sleep=calls.append)
        assert got == 0.5
        assert calls == [0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(1.0, factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(1.0, cap=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(1.0, jitter=1.5)


class TestRunSpmdRespawnUnchanged:
    """The respawn refactor onto BackoffPolicy preserved the evidence."""

    def _respawn_run(self):
        def program(comm):
            return comm.allreduce(comm.rank)

        return run_spmd(
            3,
            program,
            faults=FaultPlan.crash(1, 0),
            on_failure="respawn",
            respawn_backoff=0.001,
            timeout=5.0,
            return_report=True,
        )

    def test_fault_report_identical_across_runs(self):
        results_a, report_a = self._respawn_run()
        results_b, report_b = self._respawn_run()
        assert results_a == results_b == [3, 3, 3]
        assert report_a.trace() == report_b.trace()
        assert report_a.respawns == report_b.respawns == {1: 1}
        assert report_a.failures == report_b.failures == {}
