"""Unit and property tests for repro.util.partition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.partition import (
    block_bounds,
    block_partition,
    block_size,
    cyclic_partition,
    distribute_tasks,
    owner_of,
)


class TestBlockBounds:
    def test_even_split(self):
        assert [block_bounds(9, 3, i) for i in range(3)] == [(0, 3), (3, 6), (6, 9)]

    def test_uneven_split_front_loads_extra(self):
        assert [block_bounds(10, 3, i) for i in range(3)] == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_elements(self):
        bounds = [block_bounds(2, 5, i) for i in range(5)]
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2), (2, 2)]

    def test_zero_elements(self):
        assert block_bounds(0, 4, 2) == (0, 0)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            block_bounds(10, 3, 3)
        with pytest.raises(IndexError):
            block_bounds(10, 3, -1)

    def test_rejects_bad_types(self):
        with pytest.raises(TypeError):
            block_bounds(10.5, 3, 0)
        with pytest.raises(ValueError):
            block_bounds(10, 0, 0)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_blocks_tile_range_exactly(self, n, parts):
        covered = []
        for i in range(parts):
            lo, hi = block_bounds(n, parts, i)
            assert 0 <= lo <= hi <= n
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_sizes_differ_by_at_most_one(self, n, parts):
        sizes = [block_size(n, parts, i) for i in range(parts)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n


class TestOwnerOf:
    @given(st.integers(1, 5_000), st.integers(1, 32))
    def test_owner_matches_bounds(self, n, parts):
        for element in {0, n - 1, n // 2, n // 3}:
            owner = owner_of(n, parts, element)
            lo, hi = block_bounds(n, parts, owner)
            assert lo <= element < hi

    def test_out_of_range_element(self):
        with pytest.raises(IndexError):
            owner_of(10, 3, 10)
        with pytest.raises(IndexError):
            owner_of(10, 3, -1)


class TestCyclicPartition:
    def test_round_robin_layout(self):
        parts = cyclic_partition(7, 3)
        assert [list(r) for r in parts] == [[0, 3, 6], [1, 4], [2, 5]]

    @given(st.integers(0, 3_000), st.integers(1, 32))
    def test_cyclic_tiles_range(self, n, parts):
        seen = sorted(x for r in cyclic_partition(n, parts) for x in r)
        assert seen == list(range(n))


class TestDistributeTasks:
    def test_uneven_division_example_from_paper(self):
        # 10 ensemble models over 4 nodes: loads 3,3,2,2 (differ by <= 1).
        assignment = distribute_tasks(10, 4)
        assert assignment == [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]]

    def test_more_nodes_than_tasks(self):
        assignment = distribute_tasks(2, 5)
        assert assignment == [[0], [1], [], [], []]

    @given(st.integers(0, 500), st.integers(1, 32))
    def test_every_task_assigned_once_and_balanced(self, tasks, nodes):
        assignment = distribute_tasks(tasks, nodes)
        flat = sorted(t for node in assignment for t in node)
        assert flat == list(range(tasks))
        loads = [len(node) for node in assignment]
        assert max(loads) - min(loads) <= 1


class TestBlockPartition:
    def test_matches_bounds(self):
        assert block_partition(7, 3) == [range(0, 3), range(3, 5), range(5, 7)]
