"""Tests for repro.util.timing."""

import pytest

from repro.util.timing import ScalingStudy, Timer, time_call


class TestTimer:
    def test_measures_nonnegative_elapsed(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_time_call_returns_result(self):
        seconds, result = time_call(lambda a, b: a + b, 2, 3, repeats=3)
        assert result == 5
        assert seconds >= 0.0

    def test_time_call_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestScalingStudy:
    def test_speedup_and_efficiency(self):
        s = ScalingStudy("demo")
        s.record(1, 8.0)
        s.record(2, 4.0)
        s.record(4, 4.0)
        assert s.speedup(2) == pytest.approx(2.0)
        assert s.efficiency(2) == pytest.approx(1.0)
        assert s.speedup(4) == pytest.approx(2.0)
        assert s.efficiency(4) == pytest.approx(0.5)

    def test_record_keeps_minimum_of_repeats(self):
        s = ScalingStudy("demo")
        s.record(2, 5.0)
        s.record(2, 3.0)
        s.record(2, 4.0)
        assert s.measurements[2] == 3.0

    def test_baseline_falls_back_to_smallest_workers(self):
        s = ScalingStudy("demo")
        s.record(2, 6.0)
        s.record(4, 3.0)
        assert s.baseline_workers == 2
        assert s.speedup(4) == pytest.approx(2.0)

    def test_rows_sorted_and_table_formats(self):
        s = ScalingStudy("demo")
        s.record(4, 1.0)
        s.record(1, 4.0)
        rows = s.rows()
        assert [r[0] for r in rows] == [1, 4]
        table = s.format_table()
        assert "demo" in table and "workers" in table

    def test_rejects_invalid_measurements(self):
        s = ScalingStudy("demo")
        with pytest.raises(ValueError):
            s.record(0, 1.0)
        with pytest.raises(ValueError):
            s.record(1, -1.0)
        with pytest.raises(ValueError):
            _ = s.baseline_workers
