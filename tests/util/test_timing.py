"""Tests for repro.util.timing."""

import pytest

from repro.util.timing import ScalingStudy, Timer, time_call


class TestTimer:
    def test_measures_nonnegative_elapsed(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_reusable_sequentially_without_stale_elapsed(self):
        import time

        t = Timer()
        with t:
            time.sleep(0.02)
        assert t.elapsed >= 0.02
        with t:
            pass
        assert t.elapsed < 0.02  # second use re-measures; no stale value

    def test_nestable(self):
        t = Timer()
        with t:
            with t:
                inner_work = sum(range(100))
            inner = t.elapsed
        outer = t.elapsed
        assert inner_work >= 0
        assert outer >= inner >= 0.0

    def test_unbalanced_exit_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError, match="without a matching"):
            t.__exit__(None, None, None)

    def test_exception_in_block_still_records(self):
        t = Timer()
        with pytest.raises(ValueError):
            with t:
                raise ValueError("boom")
        assert t.elapsed >= 0.0

    def test_time_call_returns_result(self):
        seconds, result = time_call(lambda a, b: a + b, 2, 3, repeats=3)
        assert result == 5
        assert seconds >= 0.0

    def test_time_call_runs_exactly_repeats_times(self):
        calls = []
        time_call(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4

    def test_time_call_returns_last_result_and_min_time(self):
        results = iter(["first", "second", "third"])
        seconds, result = time_call(lambda: next(results), repeats=3)
        assert result == "third"
        assert seconds >= 0.0

    def test_time_call_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestScalingStudy:
    def test_speedup_and_efficiency(self):
        s = ScalingStudy("demo")
        s.record(1, 8.0)
        s.record(2, 4.0)
        s.record(4, 4.0)
        assert s.speedup(2) == pytest.approx(2.0)
        assert s.efficiency(2) == pytest.approx(1.0)
        assert s.speedup(4) == pytest.approx(2.0)
        assert s.efficiency(4) == pytest.approx(0.5)

    def test_record_keeps_minimum_of_repeats(self):
        s = ScalingStudy("demo")
        s.record(2, 5.0)
        s.record(2, 3.0)
        s.record(2, 4.0)
        assert s.measurements[2] == 3.0

    def test_baseline_falls_back_to_smallest_workers(self):
        s = ScalingStudy("demo")
        s.record(2, 6.0)
        s.record(4, 3.0)
        assert s.baseline_workers == 2
        assert s.speedup(4) == pytest.approx(2.0)

    def test_rows_sorted_and_table_formats(self):
        s = ScalingStudy("demo")
        s.record(4, 1.0)
        s.record(1, 4.0)
        rows = s.rows()
        assert [r[0] for r in rows] == [1, 4]
        table = s.format_table()
        assert "demo" in table and "workers" in table

    def test_rejects_invalid_measurements(self):
        s = ScalingStudy("demo")
        with pytest.raises(ValueError):
            s.record(0, 1.0)
        with pytest.raises(ValueError):
            s.record(1, -1.0)
        with pytest.raises(ValueError):
            _ = s.baseline_workers

    def test_unrecorded_workers_raise_clear_error(self):
        s = ScalingStudy("demo")
        s.record(1, 4.0)
        s.record(2, 2.0)
        with pytest.raises(ValueError, match=r"no measurement recorded for 8 workers"):
            s.speedup(8)
        with pytest.raises(ValueError, match=r"recorded: \[1, 2\]"):
            s.efficiency(8)

    def test_empty_study_speedup_raises(self):
        with pytest.raises(ValueError, match="no measurements"):
            ScalingStudy("demo").speedup(1)

    def test_zero_time_speedup_is_inf(self):
        s = ScalingStudy("demo")
        s.record(1, 1.0)
        s.record(2, 0.0)
        assert s.speedup(2) == float("inf")

    def test_single_measurement_rows(self):
        s = ScalingStudy("demo")
        s.record(4, 2.0)
        assert s.rows() == [(4, 2.0, 1.0, 1.0)]  # its own baseline

    def test_to_json_round_trips(self):
        import json

        s = ScalingStudy("demo")
        s.record(1, 8.0)
        s.record(2, 4.0)
        payload = json.loads(json.dumps(s.to_json()))
        assert payload["name"] == "demo"
        assert payload["baseline_workers"] == 1
        assert payload["rows"] == [
            {"workers": 1, "seconds": 8.0, "speedup": 1.0, "efficiency": 1.0},
            {"workers": 2, "seconds": 4.0, "speedup": 2.0, "efficiency": 1.0},
        ]
