"""Tests for the CSV point/label round-trip in repro.util.tabular."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.tabular import (
    points_from_csv_text,
    points_to_csv_text,
    read_points_csv,
    write_points_csv,
)


class TestRoundTrip:
    def test_labelled_round_trip(self):
        pts = np.array([[1.0, 2.5], [3.0, -4.0]])
        labels = np.array([0, 2])
        text = points_to_csv_text(pts, labels)
        back, lab = points_from_csv_text(text, labelled=True)
        np.testing.assert_array_equal(back, pts)
        np.testing.assert_array_equal(lab, labels)

    def test_unlabelled_round_trip(self):
        pts = np.array([[0.1, 0.2, 0.3]])
        back, lab = points_from_csv_text(points_to_csv_text(pts), labelled=False)
        np.testing.assert_array_equal(back, pts)
        assert lab is None

    def test_file_round_trip(self, tmp_path):
        pts = np.arange(12, dtype=float).reshape(4, 3)
        labels = np.array([1, 0, 1, 3])
        path = tmp_path / "db.csv"
        write_points_csv(path, pts, labels)
        back, lab = read_points_csv(path, labelled=True)
        np.testing.assert_array_equal(back, pts)
        np.testing.assert_array_equal(lab, labels)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(0, 20), st.integers(1, 8)),
            elements=st.floats(-1e9, 1e9, allow_nan=False),
        )
    )
    def test_values_survive_exactly(self, pts):
        back, _ = points_from_csv_text(points_to_csv_text(pts), labelled=False)
        if pts.shape[0] == 0:
            # An empty file carries no column count; only emptiness survives.
            assert back.shape[0] == 0
        else:
            np.testing.assert_array_equal(back, pts)


class TestParsing:
    def test_skips_blank_and_comment_lines(self):
        text = "# header\n\n1.0,2.0,1\n\n# trailing\n3.0,4.0,0\n"
        pts, labels = points_from_csv_text(text, labelled=True)
        assert pts.shape == (2, 2)
        assert list(labels) == [1, 0]

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="expected 3 columns"):
            points_from_csv_text("1,2,3\n4,5\n", labelled=False)

    def test_labelled_needs_two_columns(self):
        with pytest.raises(ValueError, match=">= 2 columns"):
            points_from_csv_text("7\n", labelled=True)

    def test_empty_text(self):
        pts, labels = points_from_csv_text("", labelled=True)
        assert pts.shape[0] == 0
        assert labels.shape == (0,)


class TestValidation:
    def test_rejects_non_2d_points(self):
        with pytest.raises(ValueError, match="2-D"):
            points_to_csv_text(np.arange(3.0))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError, match="does not match"):
            points_to_csv_text(np.zeros((3, 2)), np.zeros(2, dtype=int))
