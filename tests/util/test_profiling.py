"""Tests for the cProfile wrapper."""

import pytest

from repro.util.profiling import profile_call


def busy(n):
    total = 0
    for i in range(n):
        total += hot_inner(i)
    return total


def hot_inner(i):
    return sum(range(i % 50))


class TestProfileCall:
    def test_returns_function_result(self):
        report = profile_call(busy, 2000)
        assert report.result == busy(2000)

    def test_finds_the_hot_function(self):
        report = profile_call(busy, 5000, top=5)
        locations = " ".join(h.location for h in report.hotspots)
        assert "hot_inner" in locations or "sum" in locations
        assert report.hottest.total_time >= 0.0

    def test_hotspots_sorted_by_self_time(self):
        report = profile_call(busy, 3000)
        times = [h.total_time for h in report.hotspots]
        assert times == sorted(times, reverse=True)

    def test_text_table_present(self):
        report = profile_call(busy, 100)
        assert "ncalls" in report.text

    def test_kwargs_passed(self):
        report = profile_call(lambda a, b=1: a + b, 2, b=5)
        assert report.result == 7

    def test_top_validated(self):
        with pytest.raises(ValueError):
            profile_call(busy, 10, top=0)

    def test_top_caps_hotspot_count(self):
        report = profile_call(busy, 2000, top=3)
        assert 0 < len(report.hotspots) <= 3

    def test_hottest_is_first_hotspot(self):
        report = profile_call(busy, 2000)
        assert report.hottest is report.hotspots[0]
        assert report.hottest.total_time == max(h.total_time for h in report.hotspots)

    def test_cumulative_includes_self_time(self):
        report = profile_call(busy, 2000)
        for h in report.hotspots:
            assert h.cumulative >= h.total_time >= 0.0
            assert h.calls >= 1

    def test_hottest_on_empty_profile_raises(self):
        from repro.util.profiling import ProfileReport

        with pytest.raises(ValueError, match="empty profile"):
            _ = ProfileReport(result=None, hotspots=[], text="").hottest
