"""Tests for the cProfile wrapper."""

import pytest

from repro.util.profiling import profile_call


def busy(n):
    total = 0
    for i in range(n):
        total += hot_inner(i)
    return total


def hot_inner(i):
    return sum(range(i % 50))


class TestProfileCall:
    def test_returns_function_result(self):
        report = profile_call(busy, 2000)
        assert report.result == busy(2000)

    def test_finds_the_hot_function(self):
        report = profile_call(busy, 5000, top=5)
        locations = " ".join(h.location for h in report.hotspots)
        assert "hot_inner" in locations or "sum" in locations
        assert report.hottest.total_time >= 0.0

    def test_hotspots_sorted_by_self_time(self):
        report = profile_call(busy, 3000)
        times = [h.total_time for h in report.hotspots]
        assert times == sorted(times, reverse=True)

    def test_text_table_present(self):
        report = profile_call(busy, 100)
        assert "ncalls" in report.text

    def test_kwargs_passed(self):
        report = profile_call(lambda a, b=1: a + b, 2, b=5)
        assert report.result == 7

    def test_top_validated(self):
        with pytest.raises(ValueError):
            profile_call(busy, 10, top=0)
