"""Property-based tests: the algebra the alignment score must satisfy.

Hypothesis sweeps DNA strings and scoring parameters; each property is
a statement about *every* instance, not a pinned example:

- swapping the sequences transposes the matrix and preserves the score
  (the scoring scheme is symmetric in its two inputs);
- the optimal score is monotone non-decreasing in the match reward
  (every alignment's value is, so the max over alignments is);
- a sequence aligned against itself scores the perfect-match value.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import ScoringScheme, align_sequential, score_matrix

dna = st.text(alphabet="ACGT", min_size=1, max_size=28)
modes = st.sampled_from(["global", "local"])


@given(a=dna, b=dna, mode=modes)
@settings(max_examples=40, deadline=None)
def test_score_symmetric_under_sequence_swap(a, b, mode):
    scheme = ScoringScheme(mode=mode)
    forward = align_sequential(a, b, scheme=scheme)
    backward = align_sequential(b, a, scheme=scheme)
    assert forward.score == backward.score
    # Stronger: the DP matrix itself transposes.
    np.testing.assert_array_equal(forward.matrix, backward.matrix.T)


@given(a=dna, b=dna, mode=modes, reward=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_score_monotone_in_match_reward(a, b, mode, reward):
    lower = align_sequential(
        a, b, scheme=ScoringScheme(match=reward, mode=mode)
    ).score
    higher = align_sequential(
        a, b, scheme=ScoringScheme(match=reward + 1, mode=mode)
    ).score
    assert higher >= lower


@given(s=dna, mode=modes, match=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_self_alignment_scores_perfect_match(s, mode, match):
    scheme = ScoringScheme(match=match, mode=mode)
    result = align_sequential(s, s, scheme=scheme)
    assert result.score == match * len(s)
    assert result.aligned_a == s and result.aligned_b == s


@given(a=dna, b=dna)
@settings(max_examples=40, deadline=None)
def test_local_score_bounds(a, b):
    scheme = ScoringScheme(mode="local")
    score = align_sequential(a, b, scheme=scheme).score
    assert 0 <= score <= scheme.match * min(len(a), len(b))


@given(a=dna, b=dna, mode=modes)
@settings(max_examples=25, deadline=None)
def test_kernels_agree_on_arbitrary_instances(a, b, mode):
    scheme = ScoringScheme(mode=mode)
    np.testing.assert_array_equal(
        score_matrix(a, b, scheme=scheme, kernel="numpy"),
        score_matrix(a, b, scheme=scheme, kernel="python"),
    )
