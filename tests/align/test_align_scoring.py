"""Unit tests for the align family's shared mathematics and the oracle."""

import numpy as np
import pytest

from repro.align import (
    ALPHABET,
    OUT_OF_BAND,
    ScoringScheme,
    align_sequential,
    cell_score,
    diagonal_row_range,
    encode_sequence,
    generate_pair,
    generate_sequence,
    in_band,
    init_matrix,
    mutate_sequence,
    score_matrix,
    summarize_matrix,
    tile_diagonals,
)


class TestScoringScheme:
    def test_defaults_are_global_mode(self):
        scheme = ScoringScheme()
        assert scheme.mode == "global"
        assert scheme.substitution(True) == scheme.match
        assert scheme.substitution(False) == scheme.mismatch

    def test_rejects_non_integer_scores(self):
        with pytest.raises(TypeError, match="match"):
            ScoringScheme(match=1.5)
        with pytest.raises(TypeError, match="gap"):
            ScoringScheme(gap=True)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ScoringScheme(mode="semi-global")


class TestEncodeAndBand:
    def test_encode_roundtrips_ascii(self):
        codes = encode_sequence("ACGT")
        assert codes.dtype == np.uint8
        assert [chr(c) for c in codes] == ["A", "C", "G", "T"]

    def test_encode_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            encode_sequence("")

    def test_global_band_must_reach_corner(self):
        with pytest.raises(ValueError, match="band"):
            score_matrix("ACGTACGT", "AC", band=2)

    def test_diagonal_row_range_enumerates_exactly_in_band_cells(self):
        n, m, band = 7, 5, 2
        from_ranges = set()
        for d in range(2, n + m + 1):
            ilo, ihi = diagonal_row_range(d, n, m, band)
            for i in range(ilo, ihi + 1):
                from_ranges.add((i, d - i))
        expected = {
            (i, j)
            for i in range(1, n + 1)
            for j in range(1, m + 1)
            if in_band(i, j, band)
        }
        assert from_ranges == expected


class TestCellScore:
    def test_prefers_diagonal_then_up_then_left_on_value(self):
        scheme = ScoringScheme(match=2, mismatch=-1, gap=-2)
        value, matched = cell_score(3, 0, 0, True, scheme)
        assert value == 5 and matched
        value, matched = cell_score(0, 5, 1, False, scheme)
        assert value == 3 and not matched

    def test_local_mode_floors_at_zero(self):
        scheme = ScoringScheme(mode="local")
        value, matched = cell_score(-10, -10, -10, False, scheme)
        assert value == 0 and not matched

    def test_out_of_band_sentinel_loses_every_max(self):
        scheme = ScoringScheme()
        value, _ = cell_score(OUT_OF_BAND, OUT_OF_BAND, 4, False, scheme)
        assert value == 4 + scheme.gap


class TestOracle:
    def test_textbook_needleman_wunsch_example(self):
        # The classic GATTACA/GCATGCU instance with unit scores.
        scheme = ScoringScheme(match=1, mismatch=-1, gap=-1)
        result = align_sequential("GATTACA", "GCATGCU", scheme=scheme)
        assert result.score == 0
        assert len(result.aligned_a) == len(result.aligned_b)
        assert result.path[0] == (0, 0) and result.path[-1] == (7, 7)

    def test_local_alignment_finds_embedded_match(self):
        scheme = ScoringScheme(match=2, mismatch=-3, gap=-3, mode="local")
        result = align_sequential("TTTTGGGCC", "AAAGGGAAA", scheme=scheme)
        assert result.score == 6  # the shared GGG run, nothing more
        assert result.aligned_a == "GGG" and result.aligned_b == "GGG"

    def test_kernels_bit_identical(self):
        a, b = generate_pair(3, 33)
        for mode in ("global", "local"):
            for band in (None, 12):
                scheme = ScoringScheme(mode=mode)
                use_band = band
                if band is not None and mode == "global":
                    use_band = max(band, abs(len(a) - len(b)))
                np.testing.assert_array_equal(
                    score_matrix(a, b, scheme=scheme, band=use_band, kernel="numpy"),
                    score_matrix(a, b, scheme=scheme, band=use_band, kernel="python"),
                )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            score_matrix("ACGT", "ACGT", kernel="fortran")

    def test_band_excluded_cells_keep_sentinel(self):
        H = score_matrix("ACGTACGT", "ACGTACGT", band=2)
        n = m = 8
        for i in range(n + 1):
            for j in range(m + 1):
                if abs(i - j) > 2:
                    assert H[i, j] == OUT_OF_BAND
                else:
                    assert H[i, j] > OUT_OF_BAND

    def test_traceback_spells_the_input_sequences(self):
        a, b = generate_pair(9, 28)
        result = align_sequential(a, b)
        assert result.aligned_a.replace("-", "") == a
        assert result.aligned_b.replace("-", "") == b
        assert len(result.aligned_a) == len(result.aligned_b)

    def test_summarize_matches_oracle_statistics(self):
        a, b = generate_pair(2, 21)
        scheme = ScoringScheme()
        result = align_sequential(a, b, scheme=scheme)
        best_score, best_cell, match_events = summarize_matrix(
            result.matrix, encode_sequence(a), encode_sequence(b), scheme, None
        )
        assert (best_score, best_cell, match_events) == (
            result.best_score, result.best_cell, result.match_events,
        )


class TestInitMatrix:
    def test_global_boundaries_ladder_the_gap(self):
        scheme = ScoringScheme(gap=-3)
        H = init_matrix(4, 5, scheme, None)
        np.testing.assert_array_equal(H[0, :], np.arange(6) * -3)
        np.testing.assert_array_equal(H[:, 0], np.arange(5) * -3)

    def test_local_boundaries_are_zero(self):
        H = init_matrix(3, 3, ScoringScheme(mode="local"), None)
        assert H[0, :].sum() == 0 and H[:, 0].sum() == 0

    def test_banded_boundary_cells_outside_band_stay_sentinel(self):
        H = init_matrix(6, 6, ScoringScheme(), 2)
        assert H[0, 3] == OUT_OF_BAND and H[0, 2] == -4
        assert H[4, 0] == OUT_OF_BAND and H[2, 0] == -4


class TestTileDiagonals:
    def test_tiles_cover_interior_exactly_once(self):
        n, m, tile = 10, 7, 3
        seen = {}
        for td, wave in enumerate(tile_diagonals(n, m, tile, None)):
            for ti, tj in wave:
                assert ti + tj == td
                for i in range(1 + ti * tile, min(n, tile + ti * tile) + 1):
                    for j in range(1 + tj * tile, min(m, tile + tj * tile) + 1):
                        assert (i, j) not in seen
                        seen[(i, j)] = td
        assert len(seen) == n * m

    def test_band_prunes_far_tiles(self):
        full = sum(len(w) for w in tile_diagonals(64, 64, 4, None))
        banded = sum(len(w) for w in tile_diagonals(64, 64, 4, 4))
        assert banded < full


class TestSyntheticData:
    def test_generate_sequence_is_deterministic_dna(self):
        s1 = generate_sequence(13, 50)
        s2 = generate_sequence(13, 50)
        assert s1 == s2 and len(s1) == 50
        assert set(s1) <= set(ALPHABET)

    def test_streams_are_disjoint(self):
        assert generate_sequence(13, 50, stream=0) != generate_sequence(13, 50, stream=1)

    def test_mutation_with_zero_rates_is_identity(self):
        ref = generate_sequence(4, 40)
        assert mutate_sequence(4, ref, sub_rate=0.0, indel_rate=0.0) == ref

    def test_mutation_rates_validated(self):
        with pytest.raises(ValueError, match="exceed"):
            mutate_sequence(0, "ACGT", sub_rate=0.9, indel_rate=0.2)

    def test_generate_pair_reproducible_and_related(self):
        a1, b1 = generate_pair(21, 64)
        a2, b2 = generate_pair(21, 64)
        assert (a1, b1) == (a2, b2)
        assert a1 != b1  # the mutation channel fired somewhere
        # The pair aligns far better than an unrelated pair of the same
        # lengths — the whole point of mutating rather than regenerating.
        related = align_sequential(a1, b1).score
        unrelated = align_sequential(a1, generate_pair(22, 64)[0]).score
        assert related > unrelated
