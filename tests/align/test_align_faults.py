"""Fault plans against the MPI wavefront: diagonal-checkpoint restart.

The contract under test (docs/fault_tolerance.md, extended to the align
family): a world killed mid-sweep by an injected crash, relaunched with
the same :class:`AlignCheckpoint`, finishes **bit-identical** to an
uninterrupted run — integer scoring means exact equality, not a
tolerance. Stragglers and delays must never change the answer at all.
"""

import numpy as np
import pytest

from repro.align import (
    AlignCheckpoint,
    align_sequential,
    generate_pair,
    run_align_mpi,
)
from repro.mpi import FaultPlan, InjectedCrash, RankFailedError
from repro.mpi.faults import FaultEvent

RANKS = 4


@pytest.fixture(scope="module")
def pair():
    return generate_pair(11, 72)


@pytest.fixture(scope="module")
def baseline(pair):
    a, b = pair
    return run_align_mpi(RANKS, a, b)


def assert_results_bit_identical(result, reference):
    np.testing.assert_array_equal(result.matrix, reference.matrix)
    assert result.path == reference.path
    assert result.score == reference.score
    assert result.aligned_a == reference.aligned_a
    assert result.aligned_b == reference.aligned_b
    assert result.best_score == reference.best_score
    assert result.best_cell == reference.best_cell
    assert result.match_events == reference.match_events


class TestAlignCheckpoint:
    def test_empty_checkpoint_restore_raises(self):
        ckpt = AlignCheckpoint()
        assert not ckpt.has_state()
        assert ckpt.diagonal == 0
        with pytest.raises(ValueError, match="empty"):
            ckpt.restore()

    def test_save_copies_state(self):
        ckpt = AlignCheckpoint()
        matrix = np.ones((3, 3), dtype=np.int64)
        ckpt.save(4, matrix)
        matrix[:] = -1  # caller mutation must not reach the checkpoint
        diagonal, restored = ckpt.restore()
        assert diagonal == 4 and ckpt.diagonal == 4
        np.testing.assert_array_equal(restored, np.ones((3, 3), dtype=np.int64))

    def test_checkpointed_run_matches_plain_run(self, pair, baseline):
        a, b = pair
        ckpt = AlignCheckpoint()
        result = run_align_mpi(RANKS, a, b, checkpoint=ckpt)
        assert_results_bit_identical(result, baseline)
        assert ckpt.diagonal == len(a) + len(b)


class TestCrashRecovery:
    def test_crash_then_resume_is_bit_identical(self, pair, baseline):
        # The restart story end to end: a fresh world killed mid-sweep
        # by an injected crash, then a second world resuming from the
        # diagonal checkpoint, finishing exactly where an uninterrupted
        # run does.
        a, b = pair
        ckpt = AlignCheckpoint()
        with pytest.raises(RankFailedError) as excinfo:
            run_align_mpi(
                RANKS, a, b, checkpoint=ckpt,
                faults=FaultPlan.crash(1, 25), timeout=10.0,
            )
        assert isinstance(excinfo.value.failures[1], InjectedCrash)
        assert 0 < ckpt.diagonal < len(a) + len(b)

        resumed = run_align_mpi(RANKS, a, b, checkpoint=ckpt)
        assert_results_bit_identical(resumed, baseline)

    def test_late_crash_resumes_from_late_diagonal(self, pair, baseline):
        a, b = pair
        ckpt = AlignCheckpoint()
        with pytest.raises(RankFailedError):
            run_align_mpi(
                RANKS, a, b, checkpoint=ckpt, checkpoint_every=4,
                faults=FaultPlan.crash(2, 60), timeout=10.0,
            )
        first_stop = ckpt.diagonal
        resumed = run_align_mpi(RANKS, a, b, checkpoint=ckpt, checkpoint_every=4)
        assert_results_bit_identical(resumed, baseline)
        assert ckpt.diagonal == len(a) + len(b) > first_stop

    def test_restore_rejects_mismatched_shape(self, pair):
        a, b = pair
        ckpt = AlignCheckpoint()
        ckpt.save(3, np.zeros((4, 4), dtype=np.int64))
        with pytest.raises(RankFailedError, match="checkpoint matrix"):
            run_align_mpi(RANKS, a, b, checkpoint=ckpt)


class TestStragglers:
    def test_straggle_and_delay_do_not_change_the_answer(self, pair, baseline):
        a, b = pair
        plan = FaultPlan(
            [
                FaultEvent("straggle", 2, 10, 0.005),
                FaultEvent("delay", 1, 15, 0.005),
                FaultEvent("straggle", 3, 30, 0.002),
            ]
        )
        result = run_align_mpi(RANKS, a, b, faults=plan)
        assert_results_bit_identical(result, baseline)

    def test_sampled_nonfatal_plan_is_bit_identical(self, pair, baseline):
        a, b = pair
        plan = FaultPlan.sample(
            17, RANKS, 80, straggle_prob=0.05, delay_prob=0.05, seconds=0.001
        )
        assert len(plan) > 0
        result = run_align_mpi(RANKS, a, b, faults=plan)
        assert_results_bit_identical(result, baseline)


class TestValidation:
    def test_more_ranks_than_rows_raises_consistently(self):
        with pytest.raises(RankFailedError, match="interior row"):
            run_align_mpi(4, "AC", "ACGT")
