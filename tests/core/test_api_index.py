"""Keep docs/API.md fresh and the public API documented."""

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).parent.parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from gen_api_index import build_index  # noqa: E402


class TestApiIndex:
    def test_checked_in_index_is_current(self):
        checked_in = (ROOT / "docs" / "API.md").read_text()
        assert checked_in == build_index(), (
            "docs/API.md is stale — regenerate with `python tools/gen_api_index.py`"
        )

    def test_every_export_is_documented(self):
        undocumented = []
        for m in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(m.name)
            for symbol in getattr(module, "__all__", []):
                obj = getattr(module, symbol, None)
                if obj is None or not (inspect.isclass(obj) or callable(obj)):
                    continue
                if type(obj).__module__ == "typing":
                    continue  # type aliases (e.g. repro.mpi.ops.Op)
                if not inspect.getdoc(obj):
                    undocumented.append(f"{m.name}.{symbol}")
        assert undocumented == []

    def test_every_module_has_a_docstring(self):
        bare = []
        for m in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(m.name)
            if not (module.__doc__ or "").strip():
                bare.append(m.name)
        assert bare == []
