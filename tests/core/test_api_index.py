"""Keep docs/API.md fresh and the public API documented."""

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).parent.parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_api_index import check, main as check_main  # noqa: E402
from gen_api_index import build_index  # noqa: E402


class TestApiIndex:
    def test_checked_in_index_is_current(self):
        checked_in = (ROOT / "docs" / "API.md").read_text()
        assert checked_in == build_index(), (
            "docs/API.md is stale — regenerate with `python tools/gen_api_index.py`"
        )


class TestCheckApiIndex:
    """The CI gate: `python tools/check_api_index.py --check`."""

    def test_current_index_passes(self):
        current, report = check()
        assert current, report
        assert report == ""
        assert check_main(["--check"]) == 0

    def test_stale_index_fails_with_diff(self, tmp_path, capsys):
        stale = tmp_path / "API.md"
        stale.write_text(build_index().replace("# API index", "# Old index", 1))
        current, report = check(stale)
        assert not current
        assert "-# Old index" in report and "+# API index" in report
        assert check_main(["--check", str(stale)]) == 1
        assert "STALE" in capsys.readouterr().out

    def test_missing_index_fails(self, tmp_path):
        current, report = check(tmp_path / "missing.md")
        assert not current
        assert "does not exist" in report

    def test_without_check_flag_rewrites(self, tmp_path):
        stale = tmp_path / "API.md"
        stale.write_text("junk\n")
        assert check_main([str(stale)]) == 0
        assert stale.read_text() == build_index()

    def test_every_export_is_documented(self):
        undocumented = []
        for m in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(m.name)
            for symbol in getattr(module, "__all__", []):
                obj = getattr(module, symbol, None)
                if obj is None or not (inspect.isclass(obj) or callable(obj)):
                    continue
                if type(obj).__module__ == "typing":
                    continue  # type aliases (e.g. repro.mpi.ops.Op)
                if not inspect.getdoc(obj):
                    undocumented.append(f"{m.name}.{symbol}")
        assert undocumented == []

    def test_every_module_has_a_docstring(self):
        bare = []
        for m in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(m.name)
            if not (module.__doc__ or "").strip():
                bare.append(m.name)
        assert bare == []
