"""The CI gate for bench output: `python tools/check_bench_schema.py --check`."""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_bench_schema import check, main as check_main  # noqa: E402


class TestCheckedInBenchOutput:
    def test_every_checked_in_bench_file_validates(self):
        ok, report = check()
        assert ok, report
        assert report == ""
        assert check_main(["--check"]) == 0


class TestCheckBenchSchema:
    def test_missing_dir_is_ok(self, tmp_path):
        ok, report = check(tmp_path / "nope")
        assert ok and report == ""

    def test_empty_dir_is_ok(self, tmp_path):
        ok, _ = check(tmp_path)
        assert ok

    def test_valid_v1_file_passes(self, tmp_path):
        (tmp_path / "BENCH_good.json").write_text(json.dumps({
            "schema_version": 1, "workload": "good", "config": {},
            "unit": "seconds", "timings": {"total": 1.0},
        }))
        ok, report = check(tmp_path)
        assert ok, report

    def test_legacy_file_passes_through_migration(self, tmp_path):
        (tmp_path / "BENCH_legacy.json").write_text(json.dumps({
            "name": "legacy", "baseline_sec": 0.5,
        }))
        ok, report = check(tmp_path)
        assert ok, report

    def test_unparseable_json_is_flagged(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{oops")
        ok, report = check(tmp_path)
        assert not ok
        assert "BENCH_broken.json" in report and "unreadable" in report

    def test_unsalvageable_payload_is_flagged(self, tmp_path):
        (tmp_path / "BENCH_empty.json").write_text(json.dumps({"name": "empty"}))
        ok, report = check(tmp_path)
        assert not ok
        assert "no recoverable timings" in report

    def test_one_bad_file_does_not_hide_the_good_one(self, tmp_path):
        (tmp_path / "BENCH_good.json").write_text(json.dumps({
            "name": "good", "run_sec": 1.0,
        }))
        (tmp_path / "BENCH_bad.json").write_text("[]")
        ok, report = check(tmp_path)
        assert not ok
        assert "BENCH_bad.json" in report and "BENCH_good.json" not in report

    def test_main_exit_codes_and_output(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{oops")
        assert check_main([str(tmp_path)]) == 1
        assert "MALFORMED" in capsys.readouterr().out
        (tmp_path / "BENCH_bad.json").unlink()
        assert check_main([str(tmp_path)]) == 0
        assert "bench schema OK" in capsys.readouterr().out

    def test_main_reports_history_informationally(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        history.write_text(
            json.dumps({"schema_version": 1, "workload": "w", "config": {},
                        "unit": "seconds", "timings": {"t": 1.0}})
            + "\nnot json\n"
        )
        assert check_main([str(tmp_path), "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "1 record(s)" in out and "1 malformed line(s) skipped" in out
