"""Seed-sweep bit-identity: serial == thread == process everywhere.

The executor layer's core promise (DESIGN.md, docs/executors.md): for
any seed, switching ``backend`` never changes a single bit of any
engine's output. Each sweep runs the same workload under all three
backends and asserts exact equality — floats compared with ``==``, not
``approx``, because the arithmetic (blocking, merge order, commit
order) is fixed independently of the backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import BACKENDS
from repro.hpo import hyperparameter_grid, make_digit_dataset, run_hpo_executor
from repro.kmeans import kmeans_parallel
from repro.knn.wordcount import wordcount
from repro.mpi import run_spmd
from repro.rng.lcg import MINSTD, LinearCongruential
from repro.spark import SparkContext, SparkFaultPlan

SEEDS = [0, 1, 7]


def _clusters(seed: int, backend: str, kernel: str = "numpy"):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(240, 3))
    result = kmeans_parallel(
        points, 4, num_workers=4, backend=backend, kernel=kernel, seed=seed
    )
    return (
        result.centroids.tobytes(),
        result.assignments.tobytes(),
        result.iterations,
        result.stop_reason,
        result.inertia,
        tuple(result.changes_history),
        tuple(result.shift_history),
    )


class TestKMeansSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_backends_bit_identical(self, seed):
        runs = {b: _clusters(seed, b) for b in BACKENDS}
        assert runs["serial"] == runs["thread"] == runs["process"]

    def test_python_kernel_matches_numpy_kernel_across_backends(self):
        runs = [_clusters(3, b, kernel=k) for b in BACKENDS for k in ("numpy", "python")]
        assert all(r == runs[0] for r in runs[1:])


def _corpus(seed: int, lines: int = 60) -> list[str]:
    words = ["peach", "spmd", "spark", "kmeans", "heat", "mpi", "gpu", "trace"]
    gen = LinearCongruential(MINSTD, seed=seed + 1)
    return [
        " ".join(words[gen.next_raw() % len(words)] for _ in range(6))
        for _ in range(lines)
    ]


class TestWordcountSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("local_combine", [False, True])
    def test_backends_bit_identical(self, seed, local_combine):
        lines = _corpus(seed)
        runs = {
            b: run_spmd(
                3,
                wordcount,
                lines,
                local_combine=local_combine,
                backend=b,
                num_workers=4,
            )
            for b in BACKENDS
        }
        assert runs["serial"] == runs["thread"] == runs["process"]
        assert sum(runs["serial"][0].values()) == 6 * len(lines)


def _spark_job(backend: str, seed: int, plan: SparkFaultPlan | None):
    with SparkContext(4, backend=backend, fault_plan=plan) as sc:
        acc = sc.accumulator(0)

        def tag(x):
            acc.add(1)
            return (x % 5, x * x)

        rdd = sc.parallelize(range(120), 8).map(tag)
        pairs = rdd.reduce_by_key(lambda a, b: a + b).collect()
        total = sc.parallelize(range(seed, seed + 64), 8).sum()
        return pairs, acc.value, total


class TestSparkSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_free_backends_bit_identical(self, seed):
        runs = {b: _spark_job(b, seed, None) for b in BACKENDS}
        assert runs["serial"] == runs["thread"] == runs["process"]
        assert runs["serial"][1] == 120  # exactly-once accumulator commits

    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulty_backends_match_fault_free_serial(self, seed):
        baseline = _spark_job("serial", seed, None)
        for backend in BACKENDS:
            plan = SparkFaultPlan.sample(
                seed=seed,
                jobs=12,
                partitions=8,
                task_fail_prob=0.2,
                straggle_prob=0.05,
                shuffle_corrupt_prob=0.1,
            )
            assert _spark_job(backend, seed, plan) == baseline


class TestHPOSweep:
    def test_backends_identical_ranking_and_models(self):
        x, y = make_digit_dataset(120, seed=0)
        split = 90
        grid = hyperparameter_grid([(8,)], [0.1, 0.05], [2], seeds=[0, 1])
        runs = {
            b: run_hpo_executor(
                grid, x[:split], y[:split], x[split:], y[split:], backend=b, num_workers=2
            )
            for b in BACKENDS
        }
        ranks = {
            b: [(o.params, o.val_accuracy, o.train_accuracy) for o in out]
            for b, out in runs.items()
        }
        assert ranks["serial"] == ranks["thread"] == ranks["process"]
        for b in ("thread", "process"):
            for a, o in zip(runs["serial"], runs[b]):
                assert np.array_equal(
                    a.model.predict_proba(x[split:]), o.model.predict_proba(x[split:])
                )
