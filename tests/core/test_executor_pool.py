"""The persistent pool: warm reuse, zero-copy refs, crash respawn.

``tests/core/test_executor.py`` pins the backend-uniform map contract;
this file pins what is specific to the pool architecture — that pooled
maps actually reuse the same worker processes, that published arrays
cross the boundary as descriptors (not bytes), that a crashed slot
respawns, and that the pool/fork dispatch split lands where documented.
"""

from __future__ import annotations

import functools
import os
import pickle

import numpy as np
import pytest

from repro.core.executor import (
    ProcessExecutor,
    SharedArrayRef,
    WorkerCrashError,
)
from repro.core.shm import SEGMENT_PREFIX


def _task_pid(_i, _item):
    return os.getpid()


def _crash_on(victim, i, item):
    if i == victim:
        os._exit(23)
    return item


def _read_ref(ref, _i, block):
    lo, hi = block
    return float(ref.array()[lo:hi].sum())


def _write_ref(ref, _i, block):
    lo, hi = block
    out = ref.array()
    out[lo:hi] = np.arange(lo, hi)
    return hi - lo


class TestWarmPool:
    def test_same_workers_across_maps(self):
        with ProcessExecutor(2) as ex:
            first = set(ex.map(_task_pid, range(8)))
            for _ in range(3):
                again = set(ex.map(_task_pid, range(8)))
                assert again == first  # warm start: no new forks
            assert os.getpid() not in first

    def test_fork_path_uses_fresh_workers(self):
        state = {"x": 1}  # closure -> unpicklable payload -> fork path
        with ProcessExecutor(2) as ex:
            a = set(ex.map(lambda i, _: (os.getpid(), state["x"]), range(4)))
            b = set(ex.map(lambda i, _: (os.getpid(), state["x"]), range(4)))
            assert not (
                {pid for pid, _ in a} & {pid for pid, _ in b}
            )  # fresh forks per map

    def test_map_after_close_raises(self):
        ex = ProcessExecutor(2)
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(_task_pid, range(2))
        ex.close()  # idempotent

    def test_stop_is_close_alias(self):
        ex = ProcessExecutor(2)
        assert ex.map(_task_pid, range(2))
        ex.stop()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(_task_pid, range(2))


class TestCrashRespawn:
    def test_pool_path_crash_surfaces_and_respawns(self):
        with ProcessExecutor(2, chunks_per_worker=2) as ex:
            with pytest.raises(WorkerCrashError) as info:
                ex.map(functools.partial(_crash_on, 5), list(range(8)))
            err = info.value
            assert err.exitcode == 23
            assert set(err.completed) | set(err.missing) == set(range(8))
            # The dead slot respawns lazily: the next map still works.
            assert ex.map(_task_pid, range(8))
            assert set(ex.map(lambda i, x: x * 2, range(4))) == {0, 2, 4, 6}


class TestPublish:
    def test_ref_pickles_as_descriptor_not_bytes(self):
        data = np.arange(200_000, dtype=np.float64)
        with ProcessExecutor(2) as ex:
            ref = ex.publish(data)
            assert isinstance(ref, SharedArrayRef)
            assert ref.segment_name.startswith(SEGMENT_PREFIX)
            wire = pickle.dumps(ref)
            assert len(wire) < 1024  # descriptor, not the 1.6 MB payload
            total = sum(
                ex.map(functools.partial(_read_ref, ref), [(0, 100_000), (100_000, 200_000)])
            )
            assert total == float(data.sum())

    def test_writable_ref_roundtrips_worker_writes(self):
        with ProcessExecutor(2) as ex:
            ref = ex.publish(np.zeros(64), writable=True)
            ex.map(functools.partial(_write_ref, ref), [(0, 32), (32, 64)])
            np.testing.assert_array_equal(ref.array(), np.arange(64.0))
            ex.unpublish(ref)

    def test_readonly_attachment_in_worker(self):
        with ProcessExecutor(1) as ex:
            ref = ex.publish(np.ones(8))
            [flag] = ex.map(functools.partial(_flag_writeable, ref), [0])
            if ex.start_method == "fork":
                assert flag is False

    def test_unpublish_is_idempotent(self):
        with ProcessExecutor(1) as ex:
            ref = ex.publish(np.ones(4))
            ex.unpublish(ref)
            ex.unpublish(ref)


def _flag_writeable(ref, _i, _item):
    return bool(ref.array().flags.writeable)


class TestSpawnPool:
    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_maps_and_publishes(self):
        with ProcessExecutor(2, start_method="spawn") as ex:
            data = np.arange(100, dtype=np.float64)
            ref = ex.publish(data)
            got = ex.map(functools.partial(_read_ref, ref), [(0, 50), (50, 100)])
            assert sum(got) == float(data.sum())
            # Warm reuse holds under spawn too.
            assert set(ex.map(_task_pid, range(4))) == set(ex.map(_task_pid, range(4)))


class TestChunkFusion:
    def test_small_jobs_fuse_to_one_chunk_per_worker(self):
        ex = ProcessExecutor(4, chunks_per_worker=4)
        plans = {
            n: [len(chunks) for chunks in ex._chunk_assignments(n) if chunks]
            for n in (3, 4, 16, 17, 64)
        }
        ex.close()
        assert plans[3] == [1, 1, 1]          # n < workers: one chunk each
        assert plans[4] == [1, 1, 1, 1]       # fused: 4 messages, not 16
        assert plans[16] == [1, 1, 1, 1]      # still within the fusion budget
        assert plans[17] == [4, 4, 4, 4]      # past the budget: full fan-out
        assert plans[64] == [4, 4, 4, 4]

    def test_fused_plan_covers_range_in_order(self):
        ex = ProcessExecutor(3, chunks_per_worker=2)
        covered = sorted(
            (lo, hi)
            for chunks in ex._chunk_assignments(10)
            for _c, lo, hi in chunks
        )
        ex.close()
        assert covered[0][0] == 0 and covered[-1][1] == 10
        assert all(a[1] == b[0] for a, b in zip(covered, covered[1:]))


class TestNestedMap:
    def test_nested_map_in_worker_downgrades_to_inline(self):
        with ProcessExecutor(2) as ex:
            got = ex.map(functools.partial(_nested, ex), range(2))
            assert got == [[0, 1, 4], [0, 1, 4]]


def _nested(ex, _i, _item):
    # Daemonic pool workers cannot fork children; the executor computes
    # nested maps inline instead.
    return ex.map(lambda i, x: x * x, [0, 1, 2])
