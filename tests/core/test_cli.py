"""Tests for the python -m repro CLI."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_six(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("knn", "kmeans", "pipeline", "traffic", "heat", "hpo"):
            assert key in out


class TestInfo:
    def test_info_shows_card(self, capsys):
        assert main(["info", "traffic"]) == 0
        out = capsys.readouterr().out
        assert "Nagel-Schreckenberg" in out
        assert "repro.rng" in out
        assert "OpenMP" in out

    def test_unknown_key_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["info", "quantum"])


class TestDemo:
    @pytest.mark.parametrize("key", ["kmeans", "traffic", "heat", "pipeline"])
    def test_fast_demos_run_and_verify(self, key, capsys):
        assert main(["demo", key]) == 0
        assert "identical" in capsys.readouterr().out or key == "pipeline"

    def test_unknown_demo(self, capsys):
        assert main(["demo", "quantum"]) == 2
        assert "unknown demo" in capsys.readouterr().err

    def test_demo_all_smoke(self, capsys):
        assert main(["demo", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 6
