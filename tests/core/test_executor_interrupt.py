"""Regression: interrupting a process-backend map leaves no orphans.

A KeyboardInterrupt (or any cancellation unwinding through
``ProcessExecutor.map``) used to fall into the graceful-join path —
up to five seconds *per worker* while a hanging task kept the workers
alive. The interrupt path must instead terminate the pool promptly and
re-raise cleanly.
"""

import _thread
import multiprocessing
import threading
import time

import pytest

from repro.core.executor import ProcessExecutor


def _hang(_i, _x):  # pragma: no cover - runs in worker processes
    time.sleep(60)


def _no_executor_workers(timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stragglers = [
            p for p in multiprocessing.active_children()
            if p.name.startswith("executor-worker-")
        ]
        if not stragglers:
            return True
        time.sleep(0.05)
    return False


class TestInterruptCleanup:
    def test_keyboard_interrupt_terminates_workers_and_reraises(self):
        executor = ProcessExecutor(2, chunks_per_worker=1)
        timer = threading.Timer(0.5, _thread.interrupt_main)
        timer.start()
        start = time.monotonic()
        try:
            with pytest.raises(KeyboardInterrupt):
                executor.map(_hang, list(range(2)))
        finally:
            timer.cancel()
        elapsed = time.monotonic() - start
        # Prompt unwind: nowhere near the 5s-per-worker graceful joins.
        assert elapsed < 5.0, f"interrupt unwind took {elapsed:.1f}s"
        # And no orphaned pool workers survive the raise.
        assert _no_executor_workers(), "executor workers outlived the interrupt"

    def test_normal_error_path_still_cleans_up(self):
        executor = ProcessExecutor(2, chunks_per_worker=1)

        def boom(i, x):
            raise ValueError(f"task {i} failed")

        with pytest.raises(Exception):
            executor.map(boom, list(range(4)))
        assert _no_executor_workers()

    def test_successful_map_unaffected(self):
        executor = ProcessExecutor(2)
        assert executor.map(lambda i, x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert _no_executor_workers()
