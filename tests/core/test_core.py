"""Tests for the assignment catalog and scaling-study runner."""

import numpy as np
import pytest

from repro.core import (
    ASSIGNMENTS,
    get_assignment,
    list_assignments,
    run_scaling_study,
)


class TestCatalog:
    def test_six_assignments(self):
        assert len(ASSIGNMENTS) == 6

    def test_sections_two_through_seven(self):
        assert [a.section for a in list_assignments()] == [2, 3, 4, 5, 6, 7]

    def test_all_meet_selection_criteria(self):
        assert all(a.criteria.is_peachy for a in ASSIGNMENTS.values())

    def test_lookup(self):
        assert get_assignment("traffic").section == 5
        with pytest.raises(KeyError, match="available"):
            get_assignment("quantum")

    def test_modules_importable(self):
        import importlib

        for a in ASSIGNMENTS.values():
            for module in a.modules:
                importlib.import_module(module)

    def test_every_assignment_has_concepts_and_benchmarks(self):
        for a in ASSIGNMENTS.values():
            assert a.concepts and a.benchmarks and a.programming_models


class TestScalingStudy:
    def test_records_all_worker_counts(self):
        study = run_scaling_study(
            "noop", [1, 2, 4], lambda w: (lambda: w), repeats=1
        )
        assert sorted(study.measurements) == [1, 2, 4]

    def test_verify_catches_wrong_parallel_result(self):
        def make_task(w):
            return lambda: 100 if w == 1 else 99  # parallel result differs

        with pytest.raises(AssertionError, match="differs from baseline"):
            run_scaling_study(
                "buggy", [1, 2], make_task, repeats=1,
                verify=lambda base, got: base == got,
            )

    def test_verify_accepts_matching_results(self):
        study = run_scaling_study(
            "ok", [1, 2], lambda w: (lambda: np.arange(5).sum()), repeats=1,
            verify=lambda base, got: base == got,
        )
        assert study.speedup(1) == pytest.approx(1.0)

    def test_empty_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            run_scaling_study("x", [], lambda w: (lambda: None))
