"""Segment lifecycle: no /dev/shm entry survives any exit path.

The shared-memory data plane owns real kernel objects; a leak outlives
the process and eats tmpfs until reboot. These tests pin the invariant
the module promises: every segment a driver publishes is unlinked after
normal stop, worker crash, task-error cancellation, KeyboardInterrupt,
and even a driver that forgets to close (the ``atexit`` sweep) — with
the audit done against both the in-process registry
(:func:`active_segments`) and the kernel's own ``/dev/shm`` listing.
"""

from __future__ import annotations

import functools
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import _thread
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import ProcessExecutor, WorkerCrashError
from repro.core.shm import SEGMENT_PREFIX, active_segments

_DEV_SHM = Path("/dev/shm")


def _kernel_segments() -> list[str]:
    """This process's segments as the *kernel* sees them."""
    if not _DEV_SHM.is_dir():  # pragma: no cover - non-tmpfs platforms
        return []
    mine = f"{SEGMENT_PREFIX}-{os.getpid()}-"
    return sorted(p.name for p in _DEV_SHM.iterdir() if p.name.startswith(mine))


def _assert_no_leaks() -> None:
    assert active_segments() == []
    assert _kernel_segments() == []


def _touch(ref, _i, block):
    lo, hi = block
    return float(ref.array()[lo:hi].sum())


def _crash(i, _item):
    if i == 1:
        os._exit(9)
    return i


def _boom(i, _item):
    if i == 1:
        raise ValueError("cancelled mid-job")
    return i


def _hang(_i, _item):  # pragma: no cover - runs in worker processes
    time.sleep(60)


class TestLifecycleProperty:
    @settings(max_examples=5, deadline=None)
    @given(
        shapes=st.lists(
            st.tuples(st.integers(0, 40), st.integers(1, 5)), min_size=1, max_size=4
        ),
        writable=st.booleans(),
        do_map=st.booleans(),
    )
    def test_every_segment_unlinked_after_stop(self, shapes, writable, do_map):
        ex = ProcessExecutor(2)
        try:
            refs = [
                ex.publish(np.ones(shape), writable=writable) for shape in shapes
            ]
            assert len(active_segments()) == len(shapes)
            assert len(_kernel_segments()) == len(shapes)
            if do_map:
                ex.map(functools.partial(_touch, refs[0]), [(0, 0)])
            # Unpublish half explicitly; close() must sweep the rest.
            for ref in refs[::2]:
                ex.unpublish(ref)
        finally:
            ex.stop()
        _assert_no_leaks()

    def test_worker_crash_leaks_nothing(self):
        ex = ProcessExecutor(2, chunks_per_worker=1)
        try:
            ref = ex.publish(np.arange(32, dtype=float))
            with pytest.raises(WorkerCrashError):
                ex.map(_crash, list(range(4)))
        finally:
            ex.close()
        _assert_no_leaks()

    def test_task_error_cancellation_leaks_nothing(self):
        ex = ProcessExecutor(2)
        try:
            ref = ex.publish(np.arange(16, dtype=float), writable=True)
            with pytest.raises(ValueError, match="cancelled"):
                ex.map(_boom, list(range(4)))
            # The executor survives a failed job; so does the segment...
            assert ref.segment_name in active_segments()
        finally:
            ex.close()
        _assert_no_leaks()  # ...but not the close.

    def test_keyboard_interrupt_leaks_nothing(self):
        ex = ProcessExecutor(2, chunks_per_worker=1)
        ex.publish(np.ones(64))
        timer = threading.Timer(0.4, _thread.interrupt_main)
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                ex.map(_hang, list(range(2)))
        finally:
            timer.cancel()
        ex.close()
        _assert_no_leaks()


class TestForgottenDriver:
    def test_atexit_sweep_cleans_unclosed_driver(self):
        """A driver that never calls close() still unlinks at exit."""
        script = (
            "import numpy as np, sys\n"
            "from repro.core.executor import ProcessExecutor\n"
            "from repro.core.shm import SEGMENT_PREFIX\n"
            "ex = ProcessExecutor(2)\n"
            "ref = ex.publish(np.ones(1024))\n"
            "print(ref.segment_name)\n"
            "sys.stdout.flush()\n"
            # no unpublish, no close: atexit + GC finalizer must sweep
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, cwd=Path(__file__).parents[2],
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip().splitlines()[-1]
        assert name.startswith(SEGMENT_PREFIX)
        if _DEV_SHM.is_dir():
            assert not (_DEV_SHM / name).exists(), "atexit sweep leaked a segment"
