"""Unit tests for the pluggable executor backends."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskFailedError,
    ThreadExecutor,
    WorkerCrashError,
    derive_task_seed,
    get_executor,
)

ALL_BACKENDS = list(BACKENDS)


def _executor(backend: str, workers: int = 4, **kwargs) -> Executor:
    return get_executor(backend, workers, **kwargs)


def square(i, x):
    return x * x


class TestMapContract:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_results_in_index_order(self, backend):
        got = _executor(backend).map(square, list(range(37)))
        assert got == [x * x for x in range(37)]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_fn_receives_index_and_item(self, backend):
        got = _executor(backend).map(lambda i, item: (i, item), ["a", "b", "c"])
        assert got == [(0, "a"), (1, "b"), (2, "c")]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_items(self, backend):
        assert _executor(backend).map(square, []) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_single_item(self, backend):
        assert _executor(backend).map(square, [7]) == [49]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_more_tasks_than_workers(self, backend):
        n = 23  # not a multiple of workers: uneven chunks
        assert _executor(backend, 4).map(square, list(range(n))) == [x * x for x in range(n)]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_context_manager(self, backend):
        with _executor(backend) as ex:
            assert ex.map(square, [1, 2]) == [1, 4]

    def test_closures_over_driver_state_fork(self):
        state = {"mult": 3}
        got = _executor("process").map(lambda i, x: x * state["mult"], list(range(10)))
        assert got == [x * 3 for x in range(10)]


class TestSeededMap:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_seeds_pure_function_of_base_and_index(self, backend):
        seeds = _executor(backend).map_seeded(
            lambda i, item, seed: seed, list(range(16)), base_seed=42
        )
        assert seeds == [derive_task_seed(42, i) for i in range(16)]

    def test_identical_across_backends(self):
        runs = {
            b: _executor(b).map_seeded(
                lambda i, item, seed: (item, seed % 1000), list(range(20)), 7
            )
            for b in ALL_BACKENDS
        }
        assert runs["serial"] == runs["thread"] == runs["process"]

    def test_derive_task_seed_mixes(self):
        seeds = [derive_task_seed(0, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert all(0 <= s < 2**64 for s in seeds)
        assert derive_task_seed(1, 0) != derive_task_seed(0, 1)
        assert derive_task_seed(5, 3) == derive_task_seed(5, 3)


class TestErrors:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_original_exception_propagates(self, backend):
        def boom(i, x):
            if i == 3:
                raise ValueError("boom-3")
            return x

        with pytest.raises(ValueError, match="boom-3"):
            _executor(backend).map(boom, list(range(8)))

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_lowest_failing_index_wins(self, backend):
        def boom(i, x):
            if i in (2, 5):
                raise ValueError(f"boom-{i}")
            return x

        with pytest.raises(ValueError, match="boom-2"):
            _executor(backend, 2).map(boom, list(range(8)))

    def test_unpicklable_exception_becomes_task_failed(self):
        class Unpicklable(Exception):
            def __init__(self):
                super().__init__("nope")
                self.fh = open(os.devnull)  # noqa: SIM115 - deliberately unpicklable

        def boom(i, x):
            if i == 1:
                raise Unpicklable()
            return x

        with pytest.raises(TaskFailedError) as info:
            _executor("process", 2).map(boom, list(range(4)))
        assert info.value.index == 1
        assert "Unpicklable" in str(info.value)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            get_executor("gpu")

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(2, chunks_per_worker=0)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="start_method"):
            ProcessExecutor(2, start_method="teleport")


class TestWorkerCrash:
    def test_crash_surfaces_completed_and_missing(self):
        driver = os.getpid()

        def crash(i, x):
            if i == 5 and os.getpid() != driver:
                os._exit(17)
            return x * 10

        with pytest.raises(WorkerCrashError) as info:
            _executor("process", 2, chunks_per_worker=2).map(crash, list(range(8)))
        err = info.value
        assert err.exitcode == 17
        assert err.missing  # the crashed chunk's results are lost
        assert set(err.completed) | set(err.missing) == set(range(8))
        for i, value in err.completed.items():
            assert value == i * 10


class TestExecutorObjects:
    def test_get_executor_passes_instances_through(self):
        ex = SerialExecutor()
        assert get_executor(ex) is ex

    def test_repr_names_workers(self):
        assert "num_workers=3" in repr(ThreadExecutor(3))

    def test_results_are_plain_data(self):
        # Results cross a pickle boundary on the process backend.
        got = _executor("process", 2).map(lambda i, x: {"i": i, "sq": x * x}, [1, 2, 3])
        assert got == [{"i": 0, "sq": 1}, {"i": 1, "sq": 4}, {"i": 2, "sq": 9}]
        assert pickle.loads(pickle.dumps(got)) == got
