"""Suite-wide test configuration.

Hypothesis runs derandomized so the whole reproduction — including its
property tests — is deterministic run to run, the same standard the
library holds its simulators to. (Developers hunting for new
counterexamples can opt back in with ``--hypothesis-seed=random``.)
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.differing_executors],
)
settings.load_profile("repro")
