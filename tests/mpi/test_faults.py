"""Deterministic fault injection and recovery: FaultPlan through run_spmd.

The plan layer (sampling, validation, reproducibility) is exercised
without a world; the runtime layer runs real SPMD programs under
injected crashes, message faults, stragglers, and each recovery policy.
"""

import time

import pytest

from repro.mpi import (
    DeadlockError,
    FaultEvent,
    FaultPlan,
    InjectedCrash,
    RankFailedError,
    run_spmd,
)


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("explode", 0, 0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultEvent("delay", 0, 0, seconds=-0.1)

    def test_duplicate_slot_rejected(self):
        events = [FaultEvent("drop", 1, 5), FaultEvent("crash", 1, 5)]
        with pytest.raises(ValueError, match="one fault event per"):
            FaultPlan(events)

    def test_crash_shorthand(self):
        plan = FaultPlan.crash(2, 13)
        assert plan.trace() == (("crash", 2, 13),)

    def test_sample_same_seed_bit_identical(self):
        kwargs = dict(crash_prob=0.01, drop_prob=0.02, delay_prob=0.01)
        a = FaultPlan.sample(42, size=4, horizon=200, **kwargs)
        b = FaultPlan.sample(42, size=4, horizon=200, **kwargs)
        assert a.trace() == b.trace()
        assert len(a) > 0  # the chosen probabilities do schedule something

    def test_sample_different_seeds_differ(self):
        a = FaultPlan.sample(1, size=4, horizon=300, drop_prob=0.05)
        b = FaultPlan.sample(2, size=4, horizon=300, drop_prob=0.05)
        assert a.trace() != b.trace()

    def test_sample_respects_max_crashes_and_protected_ranks(self):
        plan = FaultPlan.sample(
            7, size=6, horizon=100, crash_prob=0.5, max_crashes=2
        )
        crashes = [e for e in plan.events if e.kind == "crash"]
        assert len(crashes) == 2
        assert all(e.rank != 0 for e in crashes)  # root protected by default

    def test_sample_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            FaultPlan.sample(0, size=2, horizon=10, crash_prob=0.7, drop_prob=0.7)

    def test_for_rank_filters_and_keys_by_op(self):
        plan = FaultPlan([FaultEvent("drop", 0, 3), FaultEvent("crash", 1, 9)])
        assert set(plan.for_rank(1)) == {9}
        assert plan.for_rank(1)[9].kind == "crash"
        assert plan.for_rank(2) == {}


class TestInjection:
    def test_crash_kills_rank_with_injected_crash(self):
        def program(comm):
            comm.barrier()
            return comm.rank

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(3, program, faults=FaultPlan.crash(1, 0), timeout=5.0)
        exc = excinfo.value.failures[1]
        assert isinstance(exc, InjectedCrash)
        assert exc.rank == 1 and exc.op_index == 0

    def test_same_plan_reproduces_same_fired_trace(self):
        # The acceptance criterion: one seed, two runs, identical traces.
        plan = FaultPlan.sample(11, size=4, horizon=50, straggle_prob=0.05, seconds=0.0)

        def program(comm):
            return comm.allreduce(comm.rank)

        traces = []
        for _ in range(2):
            _, report = run_spmd(4, program, faults=plan, return_report=True)
            traces.append(report.trace())
        assert traces[0] == traces[1]
        assert len(traces[0]) > 0

    def test_drop_turns_into_diagnosed_deadlock(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=5)
            else:
                return comm.recv(source=0, tag=5)

        plan = FaultPlan([FaultEvent("drop", 0, 0)])
        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, faults=plan, timeout=0.3)
        assert any(
            isinstance(e, DeadlockError) for e in excinfo.value.failures.values()
        )

    def test_duplicate_delivers_twice(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=0)
                return None
            return (comm.recv(source=0, tag=0), comm.recv(source=0, tag=0))

        plan = FaultPlan([FaultEvent("duplicate", 0, 0)])
        results = run_spmd(2, program, faults=plan, timeout=5.0)
        assert results[1] == ("x", "x")

    def test_delay_still_delivers(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("late", dest=1, tag=0)
                return None
            return comm.recv(source=0, tag=0)

        plan = FaultPlan([FaultEvent("delay", 0, 0, seconds=0.02)])
        results, report = run_spmd(
            2, program, faults=plan, timeout=5.0, return_report=True
        )
        assert results[1] == "late"
        assert report.trace() == (("delay", 0, 0, "send"),)

    def test_straggle_sleeps_but_completes(self):
        def program(comm):
            return comm.allreduce(1)

        plan = FaultPlan([FaultEvent("straggle", 1, 0, seconds=0.01)])
        t0 = time.perf_counter()
        results, report = run_spmd(
            3, program, faults=plan, timeout=5.0, return_report=True
        )
        assert results == [3, 3, 3]
        assert time.perf_counter() - t0 >= 0.01
        assert ("straggle", 1, 0) in [(k, r, i) for k, r, i, _ in report.trace()]

    def test_message_fault_on_receive_op_is_noop(self):
        def program(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=0)  # rank 0 op 0 is a receive
            comm.send("ok", dest=0, tag=0)
            return None

        plan = FaultPlan([FaultEvent("drop", 0, 0)])
        results, report = run_spmd(
            2, program, faults=plan, timeout=5.0, return_report=True
        )
        assert results[0] == "ok"
        assert report.trace() == ()  # nothing fired: no message to disturb

    def test_report_without_faults_is_clean(self):
        results, report = run_spmd(
            3, lambda comm: comm.rank, return_report=True
        )
        assert results == [0, 1, 2]
        assert report.trace() == ()
        assert report.survivors == [0, 1, 2]
        assert "all ranks survived" in report.summary()


class TestRecoveryPolicies:
    def test_respawn_recovers_injected_crash(self):
        # The op counter survives the respawn, so the crash fires once.
        def program(comm):
            return comm.allreduce(comm.rank)

        results, report = run_spmd(
            3,
            program,
            faults=FaultPlan.crash(1, 0),
            on_failure="respawn",
            timeout=5.0,
            return_report=True,
        )
        assert results == [3, 3, 3]
        assert report.respawns == {1: 1}
        assert report.failures == {}

    def test_respawn_exhaustion_escalates_to_abort(self):
        def always_dies(comm):
            if comm.rank == 1:
                raise ValueError("persistent bug")
            return comm.rank

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(
                2,
                always_dies,
                on_failure="respawn",
                max_respawns=2,
                respawn_backoff=0.001,
                timeout=5.0,
            )
        assert isinstance(excinfo.value.failures[1], ValueError)

    def test_tolerate_keeps_world_running(self):
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("lonely death")
            return comm.rank

        results, report = run_spmd(
            3, program, on_failure="tolerate", timeout=5.0, return_report=True
        )
        assert results == [0, None, 2]
        assert report.dead_ranks == [1]
        assert report.survivors == [0, 2]

    def test_tolerate_raises_when_everyone_dies(self):
        def program(comm):
            raise RuntimeError(f"rank {comm.rank} dies")

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, on_failure="tolerate", timeout=5.0)
        assert set(excinfo.value.failures) == {0, 1}

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            run_spmd(2, lambda comm: None, on_failure="ignore")


class TestSurvivorApi:
    @staticmethod
    def _await_death(comm, rank, deadline=5.0):
        end = time.monotonic() + deadline
        while comm.is_alive(rank) and time.monotonic() < end:
            time.sleep(0.001)
        assert not comm.is_alive(rank)

    def test_shrink_rebuilds_smaller_communicator(self):
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("dies before the collective")
            TestSurvivorApi._await_death(comm, 1)
            sub = comm.shrink()
            return (sub.rank, sub.size, sub.allreduce(1))

        results = run_spmd(4, program, on_failure="tolerate", timeout=5.0)
        assert results[1] is None
        assert results[0] == (0, 3, 3)
        assert results[2] == (1, 3, 3)
        assert results[3] == (2, 3, 3)

    def test_recv_tolerant_returns_none_for_dead_sender(self):
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("dies without sending")
            if comm.rank == 0:
                return comm.recv_tolerant(source=1, tag=0)
            return "alive"

        results = run_spmd(3, program, on_failure="tolerate", timeout=5.0)
        assert results[0] is None and results[2] == "alive"

    def test_recv_tolerant_message_wins_over_death(self):
        def program(comm):
            if comm.rank == 1:
                comm.send("last words", dest=0, tag=0)
                raise RuntimeError("dies after sending")
            if comm.rank == 0:
                return comm.recv_tolerant(source=1, tag=0)
            return None

        results = run_spmd(2, program, on_failure="tolerate", timeout=5.0)
        assert results[0] == "last words"

    def test_gather_tolerant_reports_missing(self):
        def program(comm):
            if comm.rank == 2:
                raise RuntimeError("dies before contributing")
            values, missing = comm.gather_tolerant(comm.rank * 10, root=0)
            if comm.rank != 0:
                return (values, missing)
            return (values, missing)

        results = run_spmd(4, program, on_failure="tolerate", timeout=5.0)
        values, missing = results[0]
        assert missing == [2]
        assert values[0] == 0 and values[1] == 10 and values[3] == 30
        assert values[2] is None
        assert results[1] == (None, [])  # non-root contributes, learns nothing


class TestWallTimeout:
    def test_wall_timeout_aborts_hung_world(self):
        def hangs(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=0)  # never sent
            # rank 1 returns immediately

        with pytest.raises(DeadlockError, match="wall_timeout"):
            run_spmd(2, hangs, timeout=60.0, wall_timeout=0.3)

    def test_wall_timeout_names_stuck_ranks(self):
        def hangs(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=9)

        with pytest.raises(DeadlockError, match=r"rank\(s\) \[1\]"):
            run_spmd(2, hangs, timeout=60.0, wall_timeout=0.3)

    def test_wall_timeout_validation(self):
        with pytest.raises(ValueError, match="wall_timeout"):
            run_spmd(2, lambda comm: None, wall_timeout=0.0)

    def test_generous_wall_timeout_is_invisible(self):
        assert run_spmd(2, lambda comm: comm.allreduce(1), wall_timeout=30.0) == [2, 2]


class TestDeadlockDiagnostics:
    def test_recv_timeout_names_operation_and_peer(self):
        def program(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=5)

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, timeout=0.3)
        msg = str(excinfo.value.failures[0])
        assert "recv" in msg and "source=rank 1" in msg and "tag=5" in msg

    def test_collective_timeout_names_the_collective(self):
        def program(comm):
            if comm.rank == 1:
                comm.bcast(None, root=0)  # root never broadcasts

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, timeout=0.3)
        # Whichever rank is blocked, its message names a system operation,
        # not a raw negative tag number.
        msgs = [str(e) for e in excinfo.value.failures.values()]
        assert any("bcast" in m for m in msgs)
