"""Collective-operation tests, including the property MPI guarantees:
allreduce == gather + fold + bcast."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import LAND, LOR, MAX, MIN, PROD, SUM, RankFailedError, run_spmd

SIZES = [1, 2, 3, 4, 7]


class TestBcast:
    @pytest.mark.parametrize("size", SIZES)
    def test_everyone_gets_roots_value(self, size):
        def program(comm):
            data = {"key": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert run_spmd(size, program) == [{"key": [1, 2, 3]}] * size

    def test_nonzero_root(self):
        def program(comm):
            return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

        assert run_spmd(4, program) == [2, 2, 2, 2]

    def test_bcast_copies_for_root_too(self):
        def program(comm):
            original = [1]
            got = comm.bcast(original, root=0)
            got.append(2)
            return original

        assert run_spmd(2, program)[0] == [1]

    def test_bad_root(self):
        with pytest.raises(RankFailedError, match="root"):
            run_spmd(2, lambda comm: comm.bcast(1, root=5))


class TestScatterGather:
    @pytest.mark.parametrize("size", SIZES)
    def test_scatter_distributes_in_rank_order(self, size):
        def program(comm):
            data = [(i + 1) ** 2 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert run_spmd(size, program) == [(i + 1) ** 2 for i in range(size)]

    def test_scatter_uneven_payloads(self):
        # Doubles as Scatterv: chunk sizes may differ.
        def program(comm):
            chunks = [list(range(r + 1)) for r in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(chunks, root=0)

        assert run_spmd(3, program) == [[0], [0, 1], [0, 1, 2]]

    def test_scatter_wrong_length_rejected(self):
        def program(comm):
            comm.scatter([1, 2, 3] if comm.rank == 0 else None, root=0)

        with pytest.raises(RankFailedError, match="exactly 2 items"):
            run_spmd(2, program)

    @pytest.mark.parametrize("size", SIZES)
    def test_gather_collects_in_rank_order(self, size):
        results = run_spmd(size, lambda comm: comm.gather(comm.rank * 10, root=0))
        assert results[0] == [r * 10 for r in range(size)]
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        results = run_spmd(size, lambda comm: comm.allgather(chr(ord("a") + comm.rank)))
        expect = [chr(ord("a") + r) for r in range(size)]
        assert results == [expect] * size

    def test_scatter_gather_roundtrip(self):
        def program(comm):
            data = list(range(comm.size)) if comm.rank == 0 else None
            piece = comm.scatter(data, root=0)
            return comm.gather(piece * 2, root=0)

        assert run_spmd(4, program)[0] == [0, 2, 4, 6]


class TestAlltoall:
    @pytest.mark.parametrize("size", SIZES)
    def test_transpose_semantics(self, size):
        def program(comm):
            return comm.alltoall([(comm.rank, dest) for dest in range(comm.size)])

        results = run_spmd(size, program)
        for dest in range(size):
            assert results[dest] == [(src, dest) for src in range(size)]

    def test_wrong_length_rejected(self):
        with pytest.raises(RankFailedError, match="alltoall needs exactly"):
            run_spmd(2, lambda comm: comm.alltoall([1]))


class TestReductions:
    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_sum(self, size):
        results = run_spmd(size, lambda comm: comm.reduce(comm.rank + 1, SUM, root=0))
        assert results[0] == size * (size + 1) // 2
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize(
        "op,expect",
        [(SUM, 10), (PROD, 24), (MAX, 4), (MIN, 1), (LAND, True), (LOR, True)],
    )
    def test_allreduce_ops(self, op, expect):
        results = run_spmd(4, lambda comm: comm.allreduce(comm.rank + 1, op))
        assert results == [expect] * 4

    def test_allreduce_numpy_arrays(self):
        def program(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), SUM)

        results = run_spmd(4, program)
        for r in results:
            np.testing.assert_array_equal(r, [6.0, 6.0, 6.0])

    @pytest.mark.parametrize("size", SIZES)
    def test_scan_inclusive_prefix(self, size):
        results = run_spmd(size, lambda comm: comm.scan(comm.rank + 1, SUM))
        assert results == [(r + 1) * (r + 2) // 2 for r in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_exscan_exclusive_prefix(self, size):
        results = run_spmd(size, lambda comm: comm.exscan(comm.rank + 1, SUM))
        assert results[0] is None
        for r in range(1, size):
            assert results[r] == r * (r + 1) // 2

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_property_allreduce_equals_gather_fold_bcast(self, values):
        size = len(values)

        def program(comm):
            mine = values[comm.rank]
            via_allreduce = comm.allreduce(mine, SUM)
            gathered = comm.gather(mine, root=0)
            manual = sum(gathered) if comm.rank == 0 else None
            manual = comm.bcast(manual, root=0)
            return via_allreduce == manual

        assert all(run_spmd(size, program))


class TestBarrier:
    def test_barrier_orders_phases(self):
        # Every rank appends "a" before the barrier and "b" after. With a
        # working barrier, all "a"s precede all "b"s in the shared log.
        import threading

        log = []
        lock = threading.Lock()

        def program(comm):
            with lock:
                log.append("a")
            comm.barrier()
            with lock:
                log.append("b")

        run_spmd(4, program)
        assert log[:4] == ["a"] * 4
        assert log[4:] == ["b"] * 4

    def test_many_barriers_no_crosstalk(self):
        def program(comm):
            for _ in range(25):
                comm.barrier()
            return True

        assert all(run_spmd(5, program))
