"""Error-reporting semantics: RankFailedError ordering/chaining, SpmdAbort unwind.

These pin down the failure contract the fault-tolerance layer builds
on: which exception becomes ``__cause__``, how simultaneous failures
are merged, and how surviving ranks unwind when the world aborts.
"""

import threading

import pytest

from repro.mpi import RankFailedError, SpmdAbort, run_spmd


class TestRankFailedErrorChaining:
    def test_cause_is_lowest_rank_failure(self):
        barrier = threading.Barrier(3)

        def program(comm):
            barrier.wait(timeout=5.0)  # all fail simultaneously
            raise ValueError(f"rank {comm.rank} broke")

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(3, program, timeout=5.0)
        err = excinfo.value
        assert set(err.failures) == {0, 1, 2}
        assert err.__cause__ is err.failures[0]

    def test_message_lists_failures_in_rank_order(self):
        barrier = threading.Barrier(2)

        def program(comm):
            barrier.wait(timeout=5.0)
            raise RuntimeError(f"boom-{comm.rank}")

        with pytest.raises(RankFailedError, match=r"rank 0: .*boom-0.*rank 1: .*boom-1"):
            run_spmd(2, program, timeout=5.0)

    def test_original_exception_preserved_not_wrapped(self):
        class DomainError(Exception):
            pass

        def program(comm):
            if comm.rank == 1:
                raise DomainError("typed failure")
            comm.barrier()

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, timeout=5.0)
        assert type(excinfo.value.failures[1]) is DomainError

    def test_single_failure_is_sole_entry(self):
        def program(comm):
            if comm.rank == 2:
                raise KeyError("only rank 2")
            comm.allreduce(1)

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(4, program, timeout=5.0)
        assert list(excinfo.value.failures) == [2]


class TestSpmdAbortUnwind:
    def test_survivors_blocked_in_collective_unwind_quietly(self):
        # Ranks 0 and 2 block inside allreduce; rank 1's failure must
        # wake and unwind them without adding them to the failure map.
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("first failure")
            comm.allreduce(comm.rank)

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(3, program, timeout=10.0)
        assert list(excinfo.value.failures) == [1]

    def test_abort_not_swallowed_by_except_exception(self):
        # SpmdAbort derives from BaseException precisely so a rank's
        # blanket `except Exception` cannot eat the teardown.
        assert issubclass(SpmdAbort, BaseException)
        assert not issubclass(SpmdAbort, Exception)

        reached = []

        def program(comm):
            if comm.rank == 1:
                raise ValueError("dies")
            try:
                comm.recv(source=1, tag=0)
            except Exception:  # would hide the abort if SpmdAbort were one
                reached.append("swallowed")
            return "survived"

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, timeout=10.0)
        assert list(excinfo.value.failures) == [1]
        assert reached == []

    def test_user_abort_unwinds_whole_world_quietly(self):
        # comm.abort() is a deliberate MPI_Abort-style teardown: every
        # rank (the caller included) unwinds via SpmdAbort without being
        # reported as a *failure* — even under "tolerate".
        def program(comm):
            if comm.rank == 0:
                comm.abort()
            comm.barrier()
            return "unreachable"

        results, report = run_spmd(
            2, program, on_failure="tolerate", timeout=10.0, return_report=True
        )
        assert results == [None, None]
        assert report.failures == {}

    def test_failed_world_leaves_next_run_clean(self):
        def bad(comm):
            if comm.rank == 0:
                raise RuntimeError("poison")
            comm.barrier()

        with pytest.raises(RankFailedError):
            run_spmd(2, bad, timeout=10.0)
        assert run_spmd(2, lambda comm: comm.allreduce(1)) == [2, 2]
