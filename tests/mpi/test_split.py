"""Tests for communicator split/dup — isolated message spaces."""

import pytest

from repro.mpi import SUM, run_spmd


class TestSplit:
    def test_split_even_odd(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.rank, sub.size, sub.allreduce(comm.rank, SUM))

        results = run_spmd(6, program)
        # Even ranks {0,2,4} and odd ranks {1,3,5} each form a 3-rank comm.
        assert results[0] == (0, 3, 6)
        assert results[2] == (1, 3, 6)
        assert results[4] == (2, 3, 6)
        assert results[1] == (0, 3, 9)
        assert results[3] == (1, 3, 9)
        assert results[5] == (2, 3, 9)

    def test_key_reorders_ranks(self):
        def program(comm):
            # Reverse ordering: higher parent rank gets lower new rank.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        assert run_spmd(4, program) == [3, 2, 1, 0]

    def test_undefined_color_returns_none(self):
        def program(comm):
            sub = comm.split(color=None if comm.rank == 1 else 7, key=comm.rank)
            if comm.rank == 1:
                return sub is None
            return sub.size

        results = run_spmd(3, program)
        assert results == [2, True, 2]

    def test_subcomm_messages_isolated_from_parent(self):
        def program(comm):
            sub = comm.split(color=0, key=comm.rank)
            if comm.rank == 0:
                # Send on the parent comm with tag 4; a recv on the sub
                # comm with the same source/tag must NOT match it.
                comm.send("parent-msg", dest=1, tag=4)
                sub.send("sub-msg", dest=1, tag=4)
                return None
            if comm.rank == 1:
                from_sub = sub.recv(source=0, tag=4)
                from_parent = comm.recv(source=0, tag=4)
                return (from_sub, from_parent)
            return None

        results = run_spmd(2, program)
        assert results[1] == ("sub-msg", "parent-msg")

    def test_nested_split(self):
        def program(comm):
            half = comm.split(color=comm.rank // 2, key=comm.rank)
            solo = half.split(color=half.rank, key=0)
            return (half.size, solo.size)

        assert run_spmd(4, program) == [(2, 1)] * 4

    def test_subcomm_collectives(self):
        def program(comm):
            sub = comm.split(color=comm.rank < 2, key=comm.rank)
            total = sub.allreduce(1, SUM)
            sub.barrier()
            return total

        assert run_spmd(5, program) == [2, 2, 3, 3, 3]


class TestDup:
    def test_dup_same_group_isolated_space(self):
        def program(comm):
            dup = comm.dup()
            assert (dup.rank, dup.size) == (comm.rank, comm.size)
            if comm.rank == 0:
                dup.send("on-dup", dest=1, tag=0)
                return None
            assert comm.iprobe(source=0, tag=0) is None or True  # racy but harmless
            return dup.recv(source=0, tag=0)

        results = run_spmd(2, program)
        assert results[1] == "on-dup"

    def test_dup_supports_collectives(self):
        def program(comm):
            return comm.dup().allreduce(comm.rank, SUM)

        assert run_spmd(4, program) == [6, 6, 6, 6]
