"""Tests for Cartesian topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_spmd
from repro.mpi.topology import CartComm, dims_create


class TestDimsCreate:
    @pytest.mark.parametrize(
        "nnodes,ndims,expect",
        [(12, 2, [4, 3]), (8, 3, [2, 2, 2]), (7, 2, [7, 1]), (1, 2, [1, 1]), (6, 1, [6])],
    )
    def test_known_factorizations(self, nnodes, ndims, expect):
        assert dims_create(nnodes, ndims) == expect

    @given(st.integers(1, 512), st.integers(1, 4))
    @settings(max_examples=50)
    def test_property_product_and_order(self, nnodes, ndims):
        dims = dims_create(nnodes, ndims)
        assert len(dims) == ndims
        prod = 1
        for d in dims:
            prod *= d
        assert prod == nnodes
        assert dims == sorted(dims, reverse=True)


class TestCoordinates:
    def test_row_major_layout(self):
        def program(comm):
            cart = CartComm(comm, dims=[2, 3], periods=[False, False])
            return cart.coords

        results = run_spmd(6, program)
        assert results == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_rank_of_inverts_coords_of(self):
        def program(comm):
            cart = CartComm(comm, dims=[2, 2, 2], periods=[True, True, True])
            return all(cart.rank_of(cart.coords_of(r)) == r for r in range(comm.size))

        assert all(run_spmd(8, program))

    def test_periodic_wrapping(self):
        def program(comm):
            cart = CartComm(comm, dims=[4], periods=[True])
            return cart.rank_of([comm.rank + 4])  # wraps to itself

        assert run_spmd(4, program) == [0, 1, 2, 3]

    def test_nonperiodic_out_of_range(self):
        def program(comm):
            cart = CartComm(comm, dims=[2], periods=[False])
            try:
                cart.rank_of([5])
                return False
            except ValueError:
                return True

        assert all(run_spmd(2, program))

    def test_dims_must_cover_size(self):
        from repro.mpi import RankFailedError

        def program(comm):
            CartComm(comm, dims=[2, 2], periods=[False, False])

        with pytest.raises(RankFailedError, match="cover"):
            run_spmd(3, program)


class TestShift:
    def test_ring_shift(self):
        def program(comm):
            cart = CartComm(comm, dims=[4], periods=[True])
            return cart.shift(0, 1)

        results = run_spmd(4, program)
        assert results == [(3, 1), (0, 2), (1, 3), (2, 0)]

    def test_nonperiodic_edges_are_none(self):
        def program(comm):
            cart = CartComm(comm, dims=[3], periods=[False])
            return cart.shift(0, 1)

        results = run_spmd(3, program)
        assert results == [(None, 1), (0, 2), (1, None)]

    def test_2d_shift_moves_along_one_axis(self):
        def program(comm):
            cart = CartComm(comm, dims=[2, 3], periods=[True, True])
            src_row, dst_row = cart.shift(0, 1)
            src_col, dst_col = cart.shift(1, 1)
            return (cart.coords_of(dst_row), cart.coords_of(dst_col))

        results = run_spmd(6, program)
        r, c = results[0]  # rank 0 at (0,0)
        assert r == (1, 0) and c == (0, 1)

    def test_neighbor_sendrecv_rotates_ring(self):
        def program(comm):
            cart = CartComm(comm, dims=[comm.size], periods=[True])
            return cart.neighbor_sendrecv(comm.rank, dimension=0, displacement=1)

        results = run_spmd(5, program)
        assert results == [4, 0, 1, 2, 3]

    def test_neighbor_sendrecv_boundary_returns_none(self):
        def program(comm):
            cart = CartComm(comm, dims=[comm.size], periods=[False])
            return cart.neighbor_sendrecv(comm.rank, dimension=0, displacement=1)

        results = run_spmd(3, program)
        assert results == [None, 0, 1]
