"""Tests for the runtime's communication statistics."""

import numpy as np

from repro.mpi import run_spmd


class TestMessageStats:
    def test_no_communication_no_messages(self):
        results, stats = run_spmd(3, lambda comm: comm.rank, return_stats=True)
        assert results == [0, 1, 2]
        assert stats == {"messages": 0, "payload_bytes": 0}

    def test_point_to_point_counted(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)

        _, stats = run_spmd(2, program, return_stats=True)
        assert stats["messages"] == 1
        assert stats["payload_bytes"] > 0

    def test_collectives_cost_messages(self):
        def program(comm):
            comm.bcast("hello" if comm.rank == 0 else None, root=0)

        _, stats = run_spmd(4, program, return_stats=True)
        assert stats["messages"] == 3  # root posts to each other rank

    def test_bigger_payloads_cost_more_bytes(self):
        def make_program(n):
            def program(comm):
                if comm.rank == 0:
                    comm.send(np.zeros(n), dest=1)
                else:
                    comm.recv(source=0)
            return program

        _, small = run_spmd(2, make_program(10), return_stats=True)
        _, big = run_spmd(2, make_program(10_000), return_stats=True)
        assert big["payload_bytes"] > small["payload_bytes"] + 70_000

    def test_default_return_shape_unchanged(self):
        results = run_spmd(2, lambda comm: comm.rank)
        assert results == [0, 1]

    def test_combiner_saves_bytes_not_just_pairs(self):
        # The kNN paper claim, now in bytes: local reduction shrinks the
        # actual payload volume crossing ranks.
        from repro.knn import knn_mapreduce, make_blobs

        db, labels = make_blobs(300, 6, 3, seed=0)
        queries, _ = make_blobs(30, 6, 3, seed=1)

        def program(comm, combine):
            return knn_mapreduce(comm, db, labels, queries, 5, local_combine=combine)

        _, plain = run_spmd(4, program, False, return_stats=True)
        _, combined = run_spmd(4, program, True, return_stats=True)
        assert combined["payload_bytes"] < plain["payload_bytes"] / 2
