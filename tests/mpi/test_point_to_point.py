"""Point-to-point messaging tests for the SPMD runtime."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, DeadlockError, RankFailedError, run_spmd


class TestSendRecv:
    def test_ping(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_spmd(2, program)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_messages_are_value_copies(self):
        # Like real MPI, mutating the received object must not affect
        # the sender's copy (messages are pickled).
        def program(comm):
            data = [1, 2, 3]
            if comm.rank == 0:
                comm.send(data, dest=1)
                comm.barrier()
                return data
            got = comm.recv(source=0)
            got.append(99)
            comm.barrier()
            return got

        results = run_spmd(2, program)
        assert results[0] == [1, 2, 3]
        assert results[1] == [1, 2, 3, 99]

    def test_numpy_payload(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(10.0), dest=1)
                return None
            return comm.recv(source=0)

        results = run_spmd(2, program)
        np.testing.assert_array_equal(results[1], np.arange(10.0))

    def test_tag_matching_out_of_order(self):
        # Receiver asks for tag 2 first even though tag 1 arrives first.
        def program(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        results = run_spmd(2, program)
        assert results[1] == ("first", "second")

    def test_fifo_per_sender_and_tag(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(20)]

        results = run_spmd(2, program)
        assert results[1] == list(range(20))

    def test_any_source_any_tag(self):
        def program(comm):
            if comm.rank == 0:
                got = sorted(comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(comm.size - 1))
                return got
            comm.send(comm.rank * 10, dest=0, tag=comm.rank)
            return None

        results = run_spmd(4, program)
        assert results[0] == [10, 20, 30]

    def test_status_reports_source_and_tag(self):
        def program(comm):
            if comm.rank == 2:
                comm.send("x", dest=0, tag=7)
                return None
            if comm.rank == 0:
                obj, status = comm.recv_with_status(ANY_SOURCE, ANY_TAG)
                return (obj, status.source, status.tag)
            return None

        results = run_spmd(3, program)
        assert results[0] == ("x", 2, 7)

    def test_sendrecv_ring(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        results = run_spmd(4, program)
        assert results == [3, 0, 1, 2]

    def test_negative_user_tag_rejected(self):
        def program(comm):
            comm.send(1, dest=0, tag=-5)

        with pytest.raises(RankFailedError):
            run_spmd(1, program)

    def test_bad_dest_rejected(self):
        def program(comm):
            comm.send(1, dest=5)

        with pytest.raises(RankFailedError, match="out of range"):
            run_spmd(2, program)


class TestNonBlocking:
    def test_isend_irecv(self):
        def program(comm):
            if comm.rank == 0:
                req = comm.isend(list(range(5)), dest=1, tag=3)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=3)
            return req.wait()

        results = run_spmd(2, program)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_irecv_test_polls(self):
        def program(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=9)  # wait until rank 1 posted its irecv
                comm.send("late", dest=1, tag=4)
                return None
            req = comm.irecv(source=0, tag=4)
            done, value = req.test()
            assert not done and value is None
            comm.send(None, dest=0, tag=9)
            return req.wait()

        results = run_spmd(2, program)
        assert results[1] == "late"

    def test_probe_and_iprobe(self):
        def program(comm):
            if comm.rank == 0:
                assert comm.iprobe(source=1) is None
                comm.send(None, dest=1, tag=9)  # release the sender
                status = comm.probe(source=1, tag=2)
                assert (status.source, status.tag) == (1, 2)
                # Probing does not consume: the message is still there.
                return comm.recv(source=1, tag=2)
            comm.recv(source=0, tag=9)
            comm.send("payload", dest=0, tag=2)
            return None

        results = run_spmd(2, program)
        assert results[0] == "payload"


class TestFailureHandling:
    def test_rank_exception_reported_with_rank(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.barrier()

        with pytest.raises(RankFailedError, match="rank 1: ValueError: boom"):
            run_spmd(3, program, timeout=10.0)

    def test_failure_unblocks_peers(self):
        # Rank 0 blocks in recv forever; rank 1 raises. The abort must
        # wake rank 0 rather than waiting out the full timeout.
        def program(comm):
            if comm.rank == 0:
                comm.recv(source=1)
            else:
                raise RuntimeError("dead sender")

        with pytest.raises(RankFailedError, match="dead sender"):
            run_spmd(2, program, timeout=30.0)

    def test_deadlock_detected(self):
        def program(comm):
            comm.recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, program, timeout=0.5)
        assert any(isinstance(e, DeadlockError) for e in excinfo.value.failures.values())

    def test_results_in_rank_order(self):
        results = run_spmd(5, lambda comm: comm.rank**2)
        assert results == [0, 1, 4, 9, 16]

    def test_extra_args_passed_through(self):
        results = run_spmd(3, lambda comm, base, scale=1: base + scale * comm.rank, 100, scale=2)
        assert results == [100, 102, 104]

    def test_single_rank_world(self):
        results = run_spmd(1, lambda comm: (comm.rank, comm.size))
        assert results == [(0, 1)]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)
