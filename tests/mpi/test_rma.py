"""Tests for one-sided communication (RMA windows)."""

import numpy as np
import pytest

from repro.mpi import RankFailedError, run_spmd
from repro.mpi.rma import Window


class TestLockEpochs:
    def test_tutorial_pattern_root_window(self):
        """The mpi4py tutorial's example: root exposes memory, rank 0
        fills it, the others read 42s."""

        def program(comm):
            win = Window(comm, local_size=10 if comm.rank == 0 else 0)
            if comm.rank == 0:
                with win.locked(0):
                    win.put(np.full(10, 42.0), target=0)
                comm.barrier()
                return True
            comm.barrier()
            with win.locked(0):
                data = win.get(target=0)
            return bool(np.all(data == 42.0))

        assert all(run_spmd(3, program))

    def test_put_then_get_roundtrip(self):
        def program(comm):
            win = Window(comm, local_size=4)
            peer = (comm.rank + 1) % comm.size
            with win.locked(peer):
                win.put(np.full(4, float(comm.rank)), target=peer)
            comm.barrier()
            return win.local.copy()

        results = run_spmd(3, program)
        # Rank r's window was written by rank (r-1) % size.
        for r, buf in enumerate(results):
            np.testing.assert_array_equal(buf, np.full(4, float((r - 1) % 3)))

    def test_partial_put_with_offset(self):
        def program(comm):
            win = Window(comm, local_size=6)
            if comm.rank == 1:
                with win.locked(0):
                    win.put(np.array([7.0, 8.0]), target=0, offset=2)
            comm.barrier()
            return win.local.copy()

        results = run_spmd(2, program)
        np.testing.assert_array_equal(results[0], [0, 0, 7, 8, 0, 0])

    def test_access_outside_epoch_rejected(self):
        def program(comm):
            win = Window(comm, local_size=2)
            win.put(np.zeros(2), target=0)  # no lock, no fence

        with pytest.raises(RankFailedError, match="outside any epoch"):
            run_spmd(2, program)

    def test_out_of_bounds_rejected(self):
        def program(comm):
            win = Window(comm, local_size=2)
            with win.locked(0):
                win.put(np.zeros(5), target=0)

        with pytest.raises(RankFailedError, match="exceeds window"):
            run_spmd(1, program)

    def test_empty_target_window_rejected(self):
        def program(comm):
            win = Window(comm, local_size=0 if comm.rank == 1 else 2)
            comm.barrier()
            if comm.rank == 0:
                with win.locked(1):
                    win.get(target=1)
            comm.barrier()

        with pytest.raises(RankFailedError, match="exposes no window memory"):
            run_spmd(2, program)


class TestFenceEpochs:
    def test_fence_separated_halo_pattern(self):
        def program(comm):
            win = Window(comm, local_size=1)
            win.local[0] = float(comm.rank)
            win.fence()
            right = (comm.rank + 1) % comm.size
            got = win.get(target=right)[0]
            win.fence()
            return got

        assert run_spmd(4, program) == [1.0, 2.0, 3.0, 0.0]

    def test_concurrent_accumulates_lose_nothing(self):
        def program(comm):
            win = Window(comm, local_size=1)
            win.fence()
            for _ in range(200):
                win.accumulate(np.array([1.0]), target=0)
            win.fence()
            return win.local[0] if comm.rank == 0 else None

        results = run_spmd(4, program)
        assert results[0] == 800.0

    def test_accumulate_custom_op(self):
        def program(comm):
            win = Window(comm, local_size=2)
            win.fence()
            win.accumulate(np.full(2, float(comm.rank + 1)), target=0,
                           op=lambda a, b: np.maximum(a, b))
            win.fence()
            return win.local.copy() if comm.rank == 0 else None

        results = run_spmd(3, program)
        np.testing.assert_array_equal(results[0], [3.0, 3.0])

    def test_two_windows_are_independent(self):
        def program(comm):
            a = Window(comm, local_size=1)
            b = Window(comm, local_size=1)
            a.fence()
            b.fence()
            a.accumulate(np.array([1.0]), target=0)
            a.fence()
            b.fence()
            if comm.rank == 0:
                return (a.local[0], b.local[0])
            return None

        results = run_spmd(2, program)
        assert results[0] == (2.0, 0.0)
