"""Disk faults against spill files: injection, lineage recovery, escalation.

PR 3's contract extended to the disk tier: for any seeded
:class:`SparkFaultPlan` a run *survives*, its results are bit-identical
to the fault-free (and unbounded in-memory) run — now including plans
that delete, truncate, or byte-corrupt the spill runs an out-of-core
shuffle writes. Plans the engine cannot survive (a fault that re-fires
past ``max_task_retries``) must escalate to
:class:`SparkJobFailedError` carrying a report that names the lost
spill files — never hang, never return wrong data.
"""

import pytest

from repro.knn import wordcount_spark
from repro.spark import (
    SPILL_FAULT_KINDS,
    SparkContext,
    SparkFaultPlan,
    SparkJobFailedError,
)

BUDGET = 4_096
WORDS = "how vexingly quick daft zebras jump the five boxing wizards".split()


def lines_for(n: int) -> list[str]:
    return [" ".join(WORDS[(i + j) % len(WORDS)] for j in range(6)) for i in range(n)]


def run_count(fault_plan=None, *, budget=BUDGET, workers=2, retries=3, backend="thread"):
    """One out-of-core wordcount; returns (counts, metrics.extra, report)."""
    with SparkContext(
        workers,
        backend=backend,
        memory_budget=budget,
        fault_plan=fault_plan,
        max_task_retries=retries,
    ) as sc:
        counts = dict(
            sc.parallelize(lines_for(3_000), 8)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        return counts, dict(sc.metrics.extra), sc.fault_report


BASELINE = run_count()[0]


class TestSingleSpillFaults:
    @pytest.mark.parametrize("ctor", ["delete_spill", "truncate_spill", "corrupt_spill"])
    def test_recovers_bit_identical_with_evidence(self, ctor):
        plan = getattr(SparkFaultPlan, ctor)(0, file=0)
        counts, extra, report = run_count(plan)
        assert counts == BASELINE
        assert extra["spark.injected_faults"] >= 1
        assert extra["spark.lost_spill_files"] == 1
        assert extra["spark.spill_recoveries"] == 1
        assert extra["spark.recomputed_partitions"] >= 1
        (shuffle, slot, reason, path) = report.lost_spill_files()[0]
        assert (shuffle, slot) == (0, 0)
        assert reason in ("file deleted", "previously detected loss") or any(
            reason.startswith(p) for p in ("truncated", "checksum")
        )
        assert "run-00000.spill" in path
        assert report.spill_recoveries == [(0, 0)]
        assert "spill file(s) lost" in report.summary()

    def test_fault_on_never_written_slot_is_noop(self):
        plan = SparkFaultPlan.delete_spill(0, file=500)
        counts, extra, report = run_count(plan)
        assert counts == BASELINE
        assert extra.get("spark.lost_spill_files", 0) == 0
        assert report.lost_spill_files() == []

    def test_second_spill_file_fault_recovers(self):
        plan = SparkFaultPlan.corrupt_spill(0, file=1)
        counts, extra, _ = run_count(plan)
        assert counts == BASELINE
        assert extra["spark.spill_recoveries"] == 1

    def test_serial_and_thread_agree_under_fault(self):
        plan = SparkFaultPlan.truncate_spill(0, file=0)
        serial, serial_extra, _ = run_count(plan, backend="serial")
        thread, _, _ = run_count(plan, backend="thread")
        assert serial == thread == BASELINE
        assert serial_extra["spark.spill_recoveries"] == 1


class TestUnrecoverablePlans:
    def test_refiring_fault_escalates_and_names_lost_files(self):
        plan = SparkFaultPlan.delete_spill(0, file=0, attempts=99)
        with pytest.raises(SparkJobFailedError) as err:
            run_count(plan, retries=2, backend="serial")
        lost = err.value.report.lost_spill_files()
        assert lost and lost[0][:2] == (0, 0)
        assert "spill file(s) lost" in str(err.value)

    def test_spill_dir_cleaned_after_failed_job(self):
        plan = SparkFaultPlan.corrupt_spill(0, file=0, attempts=99)
        sc = SparkContext(
            2, backend="serial", memory_budget=BUDGET, fault_plan=plan, max_task_retries=1
        )
        with pytest.raises(SparkJobFailedError):
            with sc:
                sc.parallelize(lines_for(3_000), 8).flat_map(str.split).map(
                    lambda w: (w, 1)
                ).reduce_by_key(lambda a, b: a + b).collect()
        # stop() ran via the with-block despite the failure
        assert sc.spill_directory is None


class TestSeedSweep:
    """Sampled plans across seeds: every survivable plan is bit-identical."""

    def test_sampled_spill_plans_recover(self):
        survived = faulted = 0
        for seed in range(12):
            plan = SparkFaultPlan.sample(
                seed,
                jobs=4,
                partitions=8,
                spill_delete_prob=0.12,
                spill_truncate_prob=0.12,
                spill_corrupt_prob=0.12,
                shuffles=2,
                spill_files=4,
            )
            counts, extra, report = run_count(plan)
            assert counts == BASELINE, f"seed {seed} diverged"
            survived += 1
            if report.lost_spill_files():
                faulted += 1
                assert extra["spark.spill_recoveries"] == len(report.spill_recoveries)
                assert {(s, f) for s, f, _, _ in report.lost_spill_files()} == set(
                    report.spill_recoveries
                )
        assert survived == 12
        assert faulted >= 3  # the sweep actually exercised the recovery path

    def test_sampling_is_deterministic_and_kinds_valid(self):
        kwargs = dict(
            jobs=2,
            partitions=4,
            spill_delete_prob=0.3,
            spill_truncate_prob=0.3,
            spill_corrupt_prob=0.3,
            shuffles=3,
            spill_files=6,
        )
        a = SparkFaultPlan.sample(99, **kwargs)
        b = SparkFaultPlan.sample(99, **kwargs)
        assert a.events == b.events
        spill_events = [e for e in a.events if e.kind in SPILL_FAULT_KINDS]
        assert spill_events  # 0.9 total prob over 18 slots
        assert {e.kind for e in spill_events} <= set(SPILL_FAULT_KINDS)

    def test_spill_region_does_not_shift_existing_draws(self):
        # Adding spill probabilities must not change what the pre-existing
        # regions (task/shuffle/broadcast) draw for the same seed.
        base = SparkFaultPlan.sample(7, jobs=3, partitions=5, task_fail_prob=0.2,
                                     shuffle_corrupt_prob=0.2, broadcast_corrupt_prob=0.2)
        with_spills = SparkFaultPlan.sample(7, jobs=3, partitions=5, task_fail_prob=0.2,
                                            shuffle_corrupt_prob=0.2, broadcast_corrupt_prob=0.2,
                                            spill_delete_prob=0.5)
        old = [e for e in with_spills.events if e.kind not in SPILL_FAULT_KINDS]
        assert tuple(old) == base.events

    def test_combined_task_and_spill_faults(self):
        plan = SparkFaultPlan.sample(
            3,
            jobs=4,
            partitions=8,
            task_fail_prob=0.1,
            straggle_prob=0.05,
            spill_delete_prob=0.2,
            shuffles=2,
            spill_files=4,
        )
        counts, _, _ = run_count(plan)
        assert counts == BASELINE

    def test_wordcount_spark_front_door_with_fault_plan(self):
        plan = SparkFaultPlan.delete_spill(0, file=0)
        lines = lines_for(3_000)
        assert wordcount_spark(
            lines, num_workers=2, memory_budget=BUDGET, fault_plan=plan
        ) == wordcount_spark(lines, num_workers=2)
