"""Tests for the mini DataFrame layer."""

import pytest

from repro.spark import SparkContext
from repro.spark.dataframe import DataFrame


@pytest.fixture()
def sc():
    return SparkContext(num_workers=3, default_partitions=3)


@pytest.fixture()
def people(sc):
    rows = [
        {"name": "ada", "dept": "eng", "salary": 120},
        {"name": "bob", "dept": "eng", "salary": 100},
        {"name": "cyd", "dept": "ops", "salary": 90},
        {"name": "dee", "dept": "ops", "salary": 95},
        {"name": "eve", "dept": "sci", "salary": 130},
    ]
    return DataFrame.from_rows(sc, rows)


class TestConstruction:
    def test_schema_inferred_from_first_row(self, people):
        assert people.columns == ["name", "dept", "salary"]
        assert people.count() == 5

    def test_inconsistent_rows_rejected(self, sc):
        with pytest.raises(ValueError, match="row 1 has columns"):
            DataFrame.from_rows(sc, [{"a": 1}, {"b": 2}])

    def test_empty_needs_schema(self, sc):
        with pytest.raises(ValueError, match="zero rows"):
            DataFrame.from_rows(sc, [])
        df = DataFrame.from_rows(sc, [], columns=["a"])
        assert df.count() == 0

    def test_duplicate_columns_rejected(self, sc):
        with pytest.raises(ValueError, match="duplicate"):
            DataFrame(sc.parallelize([]), ["a", "a"])


class TestProjection:
    def test_select_subset_and_order(self, people):
        df = people.select("salary", "name")
        assert df.columns == ["salary", "name"]
        assert df.first() == {"salary": 120, "name": "ada"}

    def test_select_unknown_column(self, people):
        with pytest.raises(KeyError, match="unknown column"):
            people.select("age")

    def test_with_column_computed(self, people):
        df = people.with_column("bonus", lambda r: r["salary"] // 10)
        assert df.columns[-1] == "bonus"
        assert df.first()["bonus"] == 12

    def test_with_column_replace_keeps_schema(self, people):
        df = people.with_column("salary", lambda r: r["salary"] * 2)
        assert df.columns == people.columns
        assert df.first()["salary"] == 240

    def test_drop(self, people):
        df = people.drop("salary")
        assert df.columns == ["name", "dept"]
        with pytest.raises(ValueError, match="every column"):
            people.drop("name", "dept", "salary")

    def test_rename(self, people):
        df = people.rename({"dept": "team"})
        assert df.columns == ["name", "team", "salary"]
        assert df.first()["team"] == "eng"


class TestFilterDistinctUnion:
    def test_where(self, people):
        rich = people.where(lambda r: r["salary"] >= 100)
        assert {r["name"] for r in rich.collect()} == {"ada", "bob", "eve"}

    def test_distinct(self, sc):
        df = DataFrame.from_rows(sc, [{"x": 1}, {"x": 1}, {"x": 2}])
        assert sorted(r["x"] for r in df.distinct().collect()) == [1, 2]

    def test_union_schema_checked(self, people, sc):
        other = DataFrame.from_rows(sc, [{"name": "fay", "dept": "sci", "salary": 80}])
        assert people.union(other).count() == 6
        with pytest.raises(ValueError, match="identical schemas"):
            people.union(other.select("name", "dept", "salary").rename({"name": "n"}))


class TestOrderLimit:
    def test_order_by(self, people):
        names = [r["name"] for r in people.order_by("salary").collect()]
        assert names == ["cyd", "dee", "bob", "ada", "eve"]
        desc = [r["name"] for r in people.order_by("salary", ascending=False).collect()]
        assert desc == ["eve", "ada", "bob", "dee", "cyd"]

    def test_limit(self, people):
        assert people.limit(2).count() == 2
        assert people.limit(0).count() == 0


class TestGroupByAgg:
    def test_multiple_aggregations(self, people):
        summary = people.group_by("dept").agg(
            {
                "total": ("salary", "sum"),
                "avg": ("salary", "mean"),
                "headcount": ("name", "count"),
                "top": ("salary", "max"),
            }
        )
        rows = {r["dept"]: r for r in summary.collect()}
        assert rows["eng"] == {"dept": "eng", "total": 220, "avg": 110.0, "headcount": 2, "top": 120}
        assert rows["sci"]["headcount"] == 1

    def test_shorthand_spec(self, people):
        rows = {r["dept"]: r for r in people.select("dept", "salary")
                .group_by("dept").agg({"salary": "min"}).collect()}
        assert rows["ops"]["salary"] == 90

    def test_count_shorthand(self, people):
        rows = {r["dept"]: r["count"] for r in people.group_by("dept").count().collect()}
        assert rows == {"eng": 2, "ops": 2, "sci": 1}

    def test_unknown_aggregation(self, people):
        with pytest.raises(ValueError, match="unknown aggregation"):
            people.group_by("dept").agg({"salary": "median"})

    def test_group_by_multiple_keys(self, sc):
        rows = [
            {"a": 1, "b": "x", "v": 10},
            {"a": 1, "b": "x", "v": 20},
            {"a": 1, "b": "y", "v": 1},
        ]
        out = DataFrame.from_rows(sc, rows).group_by("a", "b").agg({"v": "sum"}).collect()
        got = {(r["a"], r["b"]): r["v"] for r in out}
        assert got == {(1, "x"): 30, (1, "y"): 1}


class TestJoin:
    @pytest.fixture()
    def depts(self, sc):
        return DataFrame.from_rows(
            sc,
            [
                {"dept": "eng", "floor": 3},
                {"dept": "ops", "floor": 1},
                {"dept": "hr", "floor": 2},
            ],
        )

    def test_inner_join(self, people, depts):
        joined = people.join(depts, on="dept")
        assert set(joined.columns) == {"dept", "name", "salary", "floor"}
        rows = {r["name"]: r["floor"] for r in joined.collect()}
        assert rows == {"ada": 3, "bob": 3, "cyd": 1, "dee": 1}  # eve's dept has no floor

    def test_left_join_fills_none(self, people, depts):
        joined = people.join(depts, on="dept", how="left")
        rows = {r["name"]: r["floor"] for r in joined.collect()}
        assert rows["eve"] is None
        assert len(rows) == 5

    def test_full_join_includes_unmatched_right(self, people, depts):
        joined = people.join(depts, on="dept", how="full")
        depts_seen = {r["dept"] for r in joined.collect()}
        assert "hr" in depts_seen

    def test_column_collision_rejected(self, people, sc):
        other = DataFrame.from_rows(sc, [{"dept": "eng", "salary": 999}])
        with pytest.raises(ValueError, match="collide"):
            people.join(other, on="dept")

    def test_unknown_join_type(self, people, depts):
        with pytest.raises(ValueError, match="join type"):
            people.join(depts, on="dept", how="cross")


class TestShow:
    def test_show_renders_table(self, people):
        text = people.show(2)
        lines = text.splitlines()
        assert "name" in lines[0] and "salary" in lines[0]
        assert len(lines) == 4  # header + rule + 2 rows

    def test_column_values(self, people):
        assert sorted(people.column_values("salary")) == [90, 95, 100, 120, 130]


class TestDescribe:
    def test_numeric_summary(self, people):
        summary = people.describe("salary").collect()
        assert len(summary) == 1
        row = summary[0]
        assert row["column"] == "salary"
        assert row["count"] == 5
        assert row["min"] == 90 and row["max"] == 130
        assert row["mean"] == pytest.approx(107.0)

    def test_all_columns_skips_non_numeric(self, people):
        summary = people.describe().collect()
        assert [r["column"] for r in summary] == ["salary"]

    def test_explicit_non_numeric_rejected(self, people):
        with pytest.raises(ValueError, match="no numeric values"):
            people.describe("name")


class TestJoinStrategy:
    def test_broadcast_matches_shuffle(self, people, sc):
        depts = DataFrame.from_rows(
            sc, [{"dept": "eng", "floor": 3}, {"dept": "ops", "floor": 1}]
        )
        shuffle = sorted(
            tuple(sorted(r.items())) for r in people.join(depts, on="dept").collect()
        )
        broadcast = sorted(
            tuple(sorted(r.items()))
            for r in people.join(depts, on="dept", strategy="broadcast").collect()
        )
        assert broadcast == shuffle

    def test_broadcast_avoids_shuffle_entirely(self, people, sc):
        depts = DataFrame.from_rows(sc, [{"dept": "eng", "floor": 3}])
        sc.reset_metrics()
        people.join(depts, on="dept", strategy="broadcast").collect()
        assert sc.metrics.shuffles == 0

    def test_broadcast_requires_inner(self, people, sc):
        depts = DataFrame.from_rows(sc, [{"dept": "eng", "floor": 3}])
        with pytest.raises(ValueError, match="inner joins only"):
            people.join(depts, on="dept", how="left", strategy="broadcast")

    def test_unknown_strategy(self, people, sc):
        depts = DataFrame.from_rows(sc, [{"dept": "eng", "floor": 3}])
        with pytest.raises(ValueError, match="strategy"):
            people.join(depts, on="dept", strategy="sortmerge")
