"""Out-of-core shuffle: spill-to-disk, k-way merge, and cleanup.

The tentpole guarantee under test: with a ``memory_budget`` the engine
spills sorted CRC-checksummed runs to a temp directory, merges them
back on the reduce side, and produces results **bit-identical** to the
unbounded in-memory run — on the store in isolation, on the exemplar
workloads (NYC pipeline, wordcount) with inputs several times the
budget, and across all executor backends. The spill directory must
never outlive the context (see the leak tests at the bottom).
"""

import zlib

import pytest

from repro.knn import wordcount_spark
from repro.pipeline import generate_arrests, generate_ntas, nyc_arrests_pipeline
from repro.spark import LostSpillFileError, ShuffleBlockStore, SparkContext

WORDS = "the quick brown fox jumps over the lazy dog again and again".split()


def big_lines(n: int) -> list[str]:
    return [" ".join(WORDS[(i + j) % len(WORDS)] for j in range(8)) for i in range(n)]


class TestStoreSpill:
    def put_rows(self, store: ShuffleBlockStore, num_maps: int, num_parts: int, scale: int = 50):
        rows = []
        for m in range(num_maps):
            buckets = [[(f"k{m}-{r}-{i}", i) for i in range(scale)] for r in range(num_parts)]
            rows.append(buckets)
            store.put(m, buckets)
        return rows

    def test_roundtrip_after_spill(self, tmp_path):
        store = ShuffleBlockStore(4, 3, memory_budget=2_000, spill_dir=tmp_path)
        rows = self.put_rows(store, 4, 3)
        assert store.spill_file_count >= 1  # the budget actually bit
        for m in range(4):
            for r in range(3):
                assert store.get(m, r) == rows[m][r]

    def test_iter_blocks_merges_in_map_task_order(self, tmp_path):
        store = ShuffleBlockStore(5, 2, memory_budget=2_000, spill_dir=tmp_path)
        rows = self.put_rows(store, 5, 2)
        # Last row resident, earlier ones spread over spill runs: the
        # merged stream must still come back 0,1,2,3,4.
        for r in range(2):
            got = list(store.iter_blocks(r))
            assert [m for m, _ in got] == [0, 1, 2, 3, 4]
            assert [b for _, b in got] == [rows[m][r] for m in range(5)]

    def test_runs_are_sorted_by_reduce_partition(self, tmp_path):
        infos = []
        store = ShuffleBlockStore(
            4, 3, memory_budget=2_000, spill_dir=tmp_path, on_spill=infos.append
        )
        self.put_rows(store, 4, 3)
        assert infos and infos == store.spill_files()
        record = store._files[infos[0].slot]
        # Offsets ordered by (reduce_part, map_task): each reduce
        # partition's blocks are one contiguous, sequential scan.
        keys = sorted(record.index, key=lambda k: record.index[k][0])
        assert keys == sorted(keys, key=lambda k: (k[1], k[0]))

    def test_compressed_spill_roundtrips_and_shrinks(self, tmp_path):
        plain = ShuffleBlockStore(4, 2, memory_budget=2_000, spill_dir=tmp_path / "p")
        compressed = ShuffleBlockStore(
            4, 2, memory_budget=2_000, spill_dir=tmp_path / "c", compress=True
        )
        (tmp_path / "p").mkdir(), (tmp_path / "c").mkdir()
        rows = self.put_rows(plain, 4, 2, scale=200)
        assert self.put_rows(compressed, 4, 2, scale=200) == rows
        for m in range(4):
            for r in range(2):
                assert compressed.get(m, r) == plain.get(m, r) == rows[m][r]
        plain_bytes = sum(f.bytes for f in plain.spill_files())
        comp_bytes = sum(f.bytes for f in compressed.spill_files())
        assert 0 < comp_bytes < plain_bytes

    def test_pinned_rows_are_never_spilled(self, tmp_path):
        store = ShuffleBlockStore(3, 2, memory_budget=500, spill_dir=tmp_path)
        buckets = [[("k", i) for i in range(100)] for _ in range(2)]
        store.put(0, buckets, pin=True)
        store.put(1, buckets)
        store.put(2, buckets)
        assert store.spill_file_count >= 1
        assert all(0 not in f.map_tasks for f in store.spill_files())
        assert store.get(0, 0) == buckets[0]

    def test_oversized_single_row_still_works(self, tmp_path):
        # One row alone exceeding the budget spills as its own run.
        store = ShuffleBlockStore(2, 2, memory_budget=100, spill_dir=tmp_path)
        rows = self.put_rows(store, 2, 2, scale=50)
        assert store.spill_file_count >= 1
        assert [b for _, b in store.iter_blocks(1)] == [rows[0][1], rows[1][1]]

    def test_budget_requires_spill_dir_and_positive_bytes(self, tmp_path):
        with pytest.raises(ValueError, match="spill_dir"):
            ShuffleBlockStore(2, 2, memory_budget=100)
        with pytest.raises(ValueError, match="positive"):
            ShuffleBlockStore(2, 2, memory_budget=0, spill_dir=tmp_path)

    def test_verify_reads_without_fault_plan(self):
        store = ShuffleBlockStore(2, 2, verify_reads=True)
        store.put(0, [[("k", 1)], [("k", 2)]])
        assert store.get(0, 1) == [("k", 2)]
        assert store.corrupt(0, 1)  # serialized mode is armed...
        from repro.spark import CorruptShuffleBlockError

        with pytest.raises(CorruptShuffleBlockError):
            store.get(0, 1)  # ...and every get verifies

    def test_spill_tier_is_always_checksummed(self, tmp_path):
        store = ShuffleBlockStore(2, 2, memory_budget=100, spill_dir=tmp_path)
        self.put_rows(store, 2, 2, scale=20)
        info = store.spill_files()[0]
        with open(info.path, "r+b") as fh:
            fh.seek(info.bytes // 2)
            byte = fh.read(1)
            fh.seek(info.bytes // 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(LostSpillFileError) as err:
            for r in range(2):
                list(store.iter_blocks(r))
        assert err.value.map_tasks  # names the poisoned map outputs
        assert zlib  # (checksums are crc32 — imported for the doc link)


class TestEngineOutOfCore:
    BUDGET = 8_192

    def wordcount_both(self, **kwargs):
        lines = big_lines(4_000)  # shuffle estimate is many times BUDGET
        base = wordcount_spark(lines, num_workers=2)
        return base, wordcount_spark(lines, num_workers=2, memory_budget=self.BUDGET, **kwargs)

    def test_wordcount_bit_identical_under_budget(self):
        base, spilled = self.wordcount_both()
        assert spilled == base

    def test_wordcount_bit_identical_with_compression(self):
        base, spilled = self.wordcount_both(spill_compress=True)
        assert spilled == base

    def test_nyc_pipeline_bit_identical_under_budget(self):
        ntas = generate_ntas(3, 4, seed=7)
        datasets = [
            generate_arrests(4_000, ntas, year=2020, seed=1),
            generate_arrests(2_000, ntas, year=2021, seed=1),
        ]
        base = nyc_arrests_pipeline(ntas, 3, 4, num_workers=2)
        # The pipeline's shuffles carry post-combine per-NTA aggregates,
        # so the budget must sit below even that to force the spill path.
        bounded = nyc_arrests_pipeline(
            ntas, 3, 4, num_workers=2, memory_budget=1_024, spill_compress=True
        )
        expected = base.run(datasets)
        got = bounded.run(datasets)
        assert (got == expected).all()
        assert bounded.rates == base.rates
        assert bounded.last_metrics.extra.get("spark.spill_files", 0) >= 1
        assert bounded.last_metrics.extra.get("spark.spill_bytes", 0) > 0

    def test_spill_counters_and_backend_identity(self):
        lines = big_lines(2_000)

        def run(backend):
            with SparkContext(
                2, backend=backend, memory_budget=4_096, name=f"oc-{backend}"
            ) as sc:
                out = dict(
                    sc.parallelize(lines, 8)
                    .flat_map(str.split)
                    .map(lambda w: (w, 1))
                    .reduce_by_key(lambda a, b: a + b)
                    .collect()
                )
                return out, dict(sc.metrics.extra)

        serial_out, serial_extra = run("serial")
        thread_out, _ = run("thread")
        assert thread_out == serial_out
        assert serial_extra["spark.spill_files"] >= 1
        assert serial_extra["spark.spill_bytes"] > 0
        assert serial_extra["spark.merge_passes"] >= 1

    def test_spill_trace_instants_emitted(self):
        from repro.trace.tracer import Tracer, use_tracer

        with use_tracer(Tracer()) as tracer:
            with SparkContext(2, backend="serial", memory_budget=4_096) as sc:
                sc.parallelize(big_lines(2_000), 8).map(
                    lambda line: (line.split()[0], 1)
                ).reduce_by_key(lambda a, b: a + b).collect()
        spills = [e for e in tracer.events() if e.category == "spark.spill"]
        assert any(e.name == "spill" for e in spills)
        assert any(e.name == "merge" for e in spills)


class TestSpillCleanup:
    def fill(self, sc: SparkContext) -> None:
        sc.parallelize(big_lines(2_000), 8).map(
            lambda line: (line, 1)
        ).reduce_by_key(lambda a, b: a + b).collect()

    def test_no_temp_files_survive_stop_on_success(self):
        sc = SparkContext(2, backend="serial", memory_budget=4_096)
        self.fill(sc)
        spill_dir = sc.spill_directory
        assert spill_dir is not None and any(spill_dir.iterdir())
        sc.stop()
        assert not spill_dir.exists()
        assert sc.spill_directory is None

    def test_no_temp_files_survive_stop_on_failure(self):
        sc = SparkContext(2, backend="serial", memory_budget=4_096)
        self.fill(sc)
        spill_dir = sc.spill_directory
        with pytest.raises(RuntimeError, match="boom"):
            with sc:  # the failing-job shape: error inside the with block
                raise RuntimeError("boom")
        assert spill_dir is not None and not spill_dir.exists()

    def test_double_stop_is_idempotent(self):
        sc = SparkContext(2, backend="serial", memory_budget=4_096)
        self.fill(sc)
        spill_dir = sc.spill_directory
        sc.stop()
        sc.stop()  # second stop: no error, still clean
        assert spill_dir is not None and not spill_dir.exists()

    def test_custom_spill_dir_base_is_used_and_cleaned(self, tmp_path):
        base = tmp_path / "spills"
        with SparkContext(2, backend="serial", memory_budget=4_096, spill_dir=base) as sc:
            self.fill(sc)
            spill_dir = sc.spill_directory
            assert spill_dir is not None and spill_dir.parent == base
        assert not spill_dir.exists()
        assert base.exists()  # only the private subdir is removed

    def test_no_budget_means_no_spill_dir(self):
        with SparkContext(2, backend="serial") as sc:
            self.fill(sc)
            assert sc.spill_directory is None
