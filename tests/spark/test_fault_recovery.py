"""Lineage-based fault tolerance: injection, recovery, bit-identity.

The acceptance invariant mirrors the SPMD fault layer's: for any seed
and any :class:`SparkFaultPlan` the engine survives, every action
returns results — and accumulator diagnostics — bit-identical to the
fault-free run. Unrecoverable plans must fail *structurally* (a
:class:`SparkJobFailedError` carrying the :class:`SparkFaultReport`),
never hang or return wrong data.
"""

import pytest

from repro.spark import (
    BlacklistedWorker,
    CorruptShuffleBlockError,
    ShuffleBlockStore,
    SparkContext,
    SparkFaultEvent,
    SparkFaultPlan,
    SparkJobFailedError,
    TaskFailure,
    lineage,
    recomputation_frontier,
)


def sum_by_mod7(sc: SparkContext):
    return (
        sc.parallelize(range(200), 8)
        .map(lambda x: (x % 7, x))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


@pytest.fixture(scope="module")
def baseline():
    with SparkContext(4) as sc:
        return sum_by_mod7(sc)


class TestSparkFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            SparkFaultEvent("meteor", 0, 0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            SparkFaultEvent("task", -1, 0)
        with pytest.raises(ValueError):
            SparkFaultEvent("task", 0, 0, attempts=0)
        with pytest.raises(ValueError):
            SparkFaultEvent("straggle", 0, 0, seconds=-1.0)

    def test_duplicate_slots_rejected(self):
        with pytest.raises(ValueError, match="multiple task-level events"):
            SparkFaultPlan([SparkFaultEvent("task", 1, 2), SparkFaultEvent("worker", 1, 2)])
        with pytest.raises(ValueError, match="multiple shuffle events"):
            SparkFaultPlan([SparkFaultEvent("shuffle", 0, 3), SparkFaultEvent("shuffle", 0, 3)])
        with pytest.raises(ValueError, match="multiple broadcast events"):
            SparkFaultPlan([SparkFaultEvent("broadcast", 1), SparkFaultEvent("broadcast", 1)])

    def test_lookups(self):
        plan = SparkFaultPlan(
            [
                SparkFaultEvent("task", 2, 1, attempts=2),
                SparkFaultEvent("shuffle", 0, 5),
                SparkFaultEvent("broadcast", 1),
            ]
        )
        assert plan.task_event(2, 1).attempts == 2
        assert plan.task_event(0, 0) is None
        assert [e.unit for e in plan.shuffle_events(0)] == [5]
        assert plan.shuffle_events(3) == []
        assert plan.broadcast_event(1).kind == "broadcast"
        assert plan.broadcast_event(0) is None
        assert len(plan) == 3
        assert "3 events" in repr(plan)

    def test_sample_is_deterministic(self):
        kwargs = dict(
            jobs=6, partitions=8, task_fail_prob=0.1, blacklist_prob=0.05,
            straggle_prob=0.05, shuffle_corrupt_prob=0.2, broadcast_corrupt_prob=0.3,
        )
        a = SparkFaultPlan.sample(42, **kwargs)
        b = SparkFaultPlan.sample(42, **kwargs)
        assert a.trace() == b.trace()
        assert a.seed == 42

    def test_sample_varies_with_seed(self):
        traces = {
            SparkFaultPlan.sample(
                s, jobs=8, partitions=8, task_fail_prob=0.2, shuffle_corrupt_prob=0.2
            ).trace()
            for s in range(10)
        }
        assert len(traces) > 1

    def test_sample_validates_probabilities(self):
        with pytest.raises(ValueError, match="sum to <= 1"):
            SparkFaultPlan.sample(0, jobs=1, partitions=1, task_fail_prob=0.7, blacklist_prob=0.5)
        with pytest.raises(ValueError, match="shuffle_corrupt_prob"):
            SparkFaultPlan.sample(0, jobs=1, partitions=1, shuffle_corrupt_prob=1.5)

    def test_sample_caps_blacklists(self):
        plan = SparkFaultPlan.sample(
            3, jobs=20, partitions=8, blacklist_prob=0.9, max_blacklists=2
        )
        assert sum(1 for e in plan.events if e.kind == "worker") <= 2


class TestTaskRetry:
    def test_failed_task_is_retried_bit_identically(self, baseline):
        with SparkContext(4, fault_plan=SparkFaultPlan.fail_task(0, 2)) as sc:
            assert sum_by_mod7(sc) == baseline
            assert sc.metrics.extra["spark.injected_faults"] == 1
            assert sc.metrics.extra["spark.task_retries"] == 1
            assert sc.fault_report.trace() == (("task", 0, 2, 0),)

    def test_multi_attempt_failure_retries_until_success(self, baseline):
        plan = SparkFaultPlan([SparkFaultEvent("task", 0, 1, attempts=3)])
        with SparkContext(4, fault_plan=plan, max_task_retries=3) as sc:
            assert sum_by_mod7(sc) == baseline
            assert sc.metrics.extra["spark.task_retries"] == 3

    def test_exhausted_retries_raise_structured_error(self):
        plan = SparkFaultPlan([SparkFaultEvent("task", 0, 0, attempts=10)])
        with SparkContext(4, fault_plan=plan, max_task_retries=2) as sc:
            with pytest.raises(SparkJobFailedError) as exc_info:
                sc.parallelize(range(10), 4).collect()
        err = exc_info.value
        assert err.partition == 0 and err.failures == 3
        assert err.report is sc.fault_report
        assert err.report.summary().startswith("SparkFaultReport")
        assert isinstance(err.__cause__, TaskFailure)

    def test_real_user_exceptions_fail_fast_not_retried(self):
        # Injected faults are retryable; a deterministic user bug is not —
        # re-running it would just fail again.
        plan = SparkFaultPlan()  # active fault layer, no scheduled events
        with SparkContext(4, fault_plan=plan) as sc:
            rdd = sc.parallelize(range(10), 4).map(lambda x: 1 // (x - 3))
            with pytest.raises(ZeroDivisionError):
                rdd.collect()
            assert "spark.task_retries" not in sc.metrics.extra

    def test_zero_backoff_allowed(self, baseline):
        with SparkContext(
            4, fault_plan=SparkFaultPlan.fail_task(0, 0), retry_backoff=0.0
        ) as sc:
            assert sum_by_mod7(sc) == baseline


class TestWorkerBlacklist:
    def test_blacklisted_worker_retries_elsewhere(self, baseline):
        with SparkContext(4, fault_plan=SparkFaultPlan.blacklist_worker(0, 1)) as sc:
            assert sum_by_mod7(sc) == baseline
            assert sc.metrics.extra["spark.blacklisted_workers"] == 1
            assert len(sc.fault_report.blacklisted) == 1
        assert isinstance(
            BlacklistedWorker(0, 0, 0, 0), RuntimeError
        )  # scheduler-internal, but public for matching

    def test_never_blacklists_last_live_worker(self, baseline):
        # Every job's every first attempt would blacklist its worker; a
        # 2-worker cluster must keep one alive and still finish.
        events = [SparkFaultEvent("worker", j, p) for j in range(6) for p in range(8)]
        with SparkContext(2, fault_plan=SparkFaultPlan(events)) as sc:
            assert sum_by_mod7(sc) == baseline
            assert sc.metrics.extra["spark.blacklisted_workers"] == 1


class TestSpeculativeExecution:
    def test_straggler_loses_to_speculative_copy(self, baseline):
        with SparkContext(4, fault_plan=SparkFaultPlan.straggler(1, 0, 0.001)) as sc:
            assert sum_by_mod7(sc) == baseline
            assert sc.metrics.extra["spark.speculative_tasks"] == 1
            assert sc.metrics.extra["spark.speculative_wins"] == 1
            assert sc.fault_report.speculative == [(1, 0)]


class TestShuffleCorruption:
    def test_corrupt_block_recomputed_from_lineage(self, baseline):
        with SparkContext(4, fault_plan=SparkFaultPlan.corrupt_shuffle(0, 3)) as sc:
            assert sum_by_mod7(sc) == baseline
            assert sc.metrics.extra["spark.corrupt_blocks_detected"] == 1
            assert sc.metrics.extra["spark.recomputed_partitions"] == 1
            assert len(sc.fault_report.recomputed) == 1

    def test_many_corrupt_blocks_across_shuffles(self):
        with SparkContext(4) as sc:
            base = (
                sc.parallelize(range(300), 8)
                .map(lambda x: (x % 11, x))
                .reduce_by_key(lambda a, b: a + b)
                .sort_by_key()
                .collect()
            )
        events = [SparkFaultEvent("shuffle", s, b) for s in range(3) for b in range(0, 12, 3)]
        with SparkContext(4, fault_plan=SparkFaultPlan(events)) as sc:
            got = (
                sc.parallelize(range(300), 8)
                .map(lambda x: (x % 11, x))
                .reduce_by_key(lambda a, b: a + b)
                .sort_by_key()
                .collect()
            )
            assert got == base
            assert sc.metrics.extra["spark.recomputed_partitions"] >= 1

    def test_cached_parent_is_a_recomputation_barrier(self):
        # With the map-side parent persisted, recovering a corrupt block
        # re-reads the cache instead of re-running user code upstream.
        calls = []

        def run(plan):
            calls.clear()
            with SparkContext(4, fault_plan=plan) as sc:
                source = sc.parallelize(range(100), 4).map(
                    lambda x: (calls.append(x), (x % 5, x))[1]
                )
                cached = source.persist()
                result = cached.reduce_by_key(lambda a, b: a + b).collect()
            return result, len(calls)

        clean_result, clean_calls = run(None)
        fault_result, fault_calls = run(SparkFaultPlan.corrupt_shuffle(0, 2))
        assert fault_result == clean_result
        # Barrier honored: the recomputed map task re-read its cached
        # parent partition, so user code ran no extra times.
        assert fault_calls == clean_calls


class TestCheckpoint:
    def test_checkpoint_truncates_lineage(self):
        with SparkContext(4) as sc:
            a = sc.parallelize(range(40), 4)
            b = a.map(lambda x: x * 2).checkpoint()
            c = b.filter(lambda x: x % 3 == 0)
            assert not b.is_checkpointed
            assert len(lineage(c)) == 3
            assert c.collect() == [x * 2 for x in range(40) if (x * 2) % 3 == 0]
            assert b.is_checkpointed
            assert b.deps == []
            assert len(lineage(c)) == 2  # a no longer reachable
            assert sc.metrics.extra["spark.checkpointed_partitions"] == 4

    def test_checkpoint_serves_stored_partitions(self):
        calls = []
        with SparkContext(4) as sc:
            rdd = sc.parallelize(range(20), 4).map(lambda x: (calls.append(x), x)[1]).checkpoint()
            first = rdd.collect()
            n = len(calls)
            assert rdd.collect() == first
            assert len(calls) == n  # second action served from the checkpoint

    def test_checkpoint_is_recovery_barrier_under_corruption(self):
        calls = []
        with SparkContext(4, fault_plan=SparkFaultPlan.corrupt_shuffle(0, 1)) as sc:
            source = sc.parallelize(range(100), 4).map(
                lambda x: (calls.append(x), (x % 5, x))[1]
            )
            ckpt = source.checkpoint()
            result = ckpt.reduce_by_key(lambda a, b: a + b).collect()
            assert len(calls) == 100  # recovery re-read the checkpoint, not user code
            assert sc.metrics.extra["spark.recomputed_partitions"] == 1
        with SparkContext(4) as sc:
            want = (
                sc.parallelize(range(100), 4)
                .map(lambda x: (x % 5, x))
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
        assert result == want

    def test_recomputation_frontier(self):
        with SparkContext(4) as sc:
            a = sc.parallelize(range(10), 2)
            b = a.map(lambda x: x + 1)
            c = b.persist()
            d = c.map(lambda x: x * 2)
            assert recomputation_frontier(d) == [c]
            assert recomputation_frontier(b) == [a]
            assert recomputation_frontier(a) == [a]  # a leaf holds its data


class TestBroadcastCorruption:
    def test_corrupt_broadcast_refetched_from_master(self):
        with SparkContext(4, fault_plan=SparkFaultPlan.corrupt_broadcast(0)) as sc:
            table = sc.broadcast({i: i * i for i in range(50)})
            got = sc.parallelize(range(50), 4).map(lambda x: table.value[x]).collect()
            assert got == [x * x for x in range(50)]
            assert sc.metrics.extra["spark.broadcast_refetches"] == 1
            assert sc.fault_report.broadcast_refetches == 1

    def test_uncorrupted_broadcasts_unaffected(self):
        with SparkContext(4, fault_plan=SparkFaultPlan.corrupt_broadcast(1)) as sc:
            first = sc.broadcast([1, 2, 3])  # index 0: untouched
            assert first.value == [1, 2, 3]
            second = sc.broadcast([4, 5, 6])  # index 1: corrupted then healed
            assert second.value == [4, 5, 6]
            assert sc.metrics.extra["spark.broadcast_refetches"] == 1


class TestAccumulatorExactlyOnce:
    def test_retries_do_not_double_count(self):
        plan = SparkFaultPlan([SparkFaultEvent("task", 0, 1, attempts=2)])
        with SparkContext(4, fault_plan=plan) as sc:
            acc = sc.accumulator(0)
            sc.parallelize(range(100), 8).foreach(lambda _x: acc.add(1))
            assert acc.value == 100

    def test_recomputation_does_not_double_count(self):
        with SparkContext(4, fault_plan=SparkFaultPlan.corrupt_shuffle(0, 0)) as sc:
            acc = sc.accumulator(0)

            def tag(x):
                acc.add(1)
                return (x % 5, x)

            sc.parallelize(range(100), 4).map(tag).reduce_by_key(lambda a, b: a + b).collect()
            assert sc.metrics.extra["spark.recomputed_partitions"] == 1
            assert acc.value == 100  # the recomputed map task's updates were discarded


class TestShuffleBlockStore:
    def test_plain_roundtrip(self):
        store = ShuffleBlockStore(2, 3)
        store.put(0, [[("a", 1)], [], [("b", 2)]])
        assert store.get(0, 0) == [("a", 1)]
        assert store.get(0, 1) == []
        assert not store.has_output(1)
        with pytest.raises(KeyError):
            store.get(1, 0)
        assert store.corrupt(0, 0) is False  # nothing to corrupt in plain mode
        assert store.corrupted_blocks(0) == []

    def test_checksummed_corruption_detected(self):
        store = ShuffleBlockStore(2, 2, checksums=True)
        store.put(0, [[("k", 1)], [("k", 2)]])
        assert store.get(0, 1) == [("k", 2)]
        assert store.corrupt(0, 1) is True
        assert store.corrupted_blocks(0) == [1]
        with pytest.raises(CorruptShuffleBlockError, match="reduce_part=1"):
            store.get(0, 1)
        assert store.get(0, 0) == [("k", 1)]  # sibling block unaffected
        store.put(0, [[("k", 1)], [("k", 2)]])  # re-store heals
        assert store.get(0, 1) == [("k", 2)]

    def test_wrong_bucket_count_rejected(self):
        store = ShuffleBlockStore(1, 3)
        with pytest.raises(ValueError, match="expected 3"):
            store.put(0, [[], []])

    def test_repr(self):
        store = ShuffleBlockStore(2, 2, checksums=True)
        store.put(0, [[], []])
        assert "1/2 map outputs" in repr(store)
        assert "checksummed" in repr(store)


class TestContextLifecycle:
    def test_context_manager_stops_on_exit(self):
        with SparkContext(2, name="lifecycle-test") as sc:
            assert sc.parallelize([1, 2, 3]).collect() == [1, 2, 3]
        with pytest.raises(RuntimeError, match="lifecycle-test has been stopped"):
            sc.parallelize([4])

    def test_stop_is_idempotent(self):
        sc = SparkContext(2)
        sc.stop()
        sc.stop()  # no error
        with pytest.raises(RuntimeError, match="has been stopped"):
            sc.broadcast(1)

    def test_error_names_the_stopped_context(self):
        sc = SparkContext(2, name="etl-context")
        sc.stop()
        with pytest.raises(RuntimeError, match="etl-context has been stopped"):
            sc.accumulator(0)

    def test_default_names_are_distinct(self):
        assert SparkContext(1).name != SparkContext(1).name

    def test_repr_shows_state_and_plan(self):
        sc = SparkContext(2, name="r", fault_plan=SparkFaultPlan())
        assert "alive" in repr(sc) and "SparkFaultPlan" in repr(sc)
        sc.stop()
        assert "stopped" in repr(sc)


class TestBitIdenticalSweep:
    """The tentpole invariant, property-style over a seed sweep."""

    @pytest.mark.parametrize("seed", range(12))
    def test_actions_bit_identical_under_sampled_plans(self, seed, baseline):
        plan = SparkFaultPlan.sample(
            seed,
            jobs=8,
            partitions=8,
            task_fail_prob=0.10,
            blacklist_prob=0.05,
            straggle_prob=0.05,
            shuffle_corrupt_prob=0.20,
            broadcast_corrupt_prob=0.50,
            seconds=0.0005,
        )
        with SparkContext(4) as sc:
            ref_reduce = sc.parallelize(range(200), 8).map(lambda x: x * 3).reduce(
                lambda a, b: a + b
            )
        with SparkContext(4, fault_plan=plan) as sc:
            assert sum_by_mod7(sc) == baseline
            got = sc.parallelize(range(200), 8).map(lambda x: x * 3).reduce(lambda a, b: a + b)
            assert got == ref_reduce

    def test_fired_faults_reproducible_across_runs(self):
        plan_kwargs = dict(
            jobs=6, partitions=8, task_fail_prob=0.15, shuffle_corrupt_prob=0.2
        )

        def run():
            plan = SparkFaultPlan.sample(7, **plan_kwargs)
            with SparkContext(4, fault_plan=plan) as sc:
                sum_by_mod7(sc)
                return sc.fault_report.trace(), dict(sc.metrics.extra)

        assert run() == run()
