"""Tests for the co-partitioning optimization: known layouts skip shuffles."""

import pytest

from repro.spark import HashPartitioner, SparkContext


@pytest.fixture()
def sc():
    return SparkContext(num_workers=3, default_partitions=4)


class TestPartitionerMetadata:
    def test_fresh_rdd_has_no_partitioner(self, sc):
        assert sc.parallelize([(1, 1)]).partitioner is None

    def test_shuffle_sets_partitioner(self, sc):
        rdd = sc.parallelize([(i, i) for i in range(10)]).reduce_by_key(lambda a, b: a + b)
        assert rdd.partitioner == HashPartitioner(rdd.num_partitions)

    def test_map_values_preserves_partitioner(self, sc):
        rdd = sc.parallelize([(i, i) for i in range(10)]).reduce_by_key(lambda a, b: a + b)
        assert rdd.map_values(lambda v: v + 1).partitioner == rdd.partitioner

    def test_plain_map_clears_partitioner(self, sc):
        rdd = sc.parallelize([(i, i) for i in range(10)]).reduce_by_key(lambda a, b: a + b)
        # map() may change keys, so the layout guarantee is gone.
        assert rdd.map(lambda kv: kv).partitioner is None


class TestShuffleElision:
    def test_second_aggregation_skips_shuffle(self, sc):
        data = [(i % 6, i) for i in range(60)]
        first = sc.parallelize(data).reduce_by_key(lambda a, b: a + b)
        first.collect()
        shuffles_after_first = sc.metrics.shuffles
        # Same key layout: summing again (idempotent here) must not shuffle.
        second = first.map_values(lambda v: v).reduce_by_key(lambda a, b: a + b)
        result = second.collect_as_map()
        assert sc.metrics.shuffles == shuffles_after_first
        expect = {}
        for k, v in data:
            expect[k] = expect.get(k, 0) + v
        assert result == expect

    def test_different_partition_count_still_shuffles(self, sc):
        data = [(i % 6, i) for i in range(60)]
        first = sc.parallelize(data).reduce_by_key(lambda a, b: a + b, num_partitions=4)
        before = sc.metrics.shuffles
        first.reduce_by_key(lambda a, b: a + b, num_partitions=2).collect()
        assert sc.metrics.shuffles > before

    def test_elided_group_by_key_matches_shuffled(self, sc):
        data = [(i % 4, i) for i in range(40)]
        routed = sc.parallelize(data).partition_by(HashPartitioner(4))
        elided = routed.group_by_key(4).collect_as_map()
        fresh = sc.parallelize(data).group_by_key(4).collect_as_map()
        assert {k: sorted(v) for k, v in elided.items()} == {
            k: sorted(v) for k, v in fresh.items()
        }

    def test_chained_pipeline_stage_count_drops(self, sc):
        from repro.spark.dag import execution_stages

        data = [(i % 3, i) for i in range(30)]
        base = sc.parallelize(data).reduce_by_key(lambda a, b: a + b)
        chained = base.map_values(lambda v: v * 2).reduce_by_key(lambda a, b: a + b)
        # Only the first aggregation is a shuffle boundary.
        assert len(execution_stages(chained)) == 2
