"""The Spark engine on the process backend: lineage, caches, crashes.

``tests/core/test_executor_determinism.py`` holds the cross-backend
seed sweeps; this file exercises the process-specific machinery —
driver-side lineage preparation (shuffles materialized, persist and
checkpoint caches filled before forking), worker-crash recovery feeding
the fault report and metrics, and the serial fallback for jobs launched
from inside a forked child.
"""

from __future__ import annotations

import os

import pytest

from repro.spark import SparkContext, SparkFaultPlan


def _pairs(sc: SparkContext):
    return (
        sc.parallelize(range(100), 8)
        .map(lambda x: (x % 7, x))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


@pytest.fixture(scope="module")
def baseline_pairs():
    with SparkContext(4, backend="serial") as sc:
        return _pairs(sc)


class TestProcessBackendLineage:
    def test_shuffle_job(self, baseline_pairs):
        with SparkContext(4, backend="process") as sc:
            assert _pairs(sc) == baseline_pairs
            assert sc.metrics.shuffles >= 1

    def test_persist_cache_filled_on_driver(self):
        with SparkContext(4, backend="process") as sc:
            rdd = sc.parallelize(range(50), 4).map(lambda x: x * 2).persist()
            first = rdd.collect()
            cached_after_first = sc.metrics.partitions_cached
            assert cached_after_first == 4
            assert rdd.collect() == first  # second pass serves from the cache
            assert sc.metrics.partitions_cached == cached_after_first

    def test_checkpoint_truncates_lineage(self):
        with SparkContext(4, backend="process") as sc:
            rdd = sc.parallelize(range(40), 4).map(lambda x: x + 1).checkpoint()
            assert rdd.sum() == sum(range(1, 41))
            assert rdd.deps == []
            assert sc.metrics.extra.get("spark.checkpointed_partitions") == 4

    def test_broadcast_visible_in_workers(self):
        with SparkContext(4, backend="process") as sc:
            table = sc.broadcast({i: i * 10 for i in range(8)})
            got = sc.parallelize(range(8), 4).map(lambda x: table.value[x]).collect()
            assert got == [i * 10 for i in range(8)]

    def test_accumulator_commits_exactly_once(self):
        with SparkContext(4, backend="process") as sc:
            acc = sc.accumulator(0)

            def bump(x):
                acc.add(1)
                return x

            assert sc.parallelize(range(64), 8).map(bump).count() == 64
            assert acc.value == 64

    def test_fault_plan_matches_fault_free(self, baseline_pairs):
        plan = SparkFaultPlan.sample(
            seed=11, jobs=8, partitions=8, task_fail_prob=0.25, straggle_prob=0.1
        )
        with SparkContext(4, backend="process", fault_plan=plan) as sc:
            assert _pairs(sc) == baseline_pairs
            assert sc.fault_report is not None


class TestWorkerCrashRecovery:
    def test_lost_tasks_rerun_on_driver(self, baseline_pairs):
        driver = os.getpid()

        def croak(x):
            # Kill one forked worker mid-job; never the driver itself.
            if x == 50 and os.getpid() != driver:
                os._exit(13)
            return (x % 7, x)

        with SparkContext(4, backend="process") as sc:
            got = (
                sc.parallelize(range(100), 8)
                .map(croak)
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            assert got == baseline_pairs
            assert sc.metrics.extra.get("spark.worker_crashes", 0) >= 1

    def test_crash_recorded_in_fault_report(self):
        driver = os.getpid()
        plan = SparkFaultPlan.sample(seed=3, jobs=4, partitions=4, task_fail_prob=0.2)

        def croak(x):
            if x == 10 and os.getpid() != driver:
                os._exit(5)
            return x * 3

        with SparkContext(2, backend="process", fault_plan=plan) as sc:
            assert sc.parallelize(range(40), 4).map(croak).sum() == 3 * sum(range(40))
            report = sc.fault_report
            assert report.worker_crashes
            worker, lost = report.worker_crashes[0]
            assert lost >= 1
            assert "worker process crash" in report.summary()


class TestNestedAndValidation:
    def test_nested_job_in_worker_falls_back_to_serial(self):
        with SparkContext(2, backend="process") as sc:
            def nested(x):
                # A job launched inside a forked worker must not try to
                # fork again; the context downgrades it to serial.
                return sc.parallelize(range(x + 1), 2).sum()

            got = sc.parallelize(range(6), 2).map(nested).collect()
            assert got == [sum(range(x + 1)) for x in range(6)]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SparkContext(2, backend="cluster")

    def test_repr_names_backend(self):
        with SparkContext(2, backend="process") as sc:
            assert "process" in repr(sc)
