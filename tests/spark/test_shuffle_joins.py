"""Tests for wide transformations: shuffles, joins, sorting, and the DAG view."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark import HashPartitioner, RangePartitioner, SparkContext
from repro.spark.dag import execution_stages, lineage, shuffle_depth


@pytest.fixture()
def sc():
    return SparkContext(num_workers=4, default_partitions=3)


class TestReduceByKey:
    def test_wordcount(self, sc):
        words = "the quick brown fox jumps over the lazy dog the end".split()
        counts = (
            sc.parallelize(words)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert counts["the"] == 3
        assert counts["dog"] == 1
        assert sum(counts.values()) == len(words)

    def test_map_side_combine_shrinks_shuffle(self, sc):
        data = [("k", 1)] * 1000
        rdd = sc.parallelize(data, num_partitions=4)
        rdd.reduce_by_key(lambda a, b: a + b).collect()
        combined_records = sc.metrics.shuffle_records
        sc.reset_metrics()
        rdd.group_by_key().collect()  # no map-side combine
        grouped_records = sc.metrics.shuffle_records
        assert combined_records == 4  # one pre-combined pair per map task
        assert grouped_records == 1000

    def test_results_stable_across_partition_counts(self, sc):
        data = [(i % 7, i) for i in range(100)]
        expect = {}
        for k, v in data:
            expect[k] = expect.get(k, 0) + v
        for nparts in [1, 2, 5]:
            got = (
                sc.parallelize(data, num_partitions=nparts)
                .reduce_by_key(lambda a, b: a + b)
                .collect_as_map()
            )
            assert got == expect

    def test_group_by_key_preserves_value_order(self, sc):
        data = [("a", i) for i in range(10)]
        groups = sc.parallelize(data, num_partitions=3).group_by_key().collect_as_map()
        assert groups["a"] == list(range(10))

    def test_aggregate_by_key(self, sc):
        data = [("a", 1), ("b", 5), ("a", 3), ("b", 2)]
        result = (
            sc.parallelize(data)
            .aggregate_by_key((0, 0), lambda acc, v: (acc[0] + v, acc[1] + 1),
                              lambda x, y: (x[0] + y[0], x[1] + y[1]))
            .collect_as_map()
        )
        assert result == {"a": (4, 2), "b": (7, 2)}

    def test_distinct(self, sc):
        assert sorted(sc.parallelize([1, 2, 2, 3, 3, 3]).distinct().collect()) == [1, 2, 3]


class TestJoins:
    def test_inner_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2), ("a", 3)])
        right = sc.parallelize([("a", "x"), ("c", "y")])
        got = sorted(left.join(right).collect())
        assert got == [("a", (1, "x")), ("a", (3, "x"))]

    def test_left_outer_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2)])
        right = sc.parallelize([("a", "x")])
        got = dict(left.left_outer_join(right).collect())
        assert got == {"a": (1, "x"), "b": (2, None)}

    def test_right_outer_join(self, sc):
        left = sc.parallelize([("a", 1)])
        right = sc.parallelize([("a", "x"), ("c", "y")])
        got = dict(left.right_outer_join(right).collect())
        assert got == {"a": (1, "x"), "c": (None, "y")}

    def test_full_outer_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2)])
        right = sc.parallelize([("b", "x"), ("c", "y")])
        got = dict(left.full_outer_join(right).collect())
        assert got == {"a": (1, None), "b": (2, "x"), "c": (None, "y")}

    def test_cogroup_collects_both_sides(self, sc):
        left = sc.parallelize([("k", 1), ("k", 2)])
        right = sc.parallelize([("k", 9)])
        (key, (lvals, rvals)), = left.cogroup(right).collect()
        assert key == "k" and lvals == [1, 2] and rvals == [9]

    def test_subtract_by_key_and_subtract(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2)])
        right = sc.parallelize([("b", 99)])
        assert left.subtract_by_key(right).collect() == [("a", 1)]
        assert sorted(sc.parallelize([1, 2, 3]).subtract(sc.parallelize([2])).collect()) == [1, 3]

    def test_intersection(self, sc):
        got = sc.parallelize([1, 2, 2, 3]).intersection(sc.parallelize([2, 3, 4])).collect()
        assert sorted(got) == [2, 3]

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers()), max_size=30),
        st.lists(st.tuples(st.integers(0, 5), st.integers()), max_size=30),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_join_matches_nested_loop(self, left_data, right_data):
        sc = SparkContext(num_workers=2)
        expect = sorted(
            (k, (lv, rv))
            for k, lv in left_data
            for k2, rv in right_data
            if k == k2
        )
        got = sorted(
            sc.parallelize(left_data, 2).join(sc.parallelize(right_data, 2)).collect()
        )
        assert got == expect


class TestSorting:
    def test_sort_by_key_global_order(self, sc):
        data = [(k, None) for k in [5, 3, 9, 1, 7, 2, 8]]
        got = sc.parallelize(data).sort_by_key().keys().collect()
        assert got == sorted([5, 3, 9, 1, 7, 2, 8])

    def test_sort_by_descending(self, sc):
        got = sc.parallelize([3, 1, 4, 1, 5, 9, 2, 6]).sort_by(lambda x: x, ascending=False).collect()
        assert got == sorted([3, 1, 4, 1, 5, 9, 2, 6], reverse=True)

    @given(st.lists(st.integers(-50, 50), max_size=60), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_sort_by_matches_builtin(self, data, nparts):
        sc = SparkContext(num_workers=2)
        got = sc.parallelize(data, num_partitions=nparts).sort_by(lambda x: x).collect()
        assert got == sorted(data)


class TestPartitioners:
    def test_hash_partitioner_stability_and_range(self):
        p = HashPartitioner(5)
        assert all(0 <= p.partition(k) < 5 for k in range(100))
        assert p == HashPartitioner(5)
        assert p != HashPartitioner(6)

    def test_range_partitioner_orders_buckets(self):
        p = RangePartitioner.from_keys(list(range(100)), 4)
        buckets = [p.partition(k) for k in range(100)]
        assert buckets == sorted(buckets)
        assert p.num_partitions >= 2

    def test_range_partitioner_single_partition(self):
        p = RangePartitioner.from_keys([1, 2, 3], 1)
        assert p.partition(2) == 0

    def test_partition_by_places_same_keys_together(self, sc):
        data = [(i % 4, i) for i in range(40)]
        routed = sc.parallelize(data, num_partitions=5).partition_by(HashPartitioner(3))
        for part in routed.glom().collect():
            keys_here = {k for k, _ in part}
            for k in keys_here:
                # every pair with this key is in this partition
                assert sum(1 for kk, _ in part if kk == k) == 10


class TestDag:
    def test_lineage_walks_all_ancestors(self, sc):
        a = sc.parallelize(range(4))
        b = a.map(lambda x: x + 1)
        c = b.filter(lambda x: x > 1)
        ids = [r.id for r in lineage(c)]
        assert ids == [a.id, b.id, c.id]

    def test_narrow_plan_is_one_stage(self, sc):
        rdd = sc.parallelize(range(10)).map(lambda x: x).filter(bool)
        assert shuffle_depth(rdd) == 0
        assert len(execution_stages(rdd)) == 1

    def test_each_shuffle_adds_a_stage(self, sc):
        pairs = sc.parallelize([("a", 1)]).reduce_by_key(lambda a, b: a + b)
        assert len(execution_stages(pairs)) == 2
        twice = pairs.map(lambda kv: kv).group_by_key()
        assert len(execution_stages(twice)) == 3

    def test_join_is_single_extra_stage(self, sc):
        left = sc.parallelize([("a", 1)])
        right = sc.parallelize([("a", 2)])
        joined = left.join(right)
        assert shuffle_depth(joined) == 1
        assert len(execution_stages(joined)) == 2


class TestSharedVariables:
    def test_broadcast_read_in_tasks(self, sc):
        lookup = sc.broadcast({1: "one", 2: "two"})
        got = sc.parallelize([1, 2, 1]).map(lambda x: lookup.value[x]).collect()
        assert got == ["one", "two", "one"]

    def test_broadcast_unpersist_blocks_reads(self, sc):
        b = sc.broadcast([1, 2, 3])
        b.unpersist()
        with pytest.raises(RuntimeError, match="unpersisted"):
            _ = b.value

    def test_accumulator_counts_across_tasks(self, sc):
        dropped = sc.accumulator(0)

        def keep(x):
            if x % 2:
                return True
            dropped.add(1)
            return False

        kept = sc.parallelize(range(100), num_partitions=4).filter(keep).count()
        assert kept == 50
        assert dropped.value == 50

    def test_accumulator_custom_op(self, sc):
        acc = sc.accumulator(0, op=max)
        sc.parallelize([3, 9, 4], num_partitions=3).foreach(acc.add)
        assert acc.value == 9
