"""Tests for RDD summary statistics, histograms, and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark import SparkContext
from repro.spark.stats import StatCounter, histogram, stats, take_sample


@pytest.fixture()
def sc():
    return SparkContext(num_workers=3, default_partitions=4)


class TestStatCounter:
    def test_push_matches_numpy(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        c = StatCounter()
        for x in data:
            c.push(x)
        assert c.count == 6
        assert c.mean == pytest.approx(np.mean(data))
        assert c.variance == pytest.approx(np.var(data))
        assert (c.min_value, c.max_value) == (1.0, 9.0)

    def test_merge_exact(self):
        data = list(range(50))
        whole = StatCounter()
        for x in data:
            whole.push(x)
        left, right = StatCounter(), StatCounter()
        for x in data[:20]:
            left.push(x)
        for x in data[20:]:
            right.push(x)
        merged = left.merge(right)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.m2 == pytest.approx(whole.m2)

    def test_merge_with_empty(self):
        c = StatCounter().push(5.0)
        assert c.merge(StatCounter()).count == 1
        assert StatCounter().merge(c).mean == 5.0

    def test_variance_of_single_value(self):
        assert StatCounter().push(7.0).variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_stats_match_numpy(self, data, nparts):
        sc = SparkContext(num_workers=2)
        summary = stats(sc.parallelize(data, num_partitions=nparts))
        assert summary.count == len(data)
        assert summary.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-9)
        assert summary.stdev == pytest.approx(np.std(data), rel=1e-9, abs=1e-6)


class TestHistogram:
    def test_matches_numpy_histogram(self, sc):
        rng = np.random.default_rng(0)
        data = rng.normal(size=500).tolist()
        edges, counts = histogram(sc.parallelize(data), bins=10)
        np_counts, np_edges = np.histogram(data, bins=10)
        np.testing.assert_allclose(edges, np_edges)
        np.testing.assert_array_equal(counts, np_counts)

    def test_explicit_bounds_exclude_outliers(self, sc):
        data = [-100.0, 0.1, 0.5, 0.9, 100.0]
        _, counts = histogram(sc.parallelize(data), bins=2, lo=0.0, hi=1.0)
        assert counts.sum() == 3

    def test_constant_data(self, sc):
        edges, counts = histogram(sc.parallelize([5.0] * 10), bins=4)
        assert counts.sum() == 10

    def test_empty_rejected(self, sc):
        with pytest.raises(ValueError, match="empty"):
            histogram(sc.empty_rdd(), bins=3)

    def test_inverted_bounds_rejected(self, sc):
        with pytest.raises(ValueError):
            histogram(sc.parallelize([1.0]), bins=2, lo=5.0, hi=1.0)


class TestTakeSample:
    def test_without_replacement_and_deterministic(self, sc):
        rdd = sc.parallelize(range(100))
        a = take_sample(rdd, 10, seed=1)
        b = take_sample(rdd, 10, seed=1)
        assert a == b
        assert len(set(a)) == 10

    def test_different_seeds_differ(self, sc):
        rdd = sc.parallelize(range(100))
        assert take_sample(rdd, 10, seed=1) != take_sample(rdd, 10, seed=2)

    def test_n_larger_than_data(self, sc):
        assert sorted(take_sample(sc.parallelize([1, 2, 3]), 10)) == [1, 2, 3]

    def test_empty_rdd(self, sc):
        assert take_sample(sc.empty_rdd(), 5) == []
