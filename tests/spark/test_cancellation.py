"""Cooperative SparkContext cancellation: clean unwind, clean state."""

import threading
import time

import pytest

from repro.spark import SparkContext, SparkJobCancelled


class TestCancelToken:
    def test_cancel_before_job_raises(self):
        with SparkContext(2, name="pre") as sc:
            sc.cancel()
            assert sc.cancelled
            with pytest.raises(SparkJobCancelled) as err:
                sc.parallelize(range(8), 4).collect()
            assert err.value.context == "pre"

    def test_external_token_shared(self):
        token = threading.Event()
        with SparkContext(2, cancel_token=token) as sc:
            token.set()
            with pytest.raises(SparkJobCancelled):
                sc.parallelize(range(8), 4).collect()

    def test_cancel_requires_settable_token(self):
        with SparkContext(2, cancel_token=object()) as sc:
            with pytest.raises(TypeError):
                sc.cancel()

    def test_mid_job_cancel_unwinds_at_task_boundary(self):
        with SparkContext(2, name="midjob") as sc:
            def slow_then_check(x):
                time.sleep(0.02)
                return x

            timer = threading.Timer(0.05, sc.cancel)
            timer.start()
            try:
                with pytest.raises(SparkJobCancelled) as err:
                    sc.parallelize(range(64), 32).map(slow_then_check).collect()
            finally:
                timer.cancel()
            assert err.value.job is not None

    def test_uncancelled_job_unaffected(self):
        token = threading.Event()
        with SparkContext(2, cancel_token=token) as sc:
            got = sc.parallelize(range(8), 4).map(lambda x: x * 2).collect()
        assert got == [x * 2 for x in range(8)]


class TestCleanUnwind:
    def test_spill_dirs_reclaimed_after_cancel(self, tmp_path):
        sc = SparkContext(
            2, memory_budget=256, spill_dir=str(tmp_path), name="spilly"
        )
        try:
            timer = threading.Timer(0.03, sc.cancel)
            timer.start()
            try:
                with pytest.raises(SparkJobCancelled):
                    (
                        sc.parallelize(range(400), 16)
                        .map(lambda x: (time.sleep(0.005), (x % 7, x))[1])
                        .reduce_by_key(lambda a, b: a + b)
                        .collect()
                    )
            finally:
                timer.cancel()
        finally:
            sc.stop()
        assert list(tmp_path.iterdir()) == []

    def test_accumulators_not_committed_by_cancelled_job(self):
        token = threading.Event()
        with SparkContext(2, cancel_token=token) as sc:
            acc = sc.accumulator(0)
            data = sc.parallelize(range(16), 8)
            data.map(lambda x: (acc.add(1), x)[1]).collect()
            committed = acc.value
            token.set()
            with pytest.raises(SparkJobCancelled):
                data.map(lambda x: (acc.add(1), x)[1]).collect()
            # The cancelled job contributed nothing: no partial commits.
            assert acc.value == committed

    def test_stop_after_cancel_idempotent(self):
        sc = SparkContext(2)
        sc.cancel()
        sc.stop()
        sc.stop()
