"""Fast tier-1 overhead gate for the Spark fault layer.

The authoritative <5% budget lives in
``benchmarks/test_spark_fault_overhead.py`` (min-of-9 interleaved runs
on the benchmark-sized NYC pipeline). This gate is its tier-1 tripwire:
a tiny workload, few repeats, and a deliberately loose threshold, so it
only fires on a *gross* regression (checksums accidentally on without a
plan, an un-gated per-task allocation) rather than on scheduler noise —
while staying fast enough to run in every test sweep.
"""

from repro.pipeline import arrests_per_100k, generate_arrests, generate_ntas
from repro.spark import SparkContext, SparkFaultPlan
from repro.util.timing import time_call

WORKERS = 2
REPEATS = 3
# Gross-regression tripwire only; the tight 1.05x budget is benchmarks'.
THRESHOLD = 2.0


def test_spark_fault_overhead_tripwire():
    ntas = generate_ntas(3, 4, seed=7)
    datasets = [
        generate_arrests(1_500, ntas, year=2020, seed=1),
        generate_arrests(800, ntas, year=2021, seed=1),
    ]

    def run(fault_plan):
        def once():
            with SparkContext(WORKERS, fault_plan=fault_plan) as sc:
                return arrests_per_100k(sc, datasets, ntas, year_filter=2021)

        best = float("inf")
        for _ in range(REPEATS):
            sec, result = time_call(once, repeats=1)
            best = min(best, sec)
        return best, result

    base_sec, base = run(None)
    empty_sec, faulted = run(SparkFaultPlan())

    assert base == faulted  # (rates, diagnostics) bit-identical
    ratio = empty_sec / base_sec
    assert ratio < THRESHOLD, (
        f"spark fault overhead tripwire: empty-plan/disabled ratio {ratio:.2f}x "
        f"exceeds {THRESHOLD}x — a hot-path gate has probably regressed"
    )
