"""Tests for zip, cartesian, group_by, fold_by_key, and text output."""

import pytest

from repro.spark import SparkContext


@pytest.fixture()
def sc():
    return SparkContext(num_workers=3, default_partitions=3)


class TestZip:
    def test_positional_pairs(self, sc):
        a = sc.parallelize([1, 2, 3, 4], 2)
        b = sc.parallelize("wxyz", 2)
        assert a.zip(b).collect() == [(1, "w"), (2, "x"), (3, "y"), (4, "z")]

    def test_partition_count_mismatch(self, sc):
        a = sc.parallelize([1, 2], 1)
        b = sc.parallelize([1, 2], 2)
        with pytest.raises(ValueError, match="equal partition counts"):
            a.zip(b)

    def test_partition_size_mismatch_detected_at_compute(self, sc):
        a = sc.parallelize([1, 2, 3], 2)
        b = sc.parallelize([1, 2], 2)
        with pytest.raises(ValueError, match="sizes differ"):
            a.zip(b).collect()


class TestCartesian:
    def test_cross_product(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize(["x", "y"], 2)
        got = sorted(a.cartesian(b).collect())
        assert got == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_count_is_product(self, sc):
        a = sc.parallelize(range(7), 3)
        b = sc.parallelize(range(5), 2)
        cross = a.cartesian(b)
        assert cross.count() == 35
        assert cross.num_partitions == 6

    def test_empty_side(self, sc):
        a = sc.parallelize([1, 2])
        assert a.cartesian(sc.empty_rdd()).collect() == []


class TestGroupByAndFoldByKey:
    def test_group_by_function(self, sc):
        got = sc.parallelize(range(10)).group_by(lambda x: x % 3).collect_as_map()
        assert got[0] == [0, 3, 6, 9]
        assert got[1] == [1, 4, 7]
        assert got[2] == [2, 5, 8]

    def test_fold_by_key(self, sc):
        data = [("a", 2), ("b", 3), ("a", 4)]
        got = sc.parallelize(data).fold_by_key(1, lambda acc, v: acc * v).collect_as_map()
        assert got == {"a": 8, "b": 3}

    def test_fold_by_key_max_with_floor(self, sc):
        # Like Spark, fold_by_key needs acc and value to share a type;
        # the zero acts as a per-partition floor.
        data = [("a", 1), ("b", 2), ("a", 9), ("b", -5)]
        got = sc.parallelize(data, 2).fold_by_key(0, max).collect_as_map()
        assert got == {"a": 9, "b": 2}


class TestTextOutput:
    def test_save_and_reload_roundtrip(self, sc, tmp_path):
        out = tmp_path / "result"
        rdd = sc.parallelize([f"line{i}" for i in range(10)], 3)
        rdd.save_as_text_file(out)
        assert (out / "_SUCCESS").exists()
        parts = sorted(out.glob("part-*"))
        assert len(parts) == 3
        reloaded = []
        for p in parts:
            reloaded.extend(sc.text_file(p).collect())
        assert reloaded == [f"line{i}" for i in range(10)]

    def test_empty_partitions_write_empty_files(self, sc, tmp_path):
        out = tmp_path / "sparse"
        sc.parallelize([1], 3).save_as_text_file(out)
        assert len(list(out.glob("part-*"))) == 3


class TestBroadcastJoin:
    def test_matches_shuffle_join(self, sc):
        left = sc.parallelize([(i % 5, i) for i in range(40)], 4)
        right = sc.parallelize([(k, f"v{k}") for k in range(3)], 2)
        shuffle = sorted(left.join(right).collect())
        broadcast = sorted(left.broadcast_join(right).collect())
        assert broadcast == shuffle

    def test_duplicate_keys_on_small_side(self, sc):
        left = sc.parallelize([("a", 1)])
        right = sc.parallelize([("a", "x"), ("a", "y")])
        got = sorted(left.broadcast_join(right).collect())
        assert got == [("a", (1, "x")), ("a", (1, "y"))]

    def test_no_shuffle_records(self, sc):
        left = sc.parallelize([(i % 4, i) for i in range(100)], 4)
        right = sc.parallelize([(k, k * 10) for k in range(4)])
        sc.reset_metrics()
        left.broadcast_join(right).collect()
        assert sc.metrics.shuffles == 0
        assert sc.metrics.shuffle_records == 0
        sc.reset_metrics()
        left.join(right).collect()
        assert sc.metrics.shuffles > 0
