"""Fast tier-1 overhead gate for the out-of-core shuffle machinery.

The authoritative <5% budget for the no-spill hot path lives in
``benchmarks/test_shuffle_spill.py`` (min-of-interleaved-runs on a
benchmark-sized workload). This gate is its tier-1 tripwire: a tiny
workload, few repeats, and a deliberately loose threshold, so it only
fires on a *gross* regression (eager serialization sneaking into the
resident path, per-put budget accounting growing a syscall) rather
than on scheduler noise — while staying fast enough for every sweep.
"""

from repro.spark import SparkContext
from repro.util.timing import time_call

WORKERS = 2
REPEATS = 3
# Gross-regression tripwire only; the tight 1.05x budget is benchmarks'.
THRESHOLD = 2.0
#: Large enough that the budget-enabled run never actually spills —
#: isolating pure accounting overhead on the hot path.
HUGE_BUDGET = 1 << 30

LINES = [f"alpha beta gamma delta epsilon zeta line{i % 97}" for i in range(2_000)]


def run(memory_budget):
    def once():
        with SparkContext(WORKERS, memory_budget=memory_budget) as sc:
            return dict(
                sc.parallelize(LINES, 8)
                .flat_map(str.split)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )

    best = float("inf")
    for _ in range(REPEATS):
        sec, result = time_call(once, repeats=1)
        best = min(best, sec)
    return best, result


def test_no_spill_hot_path_overhead_tripwire():
    base_sec, base = run(None)
    budget_sec, budgeted = run(HUGE_BUDGET)

    assert budgeted == base  # budget machinery idle: bit-identical
    ratio = budget_sec / base_sec
    assert ratio < THRESHOLD, (
        f"out-of-core accounting tripwire: never-spilling-budget/unbounded ratio "
        f"{ratio:.2f}x exceeds {THRESHOLD}x — the resident hot path has probably "
        "grown serialization or locking it shouldn't have"
    )
