"""Tests for narrow transformations and actions of the mini-Spark RDD."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark import SparkContext


@pytest.fixture()
def sc():
    return SparkContext(num_workers=4, default_partitions=3)


class TestIngest:
    def test_parallelize_preserves_order_on_collect(self, sc):
        data = list(range(25))
        assert sc.parallelize(data).collect() == data

    def test_partition_count(self, sc):
        rdd = sc.parallelize(range(10), num_partitions=4)
        assert rdd.num_partitions == 4
        assert rdd.glom().collect() == [[0, 1, 2], [3, 4, 5], [6, 7], [8, 9]]

    def test_more_partitions_than_elements(self, sc):
        rdd = sc.parallelize([1], num_partitions=5)
        assert rdd.collect() == [1]
        assert rdd.count() == 1

    def test_text_file(self, sc, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("alpha\nbeta\ngamma\n")
        assert sc.text_file(path).collect() == ["alpha", "beta", "gamma"]

    def test_empty_rdd(self, sc):
        assert sc.empty_rdd().collect() == []
        assert sc.empty_rdd().count() == 0

    def test_stopped_context_rejects_work(self, sc):
        sc.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            sc.parallelize([1, 2])


class TestNarrowTransformations:
    def test_map_filter_flatmap(self, sc):
        rdd = sc.parallelize(range(10))
        assert rdd.map(lambda x: x * 2).collect() == [x * 2 for x in range(10)]
        assert rdd.filter(lambda x: x % 3 == 0).collect() == [0, 3, 6, 9]
        assert rdd.flat_map(lambda x: [x] * (x % 2)).collect() == [1, 3, 5, 7, 9]

    def test_laziness_no_jobs_until_action(self, sc):
        rdd = sc.parallelize(range(100)).map(lambda x: x + 1).filter(lambda x: x > 5)
        assert sc.metrics.jobs == 0
        rdd.collect()
        assert sc.metrics.jobs == 1

    def test_key_by_and_values(self, sc):
        rdd = sc.parallelize(["aa", "b", "ccc"]).key_by(len)
        assert rdd.collect() == [(2, "aa"), (1, "b"), (3, "ccc")]
        assert rdd.keys().collect() == [2, 1, 3]
        assert rdd.values().collect() == ["aa", "b", "ccc"]

    def test_map_values_and_flat_map_values(self, sc):
        pairs = sc.parallelize([("a", 1), ("b", 2)])
        assert pairs.map_values(lambda v: v * 10).collect() == [("a", 10), ("b", 20)]
        assert pairs.flat_map_values(lambda v: range(v)).collect() == [
            ("a", 0),
            ("b", 0),
            ("b", 1),
        ]

    def test_union_keeps_duplicates(self, sc):
        a = sc.parallelize([1, 2])
        b = sc.parallelize([2, 3])
        assert sorted(a.union(b).collect()) == [1, 2, 2, 3]

    def test_sample_deterministic(self, sc):
        rdd = sc.parallelize(range(1000))
        first = rdd.sample(0.1, seed=7).collect()
        second = rdd.sample(0.1, seed=7).collect()
        assert first == second
        assert 50 < len(first) < 200

    def test_sample_fraction_bounds(self, sc):
        rdd = sc.parallelize(range(10))
        assert rdd.sample(0.0).collect() == []
        assert rdd.sample(1.0).collect() == list(range(10))
        with pytest.raises(ValueError):
            rdd.sample(1.5)

    def test_zip_with_index_global_order(self, sc):
        rdd = sc.parallelize(["a", "b", "c", "d", "e"], num_partitions=3)
        assert rdd.zip_with_index().collect() == [
            ("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4),
        ]

    def test_coalesce_merges_adjacent(self, sc):
        rdd = sc.parallelize(range(8), num_partitions=4).coalesce(2)
        assert rdd.num_partitions == 2
        assert rdd.collect() == list(range(8))

    def test_repartition_rebalances(self, sc):
        rdd = sc.parallelize(range(12), num_partitions=1).repartition(3)
        assert rdd.num_partitions == 3
        sizes = [len(p) for p in rdd.glom().collect()]
        assert sorted(rdd.collect()) == list(range(12))
        assert max(sizes) - min(sizes) <= 1


class TestActions:
    def test_count_first_take(self, sc):
        rdd = sc.parallelize(range(20))
        assert rdd.count() == 20
        assert rdd.first() == 0
        assert rdd.take(5) == [0, 1, 2, 3, 4]
        assert rdd.take(0) == []
        assert rdd.take(100) == list(range(20))

    def test_first_on_empty_raises(self, sc):
        with pytest.raises(IndexError):
            sc.empty_rdd().first()

    def test_reduce_fold_aggregate(self, sc):
        rdd = sc.parallelize(range(1, 11))
        assert rdd.reduce(lambda a, b: a + b) == 55
        assert rdd.fold(0, lambda a, b: a + b) == 55
        total, count = rdd.aggregate(
            (0, 0), lambda acc, x: (acc[0] + x, acc[1] + 1), lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        assert (total, count) == (55, 10)

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.empty_rdd().reduce(lambda a, b: a + b)

    def test_reduce_with_empty_partitions(self, sc):
        rdd = sc.parallelize([5], num_partitions=4)
        assert rdd.reduce(lambda a, b: a + b) == 5

    def test_numeric_actions(self, sc):
        rdd = sc.parallelize([4.0, 1.0, 3.0, 2.0])
        assert rdd.sum() == 10.0
        assert rdd.mean() == 2.5
        assert rdd.min() == 1.0
        assert rdd.max() == 4.0

    def test_top_and_take_ordered(self, sc):
        rdd = sc.parallelize([5, 1, 9, 3, 7])
        assert rdd.top(2) == [9, 7]
        assert rdd.take_ordered(2) == [1, 3]
        assert rdd.top(2, key=lambda x: -x) == [1, 3]

    def test_count_by_value_and_key(self, sc):
        assert sc.parallelize(["a", "b", "a"]).count_by_value() == {"a": 2, "b": 1}
        assert sc.parallelize([("x", 1), ("x", 2), ("y", 3)]).count_by_key() == {"x": 2, "y": 1}

    def test_foreach_side_effects(self, sc):
        seen = []
        sc.parallelize(range(5), num_partitions=1).foreach(seen.append)
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_collect_as_map(self, sc):
        assert sc.parallelize([("a", 1), ("b", 2)]).collect_as_map() == {"a": 1, "b": 2}

    @given(st.lists(st.integers(-100, 100), max_size=50), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_property_collect_roundtrip(self, data, nparts):
        sc = SparkContext(num_workers=2)
        assert sc.parallelize(data, num_partitions=nparts).collect() == data


class TestCaching:
    def test_persist_computes_once(self, sc):
        calls = []
        rdd = sc.parallelize(range(10), num_partitions=2).map(
            lambda x: (calls.append(x), x)[1]
        ).persist()
        rdd.collect()
        first_calls = len(calls)
        rdd.collect()
        assert len(calls) == first_calls  # no recompute
        assert sc.metrics.partitions_cached == 2

    def test_unpersist_recomputes(self, sc):
        calls = []
        rdd = sc.parallelize(range(4), num_partitions=1).map(
            lambda x: (calls.append(x), x)[1]
        ).persist()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 8
