"""Tests for the kNN adaptation variants: OpenMP, plain MPI, device-style."""

import numpy as np
import pytest

from repro.knn import (
    knn_device,
    knn_openmp,
    knn_predict_vectorized,
    make_blobs,
    run_knn_mpi,
)


@pytest.fixture(scope="module")
def dataset():
    db, labels = make_blobs(400, 6, 4, seed=20)
    queries, _ = make_blobs(75, 6, 4, seed=21)
    reference = knn_predict_vectorized(db, labels, queries, 5)
    return db, labels, queries, reference


class TestOpenmpKnn:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_static_schedule_matches(self, dataset, threads):
        db, labels, queries, reference = dataset
        got = knn_openmp(db, labels, queries, 5, num_threads=threads)
        np.testing.assert_array_equal(got, reference)

    @pytest.mark.parametrize("schedule", ["dynamic", "guided"])
    def test_dynamic_schedules_match(self, dataset, schedule):
        db, labels, queries, reference = dataset
        got = knn_openmp(db, labels, queries, 5, num_threads=3, schedule=schedule, chunk=7)
        np.testing.assert_array_equal(got, reference)

    def test_more_threads_than_queries(self, dataset):
        db, labels, queries, reference = dataset
        got = knn_openmp(db, labels, queries[:3], 5, num_threads=8)
        np.testing.assert_array_equal(got, reference[:3])


class TestMpiKnn:
    @pytest.mark.parametrize("ranks", [1, 2, 5])
    def test_matches_reference(self, dataset, ranks):
        db, labels, queries, reference = dataset
        got = run_knn_mpi(ranks, db, labels, queries, 5)
        np.testing.assert_array_equal(got, reference)

    def test_root_must_have_queries(self, dataset):
        from repro.knn.parallel_variants import knn_mpi
        from repro.mpi import RankFailedError, run_spmd

        db, labels, _, _ = dataset
        with pytest.raises(RankFailedError, match="query set"):
            run_spmd(2, lambda comm: knn_mpi(comm, db, labels, None, 3))


class TestDeviceKnn:
    @pytest.mark.parametrize("block_size", [1, 16, 1000])
    def test_block_size_invariance(self, dataset, block_size):
        db, labels, queries, reference = dataset
        got = knn_device(db, labels, queries, 5, block_size=block_size)
        np.testing.assert_array_equal(got, reference)

    def test_invalid_block_size(self, dataset):
        db, labels, queries, _ = dataset
        with pytest.raises(ValueError):
            knn_device(db, labels, queries, 5, block_size=0)
