"""Tests for bounded-heap top-k selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn.heap import BoundedMaxHeap, top_k_by_sort, top_k_smallest


class TestBoundedMaxHeap:
    def test_keeps_k_smallest(self):
        heap = BoundedMaxHeap(3)
        for v in [9, 1, 8, 2, 7, 3]:
            heap.offer(v, f"p{v}")
        assert [k for k, _ in heap.sorted_items()] == [1, 2, 3]

    def test_offer_reports_kept(self):
        heap = BoundedMaxHeap(2)
        assert heap.offer(5) is True
        assert heap.offer(3) is True
        assert heap.offer(10) is False
        assert heap.offer(1) is True

    def test_worst_key_infinite_until_full(self):
        heap = BoundedMaxHeap(2)
        assert heap.worst_key == float("inf")
        heap.offer(4)
        assert heap.worst_key == float("inf")
        heap.offer(2)
        assert heap.worst_key == 4

    def test_ties_keep_incumbent(self):
        heap = BoundedMaxHeap(1)
        heap.offer(5.0, "first")
        assert heap.offer(5.0, "second") is False
        assert heap.sorted_items() == [(5.0, "first")]

    def test_capacity_one(self):
        heap = BoundedMaxHeap(1)
        for v in [5, 3, 8, 1]:
            heap.offer(v)
        assert heap.sorted_items() == [(1, None)]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedMaxHeap(0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200), st.integers(1, 20))
    @settings(max_examples=50)
    def test_property_matches_sorted_prefix(self, values, k):
        heap = BoundedMaxHeap(k)
        for v in values:
            heap.offer(v)
        got = [key for key, _ in heap.sorted_items()]
        assert got == sorted(values)[: min(k, len(values))]


class TestTopKFunctions:
    def test_heap_and_sort_agree_on_keys(self):
        rng = np.random.default_rng(3)
        keys = rng.random(500).tolist()
        a = [k for k, _ in top_k_smallest(keys, None, 7)]
        b = [k for k, _ in top_k_by_sort(keys, None, 7)]
        assert a == b

    def test_payloads_carried(self):
        got = top_k_smallest([3.0, 1.0, 2.0], ["c", "a", "b"], 2)
        assert got == [(1.0, "a"), (2.0, "b")]

    def test_default_payload_is_index(self):
        got = top_k_smallest([3.0, 1.0, 2.0], None, 1)
        assert got == [(1.0, 1)]

    def test_k_larger_than_n(self):
        got = top_k_smallest([2.0, 1.0], None, 10)
        assert [k for k, _ in got] == [1.0, 2.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            top_k_smallest([1.0], ["a", "b"], 1)
        with pytest.raises(ValueError):
            top_k_by_sort([1.0], ["a", "b"], 1)

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=100).map(
            lambda xs: sorted(set(xs))  # distinct keys: payload order well-defined
        ),
        st.integers(1, 10),
    )
    @settings(max_examples=30)
    def test_property_heap_equals_sort_with_distinct_keys(self, keys, k):
        import random

        random.Random(0).shuffle(keys)
        assert top_k_smallest(keys, None, k) == top_k_by_sort(keys, None, k)
