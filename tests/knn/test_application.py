"""Tests for confusion matrices and classification reports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn.application import (
    classification_report,
    confusion_matrix,
    format_report,
)


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        y = np.array([0, 1, 2, 1, 0])
        m = confusion_matrix(y, y)
        np.testing.assert_array_equal(m, np.diag([2, 2, 1]))

    def test_off_diagonal_counts(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 1, 0])
        m = confusion_matrix(true, pred)
        np.testing.assert_array_equal(m, [[1, 1], [1, 1]])

    def test_explicit_num_classes_pads(self):
        m = confusion_matrix(np.array([0]), np.array([0]), num_classes=4)
        assert m.shape == (4, 4)
        assert m.sum() == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1]), np.array([0]))

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_property_row_sums_are_class_counts(self, pairs):
        true = np.array([t for t, _ in pairs])
        pred = np.array([p for _, p in pairs])
        m = confusion_matrix(true, pred, num_classes=5)
        assert m.sum() == len(pairs)
        np.testing.assert_array_equal(m.sum(axis=1), np.bincount(true, minlength=5))
        np.testing.assert_array_equal(m.sum(axis=0), np.bincount(pred, minlength=5))


class TestClassificationReport:
    def test_perfect_scores(self):
        y = np.array([0, 1, 1, 2])
        reports = classification_report(y, y)
        for r in reports:
            assert r.precision == r.recall == r.f1 == 1.0
        assert [r.support for r in reports] == [1, 2, 1]

    def test_known_metrics(self):
        true = np.array([0, 0, 0, 1])
        pred = np.array([0, 0, 1, 1])
        r0, r1 = classification_report(true, pred)
        assert r0.precision == 1.0
        assert r0.recall == pytest.approx(2 / 3)
        assert r1.precision == 0.5
        assert r1.recall == 1.0

    def test_unpredicted_class_zero_precision(self):
        true = np.array([0, 1])
        pred = np.array([0, 0])
        _, r1 = classification_report(true, pred)
        assert r1.precision == 0.0 and r1.recall == 0.0 and r1.f1 == 0.0

    def test_format_report_table(self):
        y = np.array([0, 1, 1])
        text = format_report(classification_report(y, y))
        assert "precision" in text
        assert "weighted f1" in text
        assert len(text.splitlines()) == 4  # header + 2 classes + summary
