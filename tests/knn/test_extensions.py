"""Tests for kNN extensions: weighted voting and parallel file IO."""

import numpy as np
import pytest

from repro.knn import knn_predict_vectorized, make_blobs
from repro.knn.brute import weighted_vote
from repro.knn.wordcount import run_wordcount, run_wordcount_files


class TestWeightedVote:
    def test_near_minority_beats_far_majority(self):
        labels = np.array([0, 1, 1])
        distances = np.array([0.01, 5.0, 5.0])
        assert weighted_vote(labels, distances) == 0

    def test_uniform_distances_reduce_to_majority(self):
        labels = np.array([2, 1, 2])
        distances = np.ones(3)
        assert weighted_vote(labels, distances) == 2

    def test_zero_distance_dominates(self):
        labels = np.array([7, 0, 0, 0, 0])
        distances = np.array([0.0, 0.1, 0.1, 0.1, 0.1])
        assert weighted_vote(labels, distances) == 7

    def test_tie_breaks_to_smaller_label(self):
        labels = np.array([3, 1])
        distances = np.array([1.0, 1.0])
        assert weighted_vote(labels, distances) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_vote(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            weighted_vote(np.array([1]), np.array([1.0, 2.0]))

    def test_vote_mode_in_vectorized_engine(self):
        # A query sitting on top of a lone class-0 point, with three
        # class-1 points farther away: majority says 1, distance says 0.
        db = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 3.0], [3.0, 3.0]])
        labels = np.array([0, 1, 1, 1])
        query = np.array([[0.01, 0.0]])
        majority = knn_predict_vectorized(db, labels, query, k=4, vote="majority")
        distance = knn_predict_vectorized(db, labels, query, k=4, vote="distance")
        assert majority[0] == 1
        assert distance[0] == 0

    def test_unknown_vote_mode(self):
        db, labels = make_blobs(20, 2, 2, seed=0)
        with pytest.raises(ValueError, match="vote"):
            knn_predict_vectorized(db, labels, db[:1], 3, vote="borda")

    def test_both_modes_equal_on_separated_data(self):
        db, labels = make_blobs(200, 4, 3, seed=1, separation=10.0, spread=0.5)
        queries, _ = make_blobs(40, 4, 3, seed=2, separation=10.0, spread=0.5)
        a = knn_predict_vectorized(db, labels, queries, 5, vote="majority")
        b = knn_predict_vectorized(db, labels, queries, 5, vote="distance")
        np.testing.assert_array_equal(a, b)


class TestWordcountFiles:
    @pytest.fixture()
    def corpus_files(self, tmp_path):
        texts = [
            "alpha beta\ngamma alpha",
            "beta beta",
            "gamma alpha beta",
            "delta",
        ]
        paths = []
        for i, text in enumerate(texts):
            p = tmp_path / f"doc{i}.txt"
            p.write_text(text)
            paths.append(p)
        return paths, texts

    @pytest.mark.parametrize("ranks", [1, 2, 4, 6])
    def test_counts_match_in_memory_version(self, corpus_files, ranks):
        paths, texts = corpus_files
        lines = [line for t in texts for line in t.splitlines()]
        expect = run_wordcount(1, lines)
        got = run_wordcount_files(ranks, paths)
        assert got == expect
        assert got["beta"] == 4 and got["delta"] == 1

    def test_missing_file_fails_loudly(self, tmp_path):
        from repro.mpi import RankFailedError

        with pytest.raises(RankFailedError):
            run_wordcount_files(2, [tmp_path / "nope.txt"])
