"""Tests for the MapReduce-MPI kNN and the Word Counting warm-up."""

import numpy as np
import pytest

from repro.knn import knn_predict_vectorized, make_blobs, run_knn_mapreduce, run_wordcount
from repro.knn.wordcount import tokenize


class TestWordcount:
    LINES = [
        "It was the best of times,",
        "it was the worst of times.",
    ]

    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_counts_match_serial(self, size):
        counts = run_wordcount(size, self.LINES)
        assert counts["it"] == 2
        assert counts["was"] == 2
        assert counts["best"] == 1
        assert counts["times"] == 2

    def test_local_combine_same_answer(self):
        plain = run_wordcount(3, self.LINES)
        combined = run_wordcount(3, self.LINES, local_combine=True)
        assert plain == combined

    def test_tokenize_lowercases_and_strips_punctuation(self):
        assert tokenize("Hello, World! don't") == ["hello", "world", "don't"]


class TestMapReduceKnn:
    @pytest.fixture(scope="class")
    def dataset(self):
        db, labels = make_blobs(300, 6, 4, seed=11)
        queries, _ = make_blobs(40, 6, 4, seed=12)
        return db, labels, queries

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_matches_sequential(self, dataset, ranks):
        db, labels, queries = dataset
        serial = knn_predict_vectorized(db, labels, queries, 5)
        parallel, _ = run_knn_mapreduce(ranks, db, labels, queries, 5)
        np.testing.assert_array_equal(parallel, serial)

    def test_no_local_combine_matches_too(self, dataset):
        db, labels, queries = dataset
        serial = knn_predict_vectorized(db, labels, queries, 3)
        parallel, _ = run_knn_mapreduce(3, db, labels, queries, 3, local_combine=False)
        np.testing.assert_array_equal(parallel, serial)

    def test_local_combine_cuts_shuffle_volume(self, dataset):
        db, labels, queries = dataset
        _, shipped_plain = run_knn_mapreduce(4, db, labels, queries, 5, local_combine=False)
        _, shipped_combined = run_knn_mapreduce(4, db, labels, queries, 5, local_combine=True)
        # Without combine, ~n pairs per query cross ranks; with combine, k per task.
        assert shipped_combined < shipped_plain / 5

    def test_more_map_tasks_than_ranks(self, dataset):
        db, labels, queries = dataset
        serial = knn_predict_vectorized(db, labels, queries, 5)
        parallel, _ = run_knn_mapreduce(2, db, labels, queries, 5, num_map_tasks=9)
        np.testing.assert_array_equal(parallel, serial)

    def test_k_exceeds_database(self):
        db = np.array([[0.0, 0.0], [5.0, 5.0]])
        labels = np.array([0, 1])
        queries = np.array([[0.2, 0.1]])
        preds, _ = run_knn_mapreduce(2, db, labels, queries, k=10)
        assert preds[0] == 0

    def test_empty_database_rejected(self):
        from repro.mpi import RankFailedError

        with pytest.raises(RankFailedError, match="empty"):
            run_knn_mapreduce(
                1, np.empty((0, 2)), np.empty(0, dtype=int), np.zeros((1, 2)), 1
            )
