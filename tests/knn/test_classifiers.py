"""Tests for the kNN classifiers: heap, vectorized, kd-tree, quadtree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn import (
    KDTree,
    KNNClassifier,
    QuadTree,
    knn_predict_heap,
    knn_predict_vectorized,
    majority_vote,
    make_banknote_like,
    make_blobs,
    make_leaf_like,
    train_test_split,
)


class TestMajorityVote:
    def test_plain_majority(self):
        assert majority_vote(np.array([1, 2, 2])) == 2

    def test_tie_broken_by_distance(self):
        labels = np.array([1, 1, 2, 2])
        distances = np.array([0.5, 0.5, 0.1, 0.1])
        assert majority_vote(labels, distances) == 2

    def test_tie_broken_by_label_when_distances_equal(self):
        labels = np.array([3, 1])
        distances = np.array([1.0, 1.0])
        assert majority_vote(labels, distances) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_vote(np.array([]))


class TestEngineAgreement:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_heap_and_vectorized_agree(self, k):
        db, labels = make_blobs(300, 5, 4, seed=1)
        queries, _ = make_blobs(50, 5, 4, seed=2)
        a = knn_predict_heap(db, labels, queries, k)
        b = knn_predict_vectorized(db, labels, queries, k)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("k", [1, 5])
    def test_kdtree_agrees_with_brute(self, k):
        db, labels = make_blobs(400, 3, 3, seed=3)
        queries, _ = make_blobs(60, 3, 3, seed=4)
        brute = knn_predict_vectorized(db, labels, queries, k)
        tree = KDTree.build(db, labels).predict(queries, k)
        np.testing.assert_array_equal(brute, tree)

    @pytest.mark.parametrize("k", [1, 5])
    def test_quadtree_agrees_with_brute_in_2d(self, k):
        db, labels = make_blobs(300, 2, 3, seed=5)
        queries, _ = make_blobs(40, 2, 3, seed=6)
        brute = knn_predict_vectorized(db, labels, queries, k)
        quad = QuadTree(db, labels).predict(queries, k)
        np.testing.assert_array_equal(brute, quad)

    def test_vectorized_blocking_invariant(self):
        db, labels = make_blobs(120, 4, 3, seed=7)
        queries, _ = make_blobs(33, 4, 3, seed=8)
        a = knn_predict_vectorized(db, labels, queries, 3, block=7)
        b = knn_predict_vectorized(db, labels, queries, 3, block=1000)
        np.testing.assert_array_equal(a, b)

    @given(st.integers(1, 6), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_property_k1_nearest_is_its_own_class(self, k_classes, seed):
        # Querying a database point with k=1 must return its own label.
        db, labels = make_blobs(80, 3, k_classes, seed=seed)
        preds = knn_predict_vectorized(db, labels, db[:10], 1)
        np.testing.assert_array_equal(preds, labels[:10])


class TestTreeInternals:
    def test_kdtree_query_distances_match_brute(self):
        db, labels = make_blobs(200, 3, 2, seed=9)
        tree = KDTree.build(db, labels)
        q = np.array([0.0, 0.0, 0.0])
        nearest = tree.query(q, 5)
        d2 = np.einsum("ij,ij->i", db - q, db - q)
        np.testing.assert_allclose([d for d, _ in nearest], np.sort(d2)[:5])

    def test_kdtree_prunes(self):
        db, labels = make_blobs(2000, 2, 4, seed=10, separation=20.0)
        tree = KDTree.build(db, labels)
        tree.query(db[0], 3)
        # Far fewer nodes visited than a full traversal would touch.
        assert tree.last_nodes_visited < 2000 / 4

    def test_quadtree_handles_duplicate_points(self):
        pts = np.zeros((50, 2))
        labels = np.zeros(50, dtype=np.int64)
        quad = QuadTree(pts, labels)
        nearest = quad.query(np.zeros(2), 5)
        assert len(nearest) == 5
        assert all(d == 0.0 for d, _ in nearest)

    def test_quadtree_requires_2d(self):
        with pytest.raises(ValueError):
            QuadTree(np.zeros((5, 3)), np.zeros(5, dtype=int))

    def test_kdtree_empty_rejected(self):
        with pytest.raises(ValueError):
            KDTree.build(np.empty((0, 2)), np.empty(0, dtype=int))


class TestClassifierAPI:
    @pytest.mark.parametrize("method", ["vectorized", "heap", "kdtree"])
    def test_fit_predict_score(self, method):
        pts, labels = make_banknote_like(400, seed=0)
        tr_x, tr_y, te_x, te_y = train_test_split(pts, labels, seed=0)
        clf = KNNClassifier(k=5, method=method).fit(tr_x, tr_y)
        acc = clf.score(te_x, te_y)
        assert acc > 0.8  # overlapping classes but easily separable cores

    def test_leaf_like_many_classes(self):
        pts, labels = make_leaf_like(900, num_species=10, seed=1)
        tr_x, tr_y, te_x, te_y = train_test_split(pts, labels, seed=1)
        acc = KNNClassifier(k=3).fit(tr_x, tr_y).score(te_x, te_y)
        assert acc > 0.7

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNNClassifier().predict(np.zeros((1, 2)))

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            KNNClassifier(method="cuda")

    def test_dimension_mismatch(self):
        clf = KNNClassifier(k=1).fit(np.zeros((4, 3)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError, match="dimension mismatch"):
            clf.predict(np.zeros((2, 5)))

    def test_k_capped_at_database_size(self):
        db = np.array([[0.0], [1.0]])
        labels = np.array([0, 1])
        preds = knn_predict_vectorized(db, labels, np.array([[0.1]]), k=10)
        assert preds[0] == 0


class TestDatasets:
    def test_blobs_shapes_and_balance(self):
        pts, labels = make_blobs(100, 7, 4, seed=0)
        assert pts.shape == (100, 7)
        counts = np.bincount(labels)
        assert counts.max() - counts.min() <= 1

    def test_determinism(self):
        a = make_blobs(50, 3, 2, seed=5)
        b = make_blobs(50, 3, 2, seed=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_split_partitions_data(self):
        pts, labels = make_blobs(100, 2, 2, seed=0)
        tr_x, tr_y, te_x, te_y = train_test_split(pts, labels, test_fraction=0.3, seed=0)
        assert len(tr_x) + len(te_x) == 100
        assert len(te_x) == 30
        assert len(tr_y) == len(tr_x) and len(te_y) == len(te_x)

    def test_split_fraction_validated(self):
        pts, labels = make_blobs(10, 2, 2)
        with pytest.raises(ValueError):
            train_test_split(pts, labels, test_fraction=0.0)
