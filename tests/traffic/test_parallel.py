"""The assignment's acceptance test: parallel output identical to serial
for any thread count."""

import numpy as np
import pytest

from repro.traffic import TrafficParams, simulate_parallel, simulate_serial


class TestBitwiseReproducibility:
    @pytest.mark.parametrize("threads", [1, 2, 3, 4, 7])
    def test_identical_to_serial_any_thread_count(self, threads):
        params = TrafficParams(road_length=200, num_cars=60, p_slow=0.3, seed=21)
        serial, _ = simulate_serial(params, 80)
        parallel, _ = simulate_parallel(params, 80, num_threads=threads)
        np.testing.assert_array_equal(parallel.positions, serial.positions)
        np.testing.assert_array_equal(parallel.velocities, serial.velocities)

    def test_identical_trajectories_not_just_endpoints(self):
        params = TrafficParams(road_length=100, num_cars=30, p_slow=0.4, seed=5)
        _, serial_traj = simulate_serial(params, 30, record=True)
        _, parallel_traj = simulate_parallel(params, 30, num_threads=3, record=True)
        assert len(serial_traj) == len(parallel_traj)
        for s, p in zip(serial_traj, parallel_traj):
            np.testing.assert_array_equal(s.positions, p.positions)
            np.testing.assert_array_equal(s.velocities, p.velocities)

    def test_more_threads_than_cars(self):
        params = TrafficParams(road_length=40, num_cars=3, p_slow=0.2, seed=1)
        serial, _ = simulate_serial(params, 20)
        parallel, _ = simulate_parallel(params, 20, num_threads=8)
        np.testing.assert_array_equal(parallel.positions, serial.positions)

    def test_zero_steps(self):
        params = TrafficParams(road_length=40, num_cars=5)
        final, traj = simulate_parallel(params, 0, num_threads=2, record=True)
        assert final.step_index == 0
        assert len(traj) == 1

    def test_empty_road_parallel(self):
        params = TrafficParams(road_length=40, num_cars=0)
        final, _ = simulate_parallel(params, 10, num_threads=2)
        assert final.positions.size == 0

    def test_random_placement_also_reproducible(self):
        params = TrafficParams(road_length=150, num_cars=50, p_slow=0.25, seed=8)
        serial, _ = simulate_serial(params, 40, placement="random")
        parallel, _ = simulate_parallel(params, 40, num_threads=4, placement="random")
        np.testing.assert_array_equal(parallel.positions, serial.positions)

    def test_invariants_hold_in_parallel(self):
        params = TrafficParams(road_length=60, num_cars=40, p_slow=0.5, seed=77)
        _, traj = simulate_parallel(params, 50, num_threads=4, record=True)
        for state in traj:
            state.validate_invariants()


class TestWhyNaiveFails:
    def test_per_thread_seeds_would_differ_by_thread_count(self):
        """Demonstrate the anti-pattern the assignment warns about:
        giving each thread its own seeded PRNG ties results to the
        thread count."""
        from repro.rng.lcg import MINSTD, LinearCongruential

        params = TrafficParams(road_length=100, num_cars=30, p_slow=0.3, seed=5)

        def naive_draws(num_threads: int, step: int) -> np.ndarray:
            # Each thread seeds its own generator (seed + thread id) and
            # draws for its own cars — the WRONG approach.
            from repro.util.partition import block_bounds

            draws = np.empty(params.num_cars)
            for t in range(num_threads):
                lo, hi = block_bounds(params.num_cars, num_threads, t)
                gen = LinearCongruential(MINSTD, seed=params.seed + t)
                gen.jump(step * (hi - lo))
                for i in range(lo, hi):
                    draws[i] = gen.next_uniform()
            return draws

        assert not np.array_equal(naive_draws(2, step=0), naive_draws(4, step=0))
