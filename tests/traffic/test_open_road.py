"""Tests for the open-boundary variation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.open_road import OpenRoadParams, simulate_open_road


class TestOpenRoad:
    def test_cars_enter_and_flow_through(self):
        params = OpenRoadParams(road_length=100, p_in=0.8, p_out=1.0, p_slow=0.1, seed=3)
        final, _ = simulate_open_road(params, 400)
        assert final.entered_total > 50
        assert final.exited_total > 20
        assert final.num_cars == final.entered_total - final.exited_total

    def test_invariants_every_step(self):
        params = OpenRoadParams(road_length=60, p_in=0.9, p_out=0.5, p_slow=0.3, seed=7)
        _, trajectory = simulate_open_road(params, 200, record=True)
        for state in trajectory:
            state.validate_invariants()

    def test_deterministic(self):
        params = OpenRoadParams(road_length=80, p_in=0.6, p_out=0.7, seed=11)
        a, _ = simulate_open_road(params, 150)
        b, _ = simulate_open_road(params, 150)
        np.testing.assert_array_equal(a.positions, b.positions)
        assert a.entered_total == b.entered_total
        assert a.exited_total == b.exited_total

    def test_closed_exit_queues_the_road(self):
        # p_out = 0: nobody ever leaves; the segment fills up from the
        # right — the bottleneck phase.
        params = OpenRoadParams(road_length=40, p_in=1.0, p_out=0.0, p_slow=0.0, seed=1)
        final, _ = simulate_open_road(params, 500)
        assert final.exited_total == 0
        assert final.num_cars == 40  # completely jammed
        assert np.all(final.velocities == 0)

    def test_blocked_entry_when_cell_zero_occupied(self):
        # p_in = 1 but road full: entries stop once cell 0 is taken.
        params = OpenRoadParams(road_length=10, p_in=1.0, p_out=0.0, p_slow=0.0, seed=2)
        final, _ = simulate_open_road(params, 100)
        assert final.entered_total == 10

    def test_low_exit_rate_reduces_throughput(self):
        base = dict(road_length=100, p_in=0.9, p_slow=0.1, seed=5)
        free, _ = simulate_open_road(OpenRoadParams(p_out=1.0, **base), 400)
        choked, _ = simulate_open_road(OpenRoadParams(p_out=0.1, **base), 400)
        assert choked.exited_total < free.exited_total
        # The choke point also backs cars up onto the segment.
        assert choked.num_cars > free.num_cars

    def test_zero_inflow_stays_empty(self):
        params = OpenRoadParams(p_in=0.0, seed=1)
        final, _ = simulate_open_road(params, 100)
        assert final.num_cars == 0
        assert final.entered_total == 0

    def test_zero_steps(self):
        final, traj = simulate_open_road(OpenRoadParams(), 0, record=True)
        assert final.num_cars == 0
        assert len(traj) == 1

    def test_param_validation(self):
        with pytest.raises(ValueError):
            OpenRoadParams(p_in=1.5)
        with pytest.raises(ValueError):
            OpenRoadParams(p_out=-0.1)
        with pytest.raises(ValueError):
            OpenRoadParams(p_slow=2.0)

    @given(st.integers(0, 10_000), st.integers(10, 60))
    @settings(max_examples=15, deadline=None)
    def test_property_conservation(self, seed, length):
        params = OpenRoadParams(road_length=length, p_in=0.7, p_out=0.6, p_slow=0.2, seed=seed)
        final, _ = simulate_open_road(params, 80)
        final.validate_invariants()
        assert final.num_cars == final.entered_total - final.exited_total
        assert 0 <= final.num_cars <= length
