"""Tests for the §5 variations: MPI traffic, self-describing IO, studies."""

import numpy as np
import pytest

from repro.traffic import (
    TrafficParams,
    density_sweep_cases,
    read_trajectory,
    run_parameter_study,
    simulate_mpi,
    simulate_serial,
    write_trajectory,
)
from repro.traffic.io import TrajectoryFile


class TestMpiTraffic:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 5])
    def test_identical_to_serial_any_rank_count(self, ranks):
        params = TrafficParams(road_length=150, num_cars=40, p_slow=0.3, seed=17)
        serial, _ = simulate_serial(params, 60)
        distributed = simulate_mpi(params, 60, num_ranks=ranks)
        np.testing.assert_array_equal(distributed.positions, serial.positions)
        np.testing.assert_array_equal(distributed.velocities, serial.velocities)

    def test_more_ranks_than_cars(self):
        params = TrafficParams(road_length=50, num_cars=3, p_slow=0.2, seed=2)
        serial, _ = simulate_serial(params, 30)
        distributed = simulate_mpi(params, 30, num_ranks=6)
        np.testing.assert_array_equal(distributed.positions, serial.positions)

    def test_single_car(self):
        params = TrafficParams(road_length=30, num_cars=1, p_slow=0.0, seed=1)
        serial, _ = simulate_serial(params, 20)
        distributed = simulate_mpi(params, 20, num_ranks=2)
        np.testing.assert_array_equal(distributed.positions, serial.positions)
        assert distributed.velocities[0] == params.v_max

    def test_invariants_after_distribution(self):
        params = TrafficParams(road_length=60, num_cars=30, p_slow=0.5, seed=9)
        final = simulate_mpi(params, 40, num_ranks=4)
        final.validate_invariants()

    def test_random_placement(self):
        params = TrafficParams(road_length=100, num_cars=20, p_slow=0.25, seed=4)
        serial, _ = simulate_serial(params, 25, placement="random")
        distributed = simulate_mpi(params, 25, num_ranks=3, placement="random")
        np.testing.assert_array_equal(distributed.positions, serial.positions)


class TestTrajectoryIO:
    def test_roundtrip_exact(self, tmp_path):
        params = TrafficParams(road_length=80, num_cars=15, p_slow=0.2, seed=3)
        _, trajectory = simulate_serial(params, 20, record=True)
        path = tmp_path / "run.trj"
        write_trajectory(path, trajectory)
        back_params, back = read_trajectory(path)
        assert back_params == params
        assert len(back) == len(trajectory)
        for a, b in zip(trajectory, back):
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_array_equal(a.velocities, b.velocities)

    def test_file_is_self_describing(self, tmp_path):
        params = TrafficParams(road_length=40, num_cars=5)
        _, trajectory = simulate_serial(params, 5, record=True)
        path = tmp_path / "run.trj"
        write_trajectory(path, trajectory)
        image = TrajectoryFile.load(path)
        # The schema travels with the data.
        assert image.dims == {"step": 6, "car": 5}
        assert set(image.variables) == {"positions", "velocities"}
        assert image.attributes["model"] == "nagel-schreckenberg"
        assert image.attributes["p_slow"] == params.p_slow

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.trj"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="bad magic"):
            TrajectoryFile.load(path)

    def test_truncated_payload_rejected(self, tmp_path):
        params = TrafficParams(road_length=40, num_cars=5)
        _, trajectory = simulate_serial(params, 3, record=True)
        path = tmp_path / "run.trj"
        write_trajectory(path, trajectory)
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])  # chop the tail
        with pytest.raises(ValueError, match="truncated"):
            TrajectoryFile.load(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        params = TrafficParams(road_length=40, num_cars=5)
        _, trajectory = simulate_serial(params, 3, record=True)
        path = tmp_path / "run.trj"
        write_trajectory(path, trajectory)
        path.write_bytes(path.read_bytes() + b"xx")
        with pytest.raises(ValueError, match="trailing"):
            TrajectoryFile.load(path)

    def test_empty_trajectory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            write_trajectory(tmp_path / "x.trj", [])

    def test_variable_dimension_validated(self, tmp_path):
        image = TrajectoryFile(
            dims={"step": 2},
            variables={"bad": np.zeros((3,))},  # 3 matches no dimension
        )
        with pytest.raises(ValueError, match="not matching any dimension"):
            image.save(tmp_path / "x.trj")


class TestParameterStudy:
    def test_results_in_case_order_and_deterministic(self):
        cases = density_sweep_cases(120, [0.05, 0.2, 0.5], seed=3)
        a = run_parameter_study(cases, 60, num_workers=3, warmup=20)
        b = run_parameter_study(cases, 60, num_workers=2, warmup=20)
        assert [r.params for r in a] == cases
        for ra, rb in zip(a, b):
            assert ra.mean_velocity == rb.mean_velocity
            assert ra.flow == rb.flow

    def test_fundamental_shape_low_beats_high_density_velocity(self):
        cases = density_sweep_cases(200, [0.05, 0.6], seed=1)
        low, high = run_parameter_study(cases, 100, num_workers=2)
        assert low.mean_velocity > high.mean_velocity
        assert low.density < high.density

    def test_empty_case_list(self):
        assert run_parameter_study([], 10) == []

    def test_density_sweep_clamps(self):
        cases = density_sweep_cases(10, [0.0, 1.0, 2.0])
        assert cases[0].num_cars == 0
        assert cases[1].num_cars == 10
        assert cases[2].num_cars == 10
