"""Tests for the traffic model, serial implementations, and analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    TrafficParams,
    TrafficState,
    count_stopped,
    detect_jams,
    simulate_serial,
    simulate_serial_grid,
    space_time_diagram,
    step_cars,
)
from repro.traffic.analysis import average_velocity, flow_rate


class TestParams:
    def test_defaults_match_figure3(self):
        p = TrafficParams()
        assert (p.road_length, p.num_cars, p.p_slow, p.v_max) == (1000, 200, 0.13, 5)
        assert p.density == pytest.approx(0.2)

    def test_too_many_cars_rejected(self):
        with pytest.raises(ValueError):
            TrafficParams(road_length=10, num_cars=11)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            TrafficParams(p_slow=1.5)


class TestState:
    def test_even_placement_no_collisions(self):
        s = TrafficState.initial(TrafficParams(road_length=100, num_cars=30))
        s.validate_invariants()
        assert np.all(s.velocities == 0)

    def test_random_placement_distinct_cells(self):
        s = TrafficState.initial(
            TrafficParams(road_length=50, num_cars=25), placement="random"
        )
        s.validate_invariants()

    def test_random_placement_deterministic(self):
        p = TrafficParams(road_length=50, num_cars=10, seed=3)
        a = TrafficState.initial(p, placement="random")
        b = TrafficState.initial(p, placement="random")
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            TrafficState.initial(TrafficParams(), placement="clustered")

    def test_gaps_sum_to_free_space(self):
        s = TrafficState.initial(TrafficParams(road_length=100, num_cars=30))
        assert s.gaps().sum() == 100 - 30

    def test_single_car_gap_is_whole_road(self):
        s = TrafficState.initial(TrafficParams(road_length=20, num_cars=1))
        assert s.gaps()[0] == 19

    def test_occupancy_roundtrip(self):
        s = TrafficState.initial(TrafficParams(road_length=10, num_cars=3))
        road = s.occupancy()
        assert np.count_nonzero(road >= 0) == 3


class TestStepRules:
    def make(self, positions, velocities, length=20, v_max=5, p=0.5):
        params = TrafficParams(
            road_length=length, num_cars=len(positions), p_slow=p, v_max=v_max
        )
        return TrafficState(
            params,
            np.array(positions, dtype=np.int64),
            np.array(velocities, dtype=np.int64),
        )

    def test_acceleration_without_slowdown(self):
        s = self.make([0], [0], p=0.5)
        out = step_cars(s, np.array([0.9]))  # draw >= p: no slowdown
        assert out.velocities[0] == 1 and out.positions[0] == 1

    def test_braking_to_gap(self):
        s = self.make([0, 2], [5, 0], p=0.0)
        out = step_cars(s, np.array([1.0, 1.0]) * 0.99)
        # Car 0 has gap 1 -> v=1; lands on cell 1, right behind car 1's old spot.
        assert out.velocities[0] == 1
        assert out.positions[0] == 1

    def test_random_slowdown_applies_when_draw_below_p(self):
        s = self.make([0], [3], p=0.5)
        slowed = step_cars(s, np.array([0.1]))
        free = step_cars(s, np.array([0.9]))
        assert slowed.velocities[0] == 3  # min(4, gap) - 1
        assert free.velocities[0] == 4

    def test_velocity_never_negative(self):
        s = self.make([0, 1], [0, 0], p=1.0)  # bumper to bumper, always slow
        out = step_cars(s, np.array([0.0, 0.0]))
        assert np.all(out.velocities >= 0)

    def test_no_collisions_ever(self):
        params = TrafficParams(road_length=30, num_cars=20, p_slow=0.5, seed=5)
        state, traj = simulate_serial(params, 100, record=True)
        for s in traj:
            s.validate_invariants()

    def test_wrong_draw_count_rejected(self):
        s = self.make([0, 5], [0, 0])
        with pytest.raises(ValueError):
            step_cars(s, np.array([0.5]))

    def test_pure_function_does_not_mutate(self):
        s = self.make([0, 5], [0, 0])
        before = s.positions.copy()
        step_cars(s, np.array([0.5, 0.5]))
        np.testing.assert_array_equal(s.positions, before)

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_car_count_conserved(self, seed):
        params = TrafficParams(road_length=60, num_cars=25, p_slow=0.3, seed=seed)
        state, _ = simulate_serial(params, 30)
        assert len(np.unique(state.positions)) == 25


class TestDeterminismAndEquivalence:
    def test_serial_reproducible(self):
        params = TrafficParams(road_length=100, num_cars=40, seed=9)
        a, _ = simulate_serial(params, 50)
        b, _ = simulate_serial(params, 50)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.velocities, b.velocities)

    def test_seed_changes_trajectory(self):
        base = dict(road_length=100, num_cars=40, p_slow=0.3)
        a, _ = simulate_serial(TrafficParams(seed=1, **base), 50)
        b, _ = simulate_serial(TrafficParams(seed=2, **base), 50)
        assert not np.array_equal(a.positions, b.positions)

    @pytest.mark.parametrize("steps", [0, 1, 25])
    def test_grid_matches_agents(self, steps):
        params = TrafficParams(road_length=80, num_cars=30, p_slow=0.25, seed=4)
        agent_state, _ = simulate_serial(params, steps)
        grid, _ = simulate_serial_grid(params, steps)
        np.testing.assert_array_equal(agent_state.occupancy(), grid)

    def test_p_zero_reaches_free_flow(self):
        # Without randomness every car reaches v_max (density < 1/(v_max+1)).
        params = TrafficParams(road_length=120, num_cars=10, p_slow=0.0, v_max=5)
        state, _ = simulate_serial(params, 100)
        assert np.all(state.velocities == 5)
        assert count_stopped(state) == 0


class TestAnalysis:
    def test_space_time_shape(self):
        params = TrafficParams(road_length=50, num_cars=10, seed=2)
        _, traj = simulate_serial(params, 20, record=True)
        st_matrix = space_time_diagram(traj)
        assert st_matrix.shape == (21, 50)
        assert np.all((st_matrix >= -1) & (st_matrix <= 5))

    def test_space_time_requires_recording(self):
        with pytest.raises(ValueError):
            space_time_diagram([])

    def test_detect_jams_finds_bumper_queue(self):
        params = TrafficParams(road_length=20, num_cars=4, v_max=5)
        state = TrafficState(
            params,
            positions=np.array([5, 6, 7, 15], dtype=np.int64),
            velocities=np.array([0, 0, 0, 3], dtype=np.int64),
        )
        jams = detect_jams(state)
        assert jams == [(0, 3)]

    def test_detect_jams_none_in_free_flow(self):
        params = TrafficParams(road_length=60, num_cars=5, v_max=5)
        state = TrafficState(
            params,
            positions=np.arange(0, 50, 10, dtype=np.int64),
            velocities=np.full(5, 5, dtype=np.int64),
        )
        assert detect_jams(state) == []

    def test_detect_jams_wrapping_queue(self):
        params = TrafficParams(road_length=10, num_cars=10)
        state = TrafficState(
            params,
            positions=np.arange(10, dtype=np.int64),
            velocities=np.zeros(10, dtype=np.int64),
        )
        assert detect_jams(state) == [(0, 10)]

    def test_empty_road(self):
        params = TrafficParams(road_length=10, num_cars=0)
        state = TrafficState.initial(params)
        assert detect_jams(state) == []
        assert average_velocity(state) == 0.0

    def test_flow_rate_zero_when_all_stopped(self):
        params = TrafficParams(road_length=10, num_cars=10)  # full road
        _, traj = simulate_serial(params, 5, record=True)
        assert flow_rate(traj) == 0.0
