"""Tests for cluster-quality evaluation (elbow, silhouette, suggest_k)."""

import numpy as np
import pytest

from repro.kmeans.evaluation import elbow_curve, silhouette_score, suggest_k
from repro.kmeans import kmeans_sequential
from repro.knn.data import make_blobs


@pytest.fixture(scope="module")
def three_blobs():
    return make_blobs(300, 2, 3, seed=8, separation=10.0, spread=0.7)


class TestElbowCurve:
    def test_inertia_decreases_with_k(self, three_blobs):
        points, _ = three_blobs
        curve = elbow_curve(points, [1, 2, 3, 4, 5], seed=0)
        inertias = [i for _, i in curve]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_sharp_drop_at_true_k(self, three_blobs):
        points, _ = three_blobs
        curve = dict(elbow_curve(points, [2, 3, 4], seed=0))
        # Going 2->3 helps a lot; 3->4 helps little.
        assert (curve[2] - curve[3]) > 5 * (curve[3] - curve[4])

    def test_duplicate_and_unsorted_ks(self, three_blobs):
        points, _ = three_blobs
        curve = elbow_curve(points, [3, 1, 3], seed=0)
        assert [k for k, _ in curve] == [1, 3]

    def test_empty_k_values(self, three_blobs):
        points, _ = three_blobs
        with pytest.raises(ValueError):
            elbow_curve(points, [])


class TestSilhouette:
    def test_well_separated_high_score(self, three_blobs):
        points, _ = three_blobs
        result = kmeans_sequential(points, 3, seed=0)
        assert silhouette_score(points, result.assignments) > 0.7

    def test_wrong_k_scores_lower(self, three_blobs):
        points, _ = three_blobs
        good = kmeans_sequential(points, 3, seed=0)
        bad = kmeans_sequential(points, 6, seed=0)
        assert silhouette_score(points, good.assignments) > silhouette_score(
            points, bad.assignments
        )

    def test_single_cluster_rejected(self, three_blobs):
        points, _ = three_blobs
        with pytest.raises(ValueError, match="2 clusters"):
            silhouette_score(points, np.zeros(len(points), dtype=int))

    def test_perfect_two_point_clusters(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 0.0], [10.1, 0.0]])
        score = silhouette_score(points, np.array([0, 0, 1, 1]))
        assert score > 0.95

    def test_singletons_contribute_zero(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [10.1, 0.0]])
        score = silhouette_score(points, np.array([0, 1, 1]))
        # point 0 is a singleton (0), the pair scores ~1 -> mean ~2/3.
        assert 0.5 < score < 0.7

    def test_shape_mismatch(self, three_blobs):
        points, _ = three_blobs
        with pytest.raises(ValueError):
            silhouette_score(points, np.zeros(5, dtype=int))


class TestSuggestK:
    def test_finds_true_cluster_count(self, three_blobs):
        points, _ = three_blobs
        assert suggest_k(points, k_max=8, seed=0) == 3

    def test_small_kmax(self, three_blobs):
        points, _ = three_blobs
        assert suggest_k(points, k_max=2) == 2
