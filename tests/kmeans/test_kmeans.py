"""Tests for K-means: sequential reference, the OpenMP ladder, MPI, device."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmeans import (
    TerminationCriteria,
    init_kmeans_plus_plus,
    init_random_points,
    kmeans_device,
    kmeans_mpi,
    kmeans_openmp,
    kmeans_sequential,
    run_kmeans_mpi,
)
from repro.kmeans.sequential import compute_inertia
from repro.knn.data import make_blobs


@pytest.fixture(scope="module")
def blobs():
    return make_blobs(600, 2, 3, seed=42, separation=8.0, spread=0.8)


@pytest.fixture(scope="module")
def reference(blobs):
    points, _ = blobs
    return kmeans_sequential(points, 3, seed=7)


class TestTermination:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            TerminationCriteria(max_iterations=0)
        with pytest.raises(ValueError):
            TerminationCriteria(min_changes=-1)
        with pytest.raises(ValueError):
            TerminationCriteria(max_centroid_shift=-0.1)

    def test_reason_priority(self):
        c = TerminationCriteria(max_iterations=10, min_changes=5, max_centroid_shift=0.01)
        assert c.reason_to_stop(1, changes=3, max_shift=1.0) == "changes"
        assert c.reason_to_stop(1, changes=100, max_shift=0.001) == "centroid_shift"
        assert c.reason_to_stop(10, changes=100, max_shift=1.0) == "max_iterations"
        assert c.reason_to_stop(5, changes=100, max_shift=1.0) is None


class TestInitialization:
    def test_random_points_distinct_and_deterministic(self, blobs):
        points, _ = blobs
        a = init_random_points(points, 5, seed=3)
        b = init_random_points(points, 5, seed=3)
        np.testing.assert_array_equal(a, b)
        assert len({tuple(row) for row in a}) == 5

    def test_random_points_are_data_points(self, blobs):
        points, _ = blobs
        centroids = init_random_points(points, 4, seed=1)
        pts_set = {tuple(row) for row in points}
        assert all(tuple(c) in pts_set for c in centroids)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            init_random_points(np.zeros((3, 2)), 4)

    def test_kmeans_plus_plus_spreads(self, blobs):
        points, _ = blobs
        pp = init_kmeans_plus_plus(points, 3, seed=0)
        assert pp.shape == (3, 2)
        # Centroids from ++ should be farther apart than worst-case random.
        dists = [np.linalg.norm(pp[i] - pp[j]) for i in range(3) for j in range(i)]
        assert min(dists) > 1.0

    def test_kmeans_plus_plus_all_identical_points(self):
        pts = np.ones((10, 2))
        pp = init_kmeans_plus_plus(pts, 3, seed=0)
        np.testing.assert_array_equal(pp, np.ones((3, 2)))


class TestSequential:
    def test_recovers_well_separated_blobs(self, blobs, reference):
        points, true_labels = blobs
        # Map each found cluster to its majority true label; must be a
        # bijection and classify nearly everything consistently.
        mapping = {}
        for c in range(3):
            members = true_labels[reference.assignments == c]
            assert len(members) > 0
            mapping[c] = np.bincount(members).argmax()
        assert sorted(mapping.values()) == [0, 1, 2]
        relabeled = np.array([mapping[a] for a in reference.assignments])
        assert (relabeled == true_labels).mean() > 0.99

    def test_monotone_inertia_across_iterations(self, blobs):
        # Property of Lloyd's algorithm: inertia never increases.
        points, _ = blobs
        centroids = init_random_points(points, 3, seed=7)
        inertias = []
        for it in range(1, 8):
            result = kmeans_sequential(
                points, 3,
                criteria=TerminationCriteria(max_iterations=it, min_changes=0, max_centroid_shift=0.0),
                initial_centroids=centroids,
            )
            inertias.append(result.inertia)
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_stops_on_no_changes(self, blobs, reference):
        assert reference.stop_reason in ("changes", "centroid_shift")
        assert reference.changes_history[-1] <= 0 or reference.shift_history[-1] <= 1e-8

    def test_assignment_counts_conserved(self, blobs, reference):
        points, _ = blobs
        assert reference.assignments.shape == (points.shape[0],)
        assert set(np.unique(reference.assignments)) <= {0, 1, 2}

    def test_empty_cluster_keeps_centroid(self):
        # Three coincident points, k=2: the far cluster is empty after assign.
        pts = np.zeros((3, 2))
        init = np.array([[0.0, 0.0], [100.0, 100.0]])
        result = kmeans_sequential(pts, 2, initial_centroids=init)
        np.testing.assert_array_equal(result.centroids[1], [100.0, 100.0])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            kmeans_sequential(np.zeros((0, 2)), 2)
        with pytest.raises(ValueError):
            kmeans_sequential(np.zeros((5, 2)), 2, initial_centroids=np.zeros((3, 2)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_property_inertia_nonnegative(self, seed):
        points, _ = make_blobs(60, 2, 2, seed=seed)
        result = kmeans_sequential(points, 2, seed=seed)
        assert result.inertia >= 0.0


class TestOpenmpLadder:
    @pytest.mark.parametrize("variant", ["critical", "atomic", "reduction"])
    def test_variant_matches_sequential(self, blobs, reference, variant):
        points, _ = blobs
        init = init_random_points(points, 3, seed=7)
        result = kmeans_openmp(
            points, 3, num_threads=4, variant=variant, initial_centroids=init
        )
        np.testing.assert_array_equal(result.assignments, reference.assignments)
        np.testing.assert_allclose(result.centroids, reference.centroids, atol=1e-9)
        assert result.iterations == reference.iterations

    def test_thread_count_does_not_change_result(self, blobs):
        points, _ = blobs
        init = init_random_points(points, 3, seed=7)
        results = [
            kmeans_openmp(points, 3, num_threads=t, variant="reduction", initial_centroids=init)
            for t in (1, 2, 5)
        ]
        for r in results[1:]:
            np.testing.assert_array_equal(r.assignments, results[0].assignments)

    def test_unknown_variant(self, blobs):
        points, _ = blobs
        with pytest.raises(ValueError, match="variant"):
            kmeans_openmp(points, 3, variant="simd")


class TestMpi:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_matches_sequential(self, blobs, reference, ranks):
        points, _ = blobs
        init = init_random_points(points, 3, seed=7)
        result = run_kmeans_mpi(ranks, points, 3, initial_centroids=init)
        np.testing.assert_array_equal(result.assignments, reference.assignments)
        np.testing.assert_allclose(result.centroids, reference.centroids, atol=1e-9)
        assert result.iterations == reference.iterations
        assert result.stop_reason == reference.stop_reason

    def test_non_root_returns_none(self, blobs):
        from repro.mpi import run_spmd

        points, _ = blobs
        init = init_random_points(points, 3, seed=7)
        outs = run_spmd(
            3,
            lambda comm: kmeans_mpi(
                comm, points if comm.rank == 0 else None, 3, initial_centroids=init
            ),
        )
        assert outs[0] is not None
        assert outs[1] is None and outs[2] is None

    def test_more_ranks_than_points(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        result = run_kmeans_mpi(4, pts, 2, initial_centroids=pts.copy())
        assert sorted(result.assignments.tolist()) == [0, 1]


class TestDevice:
    @pytest.mark.parametrize("mode", ["block_reduce", "global_atomic"])
    def test_matches_sequential(self, blobs, reference, mode):
        points, _ = blobs
        init = init_random_points(points, 3, seed=7)
        result = kmeans_device(
            points, 3, block_size=64, update_mode=mode, initial_centroids=init
        )
        np.testing.assert_array_equal(result.assignments, reference.assignments)
        np.testing.assert_allclose(result.centroids, reference.centroids, atol=1e-9)

    def test_block_size_invariance(self, blobs):
        points, _ = blobs
        init = init_random_points(points, 3, seed=7)
        a = kmeans_device(points, 3, block_size=32, initial_centroids=init)
        b = kmeans_device(points, 3, block_size=512, initial_centroids=init)
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_unknown_mode(self, blobs):
        points, _ = blobs
        with pytest.raises(ValueError, match="update_mode"):
            kmeans_device(points, 3, update_mode="warp")


class TestInertia:
    def test_compute_inertia_zero_when_points_on_centroids(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        cents = pts.copy()
        assert compute_inertia(pts, cents, np.array([0, 1])) == 0.0
