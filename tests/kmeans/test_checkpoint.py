"""Iteration checkpoint/restore for the MPI k-means: bit-identical resume."""

import numpy as np
import pytest

from repro.kmeans.mpi_kmeans import KMeansCheckpoint, run_kmeans_mpi
from repro.mpi import FaultPlan, InjectedCrash, RankFailedError


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).normal(size=(400, 3))


@pytest.fixture(scope="module")
def baseline(points):
    return run_kmeans_mpi(4, points, 5, seed=1)


def assert_results_bit_identical(a, b):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    assert a.iterations == b.iterations
    assert a.stop_reason == b.stop_reason
    assert a.inertia == b.inertia
    assert a.changes_history == b.changes_history
    assert a.shift_history == b.shift_history


class TestKMeansCheckpoint:
    def test_empty_checkpoint_restore_raises(self):
        ckpt = KMeansCheckpoint()
        assert not ckpt.has_state()
        assert ckpt.iteration == 0
        with pytest.raises(ValueError, match="empty"):
            ckpt.restore()

    def test_save_copies_state(self):
        ckpt = KMeansCheckpoint()
        centroids = np.ones((2, 3))
        assignments = np.zeros(10, dtype=np.int64)
        ckpt.save(3, centroids, assignments, [5], [0.1])
        centroids[:] = -1.0  # caller mutation must not reach the checkpoint
        it, cent, assign, changes, shifts = ckpt.restore()
        assert it == 3 and ckpt.iteration == 3
        np.testing.assert_array_equal(cent, np.ones((2, 3)))
        assert changes == [5] and shifts == [0.1]

    def test_checkpointed_run_matches_plain_run(self, points, baseline):
        ckpt = KMeansCheckpoint()
        result = run_kmeans_mpi(4, points, 5, seed=1, checkpoint=ckpt)
        assert_results_bit_identical(result, baseline)
        assert ckpt.iteration == baseline.iterations

    def test_crash_then_resume_is_bit_identical(self, points, baseline):
        # The restart story end to end: a fresh world killed mid-run by
        # an injected crash, then a second world resuming from the
        # checkpoint, finishing exactly where an uninterrupted run does.
        ckpt = KMeansCheckpoint()
        with pytest.raises(RankFailedError) as excinfo:
            run_kmeans_mpi(
                4, points, 5, seed=1, checkpoint=ckpt,
                faults=FaultPlan.crash(1, 20), timeout=10.0,
            )
        assert isinstance(excinfo.value.failures[1], InjectedCrash)
        assert 0 < ckpt.iteration < baseline.iterations

        resumed = run_kmeans_mpi(4, points, 5, seed=1, checkpoint=ckpt)
        assert_results_bit_identical(resumed, baseline)

    def test_restore_rejects_mismatched_k(self, points):
        ckpt = KMeansCheckpoint()
        ckpt.save(1, np.zeros((7, 3)), np.zeros(400, dtype=np.int64), [1], [0.5])
        with pytest.raises(RankFailedError, match="checkpoint centroids"):
            run_kmeans_mpi(4, points, 5, seed=1, checkpoint=ckpt)
