"""Executor-backend k-means: correctness against the sequential model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import BACKENDS
from repro.kmeans import TerminationCriteria, kmeans_parallel, kmeans_sequential
from repro.kmeans.parallel_kmeans import KERNELS


def _blobs(seed: int = 0, n: int = 180, d: int = 2):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [6.0, 6.0], [-6.0, 5.0]])[:, :d]
    return np.concatenate(
        [c + rng.normal(scale=0.6, size=(n // 3, d)) for c in centers]
    )


class TestMatchesSequential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_same_result_as_sequential(self, backend, kernel):
        points = _blobs()
        seq = kmeans_sequential(points, 3, seed=1)
        par = kmeans_parallel(
            points, 3, num_workers=3, backend=backend, kernel=kernel, seed=1
        )
        assert np.array_equal(par.assignments, seq.assignments)
        assert np.allclose(par.centroids, seq.centroids)
        assert par.iterations == seq.iterations
        assert par.stop_reason == seq.stop_reason

    def test_worker_count_does_not_change_results(self):
        points = _blobs(seed=4)
        runs = [
            kmeans_parallel(points, 3, num_workers=w, backend="thread", seed=2)
            for w in (1, 2, 5)
        ]
        for r in runs[1:]:
            assert np.array_equal(r.assignments, runs[0].assignments)
            assert np.allclose(r.centroids, runs[0].centroids)


class TestKnobs:
    def test_initial_centroids_respected(self):
        points = _blobs(seed=7)
        init = points[[0, 60, 120]].copy()
        res = kmeans_parallel(points, 3, initial_centroids=init, backend="serial")
        assert res.iterations >= 1

    def test_termination_criteria_forwarded(self):
        points = _blobs(seed=2)
        res = kmeans_parallel(
            points, 3, criteria=TerminationCriteria(max_iterations=1), backend="serial"
        )
        assert res.iterations == 1
        assert res.stop_reason == "max_iterations"

    def test_more_workers_than_points(self):
        points = _blobs()[:3]
        res = kmeans_parallel(points, 2, num_workers=8, backend="thread", seed=0)
        assert len(res.assignments) == 3

    def test_validation(self):
        points = _blobs()
        with pytest.raises(ValueError, match="backend"):
            kmeans_parallel(points, 3, backend="gpu")
        with pytest.raises(ValueError, match="kernel"):
            kmeans_parallel(points, 3, kernel="fortran")
        with pytest.raises(ValueError, match="initial_centroids"):
            kmeans_parallel(points, 3, initial_centroids=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="non-empty"):
            kmeans_parallel(np.zeros((0, 2)), 3)
