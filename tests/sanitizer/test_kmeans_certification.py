"""Certifying the k-means race-repair ladder with the schedule explorer.

The acceptance bar for the sanitizer: it must *find* the intentional
race in the ``"racy"`` rung, and certify ``"critical"``/``"atomic"``/
``"reduction"`` race-free across at least 50 explored schedules each.
"""

import numpy as np
import pytest

from repro.kmeans.initialization import init_random_points
from repro.kmeans.openmp_kmeans import ALL_VARIANTS, VARIANTS, kmeans_openmp
from repro.kmeans.termination import TerminationCriteria
from repro.sanitizer import explore, explore_dfs, run_schedule

SCHEDULES = 50


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(11)
    points = rng.normal(size=(24, 2))
    init = init_random_points(points, 2, seed=3)
    return points, init


def make_body(points, init, variant):
    criteria = TerminationCriteria(max_iterations=2)

    def body():
        result = kmeans_openmp(
            points, 2, num_threads=2, variant=variant,
            initial_centroids=init, criteria=criteria,
        )
        return (tuple(result.changes_history), result.centroids.tobytes())

    return body


class TestRacyRungIsFlagged:
    def test_detector_flags_racy_variant(self, instance):
        points, init = instance
        result = explore(make_body(points, init, "racy"), schedules=SCHEDULES, seed=1)
        assert not result.race_free
        assert len(result.racy_schedules()) >= 1
        cells = {race.cell for race in result.races}
        # Both intentional races: the change counter and the shared sums.
        assert "kmeans.changes" in cells
        assert "kmeans.sums" in cells

    def test_racy_schedule_replays_bit_identically(self, instance):
        points, init = instance
        body = make_body(points, init, "racy")
        result = explore(body, schedules=10, seed=1)
        target = result.racy_schedules()[0]
        replay = run_schedule(body, seed=1, schedule_id=target.schedule_id)
        assert replay.choice_trace == target.choice_trace
        assert replay.result == target.result
        assert [r.signature for r in replay.races] == [r.signature for r in target.races]

    def test_racy_is_the_only_flagged_variant(self, instance):
        points, init = instance
        flagged = {
            variant: not explore(make_body(points, init, variant), schedules=5, seed=2).race_free
            for variant in ALL_VARIANTS
        }
        assert flagged == {"racy": True, "critical": False, "atomic": False, "reduction": False}


class TestCorrectRungsCertified:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_race_free_across_schedules(self, instance, variant):
        points, init = instance
        result = explore(make_body(points, init, variant), schedules=SCHEDULES, seed=1)
        assert result.schedules_run == SCHEDULES
        assert result.race_free, [r.describe() for r in result.races]
        # Coverage sanity: the campaign really explored distinct orders.
        assert result.distinct_interleavings() > 1

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_result_schedule_independent(self, instance, variant):
        points, init = instance
        result = explore(make_body(points, init, variant), schedules=10, seed=4)
        changes = {r[0] for r in (o.result for o in result.outcomes)}
        assert len(changes) == 1, f"{variant} changes counter varies with the schedule"

    @pytest.mark.slow
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_race_free_under_dfs(self, instance, variant):
        points, init = instance
        result = explore_dfs(make_body(points, init, variant), max_schedules=32, max_depth=12)
        assert result.race_free, [r.describe() for r in result.races]

    @pytest.mark.slow
    def test_dfs_also_flags_racy(self, instance):
        points, init = instance
        result = explore_dfs(make_body(points, init, "racy"), max_schedules=32, max_depth=12)
        assert not result.race_free
