"""Rendering race findings: text reports, replay hints, trace instants."""

from repro.openmp import RacyCell, parallel_region
from repro.sanitizer import (
    emit_trace_instants,
    explore,
    explore_dfs,
    format_outcome,
    format_race,
    format_result,
    write_report,
)
from repro.trace import Tracer, use_tracer


def racy_body():
    cell = RacyCell(0, name="counter")
    parallel_region(2, lambda ctx: cell.add(1))
    return cell.value


def clean_body():
    return parallel_region(2, lambda ctx: ctx.thread_id)


class TestFormatting:
    def test_format_race_names_cell_and_accesses(self):
        result = explore(racy_body, schedules=10, seed=1)
        text = format_race(result.races[0], index=0)
        assert "RACE #0" in text
        assert "counter" in text
        assert "earlier access" in text and "later access" in text

    def test_format_outcome_carries_replay_command(self):
        result = explore(racy_body, schedules=10, seed=1)
        outcome = result.racy_schedules()[0]
        text = format_outcome(outcome)
        assert f"seed={outcome.seed}" in text
        assert f"schedule_id={outcome.schedule_id}" in text
        assert "run_schedule" in text

    def test_format_result_verdict_racy(self):
        result = explore(racy_body, schedules=10, seed=1)
        text = format_result(result, title="racy counter")
        assert "racy counter" in text
        assert "DISTINCT RACE" in text
        assert "replay" in text

    def test_format_result_verdict_clean(self):
        result = explore(clean_body, schedules=5, seed=1)
        text = format_result(result)
        assert "NO RACES DETECTED" in text

    def test_dfs_outcomes_hint_prefix_replay(self):
        result = explore_dfs(racy_body, max_schedules=8)
        outcome = result.racy_schedules()[0]
        assert "PrefixChooser" in format_outcome(outcome)


class TestWriteReport:
    def test_write_report_creates_parents_and_roundtrips(self, tmp_path):
        result = explore(racy_body, schedules=5, seed=1)
        path = write_report(result, tmp_path / "out" / "racy.txt")
        assert path.exists()
        assert "sanitizer report" in path.read_text()


class TestTraceIntegration:
    def test_detector_emits_instants_live(self):
        with use_tracer(Tracer()) as tracer:
            explore(racy_body, schedules=3, seed=1)
        names = {e.name for e in tracer.events()}
        assert "sanitizer.race" in names
        snapshot = tracer.metrics.snapshot()
        assert snapshot["sanitizer.races"]["value"] >= 1

    def test_emit_trace_instants_reemits_aggregate(self):
        result = explore(racy_body, schedules=3, seed=1)
        with use_tracer(Tracer()) as tracer:
            count = emit_trace_instants(result)
        assert count == len(result.races)
        races = [e for e in tracer.events() if e.name == "sanitizer.race"]
        assert len(races) == count

    def test_emit_trace_instants_disabled_tracer(self):
        result = explore(racy_body, schedules=3, seed=1)
        with use_tracer(Tracer(enabled=False)):
            assert emit_trace_instants(result) == 0
