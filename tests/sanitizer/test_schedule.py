"""Schedule exploration: determinism, replay bit-identity, coverage, deadlocks."""

import pytest

from repro.openmp import Atomic, RacyCell, parallel_region
from repro.sanitizer import (
    PrefixChooser,
    RandomChooser,
    ScheduleDeadlockError,
    explore,
    explore_dfs,
    run_schedule,
    schedule_stream,
)
from repro.sanitizer.schedule import SCHEDULE_STREAM_SPACING


def racy_counter_body():
    cell = RacyCell(0, name="counter")
    parallel_region(2, lambda ctx: cell.add(1))
    return cell.value


def atomic_counter_body():
    cell = Atomic(0, name="counter")
    parallel_region(2, lambda ctx: cell.add(1))
    return cell.value


class TestScheduleStream:
    def test_block_split_positions(self):
        stream = schedule_stream(seed=9, schedule_id=3)
        assert stream.position == 3 * SCHEDULE_STREAM_SPACING

    def test_stream_matches_sequential_draws(self):
        serial = schedule_stream(seed=9, schedule_id=0)
        for _ in range(100):
            serial.next_raw()
        # A tiny jump lands exactly where sequential stepping lands.
        jumped = schedule_stream(seed=9, schedule_id=0).jumped(100)
        assert jumped.next_raw() == serial.next_raw()

    def test_streams_differ_across_schedule_ids(self):
        draws = {
            sid: tuple(schedule_stream(5, sid).next_raw() for _ in range(4))
            for sid in range(6)
        }
        assert len(set(draws.values())) == 6

    def test_random_chooser_stays_in_range(self):
        chooser = RandomChooser(schedule_stream(1, 0))
        for step in range(200):
            for n in (1, 2, 3, 7):
                assert 0 <= chooser(n, step) < n

    def test_prefix_chooser_clamps_and_falls_back(self):
        chooser = PrefixChooser((5, 1))
        assert chooser(3, 0) == 2  # clamped to last enabled
        assert chooser(3, 1) == 1
        assert chooser(3, 2) == 0  # past the prefix: first runnable


class TestReplay:
    @pytest.mark.parametrize("schedule_id", [0, 3, 11])
    def test_bit_identical_replay(self, schedule_id):
        a = run_schedule(racy_counter_body, seed=42, schedule_id=schedule_id)
        b = run_schedule(racy_counter_body, seed=42, schedule_id=schedule_id)
        assert a.choice_trace == b.choice_trace
        assert a.result == b.result
        assert [r.signature for r in a.races] == [r.signature for r in b.races]

    def test_outcome_carries_replay_coordinates(self):
        outcome = run_schedule(atomic_counter_body, seed=7, schedule_id=2)
        assert outcome.seed == 7
        assert outcome.schedule_id == 2
        assert outcome.mode == "random"
        assert outcome.steps == len(outcome.choice_trace)
        assert outcome.choices == tuple(c for _n, c in outcome.choice_trace)


class TestExplore:
    def test_racy_counter_flagged_and_loses_updates(self):
        result = explore(racy_counter_body, schedules=20, seed=42)
        assert not result.race_free
        assert len(result.racy_schedules()) >= 1
        results = {o.result for o in result.outcomes}
        # Some schedule manifests the lost update; some runs it correctly.
        assert 1 in results and 2 in results

    def test_atomic_counter_race_free_and_exact(self):
        result = explore(atomic_counter_body, schedules=20, seed=42)
        assert result.race_free
        assert result.races == ()
        assert {o.result for o in result.outcomes} == {2}

    def test_exploration_visits_many_interleavings(self):
        result = explore(racy_counter_body, schedules=20, seed=42)
        assert result.distinct_interleavings() >= 5

    def test_races_deduplicated_across_schedules(self):
        result = explore(racy_counter_body, schedules=20, seed=42)
        signatures = [r.location_signature for r in result.races]
        assert len(signatures) == len(set(signatures))
        assert len(result.races) < sum(len(o.races) for o in result.outcomes)

    def test_explore_is_deterministic(self):
        a = explore(racy_counter_body, schedules=10, seed=3)
        b = explore(racy_counter_body, schedules=10, seed=3)
        assert [o.choice_trace for o in a.outcomes] == [o.choice_trace for o in b.outcomes]
        assert [o.result for o in a.outcomes] == [o.result for o in b.outcomes]


class TestExploreDfs:
    def test_dfs_enumerates_distinct_interleavings(self):
        result = explore_dfs(racy_counter_body, max_schedules=16)
        assert result.mode == "dfs"
        assert result.schedules_run >= 2
        assert result.distinct_interleavings() == result.schedules_run

    def test_dfs_finds_the_lost_update(self):
        result = explore_dfs(racy_counter_body, max_schedules=24)
        assert not result.race_free
        assert {o.result for o in result.outcomes} >= {1, 2}

    def test_dfs_prefix_replays(self):
        result = explore_dfs(racy_counter_body, max_schedules=16)
        target = result.racy_schedules()[0]
        from repro.sanitizer.schedule import _run_with_chooser

        races, trace, run_result = _run_with_chooser(
            racy_counter_body, PrefixChooser(target.choices)
        )
        assert trace == target.choice_trace
        assert run_result == target.result

    @pytest.mark.slow
    def test_dfs_exhausts_small_bodies(self):
        # With a generous budget the frontier drains: re-running with a
        # larger cap discovers no additional interleavings.
        small = explore_dfs(atomic_counter_body, max_schedules=256)
        again = explore_dfs(atomic_counter_body, max_schedules=512)
        assert small.schedules_run == again.schedules_run
        assert small.race_free and again.race_free


class TestDeadlock:
    def test_partial_barrier_is_reported_not_hung(self):
        def body():
            def member(ctx):
                if ctx.thread_id == 0:
                    ctx.barrier()  # thread 1 never arrives

            parallel_region(2, member)

        with pytest.raises(ScheduleDeadlockError):
            run_schedule(body, seed=0, schedule_id=0)
