"""The sanitizer gate, observe mode, and the instrumentation hook surface."""

import pytest

from repro.core.executor import ThreadExecutor
from repro.openmp import ReductionVar, parallel_reduce, parallel_region
from repro.sanitizer import (
    Sanitizer,
    annotate_read,
    annotate_write,
    explore,
    get_sanitizer,
    preemption_point,
    set_sanitizer,
    use_sanitizer,
)


class TestGate:
    def test_disabled_by_default(self):
        assert get_sanitizer() is None

    def test_annotations_are_noops_when_disabled(self):
        annotate_read("cell")
        annotate_write("cell")
        preemption_point()

    def test_use_sanitizer_installs_and_restores(self):
        sanitizer = Sanitizer()
        with use_sanitizer(sanitizer) as active:
            assert active is sanitizer
            assert get_sanitizer() is sanitizer
        assert get_sanitizer() is None

    def test_set_sanitizer_returns_previous(self):
        first = Sanitizer()
        assert set_sanitizer(first) is None
        second = Sanitizer()
        assert set_sanitizer(second) is first
        assert set_sanitizer(None) is second

    def test_cell_names_assigned_in_first_sighting_order(self):
        sanitizer = Sanitizer()
        a, b = object(), object()
        assert sanitizer.cell_name(a, "atomic") == "atomic#0"
        assert sanitizer.cell_name(b, "atomic") == "atomic#1"
        assert sanitizer.cell_name(a, "atomic") == "atomic#0"  # stable


class TestObserveMode:
    def test_region_race_flagged_without_scheduler(self):
        def member(ctx):
            annotate_write("shared", "observe-write")

        with use_sanitizer(Sanitizer()) as sanitizer:
            parallel_region(2, member)
        assert not sanitizer.exploring
        assert sanitizer.races
        assert sanitizer.races[0].cell == "shared"

    def test_critical_section_clean_without_scheduler(self):
        def member(ctx):
            with ctx.critical("update"):
                annotate_write("shared", "guarded-write")

        with use_sanitizer(Sanitizer()) as sanitizer:
            parallel_region(4, member)
        assert sanitizer.races == ()

    def test_barrier_orders_phases_without_scheduler(self):
        def member(ctx):
            if ctx.thread_id == 0:
                annotate_write("phase", "produce")
            ctx.barrier()
            annotate_read("phase", "consume")

        with use_sanitizer(Sanitizer()) as sanitizer:
            parallel_region(3, member)
        assert sanitizer.races == ()

    def test_main_thread_accesses_ordered_by_fork_join(self):
        with use_sanitizer(Sanitizer()) as sanitizer:
            annotate_write("handoff", "setup")
            parallel_region(2, lambda ctx: annotate_read("handoff", "worker"))
            annotate_write("handoff", "teardown")
        assert sanitizer.races == ()


class TestReductionHooks:
    def test_reduction_var_certified_race_free(self):
        def body():
            var = ReductionVar(int, lambda a, b: a + b, 3)

            def member(ctx):
                var.set_local(ctx, var.local(ctx) + ctx.thread_id)

            parallel_region(3, member)
            return var.result()

        result = explore(body, schedules=15, seed=8)
        assert result.race_free
        assert {o.result for o in result.outcomes} == {3}

    def test_parallel_reduce_certified_race_free(self):
        def body():
            return parallel_reduce(
                20, 3, lambda lo, hi: sum(range(lo, hi)), lambda a, b: a + b
            )

        result = explore(body, schedules=10, seed=8)
        assert result.race_free
        assert {o.result for o in result.outcomes} == {sum(range(20))}


class TestExecutorHooks:
    def test_thread_backend_results_in_order_under_exploration(self):
        def body():
            with ThreadExecutor(num_workers=3) as executor:
                return tuple(executor.map(lambda i, item: item * 2, list(range(7))))

        result = explore(body, schedules=10, seed=5)
        assert result.race_free
        assert {o.result for o in result.outcomes} == {tuple(2 * i for i in range(7))}

    def test_thread_backend_race_between_tasks_is_flagged(self):
        def body():
            def task(i, item):
                annotate_write("executor-shared", "task-write")
                return item

            with ThreadExecutor(num_workers=3) as executor:
                executor.map(task, list(range(6)))

        result = explore(body, schedules=10, seed=5)
        assert not result.race_free
        assert result.races[0].cell == "executor-shared"

    def test_thread_backend_exceptions_propagate_under_exploration(self):
        def body():
            def task(i, item):
                if i == 2:
                    raise ValueError("boom")
                return item

            with ThreadExecutor(num_workers=2) as executor:
                executor.map(task, list(range(4)))

        with use_sanitizer(Sanitizer()):
            with pytest.raises(ValueError, match="boom"):
                body()


class TestNestedTeams:
    def test_nested_region_gets_hb_edges_only(self):
        def outer(ctx):
            if ctx.thread_id == 0:
                return sum(parallel_region(2, lambda inner: inner.thread_id))
            return 0

        result = explore(lambda: parallel_region(2, outer), schedules=5, seed=9)
        assert result.race_free
        assert {tuple(o.result) for o in result.outcomes} == {(1, 0)}
