"""Hammering Atomic's RMW contract under explored contention.

The fix under test: every read-modify-write helper runs read, compute,
and write in ONE guarded section and returns the value it wrote (or
replaced), so concurrent callers always observe a consistent
linearization — and the unguarded ``RacyCell`` demonstrably fails the
same contract via the detector and the lost updates it manifests.
"""

import pytest

from repro.openmp import Atomic, RacyCell, parallel_region
from repro.sanitizer import Sanitizer, explore, use_sanitizer

THREADS = 3
INCREMENTS = 3


def hammer_atomic():
    cell = Atomic(0, name="hammer")
    observed = [[] for _ in range(THREADS)]

    def member(ctx):
        for _ in range(INCREMENTS):
            observed[ctx.thread_id].append(cell.add(1))

    parallel_region(THREADS, member)
    return cell.value, tuple(tuple(seen) for seen in observed)


def hammer_racy():
    cell = RacyCell(0, name="hammer")

    def member(ctx):
        for _ in range(INCREMENTS):
            cell.add(1)

    parallel_region(THREADS, member)
    return cell.value


class TestAtomicUnderContention:
    def test_post_values_are_an_exact_permutation(self):
        result = explore(hammer_atomic, schedules=25, seed=6)
        assert result.race_free
        total = THREADS * INCREMENTS
        for outcome in result.outcomes:
            final, observed = outcome.result
            assert final == total
            post_values = sorted(v for seen in observed for v in seen)
            # Each post-update value 1..N*M observed exactly once: the
            # linearization never repeats or skips under contention.
            assert post_values == list(range(1, total + 1))
            for seen in observed:
                assert list(seen) == sorted(seen)  # monotone per thread

    def test_fetch_add_returns_previous_value(self):
        def body():
            cell = Atomic(10, name="fa")
            pre = []

            def member(ctx):
                pre.append(cell.fetch_add(1))

            parallel_region(2, member)
            return cell.value, tuple(sorted(pre))

        result = explore(body, schedules=15, seed=6)
        assert result.race_free
        assert {o.result for o in result.outcomes} == {(12, (10, 11))}

    def test_exchange_and_compare_exchange_linearize(self):
        def body():
            cell = Atomic(0, name="cx")
            wins = [cell.compare_exchange(0, 1)]

            def member(ctx):
                wins.append(cell.compare_exchange(0, ctx.thread_id + 10))

            parallel_region(2, member)
            return cell.value, sum(wins)

        result = explore(body, schedules=10, seed=2)
        assert result.race_free
        for outcome in result.outcomes:
            value, total_wins = outcome.result
            assert total_wins == 1  # exactly one CAS succeeded
            assert value == 1  # the main thread's pre-region CAS

    def test_guarded_section_is_public_and_instrumented(self):
        def body():
            cell = Atomic(0, name="guarded")

            def member(ctx):
                with cell.guarded():
                    cell.store(cell.value + 1)

            parallel_region(2, member)
            return cell.value

        result = explore(body, schedules=15, seed=3)
        assert result.race_free
        assert {o.result for o in result.outcomes} == {2}


class TestRacyCellFailsTheContract:
    def test_detector_flags_the_unguarded_path(self):
        result = explore(hammer_racy, schedules=25, seed=6)
        assert not result.race_free
        assert any("RacyCell.add" in r.first.label or "RacyCell.add" in r.second.label
                   for r in result.races)

    def test_some_schedule_loses_an_update(self):
        result = explore(hammer_racy, schedules=25, seed=6)
        finals = {o.result for o in result.outcomes}
        assert any(final < THREADS * INCREMENTS for final in finals)
        assert max(finals) <= THREADS * INCREMENTS

    def test_observe_mode_flags_it_without_scheduling(self):
        # Even free-running (no scheduler), the HB detector flags the
        # missing synchronization regardless of actual interleaving.
        with use_sanitizer(Sanitizer()) as sanitizer:
            hammer_racy()
        assert sanitizer.races


class TestDisabledSemantics:
    def test_rmw_results_without_sanitizer(self):
        cell = Atomic(5)
        assert cell.add(2) == 7
        assert cell.fetch_add(3) == 7
        assert cell.exchange(100) == 10
        assert cell.value == 100
        assert cell.max(50) == 100
        assert cell.min(40) == 40
        assert cell.update(lambda v: v * 2) == 80
        assert cell.compare_exchange(80, 1) is True
        assert cell.compare_exchange(80, 2) is False
        with cell.guarded():
            cell.store(9)
        assert cell.value == 9

    def test_racy_cell_without_sanitizer(self):
        cell = RacyCell(1, name="c")
        assert cell.add(2) == 3
        cell.store(7)
        assert cell.value == 7
