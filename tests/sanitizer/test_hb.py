"""Unit tests for the vector-clock happens-before detector."""

import pytest

from repro.sanitizer import HBDetector, RaceError, VectorClock


class TestVectorClock:
    def test_missing_entries_are_zero(self):
        clock = VectorClock()
        assert clock.get("t0") == 0
        assert clock.observes("t0", 0)
        assert not clock.observes("t0", 1)

    def test_tick_and_observe(self):
        clock = VectorClock()
        clock.tick("t0")
        clock.tick("t0")
        assert clock.get("t0") == 2
        assert clock.observes("t0", 2)
        assert not clock.observes("t0", 3)

    def test_merge_is_pointwise_max(self):
        a = VectorClock({"t0": 3, "t1": 1})
        b = VectorClock({"t1": 5, "t2": 2})
        a.merge(b)
        assert a.snapshot() == (("t0", 3), ("t1", 5), ("t2", 2))

    def test_copy_is_independent(self):
        a = VectorClock({"t0": 1})
        b = a.copy()
        b.tick("t0")
        assert a.get("t0") == 1
        assert b.get("t0") == 2


class TestDetection:
    def test_unordered_writes_race(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.write("cell", "t0", "w0")
        det.write("cell", "t1", "w1")
        assert len(det.races) == 1
        race = det.races[0]
        assert race.cell == "cell"
        assert {race.first.label, race.second.label} == {"w0", "w1"}

    def test_read_write_race(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.read("cell", "t0", "r0")
        det.write("cell", "t1", "w1")
        assert len(det.races) == 1
        assert det.races[0].first.kind == "read"
        assert det.races[0].second.kind == "write"

    def test_concurrent_reads_are_not_a_race(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.read("cell", "t0", "r0")
        det.read("cell", "t1", "r1")
        assert det.races == ()

    def test_same_thread_rmw_is_not_a_race(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.read("cell", "t0", "r")
        det.write("cell", "t0", "w")
        det.read("cell", "t0", "r")
        assert det.races == ()

    def test_fork_orders_parent_writes_before_child(self):
        det = HBDetector()
        det.write("cell", "main", "setup")
        det.fork("main", "t0")
        det.read("cell", "t0", "child-read")
        assert det.races == ()

    def test_join_orders_child_writes_before_parent(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.write("cell", "t0", "child-write")
        det.join("main", "t0")
        det.read("cell", "main", "parent-read")
        assert det.races == ()

    def test_missing_join_is_a_race(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.write("cell", "t0", "child-write")
        det.read("cell", "main", "parent-read")  # no join edge
        assert len(det.races) == 1

    def test_release_acquire_orders_accesses(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.acquire("L", "t0")
        det.write("cell", "t0", "w0")
        det.release("L", "t0")
        det.acquire("L", "t1")
        det.write("cell", "t1", "w1")
        det.release("L", "t1")
        assert det.races == ()

    def test_distinct_locks_do_not_order(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.acquire("L0", "t0")
        det.write("cell", "t0", "w0")
        det.release("L0", "t0")
        det.acquire("L1", "t1")
        det.write("cell", "t1", "w1")
        det.release("L1", "t1")
        assert len(det.races) == 1

    def test_barrier_orders_both_sides(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.write("cell", "t0", "before-barrier")
        det.barrier_sync(["t0", "t1"])
        det.write("cell", "t1", "after-barrier")
        assert det.races == ()

    def test_duplicate_race_reported_once(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.write("cell", "t0", "w0")
        det.write("cell", "t1", "w1")
        det.write("cell", "t1", "w1")  # same shadow pairing again
        assert len(det.races) == 1

    def test_check_raises_race_error(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.write("cell", "t0", "w0")
        det.write("cell", "t1", "w1")
        with pytest.raises(RaceError) as err:
            det.check()
        assert err.value.races == det.races

    def test_check_passes_when_clean(self):
        det = HBDetector()
        det.write("cell", "main", "w")
        det.check()


class TestSignatures:
    def _race(self):
        det = HBDetector()
        det.fork("main", "t0")
        det.fork("main", "t1")
        det.write("cell", "t0", "w0")
        det.write("cell", "t1", "w1")
        return det.races[0]

    def test_signature_stable_across_identical_runs(self):
        assert self._race().signature == self._race().signature

    def test_location_signature_ignores_thread_order(self):
        race = self._race()
        assert race.location_signature[0] == "cell"
        assert set(race.location_signature[1:]) == {("write", "w0"), ("write", "w1")}

    def test_describe_names_both_accesses(self):
        text = self._race().describe()
        assert "cell" in text and "w0" in text and "w1" in text
