"""Certifying the align race-repair ladder with the schedule explorer.

Same acceptance bar as the k-means certification, on the wavefront
shape: the sanitizer must *find* the intentional races in the
``"racy"`` rung — the ``align.matches`` counter and the ``align.best``
box — with lost updates that physically manifest, and certify
``"critical"``/``"atomic"``/``"reduction"`` race-free across at least
50 explored schedules each. The per-cell ``align.H[i,j]`` annotations
mean a clean certificate also covers the per-diagonal barrier structure
itself: remove a barrier and every rung lights up.
"""

import pytest

from repro.align import align_openmp, align_sequential, generate_pair
from repro.align.openmp_align import ALL_VARIANTS, VARIANTS
from repro.sanitizer import explore, explore_dfs, run_schedule

SCHEDULES = 50


@pytest.fixture(scope="module")
def instance():
    a, b = generate_pair(5, 8)
    oracle = align_sequential(a, b)
    return a, b, oracle


def make_body(a, b, variant):
    def body():
        result = align_openmp(a, b, num_threads=2, variant=variant)
        return (result.match_events, result.best_score, result.best_cell)

    return body


class TestRacyRungIsFlagged:
    def test_detector_flags_racy_variant(self, instance):
        a, b, _oracle = instance
        result = explore(make_body(a, b, "racy"), schedules=SCHEDULES, seed=1)
        assert not result.race_free
        assert len(result.racy_schedules()) >= 1
        cells = {race.cell for race in result.races}
        # Both intentional races: the match counter and the best-cell box.
        assert "align.matches" in cells
        assert "align.best" in cells

    def test_lost_updates_physically_manifest(self, instance):
        # Not just a flag: on adverse schedules the racy counter really
        # loses increments, so the reported statistic is wrong.
        a, b, oracle = instance
        result = explore(make_body(a, b, "racy"), schedules=SCHEDULES, seed=1)
        observed = {outcome.result[0] for outcome in result.outcomes}
        assert any(matches != oracle.match_events for matches in observed)
        assert all(matches <= oracle.match_events for matches in observed)

    def test_racy_schedule_replays_bit_identically(self, instance):
        a, b, _oracle = instance
        body = make_body(a, b, "racy")
        result = explore(body, schedules=10, seed=1)
        target = result.racy_schedules()[0]
        replay = run_schedule(body, seed=1, schedule_id=target.schedule_id)
        assert replay.choice_trace == target.choice_trace
        assert replay.result == target.result
        assert [r.signature for r in replay.races] == [r.signature for r in target.races]

    def test_racy_is_the_only_flagged_variant(self, instance):
        a, b, _oracle = instance
        flagged = {
            variant: not explore(make_body(a, b, variant), schedules=5, seed=2).race_free
            for variant in ALL_VARIANTS
        }
        assert flagged == {"racy": True, "critical": False, "atomic": False, "reduction": False}

    def test_matrix_is_correct_even_on_the_racy_rung(self, instance):
        # The wavefront itself is barrier-synchronized on every rung;
        # only the statistics race. The scores must therefore match the
        # oracle even on schedules that corrupt the counter.
        a, b, oracle = instance

        def body():
            result = align_openmp(a, b, num_threads=2, variant="racy")
            return (result.score, result.matrix.tobytes())

        result = explore(body, schedules=10, seed=3)
        assert {o.result for o in result.outcomes} == {
            (oracle.score, oracle.matrix.tobytes())
        }


class TestCorrectRungsCertified:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_race_free_across_schedules(self, instance, variant):
        a, b, _oracle = instance
        result = explore(make_body(a, b, variant), schedules=SCHEDULES, seed=1)
        assert result.schedules_run == SCHEDULES
        assert result.race_free, [r.describe() for r in result.races]
        # Coverage sanity: the campaign really explored distinct orders.
        assert result.distinct_interleavings() > 1

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_result_schedule_independent(self, instance, variant):
        a, b, oracle = instance
        result = explore(make_body(a, b, variant), schedules=10, seed=4)
        outcomes = {o.result for o in result.outcomes}
        assert outcomes == {(oracle.match_events, oracle.best_score, oracle.best_cell)}

    @pytest.mark.slow
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_race_free_under_dfs(self, instance, variant):
        a, b, _oracle = instance
        result = explore_dfs(make_body(a, b, variant), max_schedules=32, max_depth=12)
        assert result.race_free, [r.describe() for r in result.races]

    @pytest.mark.slow
    def test_dfs_also_flags_racy(self, instance):
        a, b, _oracle = instance
        result = explore_dfs(make_body(a, b, "racy"), max_schedules=32, max_depth=12)
        assert not result.race_free
