"""Exporters: Chrome trace-event JSON schema, text timelines, file output."""

import json

import pytest

from repro.trace import Tracer, render_timeline, to_chrome_trace, write_chrome_trace


def _sample_tracer() -> Tracer:
    t = Tracer()
    with t.scope("rank0"):
        with t.span("compute", category="app", size=10):
            t.instant("send", category="mpi.p2p", dest=1)
    with t.scope("rank1"):
        with t.span("compute", category="app"):
            pass
    return t


class TestChromeTrace:
    def test_schema(self):
        """Every row carries the Chrome trace-event required fields."""
        doc = to_chrome_trace(_sample_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        for row in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid", "args"} <= set(row)
            assert row["ph"] in ("M", "X", "i")
            if row["ph"] == "M":
                assert row["name"] == "thread_name"
                assert isinstance(row["args"]["name"], str)
                continue
            assert isinstance(row["ts"], float)
            assert row["ts"] >= 0.0
            assert isinstance(row["cat"], str)
            assert isinstance(row["args"]["seq"], int)
            if row["ph"] == "X":
                assert row["dur"] >= 0.0
            else:
                assert row["s"] == "t"

    def test_scopes_become_named_threads(self):
        doc = to_chrome_trace(_sample_tracer())
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        names = {r["args"]["name"]: r["tid"] for r in meta}
        assert names == {"rank0": 0, "rank1": 1}  # sorted-scope tid order

    def test_timestamps_relative_to_earliest(self):
        doc = to_chrome_trace(_sample_tracer())
        ts = [r["ts"] for r in doc["traceEvents"] if r["ph"] != "M"]
        assert min(ts) == 0.0

    def test_event_args_ride_along(self):
        doc = to_chrome_trace(_sample_tracer())
        send = next(r for r in doc["traceEvents"] if r["name"] == "send")
        assert send["args"]["dest"] == 1
        assert send["cat"] == "mpi.p2p"

    def test_accepts_plain_event_list(self):
        t = _sample_tracer()
        assert to_chrome_trace(t.events()) == to_chrome_trace(t)

    def test_empty_tracer(self):
        assert to_chrome_trace(Tracer()) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_write_round_trips_through_json(self, tmp_path):
        t = _sample_tracer()
        path = write_chrome_trace(t, tmp_path / "trace.json")
        assert json.loads(path.read_text()) == to_chrome_trace(t)


class TestTimeline:
    def test_one_row_per_scope_with_legend(self):
        text = render_timeline(_sample_tracer(), width=40)
        lines = text.splitlines()
        assert "3 events" in lines[0]
        assert lines[1].startswith("rank0 |")
        assert lines[2].startswith("rank1 |")
        assert "c=compute" in lines[-1]
        assert "!=instant" in lines[-1]

    def test_instants_paint_bang(self):
        t = Tracer()
        t.instant("tick", scope="rank0")
        assert "!" in render_timeline(t, width=20)

    def test_category_filter(self):
        text = render_timeline(_sample_tracer(), width=40, categories=["mpi.p2p"])
        assert "1 event" in text
        assert "rank1" not in text

    def test_empty(self):
        assert render_timeline(Tracer()) == "(no events)"

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            render_timeline(Tracer(), width=5)

    def test_rows_fit_width(self):
        width = 32
        text = render_timeline(_sample_tracer(), width=width)
        for line in text.splitlines():
            if "|" in line:
                bar = line.split("|")[1]
                assert len(bar) == width
