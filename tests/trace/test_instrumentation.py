"""The instrumentation sites: every layer records what it should."""

import numpy as np
import pytest

from repro.heat.mpi2d import run_mpi_2d, solve_serial_2d
from repro.hpo.monitoring import AccuracyMonitor, StopTraining, learning_curve
from repro.hpo.nn.network import MLP
from repro.hpo.search import HyperParams, train_one
from repro.kmeans import TerminationCriteria, kmeans_device, kmeans_openmp
from repro.kmeans.mpi_kmeans import run_kmeans_mpi
from repro.knn.data import make_blobs
from repro.mapreduce import MapReduce
from repro.mpi import FaultPlan, run_spmd
from repro.spark import SparkContext
from repro.trace import Tracer, use_tracer


def _names(tracer, category=None):
    return [
        e.name for e in tracer.events() if category is None or e.category == category
    ]


class TestMpiInstrumentation:
    def test_p2p_send_recv_events_and_metrics(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=5)
            elif comm.rank == 1:
                comm.recv(source=0, tag=5)

        tracer = Tracer()
        run_spmd(2, program, tracer=tracer)
        events = {(e.scope, e.name) for e in tracer.events() if e.category == "mpi.p2p"}
        assert ("rank0", "send") in events
        assert ("rank1", "recv") in events
        snap = tracer.metrics.snapshot()
        assert snap["mpi.messages{rank=0}"]["value"] == 1
        assert snap["mpi.payload_bytes{rank=0}"]["value"] > 0

    def test_send_instant_carries_dest_tag_nbytes(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=7)
            else:
                comm.recv(source=0, tag=7)

        tracer = Tracer()
        run_spmd(2, program, tracer=tracer)
        send = next(e for e in tracer.events() if e.name == "send")
        args = dict(send.args)
        assert args["dest"] == 1
        assert args["tag"] == "7"
        assert args["nbytes"] > 0

    def test_collectives_become_spans(self):
        def program(comm):
            comm.bcast("v" if comm.rank == 0 else None, root=0)
            comm.barrier()
            comm.gather(comm.rank, root=0)

        tracer = Tracer()
        run_spmd(3, program, tracer=tracer)
        for rank in range(3):
            scope_names = [
                e.name
                for e in tracer.events()
                if e.scope == f"rank{rank}" and e.category == "mpi.collective"
            ]
            assert scope_names == ["bcast", "barrier", "gather"]

    def test_barrier_wait_histogram(self):
        tracer = Tracer()
        run_spmd(4, lambda comm: comm.barrier(), tracer=tracer)
        snap = tracer.metrics.snapshot()
        for rank in range(4):
            assert snap[f"mpi.barrier_wait_seconds{{rank={rank}}}"]["count"] == 1

    def test_mailbox_queue_depth_gauge(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("a", dest=1)
            else:
                comm.recv(source=0)

        tracer = Tracer()
        run_spmd(2, program, tracer=tracer)
        snap = tracer.metrics.snapshot()
        assert "mailbox.queue_depth{rank=1}" in snap


class TestRuntimeLifecycle:
    def test_run_spmd_and_rank_spans(self):
        tracer = Tracer()
        run_spmd(2, lambda comm: comm.rank, tracer=tracer)
        runtime = [(e.scope, e.name) for e in tracer.events() if e.category == "runtime"]
        assert ("main", "run_spmd") in runtime
        assert ("rank0", "rank") in runtime
        assert ("rank1", "rank") in runtime

    def test_injected_crash_and_death_are_instants(self):
        def program(comm):
            if comm.rank == 2:
                comm.send("x", dest=0)  # the crash fires before this op runs
            return comm.rank

        tracer = Tracer()
        run_spmd(
            3,
            program,
            faults=FaultPlan.crash(2, 0),
            on_failure="tolerate",
            tracer=tracer,
        )
        fault_names = _names(tracer, category="runtime.fault")
        assert "fault.crash" in fault_names
        assert "rank_death" in fault_names
        death = next(e for e in tracer.events() if e.name == "rank_death")
        assert death.scope == "rank2"
        assert dict(death.args)["error"] == "InjectedCrash"

    def test_respawn_emits_instant(self):
        attempts = {}

        def flaky(comm):
            n = attempts.get(comm.rank, 0)
            attempts[comm.rank] = n + 1
            if comm.rank == 1 and n == 0:
                raise RuntimeError("transient")
            return comm.rank

        tracer = Tracer()
        run_spmd(2, flaky, on_failure="respawn", tracer=tracer)
        assert "rank_respawn" in _names(tracer, category="runtime.fault")
        rank_spans = [
            e for e in tracer.events() if e.name == "rank" and e.scope == "rank1"
        ]
        assert len(rank_spans) == 2  # failed attempt + successful retry
        assert dict(rank_spans[0].args).get("error") == "RuntimeError"


class TestMessageStatsBreakdowns:
    def test_per_rank_and_per_pair(self):
        captured = {}

        def program(comm):
            if comm.rank == 0:
                captured["stats"] = comm.stats
                comm.send("aa", dest=1)
                comm.send("bb", dest=2)
            elif comm.rank == 1:
                comm.recv(source=0)
                comm.send("c", dest=2)
            else:
                comm.recv(source=0)
                comm.recv(source=1)

        run_spmd(3, program)
        stats = captured["stats"]  # world joined: counts are final
        per_rank = stats.per_rank()
        assert per_rank[0]["messages"] == 2
        assert per_rank[1]["messages"] == 1
        per_pair = stats.per_pair()
        assert per_pair[(0, 1)]["messages"] == 1
        assert per_pair[(0, 2)]["messages"] == 1
        assert per_pair[(0, 1)]["payload_bytes"] > 0
        # Breakdowns and the aggregate agree.
        assert sum(c["messages"] for c in per_pair.values()) == stats.messages

    def test_snapshot_shape_unchanged(self):
        _, stats = run_spmd(2, lambda comm: comm.rank, return_stats=True)
        assert stats == {"messages": 0, "payload_bytes": 0}


class TestMapReduceInstrumentation:
    def test_stage_spans_and_shuffle_counter(self):
        def program(comm):
            mr = MapReduce(comm)
            mr.map_items(
                ["a b", "b c", "c d", "d a"], lambda line, kv: [kv.add(w, 1) for w in line.split()]
            )
            shipped = mr.aggregate()
            mr.convert()
            mr.reduce(lambda key, values, kv: kv.add(key, sum(values)))
            mr.gather(root=0)
            return shipped

        tracer = Tracer()
        results = run_spmd(2, program, tracer=tracer)
        rank0 = [
            e.name
            for e in tracer.events()
            if e.scope == "rank0" and e.category == "mapreduce"
        ]
        assert rank0 == ["map", "shuffle", "group", "reduce", "gather"]
        snap = tracer.metrics.snapshot()
        total_shuffled = sum(
            s["value"] for k, s in snap.items() if k.startswith("mapreduce.shuffle_pairs")
        )
        # The per-rank counters sum to the global shipped-pair count.
        assert total_shuffled == results[0] > 0


class TestSparkInstrumentation:
    def test_job_and_task_spans(self):
        with use_tracer(Tracer()) as tracer:
            with SparkContext(num_workers=2, default_partitions=3) as sc:
                assert sc.parallelize(range(9)).map(lambda x: x * 2).collect() == [
                    x * 2 for x in range(9)
                ]
        jobs = [e for e in tracer.events() if e.name == "job"]
        assert jobs and all(e.scope == "spark.driver" for e in jobs)
        assert dict(jobs[0].args)["partitions"] == 3
        task_scopes = {e.scope for e in tracer.events() if e.name == "task"}
        assert task_scopes == {"spark.p0", "spark.p1", "spark.p2"}

    def test_untraced_context_records_nothing(self):
        with SparkContext(num_workers=2) as sc:
            sc.parallelize(range(4)).collect()
        # No tracer installed: nothing to assert beyond "it ran" — the
        # disabled default returned the shared no-op span throughout.


class TestKmeansInstrumentation:
    CRITERIA = TerminationCriteria(max_iterations=4)

    def _points(self):
        points, _ = make_blobs(200, 4, 3, seed=0)
        return points

    @pytest.mark.parametrize(
        "model,run",
        [
            ("openmp", lambda self: kmeans_openmp(
                self._points(), 3, num_threads=2, criteria=self.CRITERIA
            )),
            ("device", lambda self: kmeans_device(
                self._points(), 3, block_size=64, criteria=self.CRITERIA
            )),
        ],
    )
    def test_shared_memory_models_record_metrics(self, model, run):
        with use_tracer(Tracer()) as tracer:
            result = run(self)
        snap = tracer.metrics.snapshot()
        assert snap[f"kmeans.iterations{{model={model}}}"]["value"] == result.iterations
        assert snap[f"kmeans.iteration_shift{{model={model}}}"]["count"] == result.iterations
        iters = [e for e in tracer.events() if e.name == "kmeans.iteration"]
        assert len(iters) == result.iterations

    def test_mpi_model_records_on_rank0(self):
        tracer = Tracer()
        with use_tracer(tracer):
            result = run_kmeans_mpi(2, self._points(), 3, criteria=self.CRITERIA)
        snap = tracer.metrics.snapshot()
        assert snap["kmeans.iterations{model=mpi}"]["value"] == result.iterations
        iters = [e for e in tracer.events() if e.name == "kmeans.iteration"]
        assert len(iters) == result.iterations
        assert all(e.scope == "rank0" for e in iters)


class TestHeatInstrumentation:
    def test_halo_exchange_spans_per_step(self):
        u0 = np.zeros((12, 12))
        u0[0, :] = 1.0
        steps = 3
        with use_tracer(Tracer()) as tracer:
            result = run_mpi_2d(4, u0, 0.25, steps)
        np.testing.assert_array_equal(result, solve_serial_2d(u0, 0.25, steps))
        halos = [e for e in tracer.events() if e.name == "halo_exchange"]
        assert len(halos) == 4 * steps  # every rank, every step
        assert {dict(e.args)["step"] for e in halos} == set(range(steps))
        assert all(e.category == "heat" for e in halos)


class TestHpoInstrumentation:
    def _data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 4))
        y = (x[:, 0] > 0).astype(int)
        return x[:40], y[:40], x[40:], y[40:]

    def test_trial_span_and_histogram(self):
        tx, ty, vx, vy = self._data()
        params = HyperParams(hidden_sizes=(8,), epochs=2)
        with use_tracer(Tracer()) as tracer:
            train_one(params, tx, ty, vx, vy)
        (trial,) = [e for e in tracer.events() if e.name == "hpo.trial"]
        assert dict(trial.args)["config"] == params.describe()
        snap = tracer.metrics.snapshot()
        assert snap["hpo.trial_seconds"]["count"] == 1
        assert snap["hpo.trial_seconds"]["max"] >= trial.duration * 0.5
        assert snap["hpo.trials"]["value"] == 1

    def test_accuracy_checks_and_early_stop(self):
        tx, ty, vx, vy = self._data()
        model = MLP((4, 8, 2), seed=0)
        with use_tracer(Tracer()) as tracer:
            history = learning_curve(
                model, tx, ty, vx, vy, epochs=30, interval=1, patience=2
            )
        checks = [e for e in tracer.events() if e.name == "hpo.accuracy_check"]
        assert len(checks) == len(history)
        assert dict(checks[0].args)["epoch"] == history[0][0]
        if len(history) < 30:  # training actually stopped early
            stops = [e for e in tracer.events() if e.name == "hpo.early_stop"]
            assert len(stops) == 1

    def test_monitor_early_stop_instant_direct(self):
        _, _, vx, vy = self._data()
        monitor = AccuracyMonitor(vx, vy, patience=1)
        model = MLP((4, 8, 2), seed=0)
        with use_tracer(Tracer()) as tracer:
            monitor(0, model)  # first check sets the best
            monitor.best_accuracy = 2.0  # force "no improvement" next check
            with pytest.raises(StopTraining):
                monitor(1, model)
        assert "hpo.early_stop" in [e.name for e in tracer.events()]
