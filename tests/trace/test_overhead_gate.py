"""Fast tier-1 overhead gate for the tracing layer.

The authoritative <5% budget lives in ``benchmarks/test_trace_overhead.py``
(min-of-9 interleaved runs on a benchmark-sized instance). This gate is
its tier-1 tripwire: a tiny workload, few repeats, and a deliberately
loose threshold, so it only fires on a *gross* regression (an un-gated
hot-path allocation, accidental always-on tracing) rather than on
scheduler noise — while staying fast enough to run in every test sweep.
"""

from repro.kmeans.mpi_kmeans import run_kmeans_mpi
from repro.kmeans.termination import TerminationCriteria
from repro.knn.data import make_blobs
from repro.trace import NULL_TRACER, Tracer, use_tracer
from repro.util.timing import time_call

RANKS = 2
REPEATS = 3
CRITERIA = TerminationCriteria(max_iterations=10)
# Gross-regression tripwire only; the tight 1.05x budget is benchmarks'.
THRESHOLD = 2.0


def test_tracing_overhead_tripwire():
    points, _ = make_blobs(1000, 8, 4, seed=3)

    def run(tracer):
        def once():
            with use_tracer(tracer):
                return run_kmeans_mpi(RANKS, points, 4, seed=1, criteria=CRITERIA)

        best = float("inf")
        for _ in range(REPEATS):
            sec, result = time_call(once, repeats=1)
            best = min(best, sec)
        return best, result

    base_sec, base = run(NULL_TRACER)
    enabled = Tracer()
    enabled_sec, traced = run(enabled)

    assert base.iterations == traced.iterations
    assert len(enabled) > 0
    ratio = enabled_sec / base_sec
    assert ratio < THRESHOLD, (
        f"tracing overhead tripwire: enabled/disabled ratio {ratio:.2f}x "
        f"exceeds {THRESHOLD}x — a hot-path gate has probably regressed"
    )
