"""Tracer core: spans, instants, scopes, the logical clock, enable/disable."""

import threading

import pytest

from repro.mpi import run_spmd
from repro.trace import NULL_TRACER, Tracer, get_tracer, set_tracer, use_tracer
from repro.trace.tracer import _NOOP_SPAN


class TestSpansAndInstants:
    def test_span_records_complete_event(self):
        t = Tracer()
        with t.span("work", category="app", size=3):
            pass
        (e,) = t.events()
        assert e.name == "work"
        assert e.category == "app"
        assert e.phase == "X"
        assert e.scope == "main"
        assert e.seq == 0
        assert e.duration >= 0.0
        assert dict(e.args) == {"size": 3}

    def test_instant_records_zero_duration(self):
        t = Tracer()
        t.instant("tick", category="app", n=1)
        (e,) = t.events()
        assert e.phase == "i"
        assert e.duration == 0.0
        assert e.end == e.start

    def test_span_exposes_duration_for_metrics(self):
        t = Tracer()
        with t.span("work") as sp:
            pass
        assert sp.duration >= 0.0
        assert sp.duration == t.events()[0].duration

    def test_span_records_error_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("no")
        (e,) = t.events()
        assert dict(e.args)["error"] == "ValueError"

    def test_complete_records_pretimed_span(self):
        t = Tracer()
        t.complete("old", 1.0, 0.5, category="app")
        (e,) = t.events()
        assert (e.start, e.duration, e.phase) == (1.0, 0.5, "X")

    def test_nested_spans_keep_program_order(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        # Entry order assigns seq: outer first, inner second — even though
        # the inner event is *recorded* (exits) first.
        by_name = {e.name: e.seq for e in t.events()}
        assert by_name == {"outer": 0, "inner": 1}


class TestScopes:
    def test_default_scope_is_main(self):
        assert Tracer().current_scope == "main"

    def test_scope_routes_and_restores(self):
        t = Tracer()
        with t.scope("rank1"):
            assert t.current_scope == "rank1"
            t.instant("x")
            with t.scope("rank2"):
                t.instant("y")
            assert t.current_scope == "rank1"
        assert t.current_scope == "main"
        assert [(e.scope, e.seq) for e in t.events()] == [("rank1", 0), ("rank2", 0)]

    def test_explicit_scope_argument_wins(self):
        t = Tracer()
        with t.scope("rank1"):
            t.instant("x", scope="driver")
        assert t.events()[0].scope == "driver"

    def test_scopes_are_thread_local(self):
        t = Tracer()
        seen = []

        def worker():
            with t.scope("worker"):
                seen.append(t.current_scope)

        with t.scope("main-lane"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
            assert t.current_scope == "main-lane"
        assert seen == ["worker"]

    def test_each_scope_has_its_own_clock(self):
        t = Tracer()
        for scope in ("a", "b", "a"):
            t.instant("e", scope=scope)
        assert t.logical_sequence() == (
            ("a", 0, "e", "app", "i"),
            ("a", 1, "e", "app", "i"),
            ("b", 0, "e", "app", "i"),
        )
        assert t.scopes() == ["a", "b"]


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("work"):
            t.instant("tick")
        t.complete("old", 0.0, 1.0)
        assert len(t) == 0
        assert not t.enabled

    def test_disabled_span_is_the_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("a") is t.span("b") is _NOOP_SPAN

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled

    def test_clear_resets_events_clocks_and_metrics(self):
        t = Tracer()
        with t.span("work"):
            pass
        t.metrics.counter("c").inc()
        t.clear()
        assert len(t) == 0
        assert len(t.metrics) == 0
        t.instant("again")
        assert t.events()[0].seq == 0  # clocks restarted


class TestActiveTracer:
    def test_default_active_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        t = Tracer()
        with use_tracer(t) as got:
            assert got is t
            assert get_tracer() is t
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        t = Tracer()
        prev = set_tracer(t)
        try:
            assert prev is NULL_TRACER
            assert get_tracer() is t
        finally:
            set_tracer(prev)


class TestDeterminism:
    """The acceptance test: same seeded workload => same logical sequence."""

    @staticmethod
    def _traced_run():
        def program(comm):
            token = comm.bcast(comm.rank * 10 if comm.rank == 0 else None, root=0)
            comm.barrier()
            return comm.gather(token + comm.rank, root=0)

        tracer = Tracer()
        run_spmd(4, program, tracer=tracer)
        return tracer

    def test_two_runs_have_identical_logical_sequences(self):
        first = self._traced_run().logical_sequence()
        second = self._traced_run().logical_sequence()
        assert first == second
        assert len(first) > 0

    def test_logical_sequence_excludes_wall_clock(self):
        t = Tracer()
        t.complete("a", 123.0, 4.0)
        t.complete("a", 999.0, 7.0, scope="main")
        # Different wall clocks, same logical rows apart from seq.
        rows = t.logical_sequence()
        assert rows == (("main", 0, "a", "app", "X"), ("main", 1, "a", "app", "X"))
