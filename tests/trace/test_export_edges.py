"""Exporter edge cases: empty tracers, metrics-table ordering, instant-only traces."""

import json

from repro.trace import Tracer, format_metrics_table, to_chrome_trace, write_chrome_trace
from repro.trace.metrics import MetricsRegistry


class TestEmptyTracerExport:
    def test_chrome_trace_of_empty_tracer_is_valid_and_empty(self):
        doc = to_chrome_trace(Tracer())
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}
        # and still round-trips through JSON serialization
        assert json.loads(json.dumps(doc)) == doc

    def test_write_chrome_trace_of_empty_tracer(self, tmp_path):
        path = write_chrome_trace(Tracer(), tmp_path / "empty.json")
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_cleared_tracer_exports_empty_again(self):
        t = Tracer()
        with t.span("work"):
            pass
        assert to_chrome_trace(t)["traceEvents"]
        t.clear()
        assert to_chrome_trace(t)["traceEvents"] == []

    def test_empty_metrics_table(self):
        assert format_metrics_table(MetricsRegistry()) == "metrics: (empty)"
        assert format_metrics_table(MetricsRegistry(), title="run") == "run: (empty)"


class TestMetricsTableOrdering:
    def test_rows_sorted_by_rendered_name_not_insertion_order(self):
        reg = MetricsRegistry()
        reg.counter("zebra.count").inc()
        reg.gauge("alpha.level").set(3)
        reg.counter("mpi.messages", rank=2).inc()
        reg.counter("mpi.messages", rank=0).inc()
        table = format_metrics_table(reg)
        rows = [ln.split()[0] for ln in table.splitlines() if "." in ln]
        assert rows == sorted(rows)
        assert rows.index("mpi.messages{rank=0}") < rows.index("mpi.messages{rank=2}")

    def test_table_is_deterministic_across_identical_registries(self):
        def build() -> MetricsRegistry:
            reg = MetricsRegistry()
            reg.histogram("lat").observe(1.0)
            reg.histogram("lat").observe(3.0)
            reg.counter("ops", kind="put").inc(7)
            reg.gauge("depth").set(2)
            return reg

        assert format_metrics_table(build()) == format_metrics_table(build())

    def test_histogram_row_shows_summary_stats(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(1.0)
        reg.histogram("lat").observe(3.0)
        table = format_metrics_table(reg)
        row = next(ln for ln in table.splitlines() if "lat" in ln)
        assert "count=2" in row and "mean=2" in row


class TestInstantOnlyChromeTrace:
    def _instants_only(self) -> Tracer:
        t = Tracer()
        t.instant("send", scope="rank0", category="mpi.p2p", dest=1)
        t.instant("recv", scope="rank1", category="mpi.p2p", source=0)
        t.instant("tick", scope="rank0")
        return t

    def test_all_rows_are_instants_with_thread_scope(self):
        doc = to_chrome_trace(self._instants_only())
        rows = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        assert len(rows) == 3
        for row in rows:
            assert row["ph"] == "i"
            assert row["s"] == "t"
            assert "dur" not in row

    def test_timestamps_still_relative_to_earliest_instant(self):
        doc = to_chrome_trace(self._instants_only())
        ts = [r["ts"] for r in doc["traceEvents"] if r["ph"] != "M"]
        assert min(ts) == 0.0
        assert all(t >= 0.0 for t in ts)

    def test_scope_threads_still_emitted(self):
        doc = to_chrome_trace(self._instants_only())
        meta = {r["args"]["name"] for r in doc["traceEvents"] if r["ph"] == "M"}
        assert meta == {"rank0", "rank1"}

    def test_single_instant_has_zero_origin(self):
        t = Tracer()
        t.instant("only")
        rows = [r for r in to_chrome_trace(t)["traceEvents"] if r["ph"] == "i"]
        assert len(rows) == 1 and rows[0]["ts"] == 0.0
