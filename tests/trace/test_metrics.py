"""Metrics: instruments, the labeled registry, and the summary table."""

import threading

import pytest

from repro.trace import Counter, Gauge, Histogram, MetricsRegistry, format_metrics_table


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge()
        g.set(7)
        g.add(-2)
        assert g.value == 5
        assert g.snapshot() == {"type": "gauge", "value": 5}

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap == {
            "type": "histogram",
            "count": 3,
            "total": 6.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }
        assert h.mean == 2.0

    def test_empty_histogram_reports_zeros(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0 and snap["mean"] == 0.0

    def test_counter_is_thread_safe(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", rank=1) is reg.counter("x", rank=1)
        assert reg.counter("x") is not reg.counter("x", rank=1)

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.gauge("g", a=1, b=2) is reg.gauge("g", b=2, a=1)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="is a Counter, not a Gauge"):
            reg.gauge("x")

    def test_snapshot_renders_labels_prometheus_style(self):
        reg = MetricsRegistry()
        reg.counter("mpi.messages", rank=2).inc(3)
        reg.histogram("lat", op="barrier").observe(0.5)
        snap = reg.snapshot()
        assert snap["mpi.messages{rank=2}"]["value"] == 3
        assert snap["lat{op=barrier}"]["count"] == 1
        assert list(snap) == sorted(snap)

    def test_clear_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2
        reg.clear()
        assert len(reg) == 0


class TestTable:
    def test_empty_registry(self):
        assert format_metrics_table(MetricsRegistry()) == "metrics: (empty)"

    def test_table_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("msgs", rank=0).inc(12)
        reg.gauge("depth").set(2.5)
        reg.histogram("wait").observe(0.25)
        text = format_metrics_table(reg, title="run metrics")
        assert text.startswith("run metrics")
        assert "msgs{rank=0}" in text and "12" in text
        assert "2.5" in text
        assert "count=1" in text and "mean=0.25" in text
