"""Canonical bench schema, legacy migration, history store, trend analysis."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.trace.history import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    Finding,
    analyze_trends,
    append_history,
    history_segments,
    load_bench_dir,
    load_bench_file,
    load_history,
    make_record,
    migrate_bench_payload,
    render_trends,
    result_digest,
    sparkline,
    validate_bench_payload,
)

REPO_OUT = Path(__file__).parent.parent.parent / "benchmarks" / "out"


def _rec(workload="w", config=None, timings=None, **kw):
    return make_record(
        workload,
        config=config or {},
        timings=timings or {"total": 1.0},
        **kw,
    )


class TestBenchRecord:
    def test_round_trips_through_json(self):
        rec = _rec(
            "kmeans",
            config={"backend": "thread", "seed": 0},
            timings={"total": 0.5},
            digest="sha256:abc",
            bit_identical=True,
            timestamp="2026-08-08T00:00:00+00:00",
            git_sha="abc1234",
            source="campaign",
            extra={"note": "hello"},
        )
        again = BenchRecord.from_json(rec.to_json())
        assert again == rec
        assert again.extra == rec.extra

    def test_config_label_sorted_and_stringified(self):
        rec = _rec(config={"seed": 0, "backend": "thread"})
        assert rec.config_label == "backend=thread,seed=0"
        assert rec.series_key == ("w", "backend=thread,seed=0")

    def test_bare_config_labels_default(self):
        assert _rec().config_label == "default"

    def test_total_seconds_prefers_total_label(self):
        assert _rec(timings={"total": 2.0, "setup": 9.0}).total_seconds == 2.0
        assert _rec(timings={"a": 1.0, "b": 2.0}).total_seconds == 3.0

    def test_canonical_json_is_key_sorted_stable(self):
        rec = _rec(config={"b": 1, "a": 2}, timings={"z": 1.0, "y": 2.0})
        a = json.dumps(rec.to_json(), sort_keys=True)
        b = json.dumps(BenchRecord.from_json(rec.to_json()).to_json(), sort_keys=True)
        assert a == b


class TestValidate:
    def test_valid_payload_has_no_problems(self):
        assert validate_bench_payload(_rec().to_json()) == []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.pop("schema_version"), "schema_version"),
            (lambda p: p.update(workload=""), "workload"),
            (lambda p: p.update(config="nope"), "config"),
            (lambda p: p.update(config={"k": 1}), "string->string"),
            (lambda p: p.update(unit=""), "unit"),
            (lambda p: p.update(timings={}), "timings must not be empty"),
            (lambda p: p.update(timings={"t": float("nan")}), "finite"),
            (lambda p: p.update(timings={"t": -1.0}), ">= 0"),
            (lambda p: p.update(bit_identical="yes"), "bit_identical"),
            (lambda p: p.update(extra=[1]), "extra"),
        ],
    )
    def test_each_field_is_checked(self, mutate, fragment):
        payload = _rec().to_json()
        mutate(payload)
        problems = validate_bench_payload(payload)
        assert problems and any(fragment in p for p in problems)

    def test_non_mapping_payload(self):
        assert validate_bench_payload([1, 2]) == ["payload must be an object, got list"]

    def test_from_json_raises_listing_problems(self):
        with pytest.raises(ValueError, match="workload"):
            BenchRecord.from_json({"schema_version": 1})

    def test_make_record_rejects_bad_timings(self):
        with pytest.raises(ValueError, match="finite"):
            make_record("w", timings={"t": float("inf")})


class TestMigration:
    def test_v1_payload_passes_through(self):
        payload = _rec().to_json()
        assert migrate_bench_payload(payload) == payload

    def test_scaling_study_rows_become_worker_labels(self):
        legacy = {
            "name": "wordcount",
            "workers": 4,
            "lines": 2000,
            "rows": [
                {"workers": 1, "seconds": 2.0, "speedup": 1.0},
                {"workers": 4, "seconds": 0.6, "speedup": 3.3},
            ],
        }
        migrated = migrate_bench_payload(legacy, source="BENCH_wordcount.json")
        rec = BenchRecord.from_json(migrated)
        assert rec.workload == "wordcount"
        assert rec.timings_dict() == {"workers=1": 2.0, "workers=4": 0.6}
        assert rec.config_dict()["lines"] == "2000"
        assert rec.extra["migrated_from"] == "legacy"
        assert rec.extra["rows"] == legacy["rows"]  # nothing dropped

    def test_kernels_map_becomes_kernel_backend_labels(self):
        legacy = {
            "name": "executor_backends",
            # legacy free-text description must NOT become the workload
            "workload": "kmeans assignment step, n=4000",
            "kernels": {"numpy": {"seconds": {"serial": 0.1, "thread": 0.2}}},
        }
        rec = BenchRecord.from_json(migrate_bench_payload(legacy))
        assert rec.workload == "executor_backends"
        assert rec.timings_dict() == {"numpy/serial": 0.1, "numpy/thread": 0.2}

    def test_overhead_gate_sec_suffixes_and_nested_workload(self):
        legacy = {
            "bench": "sanitizer_overhead",
            "disabled_sec": 0.26,
            "observed_sec": 0.27,
            "baseline_seconds": 0.5,
            "ratio": 1.03,
            "threshold": 1.05,
            "workload": {"model": "kmeans_openmp", "threads": 4},
        }
        rec = BenchRecord.from_json(migrate_bench_payload(legacy))
        assert rec.workload == "sanitizer_overhead"
        assert rec.timings_dict() == {
            "disabled": 0.26, "observed": 0.27, "baseline": 0.5,
        }
        assert rec.config_dict() == {"model": "kmeans_openmp", "threads": "4"}
        assert rec.extra["ratio"] == 1.03  # the analyzer reads this

    def test_bit_identical_survives_migration(self):
        legacy = {"name": "x", "baseline_sec": 1.0, "bit_identical": False}
        assert migrate_bench_payload(legacy)["bit_identical"] is False

    def test_unrecoverable_payload_raises(self):
        with pytest.raises(ValueError, match="no recoverable timings"):
            migrate_bench_payload({"name": "x", "note": "no numbers here"})
        with pytest.raises(ValueError, match="no name"):
            migrate_bench_payload({"baseline_sec": 1.0})
        with pytest.raises(ValueError, match="object"):
            migrate_bench_payload([1])


class TestLoadBench:
    def test_every_checked_in_bench_file_loads(self):
        records = load_bench_dir(REPO_OUT)
        assert len(records) == len(list(REPO_OUT.glob("BENCH_*.json")))
        for rec in records:
            assert rec.schema_version == BENCH_SCHEMA_VERSION
            assert rec.timings  # every file yields at least one timing

    def test_missing_dir_is_empty_not_fatal(self, tmp_path):
        assert load_bench_dir(tmp_path / "nope") == []

    def test_load_file_migrates_and_stamps_source(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({"name": "demo", "run_sec": 1.5}))
        rec = load_bench_file(path)
        assert rec.workload == "demo"
        assert rec.source == "BENCH_demo.json"


class TestHistoryStore:
    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = [_rec("a"), _rec("b")]
        assert append_history(path, first) == 2
        assert append_history(path, [_rec("c")]) == 1
        records, skipped = load_history(path)
        assert [r.workload for r in records] == ["a", "b", "c"]
        assert skipped == 0

    def test_append_nothing_writes_nothing(self, tmp_path):
        path = tmp_path / "history.jsonl"
        assert append_history(path, []) == 0
        assert not path.exists()

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == ([], 0)

    def test_loader_skips_malformed_and_keeps_legacy_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        lines = [
            json.dumps(_rec("good").to_json(), sort_keys=True),
            "{not json at all",
            json.dumps({"no": "timings"}),
            json.dumps({"name": "legacy", "run_sec": 2.0}),  # pre-schema line
            "[1, 2, 3]",
            "",
        ]
        path.write_text("\n".join(lines) + "\n")
        records, skipped = load_history(path)
        assert [r.workload for r in records] == ["good", "legacy"]
        assert skipped == 3


class TestHistoryRotation:
    def _fill(self, path, names, *, max_bytes, max_segments=None):
        for name in names:
            append_history(path, [_rec(name)], max_bytes=max_bytes,
                           max_segments=max_segments)

    def test_rotates_when_live_file_would_exceed_bound(self, tmp_path):
        path = tmp_path / "history.jsonl"
        one_line = len(json.dumps(_rec("r0").to_json(), sort_keys=True)) + 1
        # Room for ~2 lines per segment.
        self._fill(path, [f"r{i}" for i in range(5)], max_bytes=2 * one_line + 8)
        segments = history_segments(path)
        assert segments, "expected at least one rotated segment"
        assert all(s.name.startswith("history.") for s in segments)
        assert path.stat().st_size <= 2 * one_line + 8

    def test_reader_spans_segments_oldest_first(self, tmp_path):
        path = tmp_path / "history.jsonl"
        names = [f"r{i}" for i in range(7)]
        one_line = len(json.dumps(_rec("r0").to_json(), sort_keys=True)) + 1
        self._fill(path, names, max_bytes=2 * one_line + 8)
        records, skipped = load_history(path)
        # Rotation is invisible: same order, nothing lost.
        assert [r.workload for r in records] == names
        assert skipped == 0

    def test_segment_numbers_keep_increasing(self, tmp_path):
        path = tmp_path / "history.jsonl"
        one_line = len(json.dumps(_rec("r0").to_json(), sort_keys=True)) + 1
        self._fill(path, [f"r{i}" for i in range(8)], max_bytes=one_line + 4)
        numbers = [int(s.stem.rsplit(".", 1)[1]) for s in history_segments(path)]
        assert numbers == sorted(numbers)
        assert len(numbers) == len(set(numbers))

    def test_max_segments_prunes_oldest(self, tmp_path):
        path = tmp_path / "history.jsonl"
        one_line = len(json.dumps(_rec("r0").to_json(), sort_keys=True)) + 1
        self._fill(path, [f"r{i}" for i in range(8)],
                   max_bytes=one_line + 4, max_segments=2)
        assert len(history_segments(path)) <= 2
        records, _ = load_history(path)
        # The newest records always survive pruning.
        assert records[-1].workload == "r7"

    def test_oversized_single_batch_still_written(self, tmp_path):
        path = tmp_path / "history.jsonl"
        batch = [_rec(f"big{i}") for i in range(10)]
        assert append_history(path, batch, max_bytes=64) == 10
        records, _ = load_history(path)
        assert len(records) == 10

    def test_no_max_bytes_never_rotates(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for i in range(20):
            append_history(path, [_rec(f"r{i}")])
        assert history_segments(path) == []

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            append_history(tmp_path / "history.jsonl", [_rec()], max_bytes=0)

    def test_segments_ignore_unrelated_files(self, tmp_path):
        path = tmp_path / "history.jsonl"
        (tmp_path / "history.notanumber.jsonl").write_text("")
        (tmp_path / "other.1.jsonl").write_text("")
        append_history(path, [_rec()])
        assert history_segments(path) == []


class TestResultDigest:
    def test_numpy_arrays_hash_by_bytes(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert result_digest(a) == result_digest(a.copy())
        assert result_digest(a) != result_digest(a.astype(np.float32))
        assert result_digest(a) != result_digest(a + 1e-16)

    def test_mappings_hash_order_independent(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest({"b": 2, "a": 1})

    def test_float_uses_exact_hex(self):
        assert result_digest(0.1 + 0.2) != result_digest(0.3)

    def test_composite_results_are_stable(self):
        value = (np.zeros(3), {"count": 2}, [1.5, None, "x"])
        assert result_digest(value) == result_digest(value)
        assert result_digest(value).startswith("sha256:")


def _series(n, seconds, workload="kmeans", config=None, digests=None, **kw):
    """n records of one series with the given per-run seconds."""
    return [
        _rec(
            workload,
            config=config or {"backend": "serial"},
            timings={"total": seconds[i]},
            digest=None if digests is None else digests[i],
            **kw,
        )
        for i in range(n)
    ]


class TestAnalyzeTrends:
    def test_steady_series_is_quiet(self):
        assert analyze_trends(_series(6, [1.0] * 6)) == []

    def test_single_point_has_no_baseline(self):
        assert analyze_trends(_series(1, [99.0])) == []

    def test_slowdown_flagged_above_threshold(self):
        findings = analyze_trends(_series(4, [1.0, 1.0, 1.0, 1.15]))
        assert [f.kind for f in findings] == ["slowdown"]
        f = findings[0]
        assert f.severity == "minor"
        assert (f.workload, f.config) == ("kmeans", "backend=serial")
        assert f.ratio == pytest.approx(1.15)

    def test_large_slowdown_is_major(self):
        findings = analyze_trends(_series(3, [1.0, 1.0, 1.3]))
        assert findings[0].severity == "major"

    def test_speedup_and_small_noise_not_flagged(self):
        assert analyze_trends(_series(3, [1.0, 1.0, 0.5])) == []
        assert analyze_trends(_series(3, [1.0, 1.0, 1.09])) == []

    def test_baseline_is_median_of_window(self):
        # One historic spike must not mask a real regression: median of
        # the window [1.0, 5.0, 1.0, 1.0, 1.0] is 1.0, so 1.2 is flagged.
        findings = analyze_trends(
            _series(7, [1.0, 1.0, 5.0, 1.0, 1.0, 1.0, 1.2]), baseline_window=5
        )
        assert [f.kind for f in findings] == ["slowdown"]

    def test_per_label_regression_not_diluted(self):
        quiet = {"fast": 0.1, "slow": 10.0}
        noisy = {"fast": 0.3, "slow": 10.0}  # 3x on one label, ~2% on the sum
        records = [
            _rec("bench", config={}, timings=quiet),
            _rec("bench", config={}, timings=quiet),
            _rec("bench", config={}, timings=noisy),
        ]
        findings = analyze_trends(records)
        assert len(findings) == 1
        assert findings[0].config == "default [fast]"
        assert findings[0].severity == "major"

    def test_digest_change_is_critical(self):
        findings = analyze_trends(
            _series(3, [1.0] * 3, digests=["sha256:a", "sha256:a", "sha256:b"])
        )
        assert [(f.severity, f.kind) for f in findings] == [("critical", "bit_identity")]

    def test_stable_digest_is_quiet(self):
        assert analyze_trends(_series(3, [1.0] * 3, digests=["sha256:a"] * 3)) == []

    def test_self_reported_bit_identity_loss_is_critical(self):
        records = _series(2, [1.0, 1.0])
        records[-1] = _rec(
            "kmeans", config={"backend": "serial"},
            timings={"total": 1.0}, bit_identical=False,
        )
        findings = analyze_trends(records)
        assert findings[0].severity == "critical"

    def test_overhead_gate_breach_is_major(self):
        records = [
            _rec("gate", config={}, timings={"t": 1.0},
                 extra={"ratio": r, "threshold": 1.05})
            for r in (1.01, 1.02, 1.06)
        ]
        findings = [f for f in analyze_trends(records) if f.kind == "overhead_drift"]
        assert [f.severity for f in findings] == ["major"]

    def test_overhead_drift_toward_gate_is_minor(self):
        records = [
            _rec("gate", config={}, timings={"t": 1.0},
                 extra={"ratio": r, "threshold": 1.05})
            for r in (1.00, 1.00, 1.04)  # +0.04 > half the 0.05 headroom
        ]
        findings = [f for f in analyze_trends(records) if f.kind == "overhead_drift"]
        assert [f.severity for f in findings] == ["minor"]

    def test_findings_sorted_by_severity_then_name(self):
        records = (
            _series(3, [1.0, 1.0, 1.15], workload="zz")
            + _series(3, [1.0] * 3, workload="aa",
                      digests=["sha256:x", "sha256:x", "sha256:y"])
        )
        findings = analyze_trends(records)
        assert [(f.severity, f.workload) for f in findings] == [
            ("critical", "aa"), ("minor", "zz"),
        ]

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="baseline_window"):
            analyze_trends([], baseline_window=0)
        with pytest.raises(ValueError, match="slowdown_threshold"):
            analyze_trends([], slowdown_threshold=0.0)

    def test_finding_sort_key_unknown_severity_sorts_last(self):
        f = Finding(severity="weird", kind="k", workload="w", config="c", detail="d")
        assert f.sort_key[0] > 2


class TestSparkline:
    def test_min_max_scaling(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█" and len(line) == 3

    def test_flat_series_is_floor(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_is_monotone(self):
        line = sparkline(range(9))
        assert list(line) == sorted(line)


class TestRenderTrends:
    def test_render_is_deterministic(self):
        records = (
            _series(4, [1.0, 1.0, 1.0, 1.3])
            + _series(2, [0.5, 0.5], workload="heat", config={"locales": 2})
        )
        first = render_trends(records, skipped=1)
        assert first == render_trends(records, skipped=1)

    def test_sections_present(self):
        report = render_trends(_series(3, [1.0, 1.0, 1.4]))
        assert "## Regressions" in report
        assert "## Per-workload trends" in report
        assert "## Campaign coverage" in report
        assert "| major | slowdown | kmeans | backend=serial |" in report
        assert "1 malformed" not in report

    def test_skipped_lines_reported(self):
        report = render_trends(_series(2, [1.0, 1.0]), skipped=3)
        assert "3 malformed history lines skipped." in report

    def test_clean_history_says_so(self):
        report = render_trends(_series(3, [1.0] * 3))
        assert "No regressions detected" in report

    def test_empty_history_renders_hint(self):
        report = render_trends([])
        assert "No history yet" in report

    def test_coverage_matrix_lists_config_values(self):
        records = (
            _series(1, [1.0], config={"backend": "serial"})
            + _series(1, [1.0], config={"backend": "thread"})
            + _series(1, [2.0], workload="heat", config={"locales": 1})
        )
        report = render_trends(records)
        coverage = report.split("## Campaign coverage")[1].splitlines()
        kmeans = next(ln for ln in coverage if ln.startswith("| kmeans"))
        assert "serial,thread" in kmeans
        heat = next(ln for ln in coverage if ln.startswith("| heat"))
        assert "—" in heat  # backend does not apply to the heat suite

    def test_span_line_uses_timestamps_and_shas(self):
        records = [
            _rec("w", timestamp="2026-01-01T00:00:00", git_sha="aaa1111"),
            _rec("w", timestamp="2026-01-02T00:00:00", git_sha="bbb2222"),
        ]
        report = render_trends(records)
        assert "2026-01-01T00:00:00 → 2026-01-02T00:00:00" in report
        assert "(aaa1111 → bbb2222)" in report
