"""repro — a reproduction of "Peachy Parallel Assignments (EduHPC 2023)".

The paper presents six competitively-selected parallel-computing
assignments. This library implements all six *and* every substrate they
run on, in pure Python + numpy, so the complete teaching stack works
offline on a laptop:

Substrates
    :mod:`repro.mpi` (SPMD message passing), :mod:`repro.openmp`
    (thread teams / atomics / reductions), :mod:`repro.mapreduce`
    (MapReduce-MPI engine), :mod:`repro.spark` (lazy RDDs + shuffles),
    :mod:`repro.chapel` (locales / Block distributions / forall),
    :mod:`repro.rng` (fast-forwardable and counter-based PRNGs),
    :mod:`repro.util` (partitioning, timing, CSV).

Assignments
    :mod:`repro.knn` (§2), :mod:`repro.kmeans` (§3),
    :mod:`repro.pipeline` (§4), :mod:`repro.traffic` (§5),
    :mod:`repro.heat` (§6), :mod:`repro.hpo` (§7).

Catalog & harness
    :mod:`repro.core` — assignment metadata and the scaling-study
    runner.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.core.assignment import ASSIGNMENTS, get_assignment, list_assignments

__all__ = ["__version__", "ASSIGNMENTS", "get_assignment", "list_assignments"]
