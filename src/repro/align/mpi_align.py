"""MPI-model wavefront alignment: block rows, per-diagonal halo exchange.

The distributed-memory step of the alignment assignment. Rows of the DP
matrix are block-distributed: rank ``r`` owns interior rows
``lo+1 .. hi`` (from :func:`~repro.util.partition.block_bounds` over the
``n`` interior rows) and computes their cells diagonal by diagonal. The
only cross-rank dependency is the **last owned row**: rank ``r``'s rows
read row ``lo`` — rank ``r-1``'s last row — as their up/diagonal
predecessors. So after computing anti-diagonal ``d`` each rank sends the
single cell ``(hi, d - hi)`` downstream and receives its halo cell
``(lo, d - lo)`` from upstream, tagged with ``d``.

Send and receive are governed by the *same* deterministic predicate —
"row ``hi`` (resp. ``lo``) has a cell on diagonal ``d`` with
``0 <= j <= m``, inside the band" — evaluated from values every rank
already knows (``n``, ``m``, ``band``, the row partition), so the
pairing can never mismatch and, because sends are buffered, the
send-then-receive step is deadlock-free by construction.

Fault tolerance mirrors the k-means design (docs/fault_tolerance.md):
pass an :class:`AlignCheckpoint` and rank 0 periodically gathers the
completed row blocks and records ``(diagonal, matrix)``; a relaunched
world restores the matrix, fast-forwards to the first unfinished
diagonal, and — the arithmetic being integer — finishes bit-identical
to a fault-free run. ``tests/align/test_align_faults.py`` holds it to
that under crash and straggler plans.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.align.scoring import (
    AlignResult,
    ScoringScheme,
    build_result,
    cell_score,
    check_band,
    diagonal_row_range,
    encode_sequence,
    in_band,
    init_matrix,
)
from repro.mpi import Communicator, run_spmd
from repro.util.partition import block_bounds

__all__ = ["align_mpi", "run_align_mpi", "AlignCheckpoint"]

#: User tag space for halo messages: tag = _TAG_HALO_BASE + diagonal.
_TAG_HALO_BASE = 0


class AlignCheckpoint:
    """Diagonal checkpoint for :func:`align_mpi` (in-memory stand-in for a file).

    Holds the matrix as of the last *checkpointed* diagonal. ``save``
    replaces the whole state atomically under a lock — a world dying
    mid-save at worst leaves the previous checkpoint, never a torn one
    (the write-temp-then-rename discipline of real checkpoint files).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state: tuple[int, np.ndarray] | None = None

    @property
    def diagonal(self) -> int:
        """Last checkpointed anti-diagonal (0 = nothing recorded)."""
        with self._lock:
            return 0 if self._state is None else self._state[0]

    def has_state(self) -> bool:
        """True once at least one diagonal has been recorded."""
        with self._lock:
            return self._state is not None

    def save(self, diagonal: int, matrix: np.ndarray) -> None:
        """Atomically record the matrix after completing ``diagonal``."""
        state = (diagonal, np.array(matrix, copy=True))
        with self._lock:
            self._state = state

    def restore(self) -> tuple[int, np.ndarray]:
        """A copy of the recorded state; raises if nothing was saved."""
        with self._lock:
            if self._state is None:
                raise ValueError("checkpoint is empty — nothing to restore")
            diagonal, matrix = self._state
            return diagonal, matrix.copy()


def _halo_exists(row: int, d: int, m: int, band: int | None) -> bool:
    """The shared send/recv predicate: does row ``row`` have a cell on ``d``?

    True when ``(row, d - row)`` is a real matrix cell inside the band.
    Sender (last owned row) and receiver (halo row) evaluate it on the
    same ``row`` value, so every send has exactly one matching receive.
    """
    j = d - row
    return 0 <= j <= m and in_band(row, j, band)


def align_mpi(
    comm: Communicator,
    a: str | np.ndarray | None,
    b: str | np.ndarray | None,
    *,
    scheme: ScoringScheme | None = None,
    band: int | None = None,
    checkpoint: AlignCheckpoint | None = None,
    checkpoint_every: int = 8,
) -> AlignResult | None:
    """SPMD wavefront alignment: call from every rank; sequences on root only.

    Returns the full :class:`AlignResult` on rank 0, None elsewhere.
    With a ``checkpoint``, rank 0 gathers and records the matrix every
    ``checkpoint_every`` completed diagonals; a world started with a
    non-empty checkpoint resumes from the recorded diagonal instead of
    recomputing — the restart path for a run killed by a fault.
    """
    scheme = scheme or ScoringScheme()
    rank, size = comm.rank, comm.size
    tracer = comm.tracer

    # --- one-time distribution of the input (collective bcast) ---------
    if rank == 0:
        a_codes = encode_sequence(a)
        b_codes = encode_sequence(b)
        check_band(a_codes.shape[0], b_codes.shape[0], band, scheme.mode)
    else:
        a_codes = b_codes = None
    # Single bcast for both sequences: under injected delay faults the
    # runtime delivers via timers, so two back-to-back broadcasts (same
    # reserved tag) can arrive reordered and a rank would compute with
    # a and b swapped. One message cannot be reordered with itself.
    a_codes, b_codes = comm.bcast(
        (a_codes, b_codes) if rank == 0 else None, root=0
    )
    n = a_codes.shape[0]
    m = b_codes.shape[0]
    if n < size:
        # Raised consistently on every rank (post-bcast), so no rank can
        # hang waiting for a peer that bailed out early.
        raise ValueError(
            f"align_mpi needs at least one interior row per rank: n={n} < size={size}"
        )

    lo, hi = block_bounds(n, size, rank)  # interior rows lo+1 .. hi (1-indexed)
    first_row = lo + 1
    last_row = hi
    halo_row = lo  # owned by rank-1 (row 0 is the init boundary)
    a_list = a_codes.tolist()
    b_list = b_codes.tolist()

    restored = checkpoint is not None and checkpoint.has_state()
    if restored:
        if rank == 0:
            state = checkpoint.restore()
            if state[1].shape != (n + 1, m + 1):
                raise ValueError(
                    f"checkpoint matrix must be {(n + 1, m + 1)}, got {state[1].shape}"
                )
        else:
            state = None
        # Bundled for the same delay-reordering reason as the input bcast.
        start_d, H = comm.bcast(state, root=0)
    else:
        start_d = 1  # diagonal 1 is pure boundary; the loop starts past it
        H = init_matrix(n, m, scheme, band)

    enabled = tracer.enabled
    stride = max(1, (n + m) // 32)
    exchanges = 0
    with tracer.span("align.score", category="align", model="mpi", rank=rank, size=size):
        for d in range(start_d + 1, n + m + 1):
            # Compute this rank's share of anti-diagonal d.
            ilo, ihi = diagonal_row_range(d, n, m, band)
            row_lo = max(ilo, first_row)
            row_hi = min(ihi, last_row)
            for i in range(row_lo, row_hi + 1):
                j = d - i
                value, _matched = cell_score(
                    H[i - 1, j - 1], H[i - 1, j], H[i, j - 1],
                    a_list[i - 1] == b_list[j - 1], scheme,
                )
                H[i, j] = value

            # Halo exchange: push the last owned row's cell downstream,
            # pull the halo row's cell from upstream (send first —
            # buffered sends make the step deadlock-free).
            with tracer.span(
                "align.exchange", category="align", model="mpi", rank=rank, d=d
            ) if enabled and d % stride == 0 else _NULL_SPAN:
                if rank + 1 < size and _halo_exists(last_row, d, m, band):
                    comm.send(int(H[last_row, d - last_row]), dest=rank + 1,
                              tag=_TAG_HALO_BASE + d)
                    exchanges += 1
                if rank > 0 and _halo_exists(halo_row, d, m, band):
                    H[halo_row, d - halo_row] = comm.recv(
                        source=rank - 1, tag=_TAG_HALO_BASE + d
                    )
                    exchanges += 1
            if enabled and rank == 0 and d % stride == 0:
                tracer.instant("align.diagonal", category="align", model="mpi", d=d)

            # Periodic checkpoint: the completed rows land on rank 0
            # before anyone can die on a later diagonal.
            if checkpoint is not None and (d % checkpoint_every == 0 or d == n + m):
                blocks = comm.gather(H[first_row : last_row + 1, :], root=0)
                if rank == 0:
                    full = H.copy()
                    for r, block in enumerate(blocks):
                        r_lo, r_hi = block_bounds(n, size, r)
                        full[r_lo + 1 : r_hi + 1, :] = block
                    checkpoint.save(d, full)

    if enabled:
        tracer.metrics.counter("align.exchanges", model="mpi", rank=rank).inc(exchanges)

    # --- gather the matrix back to root (collective gather) ------------
    blocks = comm.gather(H[first_row : last_row + 1, :], root=0)
    if rank != 0:
        return None
    for r, block in enumerate(blocks):
        r_lo, r_hi = block_bounds(n, size, r)
        H[r_lo + 1 : r_hi + 1, :] = block
    if enabled:
        tracer.metrics.counter("align.alignments", model="mpi").inc()
    return build_result(H, a_codes, b_codes, scheme, band)


class _NullSpan:
    """Zero-cost stand-in for a tracer span on the disabled/strided path."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def run_align_mpi(
    num_ranks: int,
    a: str | np.ndarray,
    b: str | np.ndarray,
    *,
    faults=None,
    timeout: float = 60.0,
    **kwargs,
) -> AlignResult:
    """Launcher: run :func:`align_mpi` on ``num_ranks`` ranks, return root's result.

    ``faults``/``timeout`` go to the runtime (fault-injection runs);
    remaining keyword arguments go to :func:`align_mpi` — including
    ``checkpoint``, which is how a relaunch after a fault resumes.
    """

    def program(comm: Communicator) -> AlignResult | None:
        if comm.rank == 0:
            return align_mpi(comm, a, b, **kwargs)
        return align_mpi(comm, None, None, **kwargs)

    return run_spmd(num_ranks, program, faults=faults, timeout=timeout)[0]
