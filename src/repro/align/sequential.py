"""The sequential alignment oracle: two kernels, one integer answer.

The reference implementation every parallel model is certified against.
Two kernels compute the same banded dynamic-programming matrix:

- ``"numpy"`` — vectorized over **anti-diagonals**: every cell on
  diagonal ``d`` depends only on diagonals ``d-1`` and ``d-2``, so one
  fancy-indexed ``maximum`` fills the whole wavefront at once. This is
  the exact dependency structure the parallel models exploit, expressed
  serially.
- ``"python"`` — the per-cell scalar loop (row-major), calling the same
  :func:`repro.align.scoring.cell_score` recurrence the OpenMP, MPI,
  and executor walkers use. The GIL-bound stand-in for the C starter
  code.

Both kernels produce bit-identical int64 matrices (integer arithmetic
has no rounding, and ``max`` is order-independent), which is what makes
the cross-model conformance suite a pure ``assert_array_equal``.

Tracing: one ``align.score`` span around the sweep and strided
``align.diagonal`` instants, all behind the off-by-default tracer gate
— the idle overhead is bounded under 5% by ``benchmarks/test_align.py``.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import (
    AlignResult,
    ScoringScheme,
    build_result,
    cell_score,
    check_band,
    diagonal_row_range,
    encode_sequence,
    in_band,
    init_matrix,
)
from repro.trace.tracer import get_tracer

__all__ = ["KERNELS", "score_matrix", "align_sequential"]

#: Selectable oracle kernels (both bit-identical; benchmarked head to head).
KERNELS = ("numpy", "python")


def _score_matrix_numpy(
    a_codes: np.ndarray, b_codes: np.ndarray, scheme: ScoringScheme, band: int | None
) -> np.ndarray:
    """Anti-diagonal vectorized sweep (the serial wavefront)."""
    n = a_codes.shape[0]
    m = b_codes.shape[0]
    H = init_matrix(n, m, scheme, band)
    tracer = get_tracer()
    enabled = tracer.enabled
    stride = max(1, (n + m) // 32)
    local = scheme.mode == "local"
    with tracer.span("align.score", category="align", model="sequential", kernel="numpy"):
        for d in range(2, n + m + 1):
            ilo, ihi = diagonal_row_range(d, n, m, band)
            if ilo > ihi:
                continue
            ii = np.arange(ilo, ihi + 1)
            jj = d - ii
            sub = np.where(a_codes[ii - 1] == b_codes[jj - 1], scheme.match, scheme.mismatch)
            best = np.maximum(
                H[ii - 1, jj - 1] + sub,
                np.maximum(H[ii - 1, jj] + scheme.gap, H[ii, jj - 1] + scheme.gap),
            )
            if local:
                np.maximum(best, 0, out=best)
            H[ii, jj] = best
            if enabled and d % stride == 0:
                tracer.instant(
                    "align.diagonal", category="align", model="sequential",
                    d=d, cells=int(ihi - ilo + 1),
                )
        if enabled:
            tracer.metrics.counter("align.diagonals", model="sequential").inc(n + m - 1)
    return H


def _score_matrix_python(
    a_codes: np.ndarray, b_codes: np.ndarray, scheme: ScoringScheme, band: int | None
) -> np.ndarray:
    """Row-major scalar loop over :func:`cell_score` (the teaching kernel)."""
    n = a_codes.shape[0]
    m = b_codes.shape[0]
    H = init_matrix(n, m, scheme, band)
    a = a_codes.tolist()
    b = b_codes.tolist()
    rows = H.tolist()
    tracer = get_tracer()
    with tracer.span("align.score", category="align", model="sequential", kernel="python"):
        for i in range(1, n + 1):
            row = rows[i]
            above = rows[i - 1]
            ai = a[i - 1]
            for j in range(1, m + 1):
                if not in_band(i, j, band):
                    continue
                value, _matched = cell_score(
                    above[j - 1], above[j], row[j - 1], ai == b[j - 1], scheme
                )
                row[j] = value
    return np.asarray(rows, dtype=np.int64)


_KERNEL_FNS = {"numpy": _score_matrix_numpy, "python": _score_matrix_python}


def score_matrix(
    a: str | np.ndarray,
    b: str | np.ndarray,
    *,
    scheme: ScoringScheme | None = None,
    band: int | None = None,
    kernel: str = "numpy",
) -> np.ndarray:
    """The full DP matrix for one pair (the oracle's core).

    Returns the ``(len(a)+1, len(b)+1)`` int64 matrix; out-of-band
    cells hold :data:`~repro.align.scoring.OUT_OF_BAND`.
    """
    scheme = scheme or ScoringScheme()
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    a_codes = encode_sequence(a)
    b_codes = encode_sequence(b)
    check_band(a_codes.shape[0], b_codes.shape[0], band, scheme.mode)
    return _KERNEL_FNS[kernel](a_codes, b_codes, scheme, band)


def align_sequential(
    a: str | np.ndarray,
    b: str | np.ndarray,
    *,
    scheme: ScoringScheme | None = None,
    band: int | None = None,
    kernel: str = "numpy",
) -> AlignResult:
    """The reference alignment: score matrix, statistics, traceback."""
    scheme = scheme or ScoringScheme()
    a_codes = encode_sequence(a)
    b_codes = encode_sequence(b)
    matrix = score_matrix(a_codes, b_codes, scheme=scheme, band=band, kernel=kernel)
    result = build_result(matrix, a_codes, b_codes, scheme, band)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.metrics.counter("align.alignments", model="sequential").inc()
        tracer.metrics.histogram("align.score", model="sequential").observe(result.score)
    return result
