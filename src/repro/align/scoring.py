"""Scoring schemes, band geometry, and the shared alignment mathematics.

Every model in :mod:`repro.align` — sequential, OpenMP wavefront, MPI
block rows, executor tiles — must produce the *same* dynamic-programming
matrix, bit for bit. That is only cheap to certify because everything
score-related is integer arithmetic defined **once**, here:

- :class:`ScoringScheme` — match / mismatch / gap scores plus the
  ``"global"`` (Needleman–Wunsch) vs ``"local"`` (Smith–Waterman) mode;
- :func:`cell_score` — the scalar recurrence every per-cell kernel
  calls (the numpy kernel in :mod:`repro.align.sequential` is its
  vectorized twin, asserted equal in ``tests/align``);
- :func:`in_band` / :func:`diagonal_row_range` — banded-DP geometry,
  shared by the wavefront walkers so they enumerate identical cells;
- :func:`summarize_matrix` — the derived statistics (best cell, match
  events) that the OpenMP rung ladder recomputes cooperatively;
- :func:`traceback_path` / :func:`build_result` — the deterministic
  traceback (diagonal > up > left tie priority) and the
  :class:`AlignResult` container.

Cells outside the band hold the :data:`OUT_OF_BAND` sentinel — a value
so negative it can never win a ``max`` — so a full matrix compare also
certifies that no model computed cells it was not supposed to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "MODES",
    "OUT_OF_BAND",
    "ScoringScheme",
    "AlignResult",
    "encode_sequence",
    "in_band",
    "diagonal_row_range",
    "cell_score",
    "init_matrix",
    "summarize_matrix",
    "traceback_path",
    "build_result",
]

#: Supported alignment modes: Needleman–Wunsch and Smith–Waterman.
MODES = ("global", "local")

#: Sentinel stored in cells the band excludes. A quarter of the int64
#: floor: adding a gap penalty (or a band of them) can never overflow,
#: and no reachable score can ever sink low enough to collide with it.
OUT_OF_BAND = int(np.iinfo(np.int64).min // 4)

#: DNA alphabet shared with :mod:`repro.align.data`.
ALPHABET = "ACGT"


@dataclass(frozen=True)
class ScoringScheme:
    """Integer alignment scores: the whole reason bit-identity is easy.

    ``match`` rewards an equal pair on a diagonal move, ``mismatch``
    scores an unequal pair, ``gap`` is the per-character indel score
    (applied on every up/left move). ``mode`` selects Needleman–Wunsch
    (``"global"``, scores may go negative, traceback from the corner)
    or Smith–Waterman (``"local"``, scores floor at zero, traceback
    from the best cell).
    """

    match: int = 2
    mismatch: int = -1
    gap: int = -2
    mode: str = "global"

    def __post_init__(self) -> None:
        for field_name in ("match", "mismatch", "gap"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(f"{field_name} must be an int, got {value!r}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    def substitution(self, equal: bool) -> int:
        """The diagonal-move score for an (un)equal character pair."""
        return self.match if equal else self.mismatch


@dataclass
class AlignResult:
    """Everything the assignment asks students to report for one alignment.

    ``matrix`` is the full ``(n+1, m+1)`` int64 DP matrix (out-of-band
    cells hold :data:`OUT_OF_BAND`), ``path`` the traceback cell
    sequence from its start corner to its terminal cell, ``aligned_a``
    / ``aligned_b`` the gapped strings it spells. ``best_score`` /
    ``best_cell`` / ``match_events`` are the wavefront statistics the
    OpenMP rung ladder accumulates cooperatively (and the racy rung
    loses updates on).
    """

    score: int
    matrix: np.ndarray
    path: tuple[tuple[int, int], ...]
    aligned_a: str
    aligned_b: str
    best_score: int
    best_cell: tuple[int, int]
    match_events: int


def encode_sequence(seq: str | Sequence[int] | np.ndarray) -> np.ndarray:
    """A sequence as a uint8 code array (ASCII bytes for strings).

    The models compare codes, never Python characters, so the same
    array can be published into a shared-memory segment untouched.
    """
    if isinstance(seq, str):
        if not seq:
            raise ValueError("sequences must be non-empty")
        return np.frombuffer(seq.encode("ascii"), dtype=np.uint8).copy()
    arr = np.asarray(seq, dtype=np.uint8)
    if arr.ndim != 1 or arr.shape[0] == 0:
        raise ValueError("sequences must be non-empty 1-D")
    return arr


def in_band(i: int, j: int, band: int | None) -> bool:
    """True when cell ``(i, j)`` lies within the anti-diagonal band."""
    return band is None or -band <= i - j <= band


def check_band(n: int, m: int, band: int | None, mode: str) -> None:
    """Validate a band half-width against the problem shape.

    A global alignment must reach the ``(n, m)`` corner, so the band
    must cover ``|n - m|``; a local alignment only needs a non-negative
    width.
    """
    if band is None:
        return
    if not isinstance(band, int) or isinstance(band, bool) or band < 0:
        raise ValueError(f"band must be a non-negative int or None, got {band!r}")
    if mode == "global" and band < abs(n - m):
        raise ValueError(
            f"band {band} cannot reach the corner: global alignment of lengths "
            f"{n} x {m} needs band >= {abs(n - m)}"
        )


def diagonal_row_range(d: int, n: int, m: int, band: int | None) -> tuple[int, int]:
    """Interior rows of anti-diagonal ``d``: ``(ilo, ihi)`` inclusive.

    Cell ``(i, d - i)`` is interior when ``1 <= i <= n`` and
    ``1 <= d - i <= m``; the band clips further to ``|2i - d| <= band``.
    Returns an empty range (``ilo > ihi``) when the diagonal has no
    interior cells.
    """
    ilo = max(1, d - m)
    ihi = min(n, d - 1)
    if band is not None:
        ilo = max(ilo, (d - band + 1) // 2)
        ihi = min(ihi, (d + band) // 2)
    return ilo, ihi


def cell_score(diag: int, up: int, left: int, equal: bool, scheme: ScoringScheme) -> tuple[int, bool]:
    """The recurrence for one cell, given its three predecessor values.

    Returns ``(value, match_event)`` where ``match_event`` is True when
    the characters are equal **and** the cell's value equals the
    diagonal-match candidate — the statistic the rung ladder counts.
    Out-of-band predecessors arrive as :data:`OUT_OF_BAND` and lose
    every ``max`` on their own.
    """
    sub = scheme.match if equal else scheme.mismatch
    value = diag + sub
    candidate = up + scheme.gap
    if candidate > value:
        value = candidate
    candidate = left + scheme.gap
    if candidate > value:
        value = candidate
    if scheme.mode == "local" and value < 0:
        value = 0
    return value, (equal and value == diag + scheme.match)


def init_matrix(n: int, m: int, scheme: ScoringScheme, band: int | None) -> np.ndarray:
    """A fresh DP matrix: sentinel everywhere, boundaries filled in band.

    Global mode ladders the gap penalty down row 0 and column 0; local
    mode zeroes them. Out-of-band boundary cells keep the sentinel.
    """
    H = np.full((n + 1, m + 1), OUT_OF_BAND, dtype=np.int64)
    top = np.arange(m + 1, dtype=np.int64) * scheme.gap if scheme.mode == "global" else np.zeros(m + 1, dtype=np.int64)
    side = np.arange(n + 1, dtype=np.int64) * scheme.gap if scheme.mode == "global" else np.zeros(n + 1, dtype=np.int64)
    if band is None:
        H[0, :] = top
        H[:, 0] = side
    else:
        jmax = min(m, band)
        imax = min(n, band)
        H[0, : jmax + 1] = top[: jmax + 1]
        H[: imax + 1, 0] = side[: imax + 1]
    return H


def _interior_band_mask(n: int, m: int, band: int | None) -> np.ndarray:
    """Boolean mask of interior in-band cells over the full matrix shape."""
    mask = np.ones((n + 1, m + 1), dtype=bool)
    mask[0, :] = False
    mask[:, 0] = False
    if band is not None:
        ii = np.arange(n + 1)[:, None]
        jj = np.arange(m + 1)[None, :]
        mask &= np.abs(ii - jj) <= band
    return mask


def summarize_matrix(
    matrix: np.ndarray,
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scheme: ScoringScheme,
    band: int | None,
) -> tuple[int, tuple[int, int], int]:
    """Derived wavefront statistics: ``(best_score, best_cell, match_events)``.

    ``best_cell`` maximizes ``(score, -i, -j)`` over interior in-band
    cells — a strict total order, so every visit order (and every rung
    of the OpenMP ladder) agrees on it. ``match_events`` counts interior
    in-band cells whose value equals the diagonal-match candidate with
    equal characters — exactly :func:`cell_score`'s flag, summed.
    """
    n = matrix.shape[0] - 1
    m = matrix.shape[1] - 1
    mask = _interior_band_mask(n, m, band)
    if not mask.any():
        raise ValueError("alignment has no interior in-band cells")

    scores = np.where(mask, matrix, OUT_OF_BAND)
    best_score = int(scores.max())
    # Row-major argwhere order = smallest i then smallest j among ties.
    bi, bj = np.argwhere(scores == best_score)[0]
    best_cell = (int(bi), int(bj))

    equal = a_codes[:, None] == b_codes[None, :]  # (n, m) char-pair equality
    diag_candidate = matrix[:-1, :-1] + scheme.match
    events = mask[1:, 1:] & equal & (matrix[1:, 1:] == diag_candidate)
    return best_score, best_cell, int(np.count_nonzero(events))


def traceback_path(
    matrix: np.ndarray,
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scheme: ScoringScheme,
    band: int | None,
    *,
    start: tuple[int, int] | None = None,
) -> tuple[tuple[tuple[int, int], ...], str, str]:
    """The deterministic traceback: ``(path, aligned_a, aligned_b)``.

    Moves are chosen with fixed priority **diagonal > up > left** among
    the predecessors that reproduce the cell's value, so the path is a
    pure function of the matrix — any two models with bit-identical
    matrices return bit-identical paths. Global mode walks from
    ``(n, m)`` to ``(0, 0)``; local mode from ``start`` (default: the
    summarized best cell) until it consumes a zero cell.
    """
    n = matrix.shape[0] - 1
    m = matrix.shape[1] - 1
    if scheme.mode == "global":
        i, j = n, m
    else:
        if start is None:
            _, start, _ = summarize_matrix(matrix, a_codes, b_codes, scheme, band)
        i, j = start

    cells = [(i, j)]
    out_a: list[str] = []
    out_b: list[str] = []

    def char_a(row: int) -> str:
        return chr(int(a_codes[row - 1]))

    def char_b(col: int) -> str:
        return chr(int(b_codes[col - 1]))

    while True:
        if scheme.mode == "global":
            if i == 0 and j == 0:
                break
        else:
            if matrix[i, j] == 0 or (i == 0 or j == 0):
                break
        value = int(matrix[i, j])
        moved = False
        if i > 0 and j > 0 and in_band(i - 1, j - 1, band):
            sub = scheme.substitution(int(a_codes[i - 1]) == int(b_codes[j - 1]))
            if value == int(matrix[i - 1, j - 1]) + sub:
                out_a.append(char_a(i))
                out_b.append(char_b(j))
                i, j = i - 1, j - 1
                moved = True
        if not moved and i > 0 and in_band(i - 1, j, band):
            if j == 0 or value == int(matrix[i - 1, j]) + scheme.gap:
                out_a.append(char_a(i))
                out_b.append("-")
                i = i - 1
                moved = True
        if not moved and j > 0 and in_band(i, j - 1, band):
            if i == 0 or value == int(matrix[i, j - 1]) + scheme.gap:
                out_a.append("-")
                out_b.append(char_b(j))
                j = j - 1
                moved = True
        if not moved:
            raise AssertionError(
                f"traceback stuck at cell ({i}, {j}) — matrix is not a valid "
                f"DP table for this scheme/band"
            )
        cells.append((i, j))

    out_a.reverse()
    out_b.reverse()
    return tuple(reversed(cells)), "".join(out_a), "".join(out_b)


def build_result(
    matrix: np.ndarray,
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scheme: ScoringScheme,
    band: int | None,
) -> AlignResult:
    """Assemble the full :class:`AlignResult` from a finished matrix.

    The sequential, MPI, and executor models all finish here; the
    OpenMP model overrides the summarized statistics with the ladder's
    cooperatively accumulated ones (equal on every guarded rung).
    """
    n = matrix.shape[0] - 1
    m = matrix.shape[1] - 1
    best_score, best_cell, match_events = summarize_matrix(
        matrix, a_codes, b_codes, scheme, band
    )
    if scheme.mode == "global":
        score = int(matrix[n, m])
        path, aligned_a, aligned_b = traceback_path(matrix, a_codes, b_codes, scheme, band)
    else:
        score = best_score
        path, aligned_a, aligned_b = traceback_path(
            matrix, a_codes, b_codes, scheme, band, start=best_cell
        )
    return AlignResult(
        score=score,
        matrix=matrix,
        path=path,
        aligned_a=aligned_a,
        aligned_b=aligned_b,
        best_score=best_score,
        best_cell=best_cell,
        match_events=match_events,
    )
