"""`repro.align`: the wavefront DNA sequence alignment assignment family.

The seventh assignment scenario — banded Needleman–Wunsch ("global")
and Smith–Waterman ("local") scoring over seeded synthetic DNA — built
to exercise the one parallel dependency structure the original six
don't: the **anti-diagonal wavefront**. Four models, one integer
answer:

- :func:`align_sequential` — the oracle (numpy + pure-Python kernels);
- :func:`align_openmp` — threads sweep anti-diagonals behind a
  per-diagonal barrier, with the racy→critical→atomic→reduction
  statistics ladder;
- :func:`align_mpi` — block-row ranks exchanging one halo cell per
  diagonal, checkpoint-restartable under fault plans;
- :func:`align_executor` — tiled wavefront over the executor pool with
  published shared-memory segments.

Inputs come from :func:`generate_pair` (block-split ``repro.rng``
streams); everything downstream is a pure function of the seed, which
is why cross-model bit-identity is testable at all (docs/align.md).
"""

from repro.align.data import (
    STREAM_SPACING,
    generate_pair,
    generate_sequence,
    mutate_sequence,
)
from repro.align.executor_align import align_executor, tile_diagonals
from repro.align.mpi_align import AlignCheckpoint, align_mpi, run_align_mpi
from repro.align.openmp_align import ALL_VARIANTS, VARIANTS, align_openmp
from repro.align.scoring import (
    ALPHABET,
    MODES,
    OUT_OF_BAND,
    AlignResult,
    ScoringScheme,
    cell_score,
    diagonal_row_range,
    encode_sequence,
    in_band,
    init_matrix,
    summarize_matrix,
    traceback_path,
)
from repro.align.sequential import KERNELS, align_sequential, score_matrix

__all__ = [
    "ALPHABET",
    "MODES",
    "OUT_OF_BAND",
    "STREAM_SPACING",
    "KERNELS",
    "VARIANTS",
    "ALL_VARIANTS",
    "ScoringScheme",
    "AlignResult",
    "AlignCheckpoint",
    "encode_sequence",
    "in_band",
    "diagonal_row_range",
    "cell_score",
    "init_matrix",
    "summarize_matrix",
    "traceback_path",
    "generate_sequence",
    "mutate_sequence",
    "generate_pair",
    "score_matrix",
    "align_sequential",
    "align_openmp",
    "align_mpi",
    "run_align_mpi",
    "align_executor",
    "tile_diagonals",
]
