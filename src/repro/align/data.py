"""Seeded synthetic DNA sequences from block-split ``repro.rng`` streams.

The alignment assignment needs input pairs that are (a) reproducible
from a single integer seed on every model and machine, and (b) related
enough that the optimal alignment is interesting — a mutated copy, not
two independent random strings. Both come from one
:class:`~repro.rng.streams.SharedSequence` per seed, carved into
*block-split streams*: stream ``s`` owns draws
``[s * STREAM_SPACING, (s+1) * STREAM_SPACING)`` of the shared LCG
sequence, the same windowing discipline as the traffic simulation and
the sanitizer's schedule streams, so no two streams can ever overlap.

Stream 0 spells the reference sequence; stream 1 drives the mutation
channel (two draws per base: one event draw, one replacement-base
draw). Everything downstream — scoring, wavefronts, benchmarks — is a
pure function of these strings.
"""

from __future__ import annotations

from repro.align.scoring import ALPHABET
from repro.rng.lcg import KNUTH_LCG, LcgParams
from repro.rng.streams import SharedSequence
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["STREAM_SPACING", "generate_sequence", "mutate_sequence", "generate_pair"]

#: Draws reserved per block-split stream: room for a million-base
#: sequence (or half that many mutation events) per stream, far beyond
#: any teaching-scale instance, with streams provably disjoint.
STREAM_SPACING = 2**21


def _stream(seed: int, stream: int, count: int, params: LcgParams) -> list[float]:
    require_nonnegative_int("stream", stream)
    if count > STREAM_SPACING:
        raise ValueError(
            f"stream draw budget exceeded: {count} draws > spacing {STREAM_SPACING}"
        )
    sequence = SharedSequence(params, seed)
    return list(sequence.draws(stream * STREAM_SPACING, count))


def generate_sequence(
    seed: int, length: int, *, stream: int = 0, params: LcgParams = KNUTH_LCG
) -> str:
    """A reproducible DNA string: one uniform draw per base.

    ``stream`` selects the block-split window of the seed's shared
    sequence, so ``generate_sequence(seed, n, stream=0)`` and the
    mutation channel (stream 1) can never consume the same draws.
    """
    require_positive_int("length", length)
    draws = _stream(seed, stream, length, params)
    base_count = len(ALPHABET)
    return "".join(ALPHABET[min(int(u * base_count), base_count - 1)] for u in draws)


def mutate_sequence(
    seed: int,
    sequence: str,
    *,
    sub_rate: float = 0.1,
    indel_rate: float = 0.05,
    stream: int = 1,
    params: LcgParams = KNUTH_LCG,
) -> str:
    """A noisy copy of ``sequence``: substitutions, deletions, insertions.

    Consumes exactly two draws per input base from the given block-split
    stream — an event draw and a replacement-base draw — whether or not
    the event fires, so the output is a pure function of
    ``(seed, sequence, rates)`` and never depends on earlier decisions.
    Event draw ``u``: ``u < indel_rate/2`` deletes the base,
    ``u < indel_rate`` inserts a random base before it,
    ``u < indel_rate + sub_rate`` substitutes it.
    """
    if not sequence:
        raise ValueError("sequences must be non-empty")
    if not 0.0 <= sub_rate <= 1.0 or not 0.0 <= indel_rate <= 1.0:
        raise ValueError("sub_rate and indel_rate must be within [0, 1]")
    if sub_rate + indel_rate > 1.0:
        raise ValueError("sub_rate + indel_rate must not exceed 1")
    draws = _stream(seed, stream, 2 * len(sequence), params)
    base_count = len(ALPHABET)
    out: list[str] = []
    for index, base in enumerate(sequence):
        event = draws[2 * index]
        pick = ALPHABET[min(int(draws[2 * index + 1] * base_count), base_count - 1)]
        if event < indel_rate / 2.0:
            continue  # deletion
        if event < indel_rate:
            out.append(pick)  # insertion before the kept base
            out.append(base)
        elif event < indel_rate + sub_rate:
            out.append(pick)  # substitution (may silently match)
        else:
            out.append(base)
    if not out:
        # Pathological all-deleted draw sequence: keep the first base so
        # the pair stays alignable (sequences must be non-empty).
        out.append(sequence[0])
    return "".join(out)


def generate_pair(
    seed: int,
    length: int,
    *,
    sub_rate: float = 0.1,
    indel_rate: float = 0.05,
    params: LcgParams = KNUTH_LCG,
) -> tuple[str, str]:
    """The canonical test instance: a reference and its mutated copy.

    Stream 0 generates the reference, stream 1 mutates it. The pair is
    what the conformance suite, the fault tests, and the benchmarks all
    align.
    """
    reference = generate_sequence(seed, length, stream=0, params=params)
    mutated = mutate_sequence(
        seed, reference, sub_rate=sub_rate, indel_rate=indel_rate, stream=1, params=params
    )
    return reference, mutated
