"""OpenMP-model wavefront alignment: the race-repair ladder on a new shape.

K-means taught the ladder on a *reduction* dependency (every thread
updates the same accumulators each iteration). Alignment teaches it on a
**wavefront**: anti-diagonal ``d`` of the DP matrix depends on diagonals
``d-1`` and ``d-2``, so the team sweeps diagonals in order — rows of
each diagonal split statically across threads, one ``ctx.barrier()``
per diagonal making the cross-diagonal reads race-free. The matrix
itself is therefore correct on *every* rung; what the ladder guards are
the shared wavefront statistics (the match-event counter and the
best-cell box) each thread flushes per diagonal:

- ``"racy"`` — rung zero: a :class:`~repro.openmp.RacyCell` counter and
  a bare read-compare-write on the best box. The sanitizer flags both
  cells (``align.matches``, ``align.best``) on every schedule and loses
  counter updates on adverse ones. Never use it for answers.
- ``"critical"`` — one named critical section guards both statistics;
- ``"atomic"`` — per-statistic :class:`~repro.openmp.Atomic` cells;
- ``"reduction"`` — thread-private statistics merged in thread order
  after the join (contention-free and deterministic).

Per-cell matrix accesses carry ``align.H[i,j]`` sanitizer annotations
(hoisted behind one :func:`~repro.sanitizer.runtime.get_sanitizer` read,
so the uninstrumented path pays a ``None`` test per cell), which is what
lets ``tests/sanitizer/test_align_certification.py`` certify the barrier
structure itself, not just the statistics.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import (
    OUT_OF_BAND,
    AlignResult,
    ScoringScheme,
    cell_score,
    check_band,
    diagonal_row_range,
    encode_sequence,
    init_matrix,
    traceback_path,
)
from repro.openmp import Atomic, RacyCell, parallel_region
from repro.sanitizer.runtime import annotate_read, annotate_write, get_sanitizer, preemption_point
from repro.trace.tracer import get_tracer
from repro.util.partition import block_bounds
from repro.util.validation import require_positive_int

__all__ = ["align_openmp", "VARIANTS", "ALL_VARIANTS"]

#: The correct rungs of the ladder (safe for answers and conformance sweeps).
VARIANTS = ("critical", "atomic", "reduction")
#: Every rung including the intentionally-broken one the detector must flag.
ALL_VARIANTS = ("racy",) + VARIANTS


def _better(candidate: tuple, incumbent: tuple) -> bool:
    """Strict total order on (score, i, j): max score, then smallest i, j.

    Matches :func:`repro.align.scoring.summarize_matrix`'s row-major
    argmax exactly, so every visit order agrees on the winner.
    """
    return (candidate[0], -candidate[1], -candidate[2]) > (
        incumbent[0], -incumbent[1], -incumbent[2]
    )


def align_openmp(
    a: str | np.ndarray,
    b: str | np.ndarray,
    *,
    num_threads: int = 4,
    variant: str = "reduction",
    scheme: ScoringScheme | None = None,
    band: int | None = None,
) -> AlignResult:
    """Shared-memory wavefront alignment with the chosen race-repair rung."""
    require_positive_int("num_threads", num_threads)
    if variant not in ALL_VARIANTS:
        raise ValueError(f"variant must be one of {ALL_VARIANTS}, got {variant!r}")
    scheme = scheme or ScoringScheme()
    a_codes = encode_sequence(a)
    b_codes = encode_sequence(b)
    n = a_codes.shape[0]
    m = b_codes.shape[0]
    check_band(n, m, band, scheme.mode)
    H = init_matrix(n, m, scheme, band)
    a_list = a_codes.tolist()
    b_list = b_codes.tolist()

    # Shared wavefront statistics — the cells the ladder is about.
    if variant == "racy":
        matches_cell = RacyCell(0, name="align.matches")
    else:
        matches_cell = Atomic(0, name="align.matches")
    best_box: list = [OUT_OF_BAND, 0, 0]  # (score, i, j) under _better's order
    best_cell_atomic = (
        Atomic((OUT_OF_BAND, 0, 0), name="align.best") if variant == "atomic" else None
    )
    thread_matches = [0] * num_threads if variant == "reduction" else None
    thread_best = (
        [(OUT_OF_BAND, 0, 0)] * num_threads if variant == "reduction" else None
    )

    def body(ctx) -> None:
        san = get_sanitizer()
        tid = ctx.thread_id
        for d in range(2, n + m + 1):
            ilo, ihi = diagonal_row_range(d, n, m, band)
            count = ihi - ilo + 1
            if count > 0:
                lo, hi = block_bounds(count, ctx.num_threads, tid)
                diag_matches = 0
                diag_best = (OUT_OF_BAND, 0, 0)
                for offset in range(lo, hi):
                    i = ilo + offset
                    j = d - i
                    if san is not None:
                        san.mem_read(f"align.H[{i - 1},{j - 1}]", "align.wavefront:diag")
                        san.mem_read(f"align.H[{i - 1},{j}]", "align.wavefront:up")
                        san.mem_read(f"align.H[{i},{j - 1}]", "align.wavefront:left")
                    value, matched = cell_score(
                        H[i - 1, j - 1], H[i - 1, j], H[i, j - 1],
                        a_list[i - 1] == b_list[j - 1], scheme,
                    )
                    value = int(value)
                    if san is not None:
                        san.mem_write(f"align.H[{i},{j}]", "align.wavefront:write")
                    H[i, j] = value
                    if matched:
                        diag_matches += 1
                    if _better((value, i, j), diag_best):
                        diag_best = (value, i, j)

                if hi > lo:  # this thread owned cells on the diagonal: flush
                    if variant == "racy":
                        # Rung zero: the counter loses updates in RacyCell's
                        # read→write window; the best box in ours.
                        matches_cell.add(diag_matches)
                        annotate_read("align.best", "align.racy:best:read")
                        incumbent = (best_box[0], best_box[1], best_box[2])
                        if _better(diag_best, incumbent):
                            preemption_point()
                            annotate_write("align.best", "align.racy:best:write")
                            best_box[0], best_box[1], best_box[2] = diag_best
                    elif variant == "critical":
                        with ctx.critical("align.stats"):
                            annotate_read("align.best", "align.critical:best")
                            if _better(diag_best, tuple(best_box)):
                                annotate_write("align.best", "align.critical:best")
                                best_box[0], best_box[1], best_box[2] = diag_best
                            matches_cell.add(diag_matches)
                    elif variant == "atomic":
                        matches_cell.add(diag_matches)
                        best_cell_atomic.update(
                            lambda old, cand=diag_best: cand if _better(cand, old) else old
                        )
                    else:
                        # Reduction: thread-private partials, merged post-join.
                        annotate_write(f"align.stats:t{tid}", "align.reduction:partial")
                        thread_matches[tid] += diag_matches
                        if _better(diag_best, thread_best[tid]):
                            thread_best[tid] = diag_best
            ctx.barrier()

    tracer = get_tracer()
    with tracer.span(
        "align.score", category="align", model="openmp",
        variant=variant, num_threads=num_threads,
    ):
        parallel_region(num_threads, body)
    if tracer.enabled:
        tracer.metrics.counter("align.diagonals", model="openmp").inc(n + m - 1)
        tracer.metrics.counter("align.alignments", model="openmp").inc()

    if variant == "reduction":
        match_events = 0
        best = (OUT_OF_BAND, 0, 0)
        for t in range(num_threads):  # deterministic thread-order merge
            annotate_read(f"align.stats:t{t}", "align.reduction:merge")
            match_events += thread_matches[t]
            if _better(thread_best[t], best):
                best = thread_best[t]
    elif variant == "atomic":
        match_events = matches_cell.value
        best = best_cell_atomic.value
    else:
        match_events = matches_cell.value
        best = (best_box[0], best_box[1], best_box[2])
    best_score = int(best[0])
    best_cell = (int(best[1]), int(best[2]))

    if scheme.mode == "global":
        score = int(H[n, m])
        path, aligned_a, aligned_b = traceback_path(H, a_codes, b_codes, scheme, band)
    else:
        score = best_score
        path, aligned_a, aligned_b = traceback_path(
            H, a_codes, b_codes, scheme, band, start=best_cell
        )
    return AlignResult(
        score=score,
        matrix=H,
        path=path,
        aligned_a=aligned_a,
        aligned_b=aligned_b,
        best_score=best_score,
        best_cell=best_cell,
        match_events=int(match_events),
    )
