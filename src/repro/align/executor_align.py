"""Executor-backend alignment: a tiled wavefront over the PR-9 pool.

The accelerator-flavoured rung of the assignment: the DP matrix is cut
into square tiles, and tiles on the same **tile anti-diagonal** are
independent — each tile's dependencies (its up, left, and up-left
neighbour tiles) live on earlier tile diagonals. So the driver sweeps
tile diagonals in order, farming each one's tiles over
:mod:`repro.core.executor` workers with one ``map`` per diagonal (the
map return is the wavefront barrier).

The data plane is communication-avoiding, exactly like the k-means
executor model: both sequence code arrays are *published* once through
:meth:`Executor.publish` (read-only shared-memory segments on the
process backend), and the score matrix is a single ``writable=True``
published segment that every tile task updates in place over disjoint
cell ranges. What crosses the process boundary per task is a tile
coordinate out and a cell count back — ``O(1)`` bytes however large the
matrix is.

Because each cell is a pure integer function of its predecessors, the
finished matrix is independent of tile size, worker count, and backend
— bit-identical to the sequential oracle, which is what
``tests/integration/test_model_conformance.py`` asserts across
``serial``/``thread``/``process``.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.align.scoring import (
    AlignResult,
    ScoringScheme,
    build_result,
    cell_score,
    check_band,
    encode_sequence,
    in_band,
    init_matrix,
)
from repro.core.executor import BACKENDS, DataRef, Executor, get_executor
from repro.trace.tracer import get_tracer
from repro.util.validation import require_positive_int

__all__ = ["align_executor", "tile_diagonals"]


def _tile_in_band(
    i0: int, i1: int, j0: int, j1: int, band: int | None
) -> bool:
    """True when tile ``rows [i0,i1] x cols [j0,j1]`` intersects the band."""
    if band is None:
        return True
    return i0 - j1 <= band and j0 - i1 <= band


def tile_diagonals(
    n: int, m: int, tile: int, band: int | None
) -> list[list[tuple[int, int]]]:
    """Tile coordinates grouped by anti-diagonal, band-pruned.

    Tile ``(ti, tj)`` covers interior rows ``1 + ti*tile ..`` and
    columns ``1 + tj*tile ..``; diagonal ``td = ti + tj``. Tiles whose
    whole extent lies outside the band are dropped (their cells keep the
    sentinel), so a narrow band costs ``O(n * band)`` work, not
    ``O(n * m)``.
    """
    nt_i = -(-n // tile)
    nt_j = -(-m // tile)
    diagonals: list[list[tuple[int, int]]] = []
    for td in range(nt_i + nt_j - 1):
        wave: list[tuple[int, int]] = []
        for ti in range(max(0, td - nt_j + 1), min(nt_i - 1, td) + 1):
            tj = td - ti
            i0 = 1 + ti * tile
            i1 = min(n, i0 + tile - 1)
            j0 = 1 + tj * tile
            j1 = min(m, j0 + tile - 1)
            if _tile_in_band(i0, i1, j0, j1, band):
                wave.append((ti, tj))
        diagonals.append(wave)
    return diagonals


def _tile_task(
    a_ref: DataRef,
    b_ref: DataRef,
    h_ref: DataRef,
    scheme: ScoringScheme,
    band: int | None,
    tile: int,
    shape: tuple[int, int],
    _index: int,
    coord: tuple[int, int],
) -> int:
    """One pooled tile: read shared predecessors, write shared scores.

    Module-level (bound with :func:`functools.partial`) so the payload
    pickles and the process backend keeps its persistent pool. Row-major
    order inside the tile respects the intra-tile dependencies; the
    inter-tile ones are guaranteed finished by the per-diagonal map
    barrier. Returns the number of in-band cells it computed.
    """
    n, m = shape
    ti, tj = coord
    a = a_ref.array()
    b = b_ref.array()
    H = h_ref.array()
    i0 = 1 + ti * tile
    i1 = min(n, i0 + tile - 1)
    j0 = 1 + tj * tile
    j1 = min(m, j0 + tile - 1)
    cells = 0
    for i in range(i0, i1 + 1):
        ai = a[i - 1]
        for j in range(j0, j1 + 1):
            if not in_band(i, j, band):
                continue
            value, _matched = cell_score(
                H[i - 1, j - 1], H[i - 1, j], H[i, j - 1], ai == b[j - 1], scheme
            )
            H[i, j] = value
            cells += 1
    return cells


def align_executor(
    a: str | np.ndarray,
    b: str | np.ndarray,
    *,
    scheme: ScoringScheme | None = None,
    band: int | None = None,
    num_workers: int = 4,
    backend: "str | Executor" = "thread",
    tile: int = 32,
) -> AlignResult:
    """Tiled wavefront alignment over an executor backend.

    ``tile`` fixes the decomposition (and thus the task set)
    independently of ``backend`` and ``num_workers``; the integer
    arithmetic makes the finished matrix identical regardless.
    ``backend`` also accepts a live :class:`Executor` — pass a warm
    :class:`ProcessExecutor` to amortize its pool across calls (the
    executor is then the caller's to close).
    """
    scheme = scheme or ScoringScheme()
    if not isinstance(backend, Executor) and backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    require_positive_int("num_workers", num_workers)
    require_positive_int("tile", tile)
    a_codes = encode_sequence(a)
    b_codes = encode_sequence(b)
    n = a_codes.shape[0]
    m = b_codes.shape[0]
    check_band(n, m, band, scheme.mode)

    waves = tile_diagonals(n, m, tile, band)
    owns_executor = not isinstance(backend, Executor)
    executor = get_executor(backend, num_workers)
    backend_name = executor.name
    tracer = get_tracer()
    stride = max(1, len(waves) // 16)

    a_ref = b_ref = h_ref = None
    try:
        a_ref = executor.publish(a_codes)
        b_ref = executor.publish(b_codes)
        h_ref = executor.publish(init_matrix(n, m, scheme, band), writable=True)
        task = functools.partial(
            _tile_task, a_ref, b_ref, h_ref, scheme, band, tile, (n, m)
        )
        tiles_done = 0
        with tracer.span(
            "align.score", category="align", model="executor",
            backend=backend_name, tile=tile, num_workers=num_workers,
        ):
            for td, wave in enumerate(waves):
                if not wave:
                    continue
                cell_counts = executor.map(task, wave)  # the wavefront barrier
                tiles_done += len(wave)
                if tracer.enabled and td % stride == 0:
                    tracer.instant(
                        "align.diagonal", category="align", model="executor",
                        d=td, tiles=len(wave), cells=int(sum(cell_counts)),
                    )
        H = np.array(h_ref.array())  # outlive the segment
        if tracer.enabled:
            tracer.metrics.counter("align.tiles", model="executor").inc(tiles_done)
            tracer.metrics.counter("align.alignments", model="executor").inc()
    finally:
        for ref in (h_ref, b_ref, a_ref):
            if ref is not None:
                executor.unpublish(ref)
        if owns_executor:
            executor.close()

    return build_result(H, a_codes, b_codes, scheme, band)
