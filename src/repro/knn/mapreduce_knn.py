"""kNN over MapReduce-MPI — the assignment's parallel implementation.

The typical implementation the paper describes, reproduced phase for
phase:

1. *all processes load the query set* (assumed small) — here the
   queries argument is shared by every rank;
2. *the database file is parsed in parallel by multiple map tasks which
   compute distances and generate (key: query, value: (distance,
   class)) pairs* — ``map_tasks`` over database chunks;
3. *a reduction phase takes the pairs for each query, extracts the
   nearest neighbors' classes, and generates (key: query, value:
   predicted_class) pairs* — ``collate`` + ``reduce``.

The paper's communication optimization — "adding local reductions at
each rank … noticeably improves the communication cost" — is the
``local_combine`` flag: before the shuffle each rank keeps only its k
best candidates per query, shrinking shuffled pairs from Θ(n) to
Θ(ranks · q · k).
"""

from __future__ import annotations

import numpy as np

from repro.knn.brute import majority_vote
from repro.knn.heap import top_k_smallest
from repro.mapreduce import KeyValue, MapReduce
from repro.mpi import Communicator, run_spmd
from repro.util.partition import block_bounds
from repro.util.validation import require_positive_int

__all__ = ["knn_mapreduce", "run_knn_mapreduce"]


def knn_mapreduce(
    comm: Communicator,
    database: np.ndarray,
    labels: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    local_combine: bool = True,
    num_map_tasks: int | None = None,
) -> tuple[np.ndarray, int]:
    """SPMD kNN over MapReduce: call from every rank of ``comm``.

    ``database``/``labels``/``queries`` are the full inputs, identical on
    every rank (the SPMD shared-input convention; map tasks each parse
    their own chunk, which is the parallel-IO teaching point). Returns
    ``(predictions, shuffled_pairs)`` — predictions on every rank, plus
    the global shuffle volume for the communication ablation.
    """
    require_positive_int("k", k)
    database = np.asarray(database, dtype=float)
    labels = np.asarray(labels)
    queries = np.asarray(queries, dtype=float)
    if database.shape[0] == 0:
        raise ValueError("database is empty")
    if database.shape[1] != queries.shape[1]:
        raise ValueError("database/query dimensionality mismatch")
    k_eff = min(k, database.shape[0])

    ntasks = num_map_tasks or comm.size
    mr = MapReduce(comm)

    def map_chunk(task: int, kv: KeyValue) -> None:
        # "Parse" this map task's chunk of the database file.
        lo, hi = block_bounds(database.shape[0], ntasks, task)
        if lo == hi:
            return
        chunk = database[lo:hi]
        chunk_labels = labels[lo:hi]
        # One fused distance computation: chunk × queries.
        d2 = (
            np.einsum("ij,ij->i", chunk, chunk)[:, None]
            - 2.0 * (chunk @ queries.T)
            + np.einsum("ij,ij->i", queries, queries)[None, :]
        )
        for qi in range(queries.shape[0]):
            col = d2[:, qi]
            if local_combine:
                # Keep this task's k best now; fewer pairs downstream.
                for dist, li in top_k_smallest(col.tolist(), None, k_eff):
                    kv.add(qi, (dist, int(chunk_labels[li])))
            else:
                for li in range(chunk.shape[0]):
                    kv.add(qi, (float(col[li]), int(chunk_labels[li])))

    mr.map_tasks(ntasks, map_chunk)
    shuffled = mr.aggregate()
    mr.convert()

    def pick_class(query_id: int, candidates: list, kv: KeyValue) -> None:
        nearest = top_k_smallest([d for d, _ in candidates], [c for _, c in candidates], k_eff)
        kv.add(
            query_id,
            majority_vote(
                np.array([c for _, c in nearest]), np.array([d for d, _ in nearest])
            ),
        )

    mr.reduce(pick_class)
    pairs = mr.gather_all()
    predictions = np.empty(queries.shape[0], dtype=np.int64)
    seen = np.zeros(queries.shape[0], dtype=bool)
    for qi, cls in pairs:
        predictions[qi] = cls
        seen[qi] = True
    if not np.all(seen):
        raise AssertionError("some queries produced no prediction")
    return predictions, shuffled


def run_knn_mapreduce(
    num_ranks: int,
    database: np.ndarray,
    labels: np.ndarray,
    queries: np.ndarray,
    k: int,
    **kwargs,
) -> tuple[np.ndarray, int]:
    """Launcher: run :func:`knn_mapreduce` on ``num_ranks`` SPMD ranks.

    Returns rank 0's (predictions, shuffled-pair count).
    """
    results = run_spmd(
        num_ranks, knn_mapreduce, database, labels, queries, k, **kwargs
    )
    return results[0]
