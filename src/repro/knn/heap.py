"""Bounded max-heap selection of the k smallest items.

The paper cites CLRS for the complexity argument: selecting the k
nearest of n candidates by sorting costs Θ(n log n), while a max-heap
of capacity k costs Θ(n log k) — a real win because k ≪ n. The heap
keeps the *largest* of the current k best at its root; a new candidate
either beats the root (replace, sift down) or is discarded in O(1).

Both selection strategies are exported so the ablation benchmark can
measure the gap the assignment teaches.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.util.validation import require_positive_int

__all__ = ["BoundedMaxHeap", "top_k_smallest", "top_k_by_sort"]


class BoundedMaxHeap:
    """Max-heap of fixed capacity holding the k smallest (key, payload) seen.

    Keys must be mutually comparable (distances, here). Ties at the
    boundary keep the incumbent, which makes selection deterministic
    given a deterministic candidate order.
    """

    __slots__ = ("capacity", "_items")

    def __init__(self, capacity: int) -> None:
        self.capacity = require_positive_int("capacity", capacity)
        self._items: list[tuple[float, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def worst_key(self) -> float:
        """Largest key currently kept (inf while under capacity)."""
        return self._items[0][0] if len(self._items) == self.capacity else float("inf")

    def offer(self, key: float, payload: Any = None) -> bool:
        """Consider a candidate; returns True if it was kept."""
        items = self._items
        if len(items) < self.capacity:
            items.append((key, payload))
            self._sift_up(len(items) - 1)
            return True
        if key < items[0][0]:
            items[0] = (key, payload)
            self._sift_down(0)
            return True
        return False

    def _sift_up(self, i: int) -> None:
        items = self._items
        while i > 0:
            parent = (i - 1) // 2
            if items[i][0] > items[parent][0]:
                items[i], items[parent] = items[parent], items[i]
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        items = self._items
        n = len(items)
        while True:
            left, right = 2 * i + 1, 2 * i + 2
            largest = i
            if left < n and items[left][0] > items[largest][0]:
                largest = left
            if right < n and items[right][0] > items[largest][0]:
                largest = right
            if largest == i:
                break
            items[i], items[largest] = items[largest], items[i]
            i = largest

    def sorted_items(self) -> list[tuple[float, Any]]:
        """Kept items, ascending by key (non-destructive)."""
        return sorted(self._items, key=lambda kv: kv[0])

    def items(self) -> list[tuple[float, Any]]:
        """Kept items in heap order (non-destructive)."""
        return list(self._items)


def top_k_smallest(
    keys: Sequence[float], payloads: Sequence[Any] | None, k: int
) -> list[tuple[float, Any]]:
    """The k smallest (key, payload) pairs, ascending — heap-based, Θ(n log k)."""
    heap = BoundedMaxHeap(k)
    if payloads is None:
        for i, key in enumerate(keys):
            heap.offer(key, i)
    else:
        if len(payloads) != len(keys):
            raise ValueError("keys and payloads must have equal length")
        for key, payload in zip(keys, payloads):
            heap.offer(key, payload)
    return heap.sorted_items()


def top_k_by_sort(
    keys: Sequence[float], payloads: Sequence[Any] | None, k: int
) -> list[tuple[float, Any]]:
    """The k smallest pairs by full sort — the Θ(n log n) strawman."""
    require_positive_int("k", k)
    if payloads is None:
        pairs = [(key, i) for i, key in enumerate(keys)]
    else:
        if len(payloads) != len(keys):
            raise ValueError("keys and payloads must have equal length")
        pairs = list(zip(keys, payloads))
    pairs.sort(key=lambda kv: kv[0])
    return pairs[:k]
