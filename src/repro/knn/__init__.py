"""k-Nearest-Neighbor classification — Peachy assignment §2.

The assignment: classify ``q`` query points against a database of ``n``
pre-classified ``d``-dimensional points, first sequentially, then with
MapReduce-MPI for speedup. The full adaptation space from the paper is
implemented:

- :mod:`repro.knn.heap` — bounded max-heap top-k selection, giving the
  Θ(q·n·(d + log k)) sequential algorithm (vs Θ(n log n) by sorting);
- :mod:`repro.knn.brute` — the sequential classifier, in both a
  loop/heap form (the starter code students receive) and a vectorized
  numpy form (the performance baseline);
- :mod:`repro.knn.mapreduce_knn` — the MapReduce-MPI parallelization:
  map tasks parse database chunks and emit (query, (distance, class))
  pairs; reduction extracts nearest classes — with the paper's
  local-reduction communication optimization as a toggle;
- :mod:`repro.knn.kdtree` / :mod:`repro.knn.quadtree` — the
  Data-Structures variant: space-partitioning trees that prune boxes by
  a distance lower bound;
- :mod:`repro.knn.data` — synthetic stand-ins for the datahub.io
  classification datasets (banknote-style, leaf-style, Gaussian blobs);
- :mod:`repro.knn.wordcount` — the Word Counting warm-up problem.
"""

from repro.knn.application import classification_report, confusion_matrix, format_report
from repro.knn.brute import KNNClassifier, knn_predict_heap, knn_predict_vectorized, majority_vote
from repro.knn.data import make_banknote_like, make_blobs, make_leaf_like, train_test_split
from repro.knn.heap import BoundedMaxHeap, top_k_by_sort, top_k_smallest
from repro.knn.kdtree import KDTree
from repro.knn.mapreduce_knn import knn_mapreduce, run_knn_mapreduce
from repro.knn.parallel_variants import knn_device, knn_mpi, knn_openmp, run_knn_mpi
from repro.knn.quadtree import QuadTree
from repro.knn.wordcount import run_wordcount, wordcount, wordcount_spark

__all__ = [
    "BoundedMaxHeap",
    "top_k_smallest",
    "top_k_by_sort",
    "KNNClassifier",
    "knn_predict_heap",
    "knn_predict_vectorized",
    "majority_vote",
    "knn_mapreduce",
    "run_knn_mapreduce",
    "knn_openmp",
    "knn_mpi",
    "run_knn_mpi",
    "knn_device",
    "KDTree",
    "QuadTree",
    "make_blobs",
    "make_banknote_like",
    "make_leaf_like",
    "train_test_split",
    "wordcount",
    "wordcount_spark",
    "run_wordcount",
    "confusion_matrix",
    "classification_report",
    "format_report",
]
