"""Word Counting — the MapReduce warm-up shipped with the kNN assignment.

"These [materials] include a classic problem, Word Counting, to
familiarize the students with programming using MapReduce MPI"
(paper §2). The implementation is the canonical two-phase pipeline:
map emits (word, 1), collate groups by word, reduce sums.
"""

from __future__ import annotations

import re

from repro.mapreduce import KeyValue, MapReduce
from repro.mpi import Communicator, run_spmd

__all__ = ["tokenize", "wordcount", "wordcount_files", "run_wordcount", "run_wordcount_files"]

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def tokenize(line: str) -> list[str]:
    """Lowercased word tokens of one text line."""
    return [w.lower() for w in _WORD_RE.findall(line)]


def wordcount(
    comm: Communicator,
    lines: list[str],
    *,
    local_combine: bool = False,
    backend: str = "serial",
    num_workers: int = 4,
) -> dict[str, int]:
    """SPMD word count over ``lines`` (identical on all ranks).

    Every rank returns the complete counts. ``local_combine`` applies
    the per-rank pre-sum before the shuffle — the same optimization the
    kNN step teaches, introduced here on the warm-up problem.
    ``backend`` picks the executor each rank fans its local map/reduce
    loops over (serial/thread/process; results bit-identical).
    """
    mr = MapReduce(comm, backend=backend, num_workers=num_workers)

    def emit_words(line: str, kv: KeyValue) -> None:
        for word in tokenize(line):
            kv.add(word, 1)

    mr.map_items(lines, emit_words)
    if local_combine:
        mr.local_combine(lambda word, ones, kv: kv.add(word, sum(ones)))
    mr.collate()
    mr.reduce(lambda word, counts, kv: kv.add(word, sum(counts)))
    return dict(mr.gather_all())


def wordcount_files(
    comm: Communicator,
    paths: list,
    *,
    local_combine: bool = True,
    backend: str = "serial",
    num_workers: int = 4,
) -> dict[str, int]:
    """SPMD word count over *files*: each rank reads and maps its share.

    The parallel-IO form of the warm-up — the file list is shared but
    each file's bytes are read by exactly one rank.
    """
    mr = MapReduce(comm, backend=backend, num_workers=num_workers)

    def emit_words(_path: str, text: str, kv: KeyValue) -> None:
        for line in text.splitlines():
            for word in tokenize(line):
                kv.add(word, 1)

    mr.map_files(paths, emit_words)
    if local_combine:
        mr.local_combine(lambda word, ones, kv: kv.add(word, sum(ones)))
    mr.collate()
    mr.reduce(lambda word, counts, kv: kv.add(word, sum(counts)))
    return dict(mr.gather_all())


def run_wordcount(num_ranks: int, lines: list[str], **kwargs) -> dict[str, int]:
    """Launcher: word-count ``lines`` on ``num_ranks`` SPMD ranks."""
    return run_spmd(num_ranks, wordcount, lines, **kwargs)[0]


def run_wordcount_files(num_ranks: int, paths: list, **kwargs) -> dict[str, int]:
    """Launcher: word-count files on ``num_ranks`` SPMD ranks (parallel IO)."""
    return run_spmd(num_ranks, wordcount_files, paths, **kwargs)[0]
