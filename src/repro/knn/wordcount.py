"""Word Counting — the MapReduce warm-up shipped with the kNN assignment.

"These [materials] include a classic problem, Word Counting, to
familiarize the students with programming using MapReduce MPI"
(paper §2). The implementation is the canonical two-phase pipeline:
map emits (word, 1), collate groups by word, reduce sums.
"""

from __future__ import annotations

import re

from repro.mapreduce import KeyValue, MapReduce
from repro.mpi import Communicator, run_spmd

__all__ = [
    "tokenize",
    "wordcount",
    "wordcount_files",
    "wordcount_spark",
    "run_wordcount",
    "run_wordcount_files",
]

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def tokenize(line: str) -> list[str]:
    """Lowercased word tokens of one text line."""
    return [w.lower() for w in _WORD_RE.findall(line)]


def wordcount(
    comm: Communicator,
    lines: list[str],
    *,
    local_combine: bool = False,
    backend: str = "serial",
    num_workers: int = 4,
) -> dict[str, int]:
    """SPMD word count over ``lines`` (identical on all ranks).

    Every rank returns the complete counts. ``local_combine`` applies
    the per-rank pre-sum before the shuffle — the same optimization the
    kNN step teaches, introduced here on the warm-up problem.
    ``backend`` picks the executor each rank fans its local map/reduce
    loops over (serial/thread/process; results bit-identical).
    """
    mr = MapReduce(comm, backend=backend, num_workers=num_workers)

    def emit_words(line: str, kv: KeyValue) -> None:
        for word in tokenize(line):
            kv.add(word, 1)

    mr.map_items(lines, emit_words)
    if local_combine:
        mr.local_combine(lambda word, ones, kv: kv.add(word, sum(ones)))
    mr.collate()
    mr.reduce(lambda word, counts, kv: kv.add(word, sum(counts)))
    return dict(mr.gather_all())


def wordcount_files(
    comm: Communicator,
    paths: list,
    *,
    local_combine: bool = True,
    backend: str = "serial",
    num_workers: int = 4,
) -> dict[str, int]:
    """SPMD word count over *files*: each rank reads and maps its share.

    The parallel-IO form of the warm-up — the file list is shared but
    each file's bytes are read by exactly one rank.
    """
    mr = MapReduce(comm, backend=backend, num_workers=num_workers)

    def emit_words(_path: str, text: str, kv: KeyValue) -> None:
        for line in text.splitlines():
            for word in tokenize(line):
                kv.add(word, 1)

    mr.map_files(paths, emit_words)
    if local_combine:
        mr.local_combine(lambda word, ones, kv: kv.add(word, sum(ones)))
    mr.collate()
    mr.reduce(lambda word, counts, kv: kv.add(word, sum(counts)))
    return dict(mr.gather_all())


def wordcount_spark(
    lines: list[str],
    *,
    num_workers: int = 4,
    num_partitions: int | None = None,
    local_combine: bool = True,
    memory_budget: int | None = None,
    spill_compress: bool = False,
    verify_reads: bool = False,
    fault_plan=None,
) -> dict[str, int]:
    """The warm-up on the Spark engine: flatMap → (word, 1) → sum by key.

    The exemplar workload for the engine's robustness knobs:
    ``memory_budget`` (bytes) bounds resident shuffle memory and spills
    the excess to disk (optionally zlib-compressed via
    ``spill_compress``), ``verify_reads`` checksums every shuffle
    fetch, and ``fault_plan`` runs the count under deterministic fault
    injection — all bit-identical to the plain in-memory run.
    ``local_combine`` toggles map-side combining (the same shuffle-
    shrinking optimization the MPI variant teaches).
    """
    from repro.spark import SparkContext

    with SparkContext(
        num_workers,
        name="wordcount-spark",
        fault_plan=fault_plan,
        memory_budget=memory_budget,
        spill_compress=spill_compress,
        verify_reads=verify_reads,
    ) as sc:
        pairs = sc.parallelize(lines, num_partitions).flat_map(tokenize).map(lambda w: (w, 1))
        if local_combine:
            counts = pairs.reduce_by_key(lambda a, b: a + b)
        else:
            counts = pairs.group_by_key().map_values(sum)
        return dict(counts.collect())


def run_wordcount(num_ranks: int, lines: list[str], **kwargs) -> dict[str, int]:
    """Launcher: word-count ``lines`` on ``num_ranks`` SPMD ranks."""
    return run_spmd(num_ranks, wordcount, lines, **kwargs)[0]


def run_wordcount_files(num_ranks: int, paths: list, **kwargs) -> dict[str, int]:
    """Launcher: word-count files on ``num_ranks`` SPMD ranks (parallel IO)."""
    return run_spmd(num_ranks, wordcount_files, paths, **kwargs)[0]
