"""Sequential kNN classification — the assignment's starter algorithm.

Two implementations of the same Θ(q·n·(d + log k)) method:

- :func:`knn_predict_heap` — the explicit-loop form matching the C++
  starter code students are given (distance loop + bounded heap);
- :func:`knn_predict_vectorized` — the numpy form used as the timing
  baseline (one fused distance computation per query block, then
  ``argpartition`` for the k smallest — the idiomatic scientific-Python
  translation).

Both resolve class votes through :func:`majority_vote` with the same
deterministic tie-break, so their predictions agree exactly.
"""

from __future__ import annotations

import numpy as np

from repro.knn.heap import BoundedMaxHeap
from repro.util.validation import require_positive_int

__all__ = [
    "majority_vote",
    "weighted_vote",
    "knn_predict_heap",
    "knn_predict_vectorized",
    "KNNClassifier",
]


def majority_vote(labels: np.ndarray, distances: np.ndarray | None = None) -> int:
    """The most frequent label; ties broken by smaller summed distance,
    then by smaller label value (fully deterministic).

    ``labels``/``distances`` are the k nearest neighbors' classes and
    distances for one query.
    """
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("majority_vote needs at least one neighbor")
    counts: dict[int, int] = {}
    dist_sum: dict[int, float] = {}
    for i, lab in enumerate(labels):
        lab = int(lab)
        counts[lab] = counts.get(lab, 0) + 1
        if distances is not None:
            dist_sum[lab] = dist_sum.get(lab, 0.0) + float(distances[i])
    best = min(
        counts,
        key=lambda lab: (-counts[lab], dist_sum.get(lab, 0.0), lab),
    )
    return best


def weighted_vote(labels: np.ndarray, distances: np.ndarray, *, eps: float = 1e-9) -> int:
    """Inverse-distance-weighted vote: near neighbors count for more.

    Each neighbor contributes weight ``1 / (distance + eps)`` to its
    class; the heaviest class wins, ties broken by smaller label. With a
    zero-distance neighbor (an exact duplicate of the query) that class
    wins outright, which is the behaviour one wants from a memorizing
    classifier.
    """
    labels = np.asarray(labels)
    distances = np.asarray(distances, dtype=float)
    if labels.size == 0:
        raise ValueError("weighted_vote needs at least one neighbor")
    if labels.shape != distances.shape:
        raise ValueError("labels and distances must align")
    weights: dict[int, float] = {}
    for lab, dist in zip(labels, distances):
        lab = int(lab)
        weights[lab] = weights.get(lab, 0.0) + 1.0 / (float(dist) + eps)
    return min(weights, key=lambda lab: (-weights[lab], lab))


def _check_inputs(database: np.ndarray, labels: np.ndarray, queries: np.ndarray, k: int) -> int:
    require_positive_int("k", k)
    if database.ndim != 2 or queries.ndim != 2:
        raise ValueError("database and queries must be 2-D (points × features)")
    if database.shape[1] != queries.shape[1]:
        raise ValueError(
            f"dimension mismatch: database is {database.shape[1]}-d, queries are {queries.shape[1]}-d"
        )
    if labels.shape != (database.shape[0],):
        raise ValueError("labels must be one per database point")
    if database.shape[0] == 0:
        raise ValueError("database is empty")
    return min(k, database.shape[0])


def knn_predict_heap(
    database: np.ndarray, labels: np.ndarray, queries: np.ndarray, k: int
) -> np.ndarray:
    """Loop-and-heap kNN: the literal starter-code algorithm.

    For each query: one pass over the database maintaining a bounded
    max-heap of the k nearest, then a majority vote.
    """
    database = np.asarray(database, dtype=float)
    queries = np.asarray(queries, dtype=float)
    labels = np.asarray(labels)
    k = _check_inputs(database, labels, queries, k)
    out = np.empty(queries.shape[0], dtype=np.int64)
    for qi in range(queries.shape[0]):
        heap = BoundedMaxHeap(k)
        q = queries[qi]
        for di in range(database.shape[0]):
            diff = database[di] - q
            dist2 = float(diff @ diff)
            heap.offer(dist2, int(labels[di]))
        nearest = heap.sorted_items()
        out[qi] = majority_vote(
            np.array([lab for _, lab in nearest]),
            np.array([d for d, _ in nearest]),
        )
    return out


def knn_predict_vectorized(
    database: np.ndarray,
    labels: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    block: int = 256,
    vote: str = "majority",
) -> np.ndarray:
    """Vectorized kNN: blocked distance matrices + ``argpartition``.

    Queries are processed in blocks of ``block`` to bound the distance
    matrix to ``block × n`` (be easy on the memory, per the course's
    optimization guidance) while keeping the inner loops in BLAS.
    """
    database = np.asarray(database, dtype=float)
    queries = np.asarray(queries, dtype=float)
    labels = np.asarray(labels)
    k = _check_inputs(database, labels, queries, k)
    require_positive_int("block", block)
    if vote not in ("majority", "distance"):
        raise ValueError(f"vote must be 'majority' or 'distance', got {vote!r}")

    n = database.shape[0]
    db_sq = np.einsum("ij,ij->i", database, database)
    out = np.empty(queries.shape[0], dtype=np.int64)
    for lo in range(0, queries.shape[0], block):
        chunk = queries[lo : lo + block]
        # ||q - d||^2 = ||q||^2 - 2 q·d + ||d||^2 ; the q² term is
        # constant per row and irrelevant to the argmin, so skip it.
        dist2 = db_sq[None, :] - 2.0 * (chunk @ database.T)
        if k < n:
            idx = np.argpartition(dist2, k - 1, axis=1)[:, :k]
        else:
            idx = np.tile(np.arange(n), (chunk.shape[0], 1))
        for row in range(chunk.shape[0]):
            neighbors = idx[row]
            # Recover true squared distances for the deterministic tie-break.
            diffs = database[neighbors] - chunk[row]
            true_d2 = np.einsum("ij,ij->i", diffs, diffs)
            if vote == "distance":
                out[lo + row] = weighted_vote(labels[neighbors], np.sqrt(true_d2))
            else:
                out[lo + row] = majority_vote(labels[neighbors], true_d2)
    return out


class KNNClassifier:
    """The user-facing classifier: fit a database, predict query classes.

    ``method`` picks the engine: ``"vectorized"`` (default), ``"heap"``
    (reference loop), or ``"kdtree"`` (space-partitioning variant).
    """

    def __init__(self, k: int = 5, method: str = "vectorized") -> None:
        self.k = require_positive_int("k", k)
        if method not in ("vectorized", "heap", "kdtree"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method
        self._database: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._tree = None

    def fit(self, database: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        """Store (and for kdtree, index) the classified database."""
        database = np.asarray(database, dtype=float)
        labels = np.asarray(labels)
        if database.ndim != 2:
            raise ValueError("database must be 2-D")
        if labels.shape != (database.shape[0],):
            raise ValueError("labels must be one per database point")
        self._database = database
        self._labels = labels
        if self.method == "kdtree":
            from repro.knn.kdtree import KDTree

            self._tree = KDTree.build(database, labels)
        return self

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predicted class per query point."""
        if self._database is None:
            raise RuntimeError("call fit() before predict()")
        queries = np.asarray(queries, dtype=float)
        if self.method == "heap":
            return knn_predict_heap(self._database, self._labels, queries, self.k)
        if self.method == "kdtree":
            assert self._tree is not None
            return self._tree.predict(queries, self.k)
        return knn_predict_vectorized(self._database, self._labels, queries, self.k)

    def score(self, queries: np.ndarray, true_labels: np.ndarray) -> float:
        """Fraction of queries classified correctly."""
        pred = self.predict(queries)
        true_labels = np.asarray(true_labels)
        if true_labels.shape != pred.shape:
            raise ValueError("true_labels must be one per query")
        return float(np.mean(pred == true_labels))
