"""Region quadtree for 2-D spatial search — the paper's named example.

The Data-Structures variant explicitly mentions quad-trees (citing
Shaffer). A region quadtree recursively splits a square into four
quadrants; nearest-neighbor search prunes quadrants whose box lower
bound exceeds the current k-th best, the same bound as the k-d tree but
with the classic fixed 4-way spatial decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.knn.brute import majority_vote
from repro.knn.heap import BoundedMaxHeap
from repro.util.validation import require_positive_int

__all__ = ["QuadTree"]

_LEAF_CAPACITY = 8


@dataclass
class _QNode:
    cx: float
    cy: float
    half: float
    indices: list[int] = field(default_factory=list)
    children: "list[_QNode] | None" = None  # NW, NE, SW, SE

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """Point quadtree over 2-D classified points."""

    def __init__(self, points: np.ndarray, labels: np.ndarray, leaf_capacity: int = _LEAF_CAPACITY) -> None:
        points = np.asarray(points, dtype=float)
        labels = np.asarray(labels)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("QuadTree requires 2-D points (n × 2)")
        if points.shape[0] == 0:
            raise ValueError("QuadTree requires at least one point")
        if labels.shape != (points.shape[0],):
            raise ValueError("labels must be one per point")
        require_positive_int("leaf_capacity", leaf_capacity)
        self._points = points
        self._labels = labels
        self._leaf_capacity = leaf_capacity
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        center = (lo + hi) / 2.0
        half = float(max((hi - lo).max() / 2.0, 1e-12))
        self._root = _QNode(float(center[0]), float(center[1]), half)
        self.last_nodes_visited = 0
        for i in range(points.shape[0]):
            self._insert(self._root, i, depth=0)

    def _insert(self, node: _QNode, index: int, depth: int) -> None:
        if node.is_leaf:
            node.indices.append(index)
            # Depth cap guards against many coincident points.
            if len(node.indices) > self._leaf_capacity and depth < 32:
                self._subdivide(node)
                members, node.indices = node.indices, []
                for m in members:
                    self._insert(self._child_for(node, m), m, depth + 1)
            return
        self._insert(self._child_for(node, index), index, depth + 1)

    def _subdivide(self, node: _QNode) -> None:
        h = node.half / 2.0
        node.children = [
            _QNode(node.cx - h, node.cy + h, h),  # NW
            _QNode(node.cx + h, node.cy + h, h),  # NE
            _QNode(node.cx - h, node.cy - h, h),  # SW
            _QNode(node.cx + h, node.cy - h, h),  # SE
        ]

    def _child_for(self, node: _QNode, index: int) -> _QNode:
        assert node.children is not None
        x, y = self._points[index]
        east = x > node.cx
        north = y > node.cy
        return node.children[(0 if north else 2) + (1 if east else 0)]

    @staticmethod
    def _box_min_dist2(node: _QNode, q: np.ndarray) -> float:
        dx = max(abs(q[0] - node.cx) - node.half, 0.0)
        dy = max(abs(q[1] - node.cy) - node.half, 0.0)
        return dx * dx + dy * dy

    def query(self, q: np.ndarray, k: int) -> list[tuple[float, int]]:
        """The k nearest (squared-distance, point-index) pairs, ascending."""
        require_positive_int("k", k)
        q = np.asarray(q, dtype=float)
        heap = BoundedMaxHeap(min(k, self._points.shape[0]))
        visited = 0

        def descend(node: _QNode) -> None:
            nonlocal visited
            visited += 1
            if self._box_min_dist2(node, q) >= heap.worst_key:
                return
            if node.is_leaf:
                for idx in node.indices:
                    diff = self._points[idx] - q
                    heap.offer(float(diff @ diff), idx)
                return
            assert node.children is not None
            # Nearest quadrant first to tighten the bound early.
            order = sorted(node.children, key=lambda c: self._box_min_dist2(c, q))
            for child in order:
                descend(child)

        descend(self._root)
        self.last_nodes_visited = visited
        return heap.sorted_items()

    def predict(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Majority-vote classification per 2-D query point."""
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise ValueError("queries must be n × 2")
        out = np.empty(queries.shape[0], dtype=np.int64)
        for i in range(queries.shape[0]):
            nearest = self.query(queries[i], k)
            out[i] = majority_vote(
                self._labels[[idx for _, idx in nearest]],
                np.array([d for d, _ in nearest]),
            )
        return out
