"""Synthetic classification datasets shaped like the assignment's sources.

The assignment points students at datahub.io's 91 classification
instances — "from leaf identification to detecting forged bank notes".
Offline, we generate statistically similar stand-ins:

- :func:`make_blobs` — the generic d-dimensional Gaussian-cluster set
  (the 40-dimensional timing instance in §2 is this shape);
- :func:`make_banknote_like` — 2 classes, 4 features, partially
  overlapping (banknote-authentication-like);
- :func:`make_leaf_like` — many classes, moderate dimensionality, small
  per-class counts (leaf-identification-like).

All generators take a seed and are deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["make_blobs", "make_banknote_like", "make_leaf_like", "train_test_split"]


def make_blobs(
    n: int,
    d: int,
    num_classes: int,
    seed: int = 0,
    *,
    spread: float = 1.0,
    separation: float = 4.0,
) -> tuple[np.ndarray, np.ndarray]:
    """``n`` points in ``d`` dimensions from ``num_classes`` Gaussian blobs.

    Class centers are drawn uniformly in a cube of side ``separation``
    per dimension; within-class noise is N(0, spread²). Returns
    (points, labels) with classes interleaved (point ``i`` has class
    ``i % num_classes``) so any prefix is class-balanced.
    """
    require_positive_int("n", n)
    require_positive_int("d", d)
    require_positive_int("num_classes", num_classes)
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-separation, separation, size=(num_classes, d))
    labels = np.arange(n) % num_classes
    points = centers[labels] + rng.normal(0.0, spread, size=(n, d))
    return points, labels.astype(np.int64)


def make_banknote_like(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Two overlapping classes, four features (variance/skew/kurtosis/entropy-ish).

    The class distributions overlap enough that kNN accuracy is high but
    not trivial (≈0.9–0.99 for reasonable k), matching the real dataset's
    character.
    """
    require_positive_int("n", n)
    rng = np.random.default_rng(seed)
    labels = (np.arange(n) % 2).astype(np.int64)
    genuine = np.array([2.0, 4.0, -1.0, 0.5])
    forged = np.array([-1.5, -3.0, 2.0, -0.7])
    centers = np.where(labels[:, None] == 0, genuine, forged)
    scales = np.array([2.0, 3.5, 2.5, 1.5])
    points = centers + rng.normal(0.0, 1.0, size=(n, 4)) * scales
    return points, labels


def make_leaf_like(
    n: int, num_species: int = 30, d: int = 14, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Many-class, shape-descriptor-style data (leaf-identification-like).

    ``num_species`` classes over ``d`` morphological features; classes
    are tighter than in :func:`make_blobs` so the problem rewards larger
    databases, like the real leaf set.
    """
    require_positive_int("num_species", num_species)
    points, labels = make_blobs(
        n, d, num_species, seed=seed, spread=0.6, separation=3.0
    )
    return points, labels


def train_test_split(
    points: np.ndarray, labels: np.ndarray, test_fraction: float = 0.25, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (train_x, train_y, test_x, test_y)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    points = np.asarray(points)
    labels = np.asarray(labels)
    if labels.shape != (points.shape[0],):
        raise ValueError("labels must be one per point")
    n = points.shape[0]
    require_nonnegative_int("n", n)
    order = np.random.default_rng(seed).permutation(n)
    n_test = max(1, int(round(n * test_fraction))) if n > 1 else 0
    test_idx, train_idx = order[:n_test], order[n_test:]
    return points[train_idx], labels[train_idx], points[test_idx], labels[test_idx]
