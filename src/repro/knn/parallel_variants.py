"""kNN in other programming models — the §2 adaptation suggestions.

"The assignment could be adapted to shared memory programming models
like OpenMP, other distributed memory programming models like MPI, or
accelerator programming models like CUDA" (paper §2). Three adaptations:

- :func:`knn_openmp` — queries worksharing-split over a thread team
  (each thread classifies a contiguous block with the vectorized
  engine; static or dynamic schedule);
- :func:`knn_mpi` — plain MPI (no MapReduce): queries scattered, each
  rank classifies its block against the replicated database, results
  gathered;
- :func:`knn_device` — CUDA-style: a grid of fixed-size query blocks;
  each block computes its distance tile with one fused kernel
  (coalesced reads of the database) and selects with ``argpartition``.

All three must agree exactly with :func:`repro.knn.knn_predict_vectorized`.
"""

from __future__ import annotations

import numpy as np

from repro.knn.brute import knn_predict_vectorized
from repro.mpi import Communicator, run_spmd
from repro.openmp import parallel_region
from repro.util.partition import block_bounds
from repro.util.validation import require_positive_int

__all__ = ["knn_openmp", "knn_mpi", "run_knn_mpi", "knn_device"]


def knn_openmp(
    database: np.ndarray,
    labels: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    num_threads: int = 4,
    schedule: str = "static",
    chunk: int = 32,
) -> np.ndarray:
    """Shared-memory kNN: the query loop is the parallel loop.

    The database is shared read-only (the OpenMP default for enclosing
    scope); each thread writes only its own slice of the output — no
    races, which is why this is the gentle first adaptation.
    """
    queries = np.asarray(queries, dtype=float)
    out = np.empty(queries.shape[0], dtype=np.int64)

    def body(ctx) -> None:
        if schedule == "static":
            lo, hi = ctx.static_bounds(queries.shape[0])
            if lo < hi:
                out[lo:hi] = knn_predict_vectorized(database, labels, queries[lo:hi], k)
        else:
            # Dynamic: grab chunks of queries as threads free up.
            for start in ctx.for_range(
                (queries.shape[0] + chunk - 1) // chunk, schedule=schedule
            ):
                lo = start * chunk
                hi = min(lo + chunk, queries.shape[0])
                out[lo:hi] = knn_predict_vectorized(database, labels, queries[lo:hi], k)

    parallel_region(num_threads, body)
    return out


def knn_mpi(
    comm: Communicator,
    database: np.ndarray,
    labels: np.ndarray,
    queries: np.ndarray | None,
    k: int,
) -> np.ndarray | None:
    """Plain-MPI kNN: database replicated, queries scattered, results gathered.

    ``queries`` is needed on the root only. Root returns the full
    prediction vector; other ranks return None.
    """
    if comm.rank == 0:
        if queries is None:
            raise ValueError("root must supply the query set")
        queries = np.asarray(queries, dtype=float)
        chunks = [
            queries[slice(*block_bounds(queries.shape[0], comm.size, r))]
            for r in range(comm.size)
        ]
    else:
        chunks = None
    my_queries = comm.scatter(chunks, root=0)
    my_preds = (
        knn_predict_vectorized(database, labels, my_queries, k)
        if my_queries.shape[0]
        else np.empty(0, dtype=np.int64)
    )
    gathered = comm.gather(my_preds, root=0)
    if comm.rank != 0:
        return None
    return np.concatenate(gathered)


def run_knn_mpi(
    num_ranks: int,
    database: np.ndarray,
    labels: np.ndarray,
    queries: np.ndarray,
    k: int,
) -> np.ndarray:
    """Launcher for :func:`knn_mpi`."""

    def program(comm: Communicator):
        return knn_mpi(comm, database, labels, queries if comm.rank == 0 else None, k)

    return run_spmd(num_ranks, program)[0]


def knn_device(
    database: np.ndarray,
    labels: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    block_size: int = 128,
) -> np.ndarray:
    """CUDA-structured kNN: one distance tile per query block.

    Equivalent to the vectorized engine with an explicit grid/block
    decomposition; kept separate so the grid structure (and its
    invariance under ``block_size``) is testable.
    """
    require_positive_int("block_size", block_size)
    queries = np.asarray(queries, dtype=float)
    out = np.empty(queries.shape[0], dtype=np.int64)
    num_blocks = (queries.shape[0] + block_size - 1) // block_size
    for b in range(num_blocks):
        lo = b * block_size
        hi = min(lo + block_size, queries.shape[0])
        out[lo:hi] = knn_predict_vectorized(
            database, labels, queries[lo:hi], k, block=block_size
        )
    return out
