"""Classifier evaluation: confusion matrices and reports.

The adaptation where students "see a full application" (paper §2) needs
more than an accuracy number: which classes confuse which, per-class
precision/recall — the outputs a real classification deliverable
reports. Pure-numpy implementations, shared by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["confusion_matrix", "ClassReport", "classification_report", "format_report"]


def confusion_matrix(
    true_labels: np.ndarray, predicted: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """``M[i, j]`` = count of class-``i`` samples predicted as class ``j``."""
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    if true_labels.shape != predicted.shape:
        raise ValueError("true and predicted labels must have equal length")
    if true_labels.size and (true_labels.min() < 0 or predicted.min() < 0):
        raise ValueError("labels must be non-negative")
    k = num_classes or (int(max(true_labels.max(initial=0), predicted.max(initial=0))) + 1)
    matrix = np.zeros((k, k), dtype=np.int64)
    np.add.at(matrix, (true_labels, predicted), 1)
    return matrix


@dataclass(frozen=True)
class ClassReport:
    """Per-class precision / recall / F1 and support."""

    label: int
    precision: float
    recall: float
    f1: float
    support: int


def classification_report(
    true_labels: np.ndarray, predicted: np.ndarray, num_classes: int | None = None
) -> list[ClassReport]:
    """Per-class metrics derived from the confusion matrix.

    Undefined ratios (no predictions / no support) report 0.0, the
    usual convention.
    """
    matrix = confusion_matrix(true_labels, predicted, num_classes)
    reports = []
    for c in range(matrix.shape[0]):
        tp = matrix[c, c]
        predicted_c = matrix[:, c].sum()
        actual_c = matrix[c, :].sum()
        precision = tp / predicted_c if predicted_c else 0.0
        recall = tp / actual_c if actual_c else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        reports.append(
            ClassReport(
                label=c,
                precision=float(precision),
                recall=float(recall),
                f1=float(f1),
                support=int(actual_c),
            )
        )
    return reports


def format_report(reports: list[ClassReport]) -> str:
    """The familiar fixed-width metrics table."""
    lines = [f"{'class':>6} {'precision':>10} {'recall':>8} {'f1':>6} {'support':>8}"]
    for r in reports:
        lines.append(
            f"{r.label:>6} {r.precision:>10.3f} {r.recall:>8.3f} {r.f1:>6.3f} {r.support:>8}"
        )
    total = sum(r.support for r in reports)
    if total:
        weighted_f1 = sum(r.f1 * r.support for r in reports) / total
        lines.append(f"{'':>6} {'weighted f1':>10} {weighted_f1:>8.3f} {'':>6} {total:>8}")
    return "\n".join(lines)
