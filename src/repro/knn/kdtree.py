"""k-d tree — the Data-Structures adaptation of the kNN assignment.

"For Data Structures, the assignment could focus on space partitioning
trees … for a 'box' of the search space, compute a lower bound on the
distance from its points to a query point and decide whether to examine
any point in the box" (paper §2). That is precisely this traversal: a
branch is pruned when the squared distance from the query to the node's
bounding box exceeds the current k-th best distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knn.brute import majority_vote
from repro.knn.heap import BoundedMaxHeap
from repro.util.validation import require_positive_int

__all__ = ["KDTree"]

_LEAF_SIZE = 16


@dataclass
class _Node:
    lo: np.ndarray          # bounding box, per-dimension minima
    hi: np.ndarray          # bounding box, per-dimension maxima
    indices: np.ndarray | None = None  # leaf: member point indices
    axis: int = -1
    split: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


def _box_min_dist2(lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
    """Squared distance from q to the nearest point of the box — the
    pruning lower bound."""
    below = np.maximum(lo - q, 0.0)
    above = np.maximum(q - hi, 0.0)
    gap = below + above
    return float(gap @ gap)


class KDTree:
    """Median-split k-d tree over a classified point database."""

    def __init__(self, root: _Node, points: np.ndarray, labels: np.ndarray) -> None:
        self._root = root
        self._points = points
        self._labels = labels
        #: Nodes visited by the most recent query (pruning observability).
        self.last_nodes_visited = 0

    @classmethod
    def build(cls, points: np.ndarray, labels: np.ndarray, leaf_size: int = _LEAF_SIZE) -> "KDTree":
        """Build by recursive median splits on the widest dimension."""
        points = np.asarray(points, dtype=float)
        labels = np.asarray(labels)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array")
        if labels.shape != (points.shape[0],):
            raise ValueError("labels must be one per point")
        require_positive_int("leaf_size", leaf_size)

        def make(indices: np.ndarray) -> _Node:
            sub = points[indices]
            lo, hi = sub.min(axis=0), sub.max(axis=0)
            if len(indices) <= leaf_size or np.all(lo == hi):
                return _Node(lo=lo, hi=hi, indices=indices)
            axis = int(np.argmax(hi - lo))
            order = indices[np.argsort(sub[:, axis], kind="stable")]
            mid = len(order) // 2
            split = float(points[order[mid], axis])
            return _Node(
                lo=lo,
                hi=hi,
                axis=axis,
                split=split,
                left=make(order[:mid]),
                right=make(order[mid:]),
            )

        return cls(make(np.arange(points.shape[0])), points, labels)

    def query(self, q: np.ndarray, k: int) -> list[tuple[float, int]]:
        """The k nearest (squared-distance, point-index) pairs, ascending."""
        require_positive_int("k", k)
        q = np.asarray(q, dtype=float)
        heap = BoundedMaxHeap(min(k, self._points.shape[0]))
        visited = 0

        def descend(node: _Node) -> None:
            nonlocal visited
            visited += 1
            if _box_min_dist2(node.lo, node.hi, q) >= heap.worst_key:
                return  # the whole box cannot beat the current k-th best
            if node.is_leaf:
                sub = self._points[node.indices]
                d2 = np.einsum("ij,ij->i", sub - q, sub - q)
                for dist, idx in zip(d2, node.indices):
                    heap.offer(float(dist), int(idx))
                return
            # Visit the child containing q first to shrink worst_key early.
            first, second = node.left, node.right
            if q[node.axis] >= node.split:
                first, second = second, first
            descend(first)  # type: ignore[arg-type]
            descend(second)  # type: ignore[arg-type]

        descend(self._root)
        self.last_nodes_visited = visited
        return heap.sorted_items()

    def predict(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Majority-vote classification per query."""
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self._points.shape[1]:
            raise ValueError("queries must be 2-D with matching dimensionality")
        out = np.empty(queries.shape[0], dtype=np.int64)
        for i in range(queries.shape[0]):
            nearest = self.query(queries[i], k)
            out[i] = majority_vote(
                self._labels[[idx for _, idx in nearest]],
                np.array([d for d, _ in nearest]),
            )
        return out

    @property
    def num_points(self) -> int:
        """Database size."""
        return self._points.shape[0]
