"""repro.serve: a fault-hardened multi-tenant job service over the engines.

The serving tier above :mod:`repro.spark`, :mod:`repro.mapreduce`, and
:mod:`repro.pipeline`: tenants submit jobs against a shared worker
pool and the service keeps the tenancy honest — bounded fair-share
admission with explicit backpressure (:mod:`repro.serve.admission`),
per-tenant circuit breakers (:mod:`repro.serve.circuit`), deadlines and
cooperative wall timeouts, deterministic retry backoff, structured load
shedding (:mod:`repro.serve.scheduler`), scheduler-level fault
injection (:mod:`repro.serve.faults`), and a seeded traffic generator
plus soak harness (:mod:`repro.serve.traffic`) that proves every
non-shed job bit-identical to its solo run. See docs/serve.md.
"""

from repro.serve.admission import FairShareQueue, QueueFullError
from repro.serve.circuit import CircuitBreaker, CircuitOpenError
from repro.serve.faults import (
    PoisonedJobError,
    ServeFaultEvent,
    ServeFaultPlan,
    ServeFaultReport,
    ServeInjectionRecord,
)
from repro.serve.scheduler import (
    DeadlineExpired,
    JobCancelled,
    JobContext,
    JobHandle,
    JobService,
    ServeMetrics,
    ShedRecord,
    ShedReport,
)
from repro.serve.traffic import (
    SoakResult,
    TrafficJob,
    generate_traffic,
    job_body,
    max_min_share,
    run_soak,
    run_solo,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExpired",
    "FairShareQueue",
    "JobCancelled",
    "JobContext",
    "JobHandle",
    "JobService",
    "PoisonedJobError",
    "QueueFullError",
    "ServeFaultEvent",
    "ServeFaultPlan",
    "ServeFaultReport",
    "ServeInjectionRecord",
    "ServeMetrics",
    "ShedRecord",
    "ShedReport",
    "SoakResult",
    "TrafficJob",
    "generate_traffic",
    "job_body",
    "max_min_share",
    "run_soak",
    "run_solo",
]
