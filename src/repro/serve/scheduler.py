"""The multi-tenant job service: workers, deadlines, shedding, recovery.

:class:`JobService` is the long-lived layer the ROADMAP's north star
asks for: tenants submit jobs (arbitrary callables, typically closures
over the Spark/MapReduce engine entry points) and a fixed worker pool
runs them against shared state, under the full robustness kit:

- admission through a bounded :class:`~repro.serve.admission.FairShareQueue`
  (max-min fair dequeue, explicit :class:`~repro.serve.admission.QueueFullError`
  backpressure with retry-after hints — or, with ``shed_on_full=True``,
  graceful degradation: the lowest-priority queued job is load-shed to
  admit a higher-priority one, every eviction recorded in the
  structured :class:`ShedReport`);
- per-tenant :class:`~repro.serve.circuit.CircuitBreaker`\\ s so a
  poisoned tenant stops consuming capacity on doomed retries;
- per-job **deadlines** (queue residency bound: a job that cannot start
  in time fails fast with :class:`DeadlineExpired`, it never wastes a
  worker) and **wall timeouts** (running bound: a watchdog sets the
  job's cancel token and the engines unwind cooperatively at the next
  task boundary — :class:`~repro.spark.context.SparkJobCancelled` —
  with no partial accumulator commits and spill directories reclaimed);
- bounded retries on the shared deterministic
  :class:`~repro.util.backoff.BackoffPolicy` (jitter stream reseeded
  per submission, so concurrent retriers de-correlate reproducibly);
- a :class:`~repro.serve.faults.ServeFaultPlan` injecting
  scheduler-level faults — poisoned jobs, worker-pool losses (the job
  is requeued, the worker respawns after a backoff), queue stalls —
  with the evidence in a :class:`~repro.serve.faults.ServeFaultReport`.

Observability follows the house pattern: an always-on
:class:`ServeMetrics` counter block plus, when the process tracer is
enabled, one ``serve.j<submission>`` trace lane per job (span ``job``
with tenant/name/priority) and instants for every shed, cancel, and
injected fault (docs/observability.md lists the ``serve.*`` counters).

Determinism contract: the *scheduling* is concurrent (wall-clock
interleaving picks which worker runs which job), but every job's
*result* is a pure function of its own closure — the engines underneath
guarantee bit-identical results regardless of worker, attempt, or
co-tenant load. The soak suite (``repro.serve.traffic``) asserts
exactly that: every non-shed job equals its solo run bit-for-bit.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.serve.admission import FairShareQueue, QueueFullError
from repro.serve.circuit import CircuitBreaker, CircuitOpenError
from repro.serve.faults import (
    PoisonedJobError,
    ServeFaultPlan,
    ServeFaultReport,
    ServeInjectionRecord,
)
from repro.trace.tracer import get_tracer
from repro.util.backoff import BackoffPolicy
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = [
    "JOB_STATES",
    "DeadlineExpired",
    "JobCancelled",
    "JobContext",
    "JobHandle",
    "JobService",
    "ServeMetrics",
    "ShedRecord",
    "ShedReport",
]

#: Terminal and transient job states.
JOB_STATES = (
    "queued", "running", "done", "failed", "cancelled", "timeout", "expired", "shed",
)
_TERMINAL_STATES = frozenset(JOB_STATES[2:])


class JobCancelled(RuntimeError):
    """A job observed its cancel token between engine calls and unwound."""

    def __init__(self, job: str) -> None:
        super().__init__(f"job {job} was cancelled")
        self.job = job


class DeadlineExpired(RuntimeError):
    """A job's queue-residency deadline passed before a worker picked it up."""

    def __init__(self, job: str, deadline: float, waited: float) -> None:
        super().__init__(
            f"job {job} missed its {deadline:.3f}s start deadline "
            f"(queued {waited:.3f}s); it was never started"
        )
        self.job = job
        self.deadline = deadline
        self.waited = waited


@dataclass
class ServeMetrics:
    """Always-on service counters (the :class:`~repro.spark.context.JobMetrics` idiom)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    shed: int = 0
    cancelled: int = 0
    timeouts: int = 0
    expired: int = 0
    rejected_full: int = 0
    rejected_circuit: int = 0
    extra: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def bump(self, key: str, n: int = 1) -> None:
        """Thread-safely add ``n`` to the ``extra[key]`` counter."""
        with self._lock:
            self.extra[key] = self.extra.get(key, 0) + n


@dataclass(frozen=True)
class ShedRecord:
    """One load-shed job: who lost, what, and why."""

    tenant: str
    name: str
    priority: int
    submission: int
    reason: str


@dataclass
class ShedReport:
    """Structured evidence of every job the service dropped on purpose.

    Load shedding is graceful degradation, not loss: nothing leaves the
    queue silently. Thread-safe mutator; read after ``drain``.
    """

    records: list[ShedRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record(self, rec: ShedRecord) -> None:
        with self._lock:
            self.records.append(rec)

    def by_tenant(self) -> dict[str, int]:
        """Shed counts per tenant."""
        with self._lock:
            out: dict[str, int] = {}
            for rec in self.records:
                out[rec.tenant] = out.get(rec.tenant, 0) + 1
            return out

    def summary(self) -> str:
        with self._lock:
            lines = [f"ShedReport: {len(self.records)} job(s) shed"]
            for rec in sorted(self.records, key=lambda r: r.submission):
                lines.append(
                    f"  - #{rec.submission} {rec.tenant}/{rec.name} "
                    f"(priority {rec.priority}): {rec.reason}"
                )
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)


class JobContext:
    """What a running job sees: its identity, cancel token, engine factory.

    Job bodies take one argument — this context — and should create
    their engine drivers through it (:meth:`spark_context`) so that
    cancellation and cleanup reach them: the token is wired into every
    context created here, and the worker stops them all (idempotently)
    when the job leaves the worker, however it leaves.

    Long pure-Python sections should call :meth:`check_cancelled` at
    natural boundaries; engine jobs get the check for free at every
    task boundary.
    """

    def __init__(
        self,
        tenant: str,
        name: str,
        submission: int,
        cancel_event: threading.Event,
        executor: Any | None = None,
    ) -> None:
        self.tenant = tenant
        self.name = name
        self.submission = submission
        self.cancel_event = cancel_event
        #: The service's shared process-backend executor pool (None when
        #: the service runs without one). Owned by the service: jobs
        #: borrow it, the service closes it at shutdown.
        self.executor = executor
        self._contexts: list[Any] = []
        self._lock = threading.Lock()

    @property
    def cancelled(self) -> bool:
        return self.cancel_event.is_set()

    def check_cancelled(self) -> None:
        """Raise :class:`JobCancelled` if the token is set (cooperative point)."""
        if self.cancel_event.is_set():
            raise JobCancelled(f"{self.tenant}/{self.name}")

    def spark_context(self, num_workers: int = 2, **kwargs: Any) -> Any:
        """A :class:`~repro.spark.SparkContext` wired to this job's token.

        Use as a context manager inside the body; the worker also stops
        it on the way out (``stop`` is idempotent), so spill directories
        never outlive the job even when cancellation unwinds the body
        mid-``with``.
        """
        from repro.spark import SparkContext

        kwargs.setdefault("name", f"serve-{self.tenant}-j{self.submission}")
        if self.executor is not None and kwargs.get("backend") == "process":
            # Process-backend contexts share the service's warm pool
            # instead of each spawning their own (stop() leaves a
            # shared pool running — it is the service's to close).
            kwargs.setdefault("executor", self.executor)
        sc = SparkContext(num_workers, cancel_token=self.cancel_event, **kwargs)
        with self._lock:
            self._contexts.append(sc)
        return sc

    def _cleanup(self) -> None:
        """Stop every engine context the job created (idempotent)."""
        with self._lock:
            contexts, self._contexts = list(self._contexts), []
        for sc in contexts:
            sc.stop()


class JobHandle:
    """The submitter's view of one job: state, result, cancellation."""

    def __init__(self, service: "JobService", record: "_JobRecord") -> None:
        self._service = service
        self._record = record

    @property
    def tenant(self) -> str:
        return self._record.tenant

    @property
    def name(self) -> str:
        return self._record.name

    @property
    def submission(self) -> int:
        return self._record.submission

    @property
    def state(self) -> str:
        return self._record.state

    @property
    def attempts(self) -> int:
        return self._record.attempts

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True if it did."""
        return self._record.done.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The job's return value; re-raises its failure otherwise."""
        if not self.wait(timeout):
            raise TimeoutError(
                f"job {self._record.tenant}/{self._record.name} still "
                f"{self._record.state!r} after {timeout}s"
            )
        if self._record.state == "done":
            return self._record.result
        error = self._record.error
        if error is not None:
            raise error
        raise RuntimeError(
            f"job {self._record.tenant}/{self._record.name} ended "
            f"{self._record.state!r} with no result"
        )

    def cancel(self) -> None:
        """Request cooperative cancellation (queued or running)."""
        self._service._cancel(self._record)

    def __repr__(self) -> str:
        return (
            f"JobHandle(#{self._record.submission} {self._record.tenant}/"
            f"{self._record.name}, {self._record.state})"
        )


class _JobRecord:
    """Scheduler-internal job state (the handle is the public face)."""

    __slots__ = (
        "tenant", "name", "fn", "priority", "submission", "timeout", "deadline",
        "state", "result", "error", "attempts", "worker", "submitted_at",
        "started_at", "finished_at", "cancel_event", "done", "timed_out", "lock",
    )

    def __init__(
        self,
        tenant: str,
        name: str,
        fn: Callable[[JobContext], Any],
        priority: int,
        submission: int,
        timeout: float | None,
        deadline: float | None,
        submitted_at: float,
    ) -> None:
        self.tenant = tenant
        self.name = name
        self.fn = fn
        self.priority = priority
        self.submission = submission
        self.timeout = timeout
        self.deadline = deadline
        self.state = "queued"
        self.result: Any = None
        self.error: BaseException | None = None
        self.attempts = 0
        self.worker: int | None = None
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.cancel_event = threading.Event()
        self.done = threading.Event()
        self.timed_out = False
        self.lock = threading.Lock()


class JobService:
    """A long-lived, fault-hardened job scheduler over shared engines.

    Usable as a context manager; :meth:`shutdown` is idempotent.

    Parameters
    ----------
    num_workers:
        Worker threads executing jobs concurrently.
    capacity / per_tenant_capacity:
        Bounds on the submission queue (see
        :class:`~repro.serve.admission.FairShareQueue`).
    max_retries:
        Re-executions of a failed job body before it is declared failed.
    retry_backoff:
        The :class:`~repro.util.backoff.BackoffPolicy` between attempts
        (reseeded per submission so retriers de-correlate); also the
        respawn delay after an injected worker loss.
    shed_on_full:
        When True, a submission that finds the queue full evicts the
        lowest-priority queued job *if the newcomer outranks it* (the
        eviction lands in :attr:`shed_report`); when it does not
        outrank anything, the submission is rejected with
        :class:`~repro.serve.admission.QueueFullError` as usual.
    circuit_threshold / circuit_recovery:
        Per-tenant breaker tuning (consecutive failures to trip; open
        seconds before a half-open probe).
    default_timeout:
        Wall-timeout applied to jobs submitted without an explicit one
        (None = unbounded).
    fault_plan:
        Optional :class:`~repro.serve.faults.ServeFaultPlan`; inert when
        None (the usual no-plan hot path: one ``is None`` test per seam).
    clock:
        Injectable monotonic clock (tests pin deadlines without sleeping).
    executor_pool:
        When set, the service owns one shared
        :class:`~repro.core.executor.ProcessExecutor` with that many
        workers; process-backend Spark contexts created through
        :meth:`JobContext.spark_context` borrow it (one warm pool for
        the whole service instead of a pool per job), and jobs can use
        it directly via ``ctx.executor``. Closed at :meth:`shutdown`.
        None (the default) keeps the per-context behaviour.
    """

    def __init__(
        self,
        num_workers: int = 2,
        *,
        capacity: int = 64,
        per_tenant_capacity: int | None = None,
        max_retries: int = 1,
        retry_backoff: BackoffPolicy | None = None,
        shed_on_full: bool = False,
        circuit_threshold: int = 3,
        circuit_recovery: float = 0.05,
        default_timeout: float | None = None,
        service_time_hint: float = 0.005,
        fault_plan: ServeFaultPlan | None = None,
        watchdog_interval: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        executor_pool: int | None = None,
    ) -> None:
        self.num_workers = require_positive_int("num_workers", num_workers)
        self.max_retries = require_nonnegative_int("max_retries", max_retries)
        self.retry_backoff = retry_backoff if retry_backoff is not None else BackoffPolicy(0.001)
        self.shed_on_full = shed_on_full
        self.default_timeout = default_timeout
        self._clock = clock
        self._fault_plan = fault_plan
        self.fault_report: ServeFaultReport | None = (
            ServeFaultReport(plan=fault_plan) if fault_plan is not None else None
        )
        self.queue = FairShareQueue(
            capacity,
            per_tenant_capacity=per_tenant_capacity,
            service_time_hint=service_time_hint,
        )
        self.metrics = ServeMetrics()
        self.shed_report = ShedReport()
        self._circuit_threshold = circuit_threshold
        self._circuit_recovery = circuit_recovery
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._submissions = itertools.count()
        self._dequeues = itertools.count()
        self._records: dict[int, _JobRecord] = {}
        self._records_lock = threading.Lock()
        self._outstanding = 0
        self._drained = threading.Condition(self._records_lock)
        self._stopping = False
        self._shutdown_done = False
        self._watchdog_interval = watchdog_interval
        self._watchdog_wake = threading.Event()
        self.executor = None
        if executor_pool is not None:
            from repro.core.executor import ProcessExecutor

            require_positive_int("executor_pool", executor_pool)
            self.executor = ProcessExecutor(executor_pool)
        self._threads = [
            threading.Thread(target=self._worker_loop, args=(w,),
                             name=f"serve-worker-{w}", daemon=True)
            for w in range(num_workers)
        ]
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="serve-watchdog", daemon=True
        )
        for t in self._threads:
            t.start()
        self._watchdog.start()

    # ------------------------------------------------------------------
    # submission side
    # ------------------------------------------------------------------
    def breaker(self, tenant: str) -> CircuitBreaker:
        """The tenant's circuit breaker (created on first use)."""
        with self._breaker_lock:
            breaker = self._breakers.get(tenant)
            if breaker is None:
                breaker = CircuitBreaker(
                    tenant,
                    failure_threshold=self._circuit_threshold,
                    recovery_time=self._circuit_recovery,
                    clock=self._clock,
                )
                self._breakers[tenant] = breaker
            return breaker

    def submit(
        self,
        tenant: str,
        fn: Callable[[JobContext], Any],
        *,
        name: str | None = None,
        priority: int = 0,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> JobHandle:
        """Admit one job for ``tenant``; returns its :class:`JobHandle`.

        Raises :class:`~repro.serve.circuit.CircuitOpenError` when the
        tenant's breaker is open and
        :class:`~repro.serve.admission.QueueFullError` under
        backpressure (unless ``shed_on_full`` finds a lower-priority
        victim to evict). ``timeout`` bounds running wall time,
        ``deadline`` bounds queue residency; both cancel cooperatively.
        """
        if self._stopping:
            raise RuntimeError("JobService is shut down; create a fresh one")
        try:
            self.breaker(tenant).allow()
        except CircuitOpenError:
            self.metrics.rejected_circuit += 1
            self.metrics.bump(f"serve.rejected_circuit.{tenant}")
            raise
        submission = next(self._submissions)
        record = _JobRecord(
            tenant,
            name if name is not None else f"job{submission}",
            fn,
            priority,
            submission,
            timeout if timeout is not None else self.default_timeout,
            deadline,
            self._clock(),
        )
        self._admit(record)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "submit", category="serve", scope="serve.admission",
                tenant=tenant, submission=submission, priority=priority,
            )
        return JobHandle(self, record)

    def _admit(self, record: _JobRecord) -> None:
        """Queue a record, load-shedding a lower-priority victim if allowed."""
        with self._records_lock:
            self._records[record.submission] = record
            self._outstanding += 1
        try:
            try:
                self.queue.push(record.tenant, record, record.priority)
            except QueueFullError:
                if not self.shed_on_full:
                    raise
                victims = self.queue.shed_lowest(1)
                if not victims or victims[0][1] >= record.priority:
                    # Nothing outranked: put any victim back and reject.
                    for tenant, priority, item in victims:
                        self.queue.requeue(tenant, item, priority)
                    raise
                self._mark_shed(victims[0][2], "overload: displaced by "
                                f"priority-{record.priority} submission")
                self.queue.push(record.tenant, record, record.priority)
            self.metrics.submitted += 1
        except QueueFullError:
            with self._records_lock:
                del self._records[record.submission]
                self._outstanding -= 1
                self._drained.notify_all()
            self.metrics.rejected_full += 1
            raise

    def _mark_shed(self, record: _JobRecord, reason: str) -> None:
        with record.lock:
            record.state = "shed"
            record.finished_at = self._clock()
        self.shed_report.record(
            ShedRecord(record.tenant, record.name, record.priority, record.submission, reason)
        )
        self.metrics.shed += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "shed", category="serve", scope="serve.admission",
                tenant=record.tenant, submission=record.submission, reason=reason,
            )
        self._finish(record)

    def shed_queued(self, count: int, reason: str = "overload") -> int:
        """Explicit load shedding: evict the ``count`` lowest-priority
        queued jobs into the :attr:`shed_report`; returns how many went."""
        victims = self.queue.shed_lowest(count)
        for _tenant, _priority, record in victims:
            self._mark_shed(record, reason)
        return len(victims)

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self, worker: int) -> None:
        jobs_started = 0
        plan = self._fault_plan
        # Each worker-loss slot fires once per service lifetime: the
        # respawned worker restarts its jobs-started count at 0, which
        # would otherwise re-hit the same slot forever.
        fired_losses: set[int] = set()
        while True:
            if self._stopping and self.queue.depth() == 0:
                return
            if plan is not None:
                stall = plan.stall_event(next(self._dequeues))
                if stall is not None:
                    self._record_injection(
                        ServeInjectionRecord("queue_stall", stall.unit, seconds=stall.seconds)
                    )
                    time.sleep(stall.seconds)
            entry = self.queue.pop(timeout=0.05)
            if entry is None:
                continue
            _tenant, record = entry
            if (
                plan is not None
                and jobs_started not in fired_losses
                and plan.kills_worker(worker, jobs_started)
            ):
                fired_losses.add(jobs_started)
                # The worker dies holding the job: requeue it (never lost),
                # then "respawn" after the backoff — same thread, fresh count.
                self._record_injection(
                    ServeInjectionRecord("worker_loss", jobs_started, worker=worker)
                )
                assert self.fault_report is not None
                self.fault_report.record_requeue()
                self.queue.requeue(record.tenant, record, record.priority)
                self.metrics.bump("serve.worker_losses")
                self.retry_backoff.reseeded(worker).sleep(0)
                self.fault_report.record_worker_respawn(worker)
                self.metrics.bump("serve.worker_respawns")
                jobs_started = 0
                continue
            jobs_started += 1
            try:
                self._run_job(worker, record)
            except Exception as exc:  # pragma: no cover - scheduler-internal bug
                # A worker thread must never die silently: fail the job
                # with the evidence and keep serving the queue.
                with record.lock:
                    if record.state not in _TERMINAL_STATES:
                        record.state = "failed"
                        record.error = exc
                        record.finished_at = self._clock()
                        self.metrics.failed += 1
                if not record.done.is_set():
                    self._finish(record)

    def _run_job(self, worker: int, record: _JobRecord) -> None:
        now = self._clock()
        with record.lock:
            if record.state != "queued":
                return  # cancelled or shed while waiting
            waited = now - record.submitted_at
            if record.deadline is not None and waited > record.deadline:
                record.state = "expired"
                record.error = DeadlineExpired(
                    f"{record.tenant}/{record.name}", record.deadline, waited
                )
                record.finished_at = now
                expired = True
            else:
                record.state = "running"
                record.worker = worker
                record.started_at = now
                expired = False
        if expired:
            self.metrics.expired += 1
            self.breaker(record.tenant).record_failure()
            self._finish(record)
            return
        self._watchdog_wake.set()
        tracer = get_tracer()
        ctx = JobContext(
            record.tenant, record.name, record.submission, record.cancel_event,
            executor=self.executor,
        )
        try:
            if tracer.enabled:
                with tracer.scope(f"serve.j{record.submission}"):
                    with tracer.span(
                        "job", category="serve", tenant=record.tenant,
                        job=record.name, priority=record.priority, worker=worker,
                    ):
                        self._run_attempts(record, ctx)
            else:
                self._run_attempts(record, ctx)
        finally:
            ctx._cleanup()
            self._finish(record)

    def _run_attempts(self, record: _JobRecord, ctx: JobContext) -> None:
        plan = self._fault_plan
        backoff = self.retry_backoff.reseeded(record.submission)
        attempt = 0
        while True:
            record.attempts = attempt + 1
            try:
                ctx.check_cancelled()
                if plan is not None and plan.poisons(record.submission):
                    self._record_injection(
                        ServeInjectionRecord("poison", record.submission)
                    )
                    raise PoisonedJobError(record.submission)
                result = record.fn(ctx)
            except BaseException as exc:  # noqa: BLE001 - every exit routed below
                from repro.spark.context import SparkJobCancelled

                if isinstance(exc, (JobCancelled, SparkJobCancelled)):
                    with record.lock:
                        record.state = "timeout" if record.timed_out else "cancelled"
                        record.error = exc
                        record.finished_at = self._clock()
                    if record.timed_out:
                        self.metrics.timeouts += 1
                    else:
                        self.metrics.cancelled += 1
                    return
                if isinstance(exc, Exception) and attempt < self.max_retries:
                    self.metrics.retries += 1
                    self.metrics.bump(f"serve.retries.{record.tenant}")
                    backoff.sleep(attempt)
                    attempt += 1
                    continue
                with record.lock:
                    record.state = "failed"
                    record.error = exc
                    record.finished_at = self._clock()
                self.metrics.failed += 1
                tripped = self.breaker(record.tenant).record_failure()
                if tripped:
                    self.metrics.bump("serve.circuit_opens")
                    tracer = get_tracer()
                    if tracer.enabled:
                        tracer.instant(
                            "circuit_open", category="serve", scope="serve.admission",
                            tenant=record.tenant, submission=record.submission,
                        )
                if not isinstance(exc, Exception):
                    raise  # KeyboardInterrupt and friends keep propagating
                return
            with record.lock:
                record.state = "done"
                record.result = result
                record.finished_at = self._clock()
            self.metrics.completed += 1
            self.breaker(record.tenant).record_success()
            return

    def _finish(self, record: _JobRecord) -> None:
        """Mark one job settled (idempotent: every exit path may call it)."""
        with self._records_lock:
            if record.done.is_set():
                return
            record.done.set()
            self._outstanding -= 1
            if self._outstanding == 0:
                self._drained.notify_all()

    def _record_injection(self, record: ServeInjectionRecord) -> None:
        assert self.fault_report is not None
        self.fault_report.record_injection(record)
        self.metrics.bump("serve.injected_faults")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                f"fault.{record.kind}", category="serve.fault", scope="serve.scheduler",
                unit=record.unit, worker=record.worker,
            )

    # ------------------------------------------------------------------
    # deadlines / cancellation
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        """Set cancel tokens on running jobs past their wall timeout."""
        while not self._shutdown_done:
            self._watchdog_wake.wait(timeout=self._watchdog_interval * 25)
            self._watchdog_wake.clear()
            if self._shutdown_done:
                return
            deadline_pending = False
            now = self._clock()
            with self._records_lock:
                running = [
                    r for r in self._records.values() if r.state == "running"
                ]
            for record in running:
                if record.timeout is None or record.started_at is None:
                    continue
                deadline_pending = True
                if now - record.started_at > record.timeout:
                    record.timed_out = True
                    record.cancel_event.set()
                    tracer = get_tracer()
                    if tracer.enabled:
                        tracer.instant(
                            "wall_timeout", category="serve", scope="serve.scheduler",
                            tenant=record.tenant, submission=record.submission,
                        )
            if deadline_pending:
                # Poll fast only while a bounded job is actually running.
                self._watchdog_wake.wait(timeout=self._watchdog_interval)
                self._watchdog_wake.set()

    def _cancel(self, record: _JobRecord) -> None:
        with record.lock:
            if record.state == "queued":
                record.state = "cancelled"
                record.error = JobCancelled(f"{record.tenant}/{record.name}")
                record.finished_at = self._clock()
                cancelled_in_queue = True
            else:
                cancelled_in_queue = record.state not in _TERMINAL_STATES
                record.cancel_event.set()
        if cancelled_in_queue and record.done.is_set():
            return
        if record.state == "cancelled" and not record.done.is_set():
            self.metrics.cancelled += 1
            self._finish(record)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted job reached a terminal state."""
        with self._records_lock:
            return self._drained.wait_for(lambda: self._outstanding == 0, timeout=timeout)

    def job_records(self) -> list[JobHandle]:
        """Handles for every admitted job, in submission order."""
        with self._records_lock:
            return [JobHandle(self, r) for _, r in sorted(self._records.items())]

    def tenant_completions(self) -> dict[str, int]:
        """Completed-job counts per tenant (the fairness witness)."""
        with self._records_lock:
            out: dict[str, int] = {}
            for record in self._records.values():
                if record.state == "done":
                    out[record.tenant] = out.get(record.tenant, 0) + 1
            return out

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service (idempotent).

        ``drain=True`` lets queued jobs finish first; ``drain=False``
        cancels everything still queued (their handles end
        ``"cancelled"``) and only waits for the jobs already running.
        """
        if self._shutdown_done:
            return
        self._stopping = True
        if not drain:
            with self._records_lock:
                queued = [r for r in self._records.values() if r.state == "queued"]
            for record in queued:
                self._cancel(record)
        else:
            self.drain(timeout=timeout)
        self.queue.close()
        for t in self._threads:
            t.join(timeout=5.0)
        self._shutdown_done = True
        self._watchdog_wake.set()
        self._watchdog.join(timeout=5.0)
        executor, self.executor = self.executor, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "stopped" if self._shutdown_done else "serving"
        plan = f", fault_plan={self._fault_plan!r}" if self._fault_plan is not None else ""
        return (
            f"JobService({self.num_workers} worker(s), {self.queue!r}, {state}{plan})"
        )
