"""Per-tenant circuit breakers: stop burning capacity on poisoned work.

A tenant whose jobs keep failing (a bad binary, a poisoned input) would
otherwise consume its full fair share in doomed retries. The classic
remedy is a circuit breaker per tenant:

- **closed** — submissions flow; consecutive failures are counted.
- **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: submissions are rejected up front with
  :class:`CircuitOpenError` (carrying a ``retry_after`` hint) for
  ``recovery_time`` seconds.
- **half-open** — after the cool-down, *one* probe job is admitted; its
  success closes the breaker (counter reset), its failure re-opens it
  for another full cool-down.

The clock is injectable (``clock=``), so every transition is testable —
and deterministic under the serve soak's logical clock — without
sleeping through real cool-downs.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.util.validation import require_positive_int

__all__ = ["CircuitOpenError", "CircuitBreaker"]

#: Breaker states, in escalation order.
CIRCUIT_STATES = ("closed", "open", "half_open")


class CircuitOpenError(RuntimeError):
    """Submission rejected because the tenant's breaker is open.

    ``retry_after`` is the remaining cool-down in seconds — the
    graceful-degradation counterpart of
    :class:`~repro.serve.admission.QueueFullError`.
    """

    def __init__(self, tenant: str, failures: int, retry_after: float) -> None:
        super().__init__(
            f"circuit for tenant {tenant!r} is open after {failures} consecutive "
            f"failure(s); retry in ~{retry_after:.3f}s"
        )
        self.tenant = tenant
        self.failures = failures
        self.retry_after = retry_after


class CircuitBreaker:
    """One tenant's breaker: closed → open → half-open → closed.

    Thread-safe. ``allow()`` is the admission-side gate (raises
    :class:`CircuitOpenError` when open); ``record_success()`` /
    ``record_failure()`` are the completion-side feedback.
    """

    def __init__(
        self,
        tenant: str,
        *,
        failure_threshold: int = 3,
        recovery_time: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.tenant = tenant
        self.failure_threshold = require_positive_int("failure_threshold", failure_threshold)
        if recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {recovery_time}")
        self.recovery_time = recovery_time
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_out = False
        self.opens = 0  # lifetime trips (diagnostic)

    @property
    def state(self) -> str:
        """Current state, cool-down expiry applied."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == "open" and self._clock() - self._opened_at >= self.recovery_time:
            self._state = "half_open"
            self._probe_out = False
        return self._state

    def allow(self) -> None:
        """Gate one submission; raises :class:`CircuitOpenError` if open.

        In half-open state exactly one probe passes; concurrent
        submissions behind the probe are rejected as if still open.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return
            if state == "half_open" and not self._probe_out:
                self._probe_out = True
                return
            remaining = max(0.0, self.recovery_time - (self._clock() - self._opened_at))
            raise CircuitOpenError(self.tenant, self._consecutive_failures, remaining)

    def record_success(self) -> None:
        """A job finished cleanly: close the breaker, reset the counter."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_out = False

    def record_failure(self) -> bool:
        """A job failed; returns True when this failure trips the breaker.

        A half-open probe's failure re-opens immediately; in closed
        state the breaker trips once ``failure_threshold`` consecutive
        failures accumulate.
        """
        with self._lock:
            self._consecutive_failures += 1
            state = self._state_locked()
            tripped = state == "half_open" or (
                state == "closed" and self._consecutive_failures >= self.failure_threshold
            )
            if tripped:
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_out = False
                self.opens += 1
            return tripped

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(tenant={self.tenant!r}, state={self.state!r}, "
            f"failures={self._consecutive_failures}, opens={self.opens})"
        )
