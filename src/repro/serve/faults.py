"""Deterministic scheduler-level fault injection for the serve tier.

:class:`~repro.mpi.faults.FaultPlan` shakes one SPMD world and
:class:`~repro.spark.faults.SparkFaultPlan` shakes one engine job; a
:class:`ServeFaultPlan` shakes the *service around them* — the layer
where multi-tenant systems actually break. Same house contract: seeded,
bit-reproducible (block-split :mod:`repro.rng.lcg` streams, one draw
per slot), inert by default, every firing recorded.

Fault kinds and their coordinates:

- ``poison``      — per submission slot (the service-wide submission
  index): the job's body raises :class:`PoisonedJobError` instead of
  running — on every attempt, so retries burn out and the tenant's
  circuit breaker sees real consecutive failures.
- ``worker_loss`` — per ``(worker, jobs_started)`` slot: the scheduler
  worker "dies" right after picking up that job (the job is requeued,
  never lost) and the pool respawns the worker after a
  :class:`~repro.util.backoff.BackoffPolicy` delay.
- ``queue_stall`` — per dequeue slot: the worker's dequeue stalls for
  ``seconds`` before the pop (a GC pause / noisy neighbour at the
  queue), stressing deadlines and the backpressure hints.

Per-job :class:`~repro.spark.faults.SparkFaultPlan`\\ s compose freely
underneath: a traffic job can carry its own engine-level plan while the
service's plan tears at the scheduler above it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.rng.lcg import KNUTH_LCG, LcgParams, LinearCongruential
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = [
    "SERVE_FAULT_KINDS",
    "PoisonedJobError",
    "ServeFaultEvent",
    "ServeFaultPlan",
    "ServeFaultReport",
    "ServeInjectionRecord",
]

#: Recognized serve-level fault kinds, probability-interval order.
SERVE_FAULT_KINDS = ("poison", "worker_loss", "queue_stall")

#: Draw-stream spacing: each coordinate family owns a disjoint block of
#: the shared LCG sequence (submissions / worker slots / dequeues).
_STREAM_SPACING = 1 << 20


class PoisonedJobError(RuntimeError):
    """The injected body failure of a poisoned submission."""

    def __init__(self, submission: int) -> None:
        super().__init__(f"submission {submission} is poisoned (injected)")
        self.submission = submission


@dataclass(frozen=True)
class ServeFaultEvent:
    """One scheduled serve fault at its coordinate.

    ``unit`` is the submission index for ``poison``, the per-worker
    jobs-started count for ``worker_loss``, and the service-wide dequeue
    index for ``queue_stall``. ``worker`` only matters for
    ``worker_loss``; ``seconds`` only for ``queue_stall``.
    """

    kind: str
    unit: int
    worker: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVE_FAULT_KINDS:
            raise ValueError(
                f"unknown serve fault kind {self.kind!r}; expected one of {SERVE_FAULT_KINDS}"
            )
        require_nonnegative_int("unit", self.unit)
        require_nonnegative_int("worker", self.worker)
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class ServeInjectionRecord:
    """One serve fault that actually fired."""

    kind: str
    unit: int
    worker: int = 0
    seconds: float = 0.0


class ServeFaultPlan:
    """An immutable schedule of scheduler-level faults for one service.

    Build explicitly from :class:`ServeFaultEvent` instances or sample
    reproducibly with :meth:`sample`. At most one event per
    ``(kind, worker, unit)`` slot.
    """

    def __init__(self, events: Iterable[ServeFaultEvent] = (), *, seed: int | None = None) -> None:
        self.events: tuple[ServeFaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.kind, e.worker, e.unit))
        )
        self.seed = seed
        slots = [(e.kind, e.worker, e.unit) for e in self.events]
        if len(slots) != len(set(slots)):
            raise ValueError("at most one serve fault event per (kind, worker, unit) slot")
        self._poison = {e.unit for e in self.events if e.kind == "poison"}
        self._worker_loss = {
            (e.worker, e.unit) for e in self.events if e.kind == "worker_loss"
        }
        self._stalls = {e.unit: e for e in self.events if e.kind == "queue_stall"}

    # -- explicit single-fault constructors (the cookbook entries) -----
    @classmethod
    def poison_job(cls, submission: int) -> "ServeFaultPlan":
        """Poison one submission (every attempt of it fails)."""
        return cls([ServeFaultEvent("poison", submission)])

    @classmethod
    def kill_worker(cls, worker: int, after_jobs: int = 0) -> "ServeFaultPlan":
        """Kill one scheduler worker as it starts its ``after_jobs``-th job."""
        return cls([ServeFaultEvent("worker_loss", after_jobs, worker=worker)])

    @classmethod
    def stall_queue(cls, dequeue: int, seconds: float = 0.005) -> "ServeFaultPlan":
        """Stall the ``dequeue``-th pop for ``seconds``."""
        return cls([ServeFaultEvent("queue_stall", dequeue, seconds=seconds)])

    @classmethod
    def sample(
        cls,
        seed: int,
        *,
        submissions: int,
        workers: int = 4,
        jobs_per_worker: int | None = None,
        poison_prob: float = 0.0,
        worker_loss_prob: float = 0.0,
        stall_prob: float = 0.0,
        stall_seconds: float = 0.002,
        max_worker_losses: int | None = None,
        params: LcgParams = KNUTH_LCG,
    ) -> "ServeFaultPlan":
        """Draw a reproducible plan: one LCG decision per slot.

        Submission slots draw ``poison`` with ``poison_prob``; each
        worker's first ``jobs_per_worker`` (default: enough for the
        whole load, ``submissions``) job-start slots draw
        ``worker_loss`` with ``worker_loss_prob`` (at most one loss per
        worker — it respawns, but a worker that dies at every job would
        starve the pool, so losses are capped at ``max_worker_losses``,
        default ``workers - 1``, keeping at least one worker undisturbed);
        dequeue slots draw ``queue_stall`` with ``stall_prob``. Each
        family owns a disjoint fast-forwarded block of one LCG sequence,
        so the plan is bit-identical per seed regardless of evaluation
        order.
        """
        require_positive_int("submissions", submissions)
        require_positive_int("workers", workers)
        horizon = submissions if jobs_per_worker is None else jobs_per_worker
        require_positive_int("per-worker horizon", horizon)
        for name, p in (
            ("poison_prob", poison_prob),
            ("worker_loss_prob", worker_loss_prob),
            ("stall_prob", stall_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        loss_budget = workers - 1 if max_worker_losses is None else max_worker_losses
        require_nonnegative_int("max_worker_losses", loss_budget)
        base = LinearCongruential(params, seed)
        events: list[ServeFaultEvent] = []
        stream = base.jumped(0)
        for unit in range(submissions):
            if stream.next_uniform() < poison_prob:
                events.append(ServeFaultEvent("poison", unit))
        losses = 0
        for worker in range(workers):
            stream = base.jumped(_STREAM_SPACING * (1 + worker))
            for unit in range(horizon):
                u = stream.next_uniform()
                if losses < loss_budget and u < worker_loss_prob:
                    events.append(ServeFaultEvent("worker_loss", unit, worker=worker))
                    losses += 1
                    break  # a worker dies at most once; it respawns fresh
        stream = base.jumped(_STREAM_SPACING * (1 + workers))
        for unit in range(submissions):
            if stream.next_uniform() < stall_prob:
                events.append(
                    ServeFaultEvent("queue_stall", unit, seconds=stall_seconds)
                )
        return cls(events, seed=seed)

    # -- runtime lookups ----------------------------------------------
    def poisons(self, submission: int) -> bool:
        """Whether ``submission`` is scheduled to be poisoned."""
        return submission in self._poison

    def kills_worker(self, worker: int, jobs_started: int) -> bool:
        """Whether ``worker`` dies as it starts job number ``jobs_started``."""
        return (worker, jobs_started) in self._worker_loss

    def stall_event(self, dequeue: int) -> ServeFaultEvent | None:
        """The stall scheduled at the ``dequeue``-th pop, if any."""
        return self._stalls.get(dequeue)

    def trace(self) -> tuple[tuple[str, int, int], ...]:
        """Normalized (kind, worker, unit) tuples — the reproducibility witness."""
        return tuple((e.kind, e.worker, e.unit) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        seed = f", seed={self.seed}" if self.seed is not None else ""
        return f"ServeFaultPlan({len(self.events)} events{seed})"


@dataclass
class ServeFaultReport:
    """What the serve fault layer observed during one service lifetime.

    Mutators are thread-safe (scheduler workers fire faults
    concurrently); read after :meth:`~repro.serve.scheduler.JobService.drain`.
    """

    plan: ServeFaultPlan | None = None
    injected: list[ServeInjectionRecord] = field(default_factory=list)
    worker_respawns: dict[int, int] = field(default_factory=dict)
    requeued_jobs: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_injection(self, record: ServeInjectionRecord) -> None:
        """Log one fired serve fault."""
        with self._lock:
            self.injected.append(record)

    def record_worker_respawn(self, worker: int) -> None:
        """Log the pool bringing a lost worker back."""
        with self._lock:
            self.worker_respawns[worker] = self.worker_respawns.get(worker, 0) + 1

    def record_requeue(self) -> None:
        """Log one job put back after its worker died mid-pickup."""
        with self._lock:
            self.requeued_jobs += 1

    def trace(self) -> tuple[tuple[str, int, int], ...]:
        """Normalized fired-fault tuples — equal across runs of one seed."""
        with self._lock:
            return tuple(
                (rec.kind, rec.worker, rec.unit)
                for rec in sorted(self.injected, key=lambda r: (r.kind, r.worker, r.unit))
            )

    def summary(self) -> str:
        """One human-readable paragraph."""
        with self._lock:
            lines = [f"ServeFaultReport: {len(self.injected)} fault(s) fired"]
            for rec in sorted(self.injected, key=lambda r: (r.kind, r.worker, r.unit)):
                extra = f" ({rec.seconds:.3f}s)" if rec.seconds else ""
                where = f" worker {rec.worker}" if rec.kind == "worker_loss" else ""
                lines.append(f"  - {rec.kind}{where} @ {rec.unit}{extra}")
            for worker, n in sorted(self.worker_respawns.items()):
                lines.append(f"  worker {worker} respawned {n} time(s)")
            if self.requeued_jobs:
                lines.append(f"  {self.requeued_jobs} job(s) requeued after worker loss")
        return "\n".join(lines)
