"""Bounded multi-tenant admission: fair-share dequeue, explicit backpressure.

The submission queue is where a shared service either stays fair or
degrades into "whoever submits fastest wins". Two mechanisms keep it
honest:

- **Backpressure is explicit.** A full queue rejects the submission
  with :class:`QueueFullError` carrying a ``retry_after`` hint — never
  a silent drop, never an unbounded buffer. Callers (and the traffic
  generator's soak loop) retry on the hint with the shared
  :class:`~repro.util.backoff.BackoffPolicy`.
- **Dequeue is max-min fair.** Workers pull via a round-robin cursor
  over tenants with queued work, so a tenant flooding the queue cannot
  starve the others: with T backlogged tenants each gets ~1/T of the
  service capacity (the soak asserts the max-min share tolerance).
  Within one tenant, jobs run by descending priority, FIFO among
  equals.

Load shedding under overload is the queue's third job:
:meth:`FairShareQueue.shed_lowest` evicts the globally
lowest-priority queued entries first (newest first among equals — the
work least likely to have a waiter), returning them so the scheduler
can report every shed job in its structured
:class:`~repro.serve.scheduler.ShedReport`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Iterator

from repro.util.validation import require_positive_int

__all__ = ["QueueFullError", "FairShareQueue"]


class QueueFullError(RuntimeError):
    """The bounded submission queue refused a job — backpressure, not loss.

    ``retry_after`` (seconds) is the explicit hint: the queue's depth
    ahead of the rejected job times its configured service-time hint.
    Deterministic by construction (no wall clocks involved), so retry
    schedules built on it replay bit-identically.
    """

    def __init__(self, tenant: str, capacity: int, depth: int, retry_after: float) -> None:
        super().__init__(
            f"submission queue full ({depth}/{capacity} queued); tenant {tenant!r} "
            f"should retry in ~{retry_after:.3f}s"
        )
        self.tenant = tenant
        self.capacity = capacity
        self.depth = depth
        self.retry_after = retry_after


class FairShareQueue:
    """A bounded, priority-aware queue with round-robin tenant fairness.

    ``capacity`` bounds the total queued entries; ``per_tenant_capacity``
    (default: ``capacity``) additionally bounds any single tenant, so one
    tenant can never occupy the whole buffer even when the service is
    idle. ``service_time_hint`` (seconds per job) scales the
    ``retry_after`` backpressure hints.

    Thread-safe; :meth:`pop` blocks until an entry is available, the
    queue is closed, or ``timeout`` expires.
    """

    def __init__(
        self,
        capacity: int,
        *,
        per_tenant_capacity: int | None = None,
        service_time_hint: float = 0.01,
    ) -> None:
        self.capacity = require_positive_int("capacity", capacity)
        self.per_tenant_capacity = (
            capacity if per_tenant_capacity is None
            else require_positive_int("per_tenant_capacity", per_tenant_capacity)
        )
        if service_time_hint < 0:
            raise ValueError(f"service_time_hint must be >= 0, got {service_time_hint}")
        self.service_time_hint = service_time_hint
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        # tenant -> heap of (-priority, seq, item); tenants stay registered
        # (empty heaps allowed) so the round-robin order is stable.
        self._queues: dict[str, list[tuple[int, int, Any]]] = {}
        self._order: list[str] = []
        self._cursor = 0
        self._seq = itertools.count()
        self._size = 0
        self._closed = False

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def push(self, tenant: str, item: Any, priority: int = 0) -> int:
        """Admit one entry; returns the global queue depth after admission.

        Raises :class:`QueueFullError` when the global or per-tenant
        bound is hit — with a ``retry_after`` hint proportional to the
        depth the submission would have had to wait behind.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("submission queue is closed")
            tenant_q = self._queues.get(tenant)
            if tenant_q is None:
                tenant_q = []
                self._queues[tenant] = tenant_q
                self._order.append(tenant)
            if self._size >= self.capacity or len(tenant_q) >= self.per_tenant_capacity:
                depth = self._size
                raise QueueFullError(
                    tenant, self.capacity, depth,
                    max(1, depth) * self.service_time_hint,
                )
            heapq.heappush(tenant_q, (-priority, next(self._seq), item))
            self._size += 1
            self._available.notify()
            return self._size

    def requeue(self, tenant: str, item: Any, priority: int = 0) -> int:
        """Put an already-admitted entry back, bypassing capacity bounds.

        For recovery paths only (a worker died holding the job): the
        entry was admitted once, so re-admission must never bounce —
        "requeued, never lost". Also accepted after :meth:`close` while
        draining. Returns the global depth after re-admission.
        """
        with self._lock:
            tenant_q = self._queues.get(tenant)
            if tenant_q is None:
                tenant_q = []
                self._queues[tenant] = tenant_q
                self._order.append(tenant)
            heapq.heappush(tenant_q, (-priority, next(self._seq), item))
            self._size += 1
            self._available.notify()
            return self._size

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def pop(self, timeout: float | None = None) -> tuple[str, Any] | None:
        """Next ``(tenant, item)`` under max-min fairness, or None.

        Blocks up to ``timeout`` seconds (forever when None). Returns
        None on timeout or once the queue is closed *and* drained.
        """
        with self._available:
            if not self._available.wait_for(
                lambda: self._size > 0 or self._closed, timeout=timeout
            ):
                return None
            if self._size == 0:
                return None  # closed and drained
            # Round-robin scan from the cursor: the next tenant with work.
            n = len(self._order)
            for step in range(n):
                tenant = self._order[(self._cursor + step) % n]
                tenant_q = self._queues[tenant]
                if tenant_q:
                    self._cursor = (self._cursor + step + 1) % n
                    _neg_priority, _seq, item = heapq.heappop(tenant_q)
                    self._size -= 1
                    return tenant, item
            raise AssertionError("size > 0 but no tenant had queued work")

    # ------------------------------------------------------------------
    # overload control
    # ------------------------------------------------------------------
    def shed_lowest(self, count: int) -> list[tuple[str, int, Any]]:
        """Evict up to ``count`` queued entries, lowest priority first.

        Among equal priorities the *newest* submission goes first (it
        has waited least). Returns the evicted ``(tenant, priority,
        item)`` triples so the caller can account every shed job.
        """
        require_positive_int("count", count)
        with self._lock:
            candidates: list[tuple[int, int, str]] = []  # (priority, -seq, tenant)
            for tenant, tenant_q in self._queues.items():
                for neg_priority, seq, _item in tenant_q:
                    candidates.append((-neg_priority, -seq, tenant))
            candidates.sort(key=lambda c: (c[0], c[1]))
            shed: list[tuple[str, int, Any]] = []
            for priority, neg_seq, tenant in candidates[:count]:
                tenant_q = self._queues[tenant]
                index = next(
                    i for i, entry in enumerate(tenant_q) if entry[1] == -neg_seq
                )
                _neg_priority, _seq, item = tenant_q.pop(index)
                heapq.heapify(tenant_q)
                self._size -= 1
                shed.append((tenant, priority, item))
            return shed

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def depth(self, tenant: str | None = None) -> int:
        """Queued entries — globally, or for one tenant."""
        with self._lock:
            if tenant is None:
                return self._size
            return len(self._queues.get(tenant, ()))

    def tenants(self) -> list[str]:
        """Tenants ever admitted, in first-submission order."""
        with self._lock:
            return list(self._order)

    def close(self) -> None:
        """Refuse further pushes; blocked pops drain then return None."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        return self.depth()

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        """Drain without blocking (test/diagnostic helper)."""
        while True:
            entry = self.pop(timeout=0)
            if entry is None:
                return
            yield entry

    def __repr__(self) -> str:
        return (
            f"FairShareQueue({self._size}/{self.capacity} queued, "
            f"{len(self._order)} tenant(s){', closed' if self._closed else ''})"
        )
