"""Seeded multi-tenant traffic for soaking the job service.

The serve tier's claims — fairness, backpressure, clean degradation,
bit-identical results under co-tenancy and injected faults — only mean
something under *load*. This module generates that load reproducibly:

- :func:`generate_traffic` draws a tenant-interleaved job mix
  (wordcount / k-means / NYC-arrests pipeline, mixed priorities, seeded
  inter-arrival gaps) from block-split :mod:`repro.rng.lcg` streams —
  one stream per tenant, so the mix is bit-identical per seed no matter
  how many tenants are asked for.
- :func:`job_body` turns a :class:`TrafficJob` into the callable the
  service runs: a pure function of the job's own seed, so the *same
  job run solo* (:func:`run_solo`) is the bit-identity oracle.
- :func:`run_soak` drives a :class:`~repro.serve.scheduler.JobService`
  through the whole mix — honoring ``retry_after`` backpressure hints
  with the shared :class:`~repro.util.backoff.BackoffPolicy` — and
  returns a :class:`SoakResult` scoring throughput, max-min fairness,
  and per-job digest equality against the solo oracle.

Workloads are deliberately small (tens of milliseconds each): the soak
stresses the *scheduler*, not the engines — the engines have their own
benchmarks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from operator import add
from typing import Any, Callable, Sequence

from repro.rng.lcg import KNUTH_LCG, LcgParams, LinearCongruential
from repro.serve.admission import QueueFullError
from repro.serve.faults import ServeFaultPlan
from repro.serve.scheduler import JobContext, JobHandle, JobService
from repro.trace.history import result_digest
from repro.util.backoff import BackoffPolicy
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = [
    "TRAFFIC_WORKLOADS",
    "SoakResult",
    "TrafficJob",
    "generate_traffic",
    "job_body",
    "max_min_share",
    "run_soak",
    "run_solo",
]

#: Workload mix drawn by the generator, draw-interval order.
TRAFFIC_WORKLOADS = ("wordcount", "kmeans", "nyc")

#: One tenant's draw stream sits this far from the next in the LCG sequence.
_STREAM_SPACING = 1 << 20


@dataclass(frozen=True)
class TrafficJob:
    """One queued unit of tenant work: what to run, for whom, how urgent."""

    tenant: str
    workload: str
    priority: int
    seed: int
    arrival: float
    name: str

    def __post_init__(self) -> None:
        if self.workload not in TRAFFIC_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; expected one of {TRAFFIC_WORKLOADS}"
            )
        require_nonnegative_int("seed", self.seed)
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")


def generate_traffic(
    seed: int,
    *,
    tenants: int = 4,
    jobs_per_tenant: int = 50,
    priorities: Sequence[int] = (0, 1, 2),
    mean_gap: float = 0.0,
    workloads: Sequence[str] = TRAFFIC_WORKLOADS,
    params: LcgParams = KNUTH_LCG,
) -> tuple[TrafficJob, ...]:
    """A reproducible multi-tenant job mix, sorted by arrival time.

    Each tenant owns a fast-forwarded block of one LCG sequence and
    draws, per job: a workload (uniform over ``workloads``), a priority
    (uniform over ``priorities``), and an inter-arrival gap (uniform in
    ``[0, 2 * mean_gap]`` — zero by default: an instantaneous burst,
    the hardest case for admission). Job seeds are
    ``tenant_index * jobs_per_tenant + job_index`` — distinct, stable,
    and independent of the draws, so the solo oracle never moves.
    """
    require_positive_int("tenants", tenants)
    require_positive_int("jobs_per_tenant", jobs_per_tenant)
    if not workloads:
        raise ValueError("workloads must be non-empty")
    for w in workloads:
        if w not in TRAFFIC_WORKLOADS:
            raise ValueError(f"unknown workload {w!r}; expected one of {TRAFFIC_WORKLOADS}")
    if not priorities:
        raise ValueError("priorities must be non-empty")
    if mean_gap < 0:
        raise ValueError(f"mean_gap must be >= 0, got {mean_gap}")
    base = LinearCongruential(params, seed)
    jobs: list[TrafficJob] = []
    for t in range(tenants):
        stream = base.jumped(_STREAM_SPACING * t)
        tenant = f"tenant{t}"
        arrival = 0.0
        for j in range(jobs_per_tenant):
            workload = workloads[int(stream.next_uniform() * len(workloads)) % len(workloads)]
            priority = priorities[int(stream.next_uniform() * len(priorities)) % len(priorities)]
            arrival += stream.next_uniform() * 2.0 * mean_gap
            jobs.append(
                TrafficJob(
                    tenant=tenant,
                    workload=workload,
                    priority=priority,
                    seed=t * jobs_per_tenant + j,
                    arrival=arrival,
                    name=f"{workload}-{t}.{j}",
                )
            )
    jobs.sort(key=lambda job: (job.arrival, job.tenant, job.name))
    return tuple(jobs)


# ----------------------------------------------------------------------
# job bodies: pure functions of the job's seed
# ----------------------------------------------------------------------
def _wordcount_body(seed: int) -> Callable[[JobContext], Any]:
    lines = [
        f"line {i} the quick brown fox jumps over the lazy dog token{(i * (seed + 3)) % 7}"
        for i in range(60)
    ]

    def body(ctx: JobContext) -> dict[str, int]:
        with ctx.spark_context(2) as sc:
            counts = (
                sc.parallelize(lines, 4)
                .flat_map(str.split)
                .map(lambda w: (w, 1))
                .reduce_by_key(add)
                .collect()
            )
        return dict(sorted(counts))

    return body


def _kmeans_body(seed: int) -> Callable[[JobContext], Any]:
    def body(ctx: JobContext) -> Any:
        from repro.kmeans.parallel_kmeans import TerminationCriteria, kmeans_parallel
        from repro.knn.data import make_blobs

        ctx.check_cancelled()
        points, _labels = make_blobs(96, 2, 3, seed=seed)
        result = kmeans_parallel(
            points, 3, num_workers=2, backend="thread", kernel="numpy",
            seed=seed, criteria=TerminationCriteria(max_iterations=3),
        )
        return result.centroids

    return body


def _nyc_body(seed: int) -> Callable[[JobContext], Any]:
    def body(ctx: JobContext) -> Any:
        from repro.pipeline.nyc import generate_arrests, generate_ntas, nyc_arrests_pipeline

        ctx.check_cancelled()
        ntas = generate_ntas(2, 2, seed=seed)
        arrests = generate_arrests(300, ntas, year=2021, seed=seed)
        pipeline = nyc_arrests_pipeline(ntas, 2, 2, year_filter=2021, num_workers=2)
        return pipeline.run([arrests])

    return body


_BODIES: dict[str, Callable[[int], Callable[[JobContext], Any]]] = {
    "wordcount": _wordcount_body,
    "kmeans": _kmeans_body,
    "nyc": _nyc_body,
}


def job_body(job: TrafficJob) -> Callable[[JobContext], Any]:
    """The callable the service runs for ``job`` — pure in ``job.seed``."""
    return _BODIES[job.workload](job.seed)


def run_solo(job: TrafficJob) -> Any:
    """Run ``job``'s body outside any service — the bit-identity oracle."""
    ctx = JobContext(job.tenant, job.name, -1, threading.Event())
    try:
        return job_body(job)(ctx)
    finally:
        ctx._cleanup()


def max_min_share(completions: dict[str, int]) -> float:
    """min/max completed-jobs ratio across tenants (1.0 = perfectly fair)."""
    if not completions:
        return 1.0
    counts = list(completions.values())
    top = max(counts)
    return 1.0 if top == 0 else min(counts) / top


@dataclass
class SoakResult:
    """What one soak run proved (or didn't)."""

    jobs: int
    duration: float
    throughput: float
    states: dict[str, int]
    completions: dict[str, int]
    fairness: float
    mismatched: list[str]
    shed: list[str]
    handles: list[JobHandle] = field(repr=False, default_factory=list)

    def summary(self) -> str:
        lines = [
            f"SoakResult: {self.jobs} job(s) in {self.duration:.2f}s "
            f"({self.throughput:.1f} jobs/s), fairness {self.fairness:.2f}",
            f"  states: {dict(sorted(self.states.items()))}",
            f"  completions: {dict(sorted(self.completions.items()))}",
        ]
        if self.shed:
            lines.append(f"  shed: {len(self.shed)} job(s)")
        if self.mismatched:
            lines.append(f"  MISMATCHED vs solo: {self.mismatched}")
        return "\n".join(lines)


def run_soak(
    service: JobService,
    jobs: Sequence[TrafficJob],
    *,
    verify: bool = True,
    submit_backoff: BackoffPolicy | None = None,
    max_submit_retries: int = 200,
    pace: bool = False,
    timeout: float | None = 120.0,
) -> SoakResult:
    """Drive ``service`` through ``jobs`` and score the run.

    Submissions that hit backpressure retry on the
    :class:`~repro.serve.admission.QueueFullError` ``retry_after`` hint
    (floored by ``submit_backoff``); with ``pace=True`` the submitter
    honors each job's ``arrival`` offset, otherwise it submits as fast
    as admission allows. With ``verify=True`` every job that ended
    ``"done"`` is digest-compared against :func:`run_solo` (solo runs
    are cached per ``(workload, seed)``), and every job must have
    reached *some* terminal state — a queued-forever job fails the soak
    by tripping the drain ``timeout``.
    """
    backoff = submit_backoff if submit_backoff is not None else BackoffPolicy(0.001, cap=0.05)
    start = time.monotonic()
    handles: list[JobHandle] = []
    for index, job in enumerate(jobs):
        if pace:
            behind = job.arrival - (time.monotonic() - start)
            if behind > 0:
                time.sleep(behind)
        for attempt in range(max_submit_retries + 1):
            try:
                handles.append(
                    service.submit(
                        job.tenant, job_body(job), name=job.name, priority=job.priority
                    )
                )
                break
            except QueueFullError as exc:
                if attempt >= max_submit_retries:
                    raise
                time.sleep(max(exc.retry_after, backoff.delay(min(attempt, 8))))
    if not service.drain(timeout=timeout):
        raise TimeoutError(
            f"soak did not drain within {timeout}s: "
            f"{service.queue!r}, metrics={service.metrics!r}"
        )
    duration = time.monotonic() - start
    states: dict[str, int] = {}
    for handle in handles:
        states[handle.state] = states.get(handle.state, 0) + 1
    mismatched: list[str] = []
    if verify:
        oracle: dict[tuple[str, int], str] = {}
        by_name = {job.name: job for job in jobs}
        for handle in handles:
            if handle.state != "done":
                continue
            job = by_name[handle.name]
            key = (job.workload, job.seed)
            if key not in oracle:
                oracle[key] = result_digest(run_solo(job))
            if result_digest(handle.result()) != oracle[key]:
                mismatched.append(handle.name)
    completions = service.tenant_completions()
    shed = [rec.name for rec in service.shed_report.records]
    return SoakResult(
        jobs=len(handles),
        duration=duration,
        throughput=len(handles) / duration if duration > 0 else float("inf"),
        states=states,
        completions=completions,
        fairness=max_min_share(completions),
        mismatched=mismatched,
        shed=shed,
        handles=handles,
    )
