"""Table 1: four years of course-survey outcomes, reproduced end-to-end.

The paper aggregates open-ended survey feedback for winters 2019/20
through 2022/23 into Table 1 (students taking the exam / answering the
survey; positive and negative feedback items, total and project-
specific). We store the data at the *item* level — one record per
feedback item, one per student — and re-derive the table through a
Spark aggregation, so the bench regenerates Table 1 rather than just
echoing constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spark import SparkContext

__all__ = ["SurveyItem", "StudentRecord", "TABLE1_EXPECTED", "raw_survey_items", "raw_student_records", "aggregate_survey"]


@dataclass(frozen=True)
class SurveyItem:
    """One open-ended feedback item from the end-of-course survey."""

    winter: str
    positive: bool
    about_project: bool
    text: str = ""


@dataclass(frozen=True)
class StudentRecord:
    """One student's participation flags for a course year."""

    winter: str
    took_exam: bool
    answered_survey: bool


#: The published Table 1, keyed by winter term:
#: (exam, survey, pos_total, pos_project, neg_total, neg_project).
TABLE1_EXPECTED: dict[str, tuple[int, int, int, int, int, int]] = {
    "2022/23": (22, 11, 14, 8, 8, 4),
    "2021/22": (11, 12, 12, 3, 8, 1),
    "2020/21": (18, 9, 5, 2, 4, 0),
    "2019/20": (21, 11, 2, 0, 4, 0),
}

_POSITIVE_THEMES = [
    "practical experiences with Spark",
    "gaining practical experiences using a cluster",
    "high relevance for future data scientists",
    "improvement in my scientific writing skills",
    "the flexibility to formulate the research problem and design the solution",
]
_NEGATIVE_THEMES = [
    "increase or decrease the size of the programming project",
    "grade the project and let that grade constitute a percentage of the final grade",
]


def raw_survey_items() -> list[SurveyItem]:
    """Item-level records whose aggregation yields Table 1 exactly.

    Texts cycle through the themes the paper quotes; the project-related
    items come first within each (winter, polarity) group.
    """
    items: list[SurveyItem] = []
    for winter, (_exam, _survey, pos_t, pos_p, neg_t, neg_p) in TABLE1_EXPECTED.items():
        for i in range(pos_t):
            items.append(
                SurveyItem(
                    winter=winter,
                    positive=True,
                    about_project=i < pos_p,
                    text=_POSITIVE_THEMES[i % len(_POSITIVE_THEMES)],
                )
            )
        for i in range(neg_t):
            items.append(
                SurveyItem(
                    winter=winter,
                    positive=False,
                    about_project=i < neg_p,
                    text=_NEGATIVE_THEMES[i % len(_NEGATIVE_THEMES)],
                )
            )
    return items


def raw_student_records() -> list[StudentRecord]:
    """Per-student exam/survey participation matching Table 1's counts.

    The paper does not say which students overlap; we mark the first
    ``survey`` students of each year as respondents (the aggregate is
    insensitive to the choice).
    """
    records: list[StudentRecord] = []
    for winter, (exam, survey, *_rest) in TABLE1_EXPECTED.items():
        headcount = max(exam, survey)
        for i in range(headcount):
            records.append(
                StudentRecord(
                    winter=winter,
                    took_exam=i < exam,
                    answered_survey=i < survey,
                )
            )
    return records


def aggregate_survey(
    sc: SparkContext,
    items: list[SurveyItem],
    students: list[StudentRecord],
) -> dict[str, tuple[int, int, int, int, int, int]]:
    """Recompute Table 1 rows from raw records via Spark aggregations."""
    item_counts = (
        sc.parallelize(items)
        .map(lambda it: (it.winter, (
            1 if it.positive else 0,
            1 if it.positive and it.about_project else 0,
            0 if it.positive else 1,
            1 if (not it.positive) and it.about_project else 0,
        )))
        .reduce_by_key(lambda a, b: tuple(x + y for x, y in zip(a, b)))
        .collect_as_map()
    )
    student_counts = (
        sc.parallelize(students)
        .map(lambda s: (s.winter, (1 if s.took_exam else 0, 1 if s.answered_survey else 0)))
        .reduce_by_key(lambda a, b: (a[0] + b[0], a[1] + b[1]))
        .collect_as_map()
    )
    table: dict[str, tuple[int, int, int, int, int, int]] = {}
    for winter in set(item_counts) | set(student_counts):
        exam, survey = student_counts.get(winter, (0, 0))
        pos_t, pos_p, neg_t, neg_p = item_counts.get(winter, (0, 0, 0, 0))
        table[winter] = (exam, survey, pos_t, pos_p, neg_t, neg_p)
    return table
