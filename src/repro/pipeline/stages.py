"""The workflow framework and the assignment's grading rubric.

Students must "go through multiple steps of a typical data analysis
workflow (data aggregation, cleaning, analysis, communication of
findings using visualization)" over "at least two real-world datasets"
answering "at least three different data analysis problems". Those
rules are encoded executable:

- :class:`Stage` — one named, typed workflow step (a function);
- :class:`Pipeline` — an ordered stage list with run reports;
- :class:`ProjectSpec` + :func:`validate_project` — the rubric check an
  instructor (or a student, pre-submission) runs against a project.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark import JobMetrics, SparkFaultPlan, SparkFaultReport

__all__ = [
    "StageKind",
    "Stage",
    "StageReport",
    "Pipeline",
    "SparkPipeline",
    "ProjectSpec",
    "validate_project",
]


class StageKind(enum.Enum):
    """The workflow steps the assignment's rubric names."""

    AGGREGATION = "aggregation"
    CLEANING = "cleaning"
    ANALYSIS = "analysis"
    VISUALIZATION = "visualization"


@dataclass(frozen=True)
class Stage:
    """One step: ``fn`` maps the previous stage's output to this one's."""

    name: str
    kind: StageKind
    fn: Callable[[Any], Any]


@dataclass
class StageReport:
    """What happened when a stage ran."""

    name: str
    kind: StageKind
    seconds: float
    output_summary: str


class Pipeline:
    """An ordered, typed sequence of stages with execution reporting."""

    def __init__(self, name: str, stages: Sequence[Stage] | None = None) -> None:
        if not name:
            raise ValueError("pipeline needs a name")
        self.name = name
        self.stages: list[Stage] = list(stages) if stages else []
        self.reports: list[StageReport] = []

    def add_stage(self, name: str, kind: StageKind, fn: Callable[[Any], Any]) -> "Pipeline":
        """Append a stage; returns self for chaining."""
        self.stages.append(Stage(name, kind, fn))
        return self

    def run(self, data: Any) -> Any:
        """Run all stages in order; stores per-stage reports."""
        if not self.stages:
            raise ValueError(f"pipeline {self.name!r} has no stages")
        self.reports = []
        for stage in self.stages:
            start = time.perf_counter()
            data = stage.fn(data)
            elapsed = time.perf_counter() - start
            summary = _summarize(data)
            self.reports.append(StageReport(stage.name, stage.kind, elapsed, summary))
        return data

    def kinds_used(self) -> set[StageKind]:
        """The distinct workflow-step kinds present."""
        return {s.kind for s in self.stages}


class SparkPipeline(Pipeline):
    """A workflow whose stages share one managed :class:`~repro.spark.SparkContext`.

    Stage functions take ``(sc, data)`` instead of ``(data)``: each
    :meth:`run` opens a fresh context (``with SparkContext(...)``), threads
    it through every stage, and stops it on the way out — so pipelines
    can't leak contexts or touch a stopped one.

    The constructor surfaces the engine's robustness knobs on the
    workflow itself: ``fault_plan`` installs deterministic fault
    injection + recovery (see :mod:`repro.spark.faults`) and
    ``max_task_retries`` bounds per-task retries. ``memory_budget``
    (bytes) caps resident shuffle memory and spills the excess to disk
    (``spill_compress`` zlib-compresses the runs); ``verify_reads``
    checksums every shuffle fetch. For any plan/budget a run survives,
    its output is bit-identical to the unbounded fault-free run. After a
    run, ``last_metrics`` / ``last_fault_report`` hold the context's
    counters and fired-fault evidence.
    """

    def __init__(
        self,
        name: str,
        stages: Sequence[Stage] | None = None,
        *,
        num_workers: int = 4,
        fault_plan: "SparkFaultPlan | None" = None,
        max_task_retries: int = 3,
        memory_budget: int | None = None,
        spill_compress: bool = False,
        verify_reads: bool = False,
    ) -> None:
        super().__init__(name, stages)
        self.num_workers = num_workers
        self.fault_plan = fault_plan
        self.max_task_retries = max_task_retries
        self.memory_budget = memory_budget
        self.spill_compress = spill_compress
        self.verify_reads = verify_reads
        self.last_metrics: "JobMetrics | None" = None
        self.last_fault_report: "SparkFaultReport | None" = None

    def run(self, data: Any) -> Any:
        """Run all stages in order against a fresh managed context."""
        from repro.spark import SparkContext

        if not self.stages:
            raise ValueError(f"pipeline {self.name!r} has no stages")
        self.reports = []
        with SparkContext(
            self.num_workers,
            name=f"SparkPipeline({self.name})",
            fault_plan=self.fault_plan,
            max_task_retries=self.max_task_retries,
            memory_budget=self.memory_budget,
            spill_compress=self.spill_compress,
            verify_reads=self.verify_reads,
        ) as sc:
            for stage in self.stages:
                start = time.perf_counter()
                data = stage.fn(sc, data)
                elapsed = time.perf_counter() - start
                self.reports.append(
                    StageReport(stage.name, stage.kind, elapsed, _summarize(data))
                )
            self.last_metrics = sc.metrics
            self.last_fault_report = sc.fault_report
        return data


def _summarize(data: Any) -> str:
    try:
        return f"{type(data).__name__}({len(data)})"
    except TypeError:
        return type(data).__name__


@dataclass
class ProjectSpec:
    """A team's project: datasets used, analysis problems (pipelines), report."""

    title: str
    dataset_names: list[str]
    problems: list[Pipeline]
    report_text: str = ""
    presented_in_class: bool = False
    code_submitted: bool = False

    required_kinds: tuple[StageKind, ...] = field(
        default=(
            StageKind.AGGREGATION,
            StageKind.CLEANING,
            StageKind.ANALYSIS,
            StageKind.VISUALIZATION,
        )
    )


def validate_project(spec: ProjectSpec) -> list[str]:
    """The assignment rubric; returns violations (empty = admissible).

    Checks the six prerequisites from the paper: (i) ≥2 datasets,
    (ii) ≥3 analysis problems, (iii) implemented (pipelines non-empty),
    (iv) multiple workflow steps covered, (v) presented in class,
    (vi) code + report submitted.
    """
    violations: list[str] = []
    if len(set(spec.dataset_names)) < 2:
        violations.append("needs at least two distinct real-world datasets (prerequisite i)")
    if len(spec.problems) < 3:
        violations.append("needs at least three data analysis problems (prerequisite ii)")
    if any(not p.stages for p in spec.problems):
        violations.append("every analysis problem needs an implemented pipeline (prerequisite iii)")
    covered = set().union(*(p.kinds_used() for p in spec.problems)) if spec.problems else set()
    missing = [k.value for k in spec.required_kinds if k not in covered]
    if missing:
        violations.append(
            f"workflow steps not covered anywhere: {', '.join(missing)} (prerequisite iv)"
        )
    if not spec.presented_in_class:
        violations.append("findings must be presented in class (prerequisite v)")
    if not spec.code_submitted or not spec.report_text.strip():
        violations.append("code and a final project report must be submitted (prerequisite vi)")
    return violations
