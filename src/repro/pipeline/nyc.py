"""The Figure 2 exemplar: arrests per 100 000 residents per NTA.

The student project the paper showcases combines four NYC Open Data
datasets — arrests (historic + current year), NTA boundaries, and NTA
population — into a pipeline that "identifies the spatial positions of
all arrests, accumulates the number of arrests in each neighborhood,
and plots a heat map".

Offline substitution (per DESIGN.md): synthetic generators produce the
same relational shape — a grid of NTA polygons with populations, and
arrest events with coordinates, year, and offense category, including a
controlled fraction of dirty rows for the cleaning stage to catch.

:func:`arrests_per_100k` is the pipeline itself, written on
:mod:`repro.spark` exactly as the course teaches it: parallelize →
filter (clean) → spatial join via a broadcast boundary table →
reduceByKey → join with population → normalize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.geometry import Polygon
from repro.spark import SparkContext
from repro.util.validation import require_positive_int

__all__ = [
    "NTA",
    "Arrest",
    "generate_ntas",
    "generate_arrests",
    "locate_nta",
    "arrests_per_100k",
    "nyc_arrests_pipeline",
    "heat_map_matrix",
]

_BOROUGHS = ["Bronx", "Brooklyn", "Manhattan", "Queens", "Staten Island"]
_OFFENSES = ["assault", "larceny", "burglary", "fraud", "mischief", "robbery"]


@dataclass(frozen=True)
class NTA:
    """One Neighborhood Tabulation Area: boundary + census population."""

    code: str
    name: str
    borough: str
    polygon: Polygon
    population: int


@dataclass(frozen=True)
class Arrest:
    """One arrest record (the two arrest datasets share this schema)."""

    x: float
    y: float
    year: int
    offense: str
    valid: bool = True  # generator marks rows with corrupted coordinates


def generate_ntas(rows: int, cols: int, seed: int = 0) -> list[NTA]:
    """A ``rows × cols`` grid of rectangular NTAs over the unit square.

    Populations are log-uniform between 10k and 150k — roughly the
    spread of real NTA populations.
    """
    require_positive_int("rows", rows)
    require_positive_int("cols", cols)
    rng = np.random.default_rng(seed)
    ntas: list[NTA] = []
    for r in range(rows):
        for c in range(cols):
            code = f"NTA{r:02d}{c:02d}"
            poly = Polygon.rectangle(c / cols, r / rows, (c + 1) / cols, (r + 1) / rows)
            population = int(np.exp(rng.uniform(np.log(10_000), np.log(150_000))))
            ntas.append(
                NTA(
                    code=code,
                    name=f"Neighborhood {r}-{c}",
                    borough=_BOROUGHS[(r * cols + c) % len(_BOROUGHS)],
                    polygon=poly,
                    population=population,
                )
            )
    return ntas


def generate_arrests(
    n: int,
    ntas: list[NTA],
    year: int,
    seed: int = 0,
    *,
    dirty_fraction: float = 0.02,
) -> list[Arrest]:
    """``n`` arrest events for one year.

    Each NTA's arrest intensity is population times a per-NTA crime
    factor, so rates per 100k genuinely differ across neighborhoods.
    ``dirty_fraction`` of rows get out-of-range coordinates, which the
    cleaning stage must drop.
    """
    require_positive_int("n", n)
    if not ntas:
        raise ValueError("need at least one NTA")
    if not 0.0 <= dirty_fraction < 1.0:
        raise ValueError("dirty_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed + year)
    crime_factor = rng.uniform(0.3, 3.0, size=len(ntas))
    weights = np.array([nta.population for nta in ntas]) * crime_factor
    weights = weights / weights.sum()
    choices = rng.choice(len(ntas), size=n, p=weights)
    arrests: list[Arrest] = []
    for i, nta_idx in enumerate(choices):
        box = ntas[nta_idx].polygon.bbox
        x = rng.uniform(box.min_x, box.max_x)
        y = rng.uniform(box.min_y, box.max_y)
        dirty = rng.random() < dirty_fraction
        if dirty:
            x, y = -999.0, -999.0
        arrests.append(
            Arrest(
                x=x,
                y=y,
                year=year,
                offense=_OFFENSES[int(rng.integers(len(_OFFENSES)))],
                valid=not dirty,
            )
        )
    return arrests


def locate_nta(x: float, y: float, ntas: list[NTA]) -> str | None:
    """Code of the NTA containing (x, y), or None if outside all of them."""
    for nta in ntas:
        if nta.polygon.contains(x, y):
            return nta.code
    return None


def arrests_per_100k(
    sc: SparkContext,
    arrest_datasets: list[list[Arrest]],
    ntas: list[NTA],
    *,
    year_filter: int | None = None,
) -> tuple[dict[str, float], dict[str, int]]:
    """The Figure 2 pipeline on mini-Spark.

    ``arrest_datasets`` is the list of raw datasets (e.g. historic +
    current-year arrests). Returns (rates, diagnostics) where ``rates``
    maps NTA code → arrests per 100 000 residents and ``diagnostics``
    reports rows dropped by cleaning and rows outside every NTA.
    """
    if not ntas:
        raise ValueError("need at least one NTA")
    dropped = sc.accumulator(0)
    unlocated = sc.accumulator(0)
    boundaries = sc.broadcast(ntas)

    # Aggregation: union the raw datasets into one RDD.
    rdd = sc.parallelize(arrest_datasets[0])
    for extra in arrest_datasets[1:]:
        rdd = rdd.union(sc.parallelize(extra))
    if year_filter is not None:
        rdd = rdd.filter(lambda a: a.year == year_filter)

    # Cleaning: drop corrupt coordinates, counting what we discard.
    def is_clean(arrest: Arrest) -> bool:
        if arrest.valid and 0.0 <= arrest.x <= 1.0 and 0.0 <= arrest.y <= 1.0:
            return True
        dropped.add(1)
        return False

    clean = rdd.filter(is_clean)

    # Analysis: spatial join against the broadcast boundaries, then count.
    def to_nta(arrest: Arrest):
        code = locate_nta(arrest.x, arrest.y, boundaries.value)
        if code is None:
            unlocated.add(1)
            return []
        return [(code, 1)]

    counts = clean.flat_map(to_nta).reduce_by_key(lambda a, b: a + b)

    # Analysis: join with the population table and normalize per 100k.
    population = sc.parallelize([(nta.code, nta.population) for nta in ntas])
    rates = (
        counts.join(population)
        .map_values(lambda cp: 100_000.0 * cp[0] / cp[1])
        .collect_as_map()
    )
    # NTAs with zero arrests still appear (rate 0), as a real report would show.
    for nta in ntas:
        rates.setdefault(nta.code, 0.0)
    return rates, {"dropped": dropped.value, "unlocated": unlocated.value}


def nyc_arrests_pipeline(
    ntas: list[NTA],
    rows: int,
    cols: int,
    *,
    year_filter: int | None = None,
    num_workers: int = 4,
    fault_plan=None,
    max_task_retries: int = 3,
    memory_budget: int | None = None,
    spill_compress: bool = False,
    verify_reads: bool = False,
):
    """Figure 2 as a four-stage :class:`~repro.pipeline.stages.SparkPipeline`.

    The same computation as :func:`arrests_per_100k` plus the heat-map
    step, expressed in the workflow framework's terms — one stage per
    rubric kind (aggregation → cleaning → analysis → visualization) —
    and with the engine's robustness knobs surfaced: pass a
    ``fault_plan`` (:class:`~repro.spark.SparkFaultPlan`) and the run
    executes under deterministic fault injection + recovery, returning a
    heat-map matrix bit-identical to the fault-free run; pass a
    ``memory_budget`` (bytes) and the shuffle tier runs out-of-core,
    spilling (optionally zlib-compressed) sorted runs to disk — again
    bit-identical to the unbounded run.

    ``pipeline.run(arrest_datasets)`` (the list of raw datasets, e.g.
    historic + current-year) returns the matrix; after a run,
    ``pipeline.rates`` and ``pipeline.diagnostics`` hold the
    intermediate rates map and the cleaning/locating tallies, and
    ``pipeline.last_fault_report`` the fired-fault evidence.
    """
    from repro.pipeline.stages import SparkPipeline, StageKind

    if not ntas:
        raise ValueError("need at least one NTA")
    require_positive_int("rows", rows)
    require_positive_int("cols", cols)
    pipeline = SparkPipeline(
        "nyc-arrests-per-100k",
        num_workers=num_workers,
        fault_plan=fault_plan,
        max_task_retries=max_task_retries,
        memory_budget=memory_budget,
        spill_compress=spill_compress,
        verify_reads=verify_reads,
    )
    pipeline.rates = None
    pipeline.diagnostics = None
    state: dict = {}

    def aggregate(sc: SparkContext, datasets: list[list[Arrest]]):
        rdd = sc.parallelize(datasets[0])
        for extra in datasets[1:]:
            rdd = rdd.union(sc.parallelize(extra))
        if year_filter is not None:
            rdd = rdd.filter(lambda a: a.year == year_filter)
        return rdd

    def clean(sc: SparkContext, rdd):
        dropped = sc.accumulator(0)
        state["dropped"] = dropped

        def is_clean(arrest: Arrest) -> bool:
            if arrest.valid and 0.0 <= arrest.x <= 1.0 and 0.0 <= arrest.y <= 1.0:
                return True
            dropped.add(1)
            return False

        return rdd.filter(is_clean)

    def analyze(sc: SparkContext, clean_rdd):
        unlocated = sc.accumulator(0)
        boundaries = sc.broadcast(ntas)

        def to_nta(arrest: Arrest):
            code = locate_nta(arrest.x, arrest.y, boundaries.value)
            if code is None:
                unlocated.add(1)
                return []
            return [(code, 1)]

        counts = clean_rdd.flat_map(to_nta).reduce_by_key(lambda a, b: a + b)
        population = sc.parallelize([(nta.code, nta.population) for nta in ntas])
        rates = (
            counts.join(population)
            .map_values(lambda cp: 100_000.0 * cp[0] / cp[1])
            .collect_as_map()
        )
        for nta in ntas:
            rates.setdefault(nta.code, 0.0)
        pipeline.rates = rates
        # The actions just ran, so the accumulators are final here.
        pipeline.diagnostics = {
            "dropped": state["dropped"].value,
            "unlocated": unlocated.value,
        }
        return rates

    def visualize(_sc: SparkContext, rates: dict[str, float]):
        return heat_map_matrix(rates, rows, cols)

    pipeline.add_stage("aggregate", StageKind.AGGREGATION, aggregate)
    pipeline.add_stage("clean", StageKind.CLEANING, clean)
    pipeline.add_stage("analyze", StageKind.ANALYSIS, analyze)
    pipeline.add_stage("visualize", StageKind.VISUALIZATION, visualize)
    return pipeline


def arrests_dataframe(sc: SparkContext, arrests: list[Arrest], ntas: list[NTA]):
    """The cleaned, located arrest table as a :class:`~repro.spark.DataFrame`.

    Columns: ``nta``, ``borough``, ``year``, ``offense``. Rows with
    corrupt coordinates or falling outside every NTA are dropped — the
    same cleaning contract as :func:`arrests_per_100k`, but expressed in
    the DataFrame dialect most student teams actually submit in.
    """
    from repro.spark.dataframe import DataFrame

    boundaries = sc.broadcast(ntas)
    borough_of = {nta.code: nta.borough for nta in ntas}

    def to_row(arrest: Arrest):
        if not (arrest.valid and 0.0 <= arrest.x <= 1.0 and 0.0 <= arrest.y <= 1.0):
            return []
        code = locate_nta(arrest.x, arrest.y, boundaries.value)
        if code is None:
            return []
        return [
            {
                "nta": code,
                "borough": borough_of[code],
                "year": arrest.year,
                "offense": arrest.offense,
            }
        ]

    rows_rdd = sc.parallelize(arrests).flat_map(to_row)
    return DataFrame(rows_rdd, ["nta", "borough", "year", "offense"])


def rates_via_dataframe(
    sc: SparkContext, arrests: list[Arrest], ntas: list[NTA]
) -> dict[str, float]:
    """Figure 2's rates computed through the DataFrame API.

    ``arrests_dataframe → group_by("nta").count → join(population) →
    with_column(rate)`` — must agree exactly with the RDD pipeline
    (asserted in tests).
    """
    from repro.spark.dataframe import DataFrame

    counts = arrests_dataframe(sc, arrests, ntas).group_by("nta").count()
    population = DataFrame.from_rows(
        sc, [{"nta": n.code, "population": n.population} for n in ntas]
    )
    rates = (
        counts.join(population, on="nta")
        .with_column("rate", lambda r: 100_000.0 * r["count"] / r["population"])
        .select("nta", "rate")
    )
    out = {row["nta"]: row["rate"] for row in rates.collect()}
    for nta in ntas:
        out.setdefault(nta.code, 0.0)
    return out


def heat_map_matrix(rates: dict[str, float], rows: int, cols: int) -> np.ndarray:
    """Visualization: the rates arranged on the NTA grid.

    The matrix is what Figure 2's choropleth colors — entry (r, c) is
    the rate of ``NTA{r}{c}``.
    """
    require_positive_int("rows", rows)
    require_positive_int("cols", cols)
    matrix = np.zeros((rows, cols))
    for r in range(rows):
        for c in range(cols):
            matrix[r, c] = rates.get(f"NTA{r:02d}{c:02d}", 0.0)
    return matrix
