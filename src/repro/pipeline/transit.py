"""A second worked pipeline project: transit delays vs weather.

The pipeline assignment gives teams "a completely free choice of topic"
(paper §4); the NYC-crime exemplar is the paper's, and this module is a
second complete submission-shaped project, built in the DataFrame
dialect, to demonstrate that the framework generalizes beyond the
showcased one. Two synthetic datasets —

- daily **weather** (condition, temperature), and
- per-trip **transit** records (route, day, delay minutes, cancelled) —

and three analysis problems:

1. mean delay by weather condition (join + group-aggregate);
2. the most delay-prone routes (aggregate + order + limit);
3. cancellation rate as a function of condition severity.

Delays are *generated* with a condition-dependent shift, so the analyses
have a known ground truth the tests check against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spark import SparkContext
from repro.spark.dataframe import DataFrame
from repro.util.validation import require_positive_int

__all__ = [
    "WeatherDay",
    "Trip",
    "generate_weather",
    "generate_trips",
    "CONDITION_DELAY_SHIFT",
    "delay_by_condition",
    "worst_routes",
    "cancellation_by_condition",
]

#: Ground truth built into the generator: added mean delay (minutes) and
#: cancellation probability per weather condition.
CONDITION_DELAY_SHIFT: dict[str, tuple[float, float]] = {
    "clear": (0.0, 0.01),
    "rain": (4.0, 0.03),
    "snow": (12.0, 0.12),
    "storm": (20.0, 0.25),
}


@dataclass(frozen=True)
class WeatherDay:
    """One day's weather record."""

    day: int
    condition: str
    temperature: float


@dataclass(frozen=True)
class Trip:
    """One transit trip record."""

    route: str
    day: int
    delay_minutes: float
    cancelled: bool


def generate_weather(num_days: int, seed: int = 0) -> list[WeatherDay]:
    """Daily conditions with winter-ish frequencies."""
    require_positive_int("num_days", num_days)
    rng = np.random.default_rng(seed)
    conditions = list(CONDITION_DELAY_SHIFT)
    probs = np.array([0.55, 0.25, 0.15, 0.05])
    out = []
    for day in range(num_days):
        condition = conditions[int(rng.choice(len(conditions), p=probs))]
        temp = {"clear": 8.0, "rain": 5.0, "snow": -3.0, "storm": 1.0}[condition]
        out.append(WeatherDay(day, condition, temp + float(rng.normal(0, 3))))
    return out


def generate_trips(
    weather: list[WeatherDay],
    routes: int = 8,
    trips_per_route_day: int = 6,
    seed: int = 0,
) -> list[Trip]:
    """Trips whose delays follow the per-condition ground truth.

    Each route also carries its own base delay (route r adds r/2
    minutes), so "worst route" has a deterministic right answer.
    """
    require_positive_int("routes", routes)
    require_positive_int("trips_per_route_day", trips_per_route_day)
    rng = np.random.default_rng(seed + 1)
    out = []
    for day_record in weather:
        shift, p_cancel = CONDITION_DELAY_SHIFT[day_record.condition]
        for r in range(routes):
            for _ in range(trips_per_route_day):
                cancelled = bool(rng.random() < p_cancel)
                delay = max(0.0, float(rng.normal(3.0 + r / 2.0 + shift, 2.0)))
                out.append(
                    Trip(
                        route=f"R{r:02d}",
                        day=day_record.day,
                        delay_minutes=0.0 if cancelled else delay,
                        cancelled=cancelled,
                    )
                )
    return out


def _frames(
    sc: SparkContext, weather: list[WeatherDay], trips: list[Trip]
) -> tuple[DataFrame, DataFrame]:
    weather_df = DataFrame.from_rows(
        sc,
        [{"day": w.day, "condition": w.condition, "temperature": w.temperature} for w in weather],
    )
    trips_df = DataFrame.from_rows(
        sc,
        [
            {
                "route": t.route,
                "day": t.day,
                "delay": t.delay_minutes,
                "cancelled": t.cancelled,
            }
            for t in trips
        ],
    )
    return weather_df, trips_df


def delay_by_condition(
    sc: SparkContext, weather: list[WeatherDay], trips: list[Trip]
) -> dict[str, float]:
    """Problem 1: mean delay of *completed* trips per weather condition."""
    weather_df, trips_df = _frames(sc, weather, trips)
    result = (
        trips_df.where(lambda r: not r["cancelled"])
        .join(weather_df.select("day", "condition"), on="day")
        .group_by("condition")
        .agg({"mean_delay": ("delay", "mean")})
    )
    return {row["condition"]: row["mean_delay"] for row in result.collect()}


def worst_routes(
    sc: SparkContext, weather: list[WeatherDay], trips: list[Trip], top: int = 3
) -> list[tuple[str, float]]:
    """Problem 2: routes ranked by mean completed-trip delay, worst first."""
    require_positive_int("top", top)
    _, trips_df = _frames(sc, weather, trips)
    ranked = (
        trips_df.where(lambda r: not r["cancelled"])
        .group_by("route")
        .agg({"mean_delay": ("delay", "mean")})
        .order_by("mean_delay", ascending=False)
        .limit(top)
    )
    return [(row["route"], row["mean_delay"]) for row in ranked.collect()]


def cancellation_by_condition(
    sc: SparkContext, weather: list[WeatherDay], trips: list[Trip]
) -> dict[str, float]:
    """Problem 3: fraction of trips cancelled per weather condition."""
    weather_df, trips_df = _frames(sc, weather, trips)
    result = (
        trips_df.with_column("cancelled_n", lambda r: 1 if r["cancelled"] else 0)
        .join(weather_df.select("day", "condition"), on="day")
        .group_by("condition")
        .agg({"rate": ("cancelled_n", "mean"), "trips": ("route", "count")})
    )
    return {row["condition"]: row["rate"] for row in result.collect()}
