"""Data-science pipelines on mini-Spark — Peachy assignment §4.

The assignment is an open-ended three-week project: teams pick ≥2
real-world datasets, formulate ≥3 analysis problems, implement them in
Spark, and traverse a full workflow (aggregation, cleaning, analysis,
visualization). This package provides:

- :mod:`repro.pipeline.stages` — the workflow framework: typed stages,
  run reports, and a validator encoding the assignment's rubric;
- :mod:`repro.pipeline.nyc` — the exemplar project from the paper
  (Figure 2): NYC arrests joined spatially against Neighborhood
  Tabulation Areas and census population, producing arrests-per-100k
  rates and a heat-map matrix — with synthetic stand-ins for the
  data.cityofnewyork.us datasets;
- :mod:`repro.pipeline.geometry` — point-in-polygon and friends for the
  spatial join;
- :mod:`repro.pipeline.survey` — the classroom-evaluation data of
  Table 1, stored as raw survey records and re-aggregated through a
  Spark pipeline that must reproduce the table exactly.
"""

from repro.pipeline.geometry import BoundingBox, Polygon
from repro.pipeline.nyc import (
    NTA,
    Arrest,
    arrests_per_100k,
    generate_arrests,
    generate_ntas,
    heat_map_matrix,
    nyc_arrests_pipeline,
)
from repro.pipeline.stages import (
    Pipeline,
    ProjectSpec,
    SparkPipeline,
    Stage,
    StageKind,
    validate_project,
)
from repro.pipeline.survey import TABLE1_EXPECTED, aggregate_survey, raw_survey_items
from repro.pipeline.transit import (
    cancellation_by_condition,
    delay_by_condition,
    generate_trips,
    generate_weather,
    worst_routes,
)

__all__ = [
    "Polygon",
    "BoundingBox",
    "Stage",
    "StageKind",
    "Pipeline",
    "SparkPipeline",
    "ProjectSpec",
    "validate_project",
    "NTA",
    "Arrest",
    "generate_ntas",
    "generate_arrests",
    "arrests_per_100k",
    "nyc_arrests_pipeline",
    "heat_map_matrix",
    "TABLE1_EXPECTED",
    "raw_survey_items",
    "aggregate_survey",
    "generate_weather",
    "generate_trips",
    "delay_by_condition",
    "worst_routes",
    "cancellation_by_condition",
]
