"""Planar geometry for the spatial-join stage of the NYC pipeline.

The Figure 2 pipeline "identifies the spatial positions of all arrests"
— i.e. assigns each arrest point to the Neighborhood Tabulation Area
polygon containing it. Point-in-polygon is the classic even–odd ray
cast, with a bounding-box pre-check so the join scans cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["BoundingBox", "Polygon"]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned rectangle (min/max corner)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def contains(self, x: float, y: float) -> bool:
        """Closed-box membership."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y


class Polygon:
    """A simple (non-self-intersecting) polygon given by its vertex ring."""

    def __init__(self, vertices: Sequence[tuple[float, float]]) -> None:
        if len(vertices) < 3:
            raise ValueError(f"a polygon needs >= 3 vertices, got {len(vertices)}")
        self.vertices = [(float(x), float(y)) for x, y in vertices]
        xs = [x for x, _ in self.vertices]
        ys = [y for _, y in self.vertices]
        self.bbox = BoundingBox(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def rectangle(cls, min_x: float, min_y: float, max_x: float, max_y: float) -> "Polygon":
        """Axis-aligned rectangle polygon (CCW ring)."""
        if max_x <= min_x or max_y <= min_y:
            raise ValueError("rectangle must have positive extent")
        return cls([(min_x, min_y), (max_x, min_y), (max_x, max_y), (min_x, max_y)])

    def contains(self, x: float, y: float) -> bool:
        """Even–odd ray-cast membership (boundary points count as inside
        on the lower/left edges, so tiles partition the plane cleanly)."""
        if not self.bbox.contains(x, y):
            return False
        inside = False
        verts = self.vertices
        j = len(verts) - 1
        for i in range(len(verts)):
            xi, yi = verts[i]
            xj, yj = verts[j]
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def area(self) -> float:
        """Shoelace area (absolute value)."""
        verts = self.vertices
        twice = 0.0
        j = len(verts) - 1
        for i in range(len(verts)):
            twice += verts[j][0] * verts[i][1] - verts[i][0] * verts[j][1]
            j = i
        return abs(twice) / 2.0

    def centroid(self) -> tuple[float, float]:
        """Vertex-average centroid (adequate for convex tiles)."""
        n = len(self.vertices)
        return (
            sum(x for x, _ in self.vertices) / n,
            sum(y for _, y in self.vertices) / n,
        )

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices)"
