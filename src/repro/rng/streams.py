"""Strategies for sharing one random sequence among parallel workers.

Reproducibility in the traffic assignment (paper §5) demands that the
parallel code consume *exactly the same* shared random sequence as the
serial code, regardless of thread count. Three classic carvings of a
shared sequence are provided:

- :class:`SharedSequence` — random access into one global sequence:
  ``draws(start, count)`` fast-forwards a clone of the generator, the
  pattern the assignment's starter code teaches. Each simulation step
  consumes a contiguous batch of draws; each worker takes the slice of
  the batch matching the cars it owns.
- :class:`BlockSplitter` — convenience wrapper computing those per-worker
  slices with the same block layout as :func:`repro.util.block_bounds`.
- :class:`LeapfrogStream` — worker ``t`` of ``p`` consumes draws
  ``t, t+p, t+2p, …``; the other traditional decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.rng.lcg import LcgParams, LinearCongruential
from repro.util.partition import block_bounds
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["SharedSequence", "BlockSplitter", "LeapfrogStream"]


class SharedSequence:
    """Random access into the output sequence of a single seeded LCG.

    Draw ``i`` is defined as the generator's output after ``i + 1`` state
    updates from the seed — i.e. exactly what the ``i``-th call of
    ``next_uniform()`` on a fresh serial generator would return. All
    accessors are pure with respect to the sequence: two calls with the
    same arguments return the same values, so any number of workers can
    read disjoint (or even overlapping) windows concurrently.
    """

    def __init__(self, params: LcgParams, seed: int) -> None:
        self.params = params
        self.seed = seed
        self._origin = LinearCongruential(params, seed)

    def generator_at(self, start: int) -> LinearCongruential:
        """A generator positioned so its next output is draw ``start``."""
        require_nonnegative_int("start", start)
        return self._origin.jumped(start)

    def draws(self, start: int, count: int) -> np.ndarray:
        """Uniform draws ``start .. start+count`` of the shared sequence."""
        require_nonnegative_int("start", start)
        require_nonnegative_int("count", count)
        gen = self.generator_at(start)
        out = np.empty(count, dtype=float)
        for i in range(count):
            out[i] = gen.next_uniform()
        return out

    def serial_draws(self, count: int) -> np.ndarray:
        """The first ``count`` draws — what a serial code would consume."""
        return self.draws(0, count)


class BlockSplitter:
    """Per-step, per-worker windows into a :class:`SharedSequence`.

    A simulation step ``s`` that needs ``batch`` draws (one per car, say)
    occupies sequence positions ``[s*batch, (s+1)*batch)``. Worker ``w``
    of ``workers`` owning the ``w``-th block of the batch reads exactly
    the draws the serial code would have used for those cars — which is
    the whole reproducibility argument.
    """

    def __init__(self, sequence: SharedSequence, batch: int, workers: int) -> None:
        require_nonnegative_int("batch", batch)
        require_positive_int("workers", workers)
        self.sequence = sequence
        self.batch = batch
        self.workers = workers

    def worker_draws(self, step: int, worker: int) -> np.ndarray:
        """Draws for ``worker``'s block of step ``step``'s batch."""
        require_nonnegative_int("step", step)
        lo, hi = block_bounds(self.batch, self.workers, worker)
        return self.sequence.draws(step * self.batch + lo, hi - lo)

    def step_draws(self, step: int) -> np.ndarray:
        """All draws of step ``step`` (what the serial code consumes)."""
        return self.sequence.draws(step * self.batch, self.batch)


class LeapfrogStream:
    """Worker ``t`` of ``p`` consuming every ``p``-th draw of a shared sequence.

    Equivalent to the cyclic partition of the draw index space. Each call
    to :meth:`next_uniform` returns draw ``t``, then ``t + p``, then
    ``t + 2p``, … of the underlying sequence, using one O(log p) jump per
    draw.
    """

    def __init__(self, params: LcgParams, seed: int, worker: int, workers: int) -> None:
        require_positive_int("workers", workers)
        if not 0 <= worker < workers:
            raise ValueError(f"worker {worker} out of range for {workers} workers")
        self.worker = worker
        self.workers = workers
        self._gen = LinearCongruential(params, seed)
        self._next_index = worker  # next global draw index to emit

    def next_raw(self) -> int:
        """Raw output at the next leapfrogged position."""
        target_updates = self._next_index + 1  # draw i needs i+1 state updates
        self._gen.jump(target_updates - self._gen.position - 1)
        self._next_index += self.workers
        return self._gen.next_raw()

    def next_uniform(self) -> float:
        """Uniform draw at the next leapfrogged position."""
        return self.next_raw() / self._gen.params.m
