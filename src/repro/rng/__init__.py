"""Reproducible pseudo-random number generation for parallel codes.

The Nagel–Schreckenberg traffic assignment (paper §5) hinges on one
scientific-computing lesson: a stochastic simulation parallelized with
one PRNG per thread produces *different* results for different thread
counts, so reproducibility "requires using a shared sequence of random
numbers" and a generator that can quickly *fast-forward* to an arbitrary
position in that sequence. The C++ standard random library lacks such a
jump operation, so the assignment's starter code implements one for a
linear congruential generator — and so do we:

- :mod:`repro.rng.lcg` — linear congruential generators with an
  O(log n) ``jump`` built from affine-map composition by squaring.
- :mod:`repro.rng.streams` — the three classic strategies for carving a
  shared sequence among workers: block-splitting, leapfrogging, and
  per-step offset jumps.
- :mod:`repro.rng.counter` — a counter-based (stateless) generator, the
  modern alternative where draw *i* is a pure function of ``(seed, i)``.
- :mod:`repro.rng.distributions` — uniform/Bernoulli/integer draws on
  top of any raw generator.
"""

from repro.rng.counter import CounterRNG
from repro.rng.distributions import bernoulli, uniform, uniform_int
from repro.rng.lcg import (
    KNUTH_LCG,
    MINSTD,
    MINSTD0,
    AffineMap,
    LcgParams,
    LinearCongruential,
)
from repro.rng.streams import BlockSplitter, LeapfrogStream, SharedSequence

__all__ = [
    "AffineMap",
    "LcgParams",
    "LinearCongruential",
    "MINSTD",
    "MINSTD0",
    "KNUTH_LCG",
    "CounterRNG",
    "SharedSequence",
    "BlockSplitter",
    "LeapfrogStream",
    "uniform",
    "uniform_int",
    "bernoulli",
]
