"""Linear congruential generators with logarithmic-time fast-forward.

An LCG advances its state by the affine map ``x -> (a*x + c) mod m``.
Composing the map with itself ``n`` times is again an affine map
``x -> (A*x + C) mod m`` with::

    A = a^n mod m
    C = c * (a^(n-1) + ... + a + 1) mod m

Rather than evaluating the geometric sum directly (which requires a
modular inverse of ``a - 1`` that need not exist), we compose affine
maps by binary exponentiation — ``O(log n)`` multiplications, exact for
any modulus. This is the "moving ahead" algorithm the traffic assignment
implements for one of the C++ linear congruential engines (paper §5).

Predefined parameter sets:

- :data:`MINSTD0` — ``std::minstd_rand0`` (Lewis–Goodman–Miller, a=16807).
- :data:`MINSTD`  — ``std::minstd_rand`` (Park–Miller revised, a=48271).
- :data:`KNUTH_LCG` — Knuth's 64-bit MMIX generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_nonnegative_int

__all__ = ["AffineMap", "LcgParams", "LinearCongruential", "MINSTD0", "MINSTD", "KNUTH_LCG"]


@dataclass(frozen=True)
class AffineMap:
    """The map ``x -> (mul * x + add) mod modulus`` over Z_modulus."""

    mul: int
    add: int
    modulus: int

    def __call__(self, x: int) -> int:
        return (self.mul * x + self.add) % self.modulus

    def compose(self, other: "AffineMap") -> "AffineMap":
        """Return ``self ∘ other`` (apply ``other`` first, then ``self``)."""
        if self.modulus != other.modulus:
            raise ValueError("cannot compose affine maps over different moduli")
        m = self.modulus
        return AffineMap((self.mul * other.mul) % m, (self.mul * other.add + self.add) % m, m)

    def power(self, n: int) -> "AffineMap":
        """Return the n-fold self-composition, computed in O(log n) steps."""
        require_nonnegative_int("n", n)
        result = AffineMap(1, 0, self.modulus)  # identity
        base = self
        while n:
            if n & 1:
                result = result.compose(base)
            base = base.compose(base)
            n >>= 1
        return result


@dataclass(frozen=True)
class LcgParams:
    """Multiplier/increment/modulus triple defining an LCG family."""

    a: int
    c: int
    m: int
    name: str = "lcg"

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ValueError(f"modulus must be >= 2, got {self.m}")
        if not 0 < self.a < self.m:
            raise ValueError(f"multiplier must be in (0, m), got {self.a}")
        if not 0 <= self.c < self.m:
            raise ValueError(f"increment must be in [0, m), got {self.c}")

    @property
    def step_map(self) -> AffineMap:
        """The single-step state-update map."""
        return AffineMap(self.a, self.c, self.m)


#: ``std::minstd_rand0``: multiplicative Lehmer generator, period 2^31 - 2.
MINSTD0 = LcgParams(a=16807, c=0, m=2**31 - 1, name="minstd_rand0")

#: ``std::minstd_rand``: the revised Park–Miller multiplier.
MINSTD = LcgParams(a=48271, c=0, m=2**31 - 1, name="minstd_rand")

#: Knuth's MMIX 64-bit mixed LCG (full period 2^64).
KNUTH_LCG = LcgParams(
    a=6364136223846793005, c=1442695040888963407, m=2**64, name="knuth_mmix"
)


class LinearCongruential:
    """A stateful LCG stream with O(log n) :meth:`jump`.

    For multiplicative generators (``c == 0``, prime modulus) a zero
    state would be absorbing, so — matching the C++ engines — a seed of
    ``0`` is replaced by ``1``.

    >>> g = LinearCongruential(MINSTD, seed=42)
    >>> first = [g.next_raw() for _ in range(5)]
    >>> h = LinearCongruential(MINSTD, seed=42)
    >>> h.jump(3)
    >>> h.next_raw() == first[3]
    True
    """

    __slots__ = ("params", "_state", "_position")

    def __init__(self, params: LcgParams, seed: int) -> None:
        self.params = params
        state = seed % params.m
        if params.c == 0 and state == 0:
            state = 1
        self._state = state
        self._position = 0

    @property
    def state(self) -> int:
        """Current internal state (the *next* raw draw is derived from it)."""
        return self._state

    @property
    def position(self) -> int:
        """Number of raw draws (plus jumped steps) consumed so far."""
        return self._position

    def clone(self) -> "LinearCongruential":
        """Independent copy at the same stream position."""
        dup = LinearCongruential.__new__(LinearCongruential)
        dup.params = self.params
        dup._state = self._state
        dup._position = self._position
        return dup

    def next_raw(self) -> int:
        """Advance one step and return the new state as the raw output."""
        self._state = (self.params.a * self._state + self.params.c) % self.params.m
        self._position += 1
        return self._state

    def next_uniform(self) -> float:
        """Uniform float in [0, 1): raw output scaled by the modulus."""
        return self.next_raw() / self.params.m

    def jump(self, n: int) -> None:
        """Fast-forward the stream by ``n`` steps in O(log n) time.

        Equivalent to calling :meth:`next_raw` ``n`` times and discarding
        the results. This is the operation that makes reproducible
        parallel simulation affordable (paper §5).
        """
        require_nonnegative_int("n", n)
        advance = self.params.step_map.power(n)
        self._state = advance(self._state)
        self._position += n

    def jumped(self, n: int) -> "LinearCongruential":
        """Return a clone fast-forwarded by ``n`` steps; ``self`` is unchanged."""
        dup = self.clone()
        dup.jump(n)
        return dup
