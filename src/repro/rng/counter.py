"""Counter-based (stateless) random number generation.

Where an LCG must be *fast-forwarded* to reach draw ``i``, a
counter-based generator computes draw ``i`` directly as a pure function
``mix(seed, i)`` — the design behind Philox/Threefry and the modern
answer to reproducible parallel randomness: every worker can evaluate
any element of the shared sequence with no coordination at all.

The mixing function used here is SplitMix64 (Steele, Lea & Flood's
``java.util.SplittableRandom`` finalizer), a well-tested 64-bit bijection.
It is implemented both scalar (:meth:`CounterRNG.raw`) and vectorized
over numpy ``uint64`` arrays (:meth:`CounterRNG.raw_block`), so bulk
draws cost one fused array pass instead of a Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CounterRNG"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """Scalar SplitMix64 finalizer over a 64-bit integer."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


class CounterRNG:
    """Stateless generator: draw ``i`` of stream ``(seed, stream)`` on demand.

    >>> r = CounterRNG(seed=7)
    >>> r.raw(10) == CounterRNG(seed=7).raw(10)
    True
    >>> r.raw(10) != r.raw(11)
    True
    """

    __slots__ = ("seed", "stream", "_base")

    def __init__(self, seed: int, stream: int = 0) -> None:
        self.seed = int(seed)
        self.stream = int(stream)
        # Pre-mix seed and stream so nearby (seed, stream) pairs decorrelate.
        self._base = _splitmix64((_splitmix64(self.seed & _MASK64) ^ self.stream) & _MASK64)

    def raw(self, index: int) -> int:
        """The 64-bit output at position ``index`` of this stream."""
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        return _splitmix64((self._base + index) & _MASK64)

    def uniform(self, index: int) -> float:
        """Uniform float in [0, 1) at position ``index``."""
        return self.raw(index) / 2.0**64

    def raw_block(self, start: int, count: int) -> np.ndarray:
        """Vectorized outputs for positions ``start .. start+count`` as uint64."""
        if start < 0 or count < 0:
            raise ValueError("start and count must be >= 0")
        with np.errstate(over="ignore"):
            x = (np.uint64(self._base) + np.arange(start, start + count, dtype=np.uint64))
            x = x + np.uint64(_GOLDEN)
            x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
            x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
            return x ^ (x >> np.uint64(31))

    def uniform_block(self, start: int, count: int) -> np.ndarray:
        """Vectorized uniforms in [0, 1) for positions ``start .. start+count``."""
        return self.raw_block(start, count) / 2.0**64
