"""Simple distributions over any raw uniform source.

These helpers convert the uniform [0, 1) floats produced by
:class:`repro.rng.LinearCongruential` / :class:`repro.rng.CounterRNG`
into the draws the assignments need: Bernoulli trials for the traffic
model's random slowdowns (paper §5), bounded integers for initial car
placement and k-means centroid selection (paper §3).

All functions are pure: they consume explicit uniform values rather than
hidden generator state, which keeps the reproducibility contract of the
calling code visible at the call site.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_probability

__all__ = ["uniform", "uniform_int", "bernoulli"]


def uniform(u: float | np.ndarray, lo: float, hi: float) -> float | np.ndarray:
    """Map uniform [0,1) draws to uniform [lo, hi) draws."""
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    return lo + (hi - lo) * u


def uniform_int(u: float | np.ndarray, lo: int, hi: int) -> int | np.ndarray:
    """Map uniform [0,1) draws to integers in ``[lo, hi)``.

    Uses truncation of the scaled draw — adequate for simulation use
    where the range is tiny relative to the generator's resolution.
    """
    if hi <= lo:
        raise ValueError(f"hi ({hi}) must be > lo ({lo})")
    scaled = np.floor(lo + (hi - lo) * np.asarray(u, dtype=float)).astype(np.int64)
    # Guard the (measure-zero in theory, possible in float) u == 1.0 edge.
    scaled = np.minimum(scaled, hi - 1)
    if np.ndim(u) == 0:
        return int(scaled)
    return scaled


def bernoulli(u: float | np.ndarray, p: float) -> bool | np.ndarray:
    """True with probability ``p``: the traffic model's random-slowdown coin.

    Defined as ``u < p`` so that ``p == 0`` never fires and ``p == 1``
    always fires, matching the conventional inverse-CDF construction.
    """
    require_probability("p", p)
    result = np.asarray(u, dtype=float) < p
    if np.ndim(u) == 0:
        return bool(result)
    return result
