"""Deterministic fault injection for the SPMD runtime.

Real clusters lose ranks, drop messages, and straggle — but never twice
the same way, which is exactly why failure handling is so hard to teach
on real hardware. The thread-per-rank simulator can do better: a
:class:`FaultPlan` is *seeded* and *bit-reproducible*, built on the same
:mod:`repro.rng.lcg` fast-forward machinery as the §5 traffic PRNG, so
"rank 2 dies at its 13th operation" happens identically on every run
with the same seed.

The plan addresses faults by ``(rank, op_index)`` where the operation
index counts the rank's primitive runtime operations in program order:
every message it posts and every receive/probe it performs. For a
deterministic rank program that sequence is itself deterministic, so
injection is exact.

Fault kinds:

- ``crash``    — the rank raises :class:`~repro.mpi.errors.InjectedCrash`
  *before* executing the operation (the process "dies" at that point);
- ``drop``     — the posted message is silently discarded;
- ``duplicate``— the posted message is delivered twice;
- ``delay``    — the posted message is delivered ``seconds`` later;
- ``straggle`` — the rank sleeps ``seconds`` before the operation
  (an artificial slow node).

Message kinds scheduled at an operation index that turns out to be a
receive are no-ops (nothing was posted to disturb).

The default is no injector at all: ``run_spmd(...)`` without a plan
takes the exact fault-free hot path (one attribute load + ``None``
check per operation; ``benchmarks/test_fault_overhead.py`` holds the
line at <5%).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.mpi.errors import InjectedCrash
from repro.rng.lcg import KNUTH_LCG, LcgParams, LinearCongruential
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["FaultEvent", "FaultPlan", "FaultReport", "InjectionRecord", "FAULT_KINDS"]

#: The recognized fault kinds, in the order the sampler's probability
#: intervals are laid out.
FAULT_KINDS = ("crash", "drop", "duplicate", "delay", "straggle")

#: Kinds that act on a posted message (ignored on receive operations).
_MESSAGE_KINDS = frozenset({"drop", "duplicate", "delay"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` hits ``rank`` at its ``op_index``-th op.

    ``seconds`` only matters for ``delay`` and ``straggle``.
    """

    kind: str
    rank: int
    op_index: int
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        require_nonnegative_int("rank", self.rank)
        require_nonnegative_int("op_index", self.op_index)
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired: where, what, and on which operation."""

    rank: int
    op_index: int
    kind: str
    op: str
    seconds: float = 0.0


class FaultPlan:
    """An immutable schedule of faults for one SPMD world.

    Build one explicitly from :class:`FaultEvent` instances, or sample
    one reproducibly with :meth:`sample`. At most one event may target a
    given ``(rank, op_index)`` slot.
    """

    def __init__(self, events: Iterable[FaultEvent] = (), *, seed: int | None = None) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.rank, e.op_index))
        )
        self.seed = seed
        slots = [(e.rank, e.op_index) for e in self.events]
        if len(slots) != len(set(slots)):
            raise ValueError("at most one fault event per (rank, op_index) slot")

    @classmethod
    def crash(cls, rank: int, op_index: int) -> "FaultPlan":
        """The simplest plan: kill one rank at one operation."""
        return cls([FaultEvent("crash", rank, op_index)])

    @classmethod
    def sample(
        cls,
        seed: int,
        size: int,
        horizon: int,
        *,
        crash_prob: float = 0.0,
        drop_prob: float = 0.0,
        duplicate_prob: float = 0.0,
        delay_prob: float = 0.0,
        straggle_prob: float = 0.0,
        seconds: float = 0.002,
        max_crashes: int = 1,
        protected_ranks: Sequence[int] = (0,),
        params: LcgParams = KNUTH_LCG,
    ) -> "FaultPlan":
        """Draw a reproducible plan: one LCG decision per (rank, op) slot.

        Exactly the §5 traffic idiom: every rank owns a contiguous block
        of ``horizon`` draws from one shared LCG sequence, reached by
        O(log n) fast-forward (``jumped``), so the plan is bit-identical
        for a given ``seed`` regardless of evaluation order. Probabilities
        partition [0, 1): a draw falling in a kind's interval schedules
        that kind at that slot.

        ``max_crashes`` caps total crashes (survivors must outnumber the
        dead for recovery to mean anything) and ``protected_ranks``
        shields ranks whose death the workloads treat as unrecoverable —
        by default rank 0, the root every gather converges on.
        """
        require_positive_int("size", size)
        require_positive_int("horizon", horizon)
        probs = (crash_prob, drop_prob, duplicate_prob, delay_prob, straggle_prob)
        if any(p < 0 for p in probs) or sum(probs) > 1.0:
            raise ValueError(f"fault probabilities must be >= 0 and sum to <= 1, got {probs}")
        base = LinearCongruential(params, seed)
        events: list[FaultEvent] = []
        crashes = 0
        protected = frozenset(protected_ranks)
        for rank in range(size):
            stream = base.jumped(rank * horizon)
            for op_index in range(horizon):
                u = stream.next_uniform()
                kind = None
                lo = 0.0
                for name, p in zip(FAULT_KINDS, probs):
                    if lo <= u < lo + p:
                        kind = name
                        break
                    lo += p
                if kind is None:
                    continue
                if kind == "crash":
                    if rank in protected or crashes >= max_crashes:
                        continue
                    crashes += 1
                    events.append(FaultEvent("crash", rank, op_index))
                    break  # ops after a crash are unreachable
                events.append(
                    FaultEvent(kind, rank, op_index, seconds if kind in ("delay", "straggle") else 0.0)
                )
        return cls(events, seed=seed)

    def for_rank(self, rank: int) -> dict[int, FaultEvent]:
        """This rank's events, keyed by operation index."""
        return {e.op_index: e for e in self.events if e.rank == rank}

    def trace(self) -> tuple[tuple[str, int, int], ...]:
        """Normalized (kind, rank, op_index) tuples — the reproducibility witness."""
        return tuple((e.kind, e.rank, e.op_index) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        seed = f", seed={self.seed}" if self.seed is not None else ""
        return f"FaultPlan({len(self.events)} events{seed})"


@dataclass
class FaultReport:
    """What the fault layer observed during one SPMD run.

    Returned by ``run_spmd(..., return_report=True)``: which faults
    fired (:attr:`injected`), which ranks ended the run dead
    (:attr:`failures`), and how many times each rank was respawned.
    All mutators are thread-safe; readers should run after the world
    has been joined.
    """

    size: int
    injected: list[InjectionRecord] = field(default_factory=list)
    failures: dict[int, BaseException] = field(default_factory=dict)
    respawns: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_injection(self, record: InjectionRecord) -> None:
        """Log one fired fault (called by the injector)."""
        with self._lock:
            self.injected.append(record)

    def record_death(self, rank: int, exc: BaseException) -> None:
        """Log a rank's final, unrecovered failure."""
        with self._lock:
            self.failures[rank] = exc

    def record_respawn(self, rank: int) -> None:
        """Log one respawn attempt for a rank."""
        with self._lock:
            self.respawns[rank] = self.respawns.get(rank, 0) + 1

    @property
    def dead_ranks(self) -> list[int]:
        """World ranks that never recovered, sorted."""
        return sorted(self.failures)

    @property
    def survivors(self) -> list[int]:
        """World ranks alive at the end of the run, sorted."""
        return [r for r in range(self.size) if r not in self.failures]

    def trace(self) -> tuple[tuple[str, int, int, str], ...]:
        """Normalized fired-fault tuples — equal across runs of one seed."""
        with self._lock:
            return tuple(
                (rec.kind, rec.rank, rec.op_index, rec.op)
                for rec in sorted(self.injected, key=lambda r: (r.rank, r.op_index))
            )

    def summary(self) -> str:
        """One human-readable paragraph (for logs and teaching output)."""
        lines = [f"FaultReport: {len(self.injected)} fault(s) fired on a {self.size}-rank world"]
        for rec in sorted(self.injected, key=lambda r: (r.rank, r.op_index)):
            extra = f" ({rec.seconds:.3f}s)" if rec.seconds else ""
            lines.append(f"  - rank {rec.rank} op {rec.op_index} [{rec.op}]: {rec.kind}{extra}")
        for rank in self.dead_ranks:
            exc = self.failures[rank]
            n = self.respawns.get(rank, 0)
            retried = f" after {n} respawn(s)" if n else ""
            lines.append(f"  rank {rank} died{retried}: {type(exc).__name__}: {exc}")
        if not self.failures:
            lines.append("  all ranks survived")
        return "\n".join(lines)


class _FaultInjector:
    """Runtime side of a plan: counts each rank's operations and fires events.

    One per :class:`~repro.mpi.runtime.World`. Per-rank counters need no
    locking: a rank's operations all run on its own thread (respawns
    reuse the slot sequentially), and the counter survives respawns so
    every event fires at most once per run.
    """

    def __init__(self, plan: FaultPlan, size: int, report: FaultReport, tracer=None) -> None:
        self.plan = plan
        self.report = report
        self._tracer = tracer
        self._by_rank = [plan.for_rank(r) for r in range(size)]
        self._op_counts = [0] * size

    def _trace(self, rank: int, op_index: int, kind: str, op: str) -> None:
        # Fault firings become trace instants on the victim's lane, so a
        # timeline shows exactly where the injected failure bit.
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.instant(
                f"fault.{kind}",
                category="runtime.fault",
                rank=rank,
                op=op,
                op_index=op_index,
            )

    def on_op(self, rank: int, op: str, *, send: bool) -> FaultEvent | None:
        """Advance ``rank``'s op counter; fire any event scheduled there.

        Crashes raise, stragglers sleep here; message events are returned
        to the caller (``Communicator._post``) to apply — and swallowed
        when the operation is not a send.
        """
        op_index = self._op_counts[rank]
        self._op_counts[rank] = op_index + 1
        event = self._by_rank[rank].get(op_index)
        if event is None:
            return None
        if event.kind == "crash":
            self.report.record_injection(InjectionRecord(rank, op_index, "crash", op))
            self._trace(rank, op_index, "crash", op)
            raise InjectedCrash(rank, op_index)
        if event.kind == "straggle":
            self.report.record_injection(
                InjectionRecord(rank, op_index, "straggle", op, event.seconds)
            )
            self._trace(rank, op_index, "straggle", op)
            time.sleep(event.seconds)
            return None
        if not send:
            return None  # message fault scheduled on a receive: nothing to disturb
        self.report.record_injection(
            InjectionRecord(rank, op_index, event.kind, op, event.seconds)
        )
        self._trace(rank, op_index, event.kind, op)
        return event

    def ops_performed(self, rank: int) -> int:
        """How many operations ``rank`` has executed (diagnostic)."""
        return self._op_counts[rank]
