"""Communicators: point-to-point messaging and collective operations.

The implementation mirrors mpi4py's lowercase API (pickle-based object
messaging). Every collective is built on the point-to-point layer using
reserved negative tags, so the whole stack exercises one well-tested
matching engine.

Ordering guarantees match MPI: messages between one (sender, receiver,
communicator) pair are non-overtaking for a given tag pattern, and all
reductions fold in rank order so floating-point results are
deterministic.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.mpi.errors import DeadlockError, SpmdAbort
from repro.mpi.ops import SUM, Op

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.mpi.runtime import World

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Request", "Communicator"]

#: Wildcard accepted by ``recv``/``probe`` to match any sending rank.
ANY_SOURCE = -1
#: Wildcard accepted by ``recv``/``probe`` to match any tag.
ANY_TAG = -1

# Reserved (negative) tags for the collective protocols. User tags must
# be >= 0, so these can never collide with application traffic.
_TAG_BCAST = -2
_TAG_SCATTER = -3
_TAG_GATHER = -4
_TAG_ALLTOALL = -5
_TAG_SCAN = -6
_TAG_BARRIER_IN = -7
_TAG_BARRIER_OUT = -8
_TAG_SPLIT_UP = -9
_TAG_SPLIT_DOWN = -10
_TAG_REDUCE = -11
_TAG_GATHER_FT = -12

# Operation names for diagnostics (DeadlockError messages) and for the
# fault injector's per-operation log.
_TAG_NAMES = {
    _TAG_BCAST: "bcast",
    _TAG_SCATTER: "scatter",
    _TAG_GATHER: "gather",
    _TAG_ALLTOALL: "alltoall",
    _TAG_SCAN: "scan",
    _TAG_BARRIER_IN: "barrier",
    _TAG_BARRIER_OUT: "barrier",
    _TAG_SPLIT_UP: "split",
    _TAG_SPLIT_DOWN: "split",
    _TAG_REDUCE: "reduce",
    _TAG_GATHER_FT: "gather_tolerant",
}


def _tag_label(tag: int) -> str:
    if tag == ANY_TAG:
        return "ANY_TAG"
    return _TAG_NAMES.get(tag, str(tag))


@dataclass(frozen=True)
class Status:
    """Receive metadata: the matched message's source rank and tag."""

    source: int
    tag: int


@dataclass(frozen=True)
class _Envelope:
    """A message in flight. ``src_world`` is the sender's world rank."""

    comm_id: int
    src_world: int
    tag: int
    payload: bytes


class _Mailbox:
    """Per-rank message store with condition-variable based matching."""

    def __init__(self, world: "World", rank: int) -> None:
        self._world = world
        self._rank = rank
        self._cond = threading.Condition()
        self._messages: list[_Envelope] = []

    def put(self, env: _Envelope) -> None:
        with self._cond:
            self._messages.append(env)
            depth = len(self._messages)
            self._cond.notify_all()
        tracer = self._world.tracer
        if tracer.enabled:
            tracer.metrics.gauge("mailbox.queue_depth", rank=self._rank).set(depth)

    def wake_all(self) -> None:
        """Wake blocked receivers (used when the world aborts)."""
        with self._cond:
            self._cond.notify_all()

    def _find(self, comm_id: int, src_world: int | None, tag: int) -> int | None:
        for i, env in enumerate(self._messages):
            if env.comm_id != comm_id:
                continue
            if src_world is not None and env.src_world != src_world:
                continue
            if tag != ANY_TAG and env.tag != tag:
                continue
            return i
        return None

    def try_match(
        self, comm_id: int, src_world: int | None, tag: int, *, remove: bool
    ) -> _Envelope | None:
        with self._cond:
            i = self._find(comm_id, src_world, tag)
            if i is None:
                return None
            return self._messages.pop(i) if remove else self._messages[i]

    def match(
        self,
        comm_id: int,
        src_world: int | None,
        tag: int,
        *,
        remove: bool,
        op: str = "recv",
        peer: str = "ANY_SOURCE",
    ) -> _Envelope:
        """Block until a matching message arrives (or abort / deadlock).

        ``op`` and ``peer`` name the blocked operation and its partner in
        the :class:`DeadlockError` message, so a hang (organic or
        fault-injected) is diagnosable from the error alone.
        """
        deadline = time.monotonic() + self._world.timeout
        with self._cond:
            while True:
                if self._world.aborted:
                    raise SpmdAbort("world aborted while waiting for a message")
                i = self._find(comm_id, src_world, tag)
                if i is not None:
                    return self._messages.pop(i) if remove else self._messages[i]
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"{op}(source={peer}, tag={_tag_label(tag)}) on comm {comm_id} "
                        f"timed out after {self._world.timeout:.1f}s — likely deadlock "
                        f"(the peer never sent, died, or is itself blocked)"
                    )
                self._cond.wait(timeout=min(remaining, 0.1))

    def match_or_dead(
        self,
        comm_id: int,
        src_world: int,
        tag: int,
        *,
        op: str = "recv_tolerant",
        peer: str = "?",
    ) -> _Envelope | None:
        """Like :meth:`match`, but return None once ``src_world`` is dead.

        The fault-tolerant receive primitive: a pending message always
        wins (a rank that managed to send before dying still counts),
        and only a dead peer with nothing in flight yields None.
        ``World.mark_dead`` wakes all mailboxes, so death is noticed
        promptly rather than after the timeout.
        """
        deadline = time.monotonic() + self._world.timeout
        with self._cond:
            while True:
                if self._world.aborted:
                    raise SpmdAbort("world aborted while waiting for a message")
                i = self._find(comm_id, src_world, tag)
                if i is not None:
                    return self._messages.pop(i)
                if self._world.is_dead(src_world):
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"{op}(source={peer}, tag={_tag_label(tag)}) on comm {comm_id} "
                        f"timed out after {self._world.timeout:.1f}s — likely deadlock "
                        f"(the peer is alive but never sent)"
                    )
                self._cond.wait(timeout=min(remaining, 0.1))


class Request:
    """Handle for a non-blocking operation (``isend`` / ``irecv``).

    ``isend`` requests are buffered sends: the payload was already
    serialized and enqueued, so they complete immediately. ``irecv``
    requests perform their matching when :meth:`test` or :meth:`wait`
    is called.
    """

    def __init__(self, complete_fn: Callable[[bool], tuple[bool, Any]]) -> None:
        self._complete_fn = complete_fn
        self._done = False
        self._value: Any = None

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: (done, value-or-None)."""
        if not self._done:
            self._done, self._value = self._complete_fn(False)
        return self._done, self._value

    def wait(self) -> Any:
        """Block until complete; return the received object (None for sends)."""
        if not self._done:
            self._done, self._value = self._complete_fn(True)
            assert self._done
        return self._value


class Communicator:
    """A group of ranks that can message each other.

    Constructed by :func:`repro.mpi.run_spmd` (the world communicator)
    or by :meth:`split` / :meth:`dup`. ``rank``/``size`` are relative to
    this communicator; message routing translates to world ranks
    internally.
    """

    def __init__(self, world: "World", comm_id: int, world_ranks: Sequence[int], rank: int) -> None:
        self._world = world
        self._id = comm_id
        self._world_ranks = list(world_ranks)
        self._rank = rank
        self._from_world = {w: r for r, w in enumerate(self._world_ranks)}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._world_ranks)

    @property
    def world_rank(self) -> int:
        """This process's rank in the world communicator."""
        return self._world_ranks[self._rank]

    @property
    def tracer(self):
        """The world's :class:`~repro.trace.Tracer` (disabled by default)."""
        return self._world.tracer

    @property
    def stats(self):
        """The world's live :class:`~repro.mpi.runtime.MessageStats`.

        Counts cover the whole world (all communicators), updating as
        messages post; ``per_rank()``/``per_pair()`` give the breakdown
        by sender and by (src, dst) world-rank pair.
        """
        return self._world.stats

    def __repr__(self) -> str:
        return f"Communicator(id={self._id}, rank={self._rank}, size={self.size})"

    def _check_peer(self, name: str, peer: int) -> int:
        if not 0 <= peer < self.size:
            raise ValueError(f"{name} {peer} out of range for communicator of size {self.size}")
        return self._world_ranks[peer]

    @staticmethod
    def _check_tag(tag: int) -> None:
        if tag < 0:
            raise ValueError(f"user tags must be >= 0, got {tag}")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def _post(self, obj: Any, dest_world: int, tag: int) -> None:
        event = None
        faults = self._world.faults
        if faults is not None:
            # May raise InjectedCrash (the "process" dies before sending)
            # or sleep (straggler); message events come back to apply.
            event = faults.on_op(self.world_rank, _TAG_NAMES.get(tag, "send"), send=True)
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        src_world = self.world_rank
        self._world.stats.record(len(payload), src=src_world, dst=dest_world)
        tracer = self._world.tracer
        if tracer.enabled:
            tracer.instant(
                "send",
                category="mpi.p2p",
                dest=dest_world,
                tag=_tag_label(tag),
                nbytes=len(payload),
            )
            tracer.metrics.counter("mpi.messages", rank=src_world).inc()
            tracer.metrics.counter("mpi.payload_bytes", rank=src_world).inc(len(payload))
        env = _Envelope(self._id, src_world, tag, payload)
        mailbox = self._world.mailbox(dest_world)
        if event is not None:
            if event.kind == "drop":
                return  # posted by the app, lost on the wire
            if event.kind == "delay":
                timer = threading.Timer(event.seconds, mailbox.put, args=(env,))
                timer.daemon = True
                timer.start()
                return
            if event.kind == "duplicate":
                mailbox.put(env)  # once here, once below
        mailbox.put(env)

    def _fault_op(self, op: str) -> None:
        """Receive-side fault hook: crash/straggle may fire before the op."""
        faults = self._world.faults
        if faults is not None:
            faults.on_op(self.world_rank, op, send=False)

    def _source_world(self, source: int) -> int | None:
        if source == ANY_SOURCE:
            return None
        return self._check_peer("source", source)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a picklable object to ``dest`` (buffered, returns immediately)."""
        self._check_tag(tag)
        self._post(obj, self._check_peer("dest", dest), tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Block until a matching message arrives; return its payload."""
        obj, _ = self.recv_with_status(source, tag)
        return obj

    @staticmethod
    def _peer_label(source: int) -> str:
        return "ANY_SOURCE" if source == ANY_SOURCE else f"rank {source}"

    def recv_with_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> tuple[Any, Status]:
        """Like :meth:`recv` but also return the matched :class:`Status`."""
        self._fault_op("recv")
        with self._world.tracer.span(
            "recv", category="mpi.p2p", source=self._peer_label(source), tag=_tag_label(tag)
        ):
            env = self._world.mailbox(self.world_rank).match(
                self._id,
                self._source_world(source),
                tag,
                remove=True,
                op="recv",
                peer=self._peer_label(source),
            )
        status = Status(self._from_world[env.src_world], env.tag)
        return pickle.loads(env.payload), status

    def sendrecv(
        self, sendobj: Any, dest: int, source: int = ANY_SOURCE, sendtag: int = 0, recvtag: int = ANY_TAG
    ) -> Any:
        """Combined send+receive that cannot deadlock against its partner."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; the returned request is already complete."""
        self.send(obj, dest, tag)
        return Request(lambda _block: (True, None))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completion happens in ``test``/``wait``."""
        self._fault_op("irecv")
        src_world = self._source_world(source)
        mailbox = self._world.mailbox(self.world_rank)
        peer = self._peer_label(source)

        def complete(block: bool) -> tuple[bool, Any]:
            if block:
                env = mailbox.match(
                    self._id, src_world, tag, remove=True, op="irecv.wait", peer=peer
                )
            else:
                env = mailbox.try_match(self._id, src_world, tag, remove=True)
                if env is None:
                    return False, None
            return True, pickle.loads(env.payload)

        return Request(complete)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; do not consume it."""
        self._fault_op("probe")
        with self._world.tracer.span(
            "probe", category="mpi.p2p", source=self._peer_label(source), tag=_tag_label(tag)
        ):
            env = self._world.mailbox(self.world_rank).match(
                self._id,
                self._source_world(source),
                tag,
                remove=False,
                op="probe",
                peer=self._peer_label(source),
            )
        return Status(self._from_world[env.src_world], env.tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-blocking probe: matching message's status, or None."""
        self._fault_op("iprobe")
        env = self._world.mailbox(self.world_rank).try_match(
            self._id, self._source_world(source), tag, remove=False
        )
        if env is None:
            return None
        return Status(self._from_world[env.src_world], env.tag)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank of the communicator has entered."""
        tracer = self._world.tracer
        with tracer.span("barrier", category="mpi.collective") as sp:
            root = 0
            if self._rank == root:
                for r in range(self.size):
                    if r != root:
                        self._recv_sys(r, _TAG_BARRIER_IN)
                for r in range(self.size):
                    if r != root:
                        self._post(None, self._world_ranks[r], _TAG_BARRIER_OUT)
            else:
                self._post(None, self._world_ranks[root], _TAG_BARRIER_IN)
                self._recv_sys(root, _TAG_BARRIER_OUT)
        if tracer.enabled:
            tracer.metrics.histogram(
                "mpi.barrier_wait_seconds", rank=self.world_rank
            ).observe(sp.duration)

    def _recv_sys(self, source: int, tag: int) -> Any:
        self._fault_op(_TAG_NAMES.get(tag, "recv"))
        env = self._world.mailbox(self.world_rank).match(
            self._id,
            self._world_ranks[source],
            tag,
            remove=True,
            op=_TAG_NAMES.get(tag, "recv"),
            peer=f"rank {source}",
        )
        return pickle.loads(env.payload)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for communicator of size {self.size}")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns its own copy."""
        self._check_root(root)
        with self._world.tracer.span("bcast", category="mpi.collective", root=root):
            if self._rank == root:
                for r in range(self.size):
                    if r != root:
                        self._post(obj, self._world_ranks[r], _TAG_BCAST)
                # Root round-trips through pickle too, for uniform value semantics.
                return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
            return self._recv_sys(root, _TAG_BCAST)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Rank ``i`` returns ``objs[i]`` from the root's sequence.

        Uneven payload sizes are allowed (this doubles as Scatterv).
        """
        self._check_root(root)
        with self._world.tracer.span("scatter", category="mpi.collective", root=root):
            if self._rank == root:
                if objs is None or len(objs) != self.size:
                    got = "None" if objs is None else str(len(objs))
                    raise ValueError(
                        f"root must pass exactly {self.size} items to scatter, got {got}"
                    )
                for r in range(self.size):
                    if r != root:
                        self._post(objs[r], self._world_ranks[r], _TAG_SCATTER)
                return pickle.loads(pickle.dumps(objs[root], protocol=pickle.HIGHEST_PROTOCOL))
            return self._recv_sys(root, _TAG_SCATTER)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Root returns ``[rank0_obj, rank1_obj, …]``; other ranks return None."""
        self._check_root(root)
        with self._world.tracer.span("gather", category="mpi.collective", root=root):
            if self._rank == root:
                out: list[Any] = [None] * self.size
                out[root] = pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
                for r in range(self.size):
                    if r != root:
                        out[r] = self._recv_sys(r, _TAG_GATHER)
                return out
            self._post(obj, self._world_ranks[root], _TAG_GATHER)
            return None

    def allgather(self, obj: Any) -> list[Any]:
        """Every rank returns the full gathered list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized exchange: rank ``i`` sends ``objs[j]`` to rank ``j``.

        Returns the list of items received, indexed by source rank.
        """
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} items, got {len(objs)}")
        with self._world.tracer.span("alltoall", category="mpi.collective"):
            for r in range(self.size):
                if r != self._rank:
                    self._post(objs[r], self._world_ranks[r], _TAG_ALLTOALL)
            out: list[Any] = [None] * self.size
            out[self._rank] = pickle.loads(
                pickle.dumps(objs[self._rank], protocol=pickle.HIGHEST_PROTOCOL)
            )
            for r in range(self.size):
                if r != self._rank:
                    out[r] = self._recv_sys(r, _TAG_ALLTOALL)
            return out

    def reduce(self, obj: Any, op: Op = SUM, root: int = 0) -> Any:
        """Fold all ranks' values with ``op`` in rank order; result at root only."""
        self._check_root(root)
        with self._world.tracer.span("reduce", category="mpi.collective", root=root):
            if self._rank == root:
                parts: list[Any] = [None] * self.size
                parts[root] = pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
                for r in range(self.size):
                    if r != root:
                        parts[r] = self._recv_sys(r, _TAG_REDUCE)
                acc = parts[0]
                for part in parts[1:]:
                    acc = op(acc, part)
                return acc
            self._post(obj, self._world_ranks[root], _TAG_REDUCE)
            return None

    def allreduce(self, obj: Any, op: Op = SUM) -> Any:
        """Reduce then broadcast: every rank returns the folded value."""
        return self.bcast(self.reduce(obj, op, root=0), root=0)

    def scan(self, obj: Any, op: Op = SUM) -> Any:
        """Inclusive prefix reduction: rank ``r`` gets fold of ranks ``0..r``."""
        with self._world.tracer.span("scan", category="mpi.collective"):
            own = pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
            if self._rank == 0:
                acc = own
            else:
                prefix = self._recv_sys(self._rank - 1, _TAG_SCAN)
                acc = op(prefix, own)
            if self._rank + 1 < self.size:
                self._post(acc, self._world_ranks[self._rank + 1], _TAG_SCAN)
            return acc

    def exscan(self, obj: Any, op: Op = SUM) -> Any:
        """Exclusive prefix reduction: rank ``r`` gets fold of ranks ``0..r-1``.

        Rank 0 returns ``None`` (MPI leaves it undefined).
        """
        with self._world.tracer.span("exscan", category="mpi.collective"):
            own = pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
            prefix = None
            if self._rank > 0:
                prefix = self._recv_sys(self._rank - 1, _TAG_SCAN)
            if self._rank + 1 < self.size:
                inclusive = own if prefix is None else op(prefix, own)
                self._post(inclusive, self._world_ranks[self._rank + 1], _TAG_SCAN)
            return prefix

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int = 0) -> "Communicator | None":
        """Partition the communicator by ``color``; order ranks by ``(key, rank)``.

        Ranks passing ``color=None`` (MPI_UNDEFINED) receive ``None``.
        Collective: every rank of this communicator must call it.
        """
        # Rank 0 coordinates: gathers (color, key), forms groups, assigns
        # fresh communicator ids from the world counter, and scatters each
        # rank's (comm_id, members, new_rank) descriptor back.
        if self._rank == 0:
            entries = [(color, key, 0)]
            for r in range(1, self.size):
                c, k = self._recv_sys(r, _TAG_SPLIT_UP)
                entries.append((c, k, r))
            groups: dict[int, list[tuple[int, int]]] = {}
            for c, k, r in entries:
                if c is not None:
                    groups.setdefault(c, []).append((k, r))
            descriptors: list[tuple[int, list[int], int] | None] = [None] * self.size
            for c in sorted(groups):
                members = sorted(groups[c])
                comm_id = self._world.allocate_comm_id()
                world_ranks = [self._world_ranks[r] for _, r in members]
                for new_rank, (_, parent_rank) in enumerate(members):
                    descriptors[parent_rank] = (comm_id, world_ranks, new_rank)
            for r in range(1, self.size):
                self._post(descriptors[r], self._world_ranks[r], _TAG_SPLIT_DOWN)
            mine = descriptors[0]
        else:
            self._post((color, key), self._world_ranks[0], _TAG_SPLIT_UP)
            mine = self._recv_sys(0, _TAG_SPLIT_DOWN)
        if mine is None:
            return None
        comm_id, world_ranks, new_rank = mine
        return Communicator(self._world, comm_id, world_ranks, new_rank)

    def dup(self) -> "Communicator":
        """Duplicate the communicator (same group, isolated message space)."""
        dup = self.split(color=0, key=self._rank)
        assert dup is not None
        return dup

    # ------------------------------------------------------------------
    # fault tolerance (ULFM-style; see docs/fault_tolerance.md)
    # ------------------------------------------------------------------
    def is_alive(self, rank: int) -> bool:
        """False once ``rank`` has died unrecovered (``on_failure="tolerate"``)."""
        return not self._world.is_dead(self._check_peer("rank", rank))

    def failed_ranks(self) -> list[int]:
        """Communicator ranks known dead so far, sorted (MPI_Comm_get_failed).

        Detection is immediate in the simulator (the world records each
        death), but still *asynchronous* with respect to this rank's
        program: a rank that will die later is not yet listed.
        """
        return [r for r, w in enumerate(self._world_ranks) if self._world.is_dead(w)]

    def shrink(self, failed: Sequence[int] | None = None) -> "Communicator":
        """Rebuild a smaller communicator from the survivors (ULFM shrink).

        Every *surviving* rank of this communicator must call it with the
        same ``failed`` set (default: :meth:`failed_ranks` — safe once the
        survivors have agreed on who is dead, e.g. after a tolerant
        gather). Involves no messaging: survivors derive the same member
        list and obtain a shared communicator id from the world, so
        shrink cannot itself hang on the dead.
        """
        failed_local = self.failed_ranks() if failed is None else sorted(set(failed))
        failed_world = frozenset(self._world_ranks[r] for r in failed_local)
        if self.world_rank in failed_world:
            raise ValueError("a dead rank cannot take part in shrink")
        survivors_world = [w for w in self._world_ranks if w not in failed_world]
        comm_id = self._world.shrink_comm_id(self._id, failed_world)
        self._world.tracer.instant(
            "shrink", category="mpi.collective", survivors=len(survivors_world)
        )
        return Communicator(
            self._world, comm_id, survivors_world, survivors_world.index(self.world_rank)
        )

    def recv_tolerant(self, source: int, tag: int = ANY_TAG) -> Any | None:
        """Receive from ``source`` — or return None once it is known dead.

        A message the peer managed to post before dying is still
        delivered; None means "dead with nothing in flight". ``source``
        must be a concrete rank (liveness is per-peer, so ``ANY_SOURCE``
        has no meaning here).
        """
        if source == ANY_SOURCE:
            raise ValueError("recv_tolerant needs a concrete source rank, not ANY_SOURCE")
        self._fault_op("recv_tolerant")
        with self._world.tracer.span(
            "recv_tolerant", category="mpi.p2p", source=self._peer_label(source), tag=_tag_label(tag)
        ):
            env = self._world.mailbox(self.world_rank).match_or_dead(
                self._id,
                self._check_peer("source", source),
                tag,
                op="recv_tolerant",
                peer=self._peer_label(source),
            )
        if env is None:
            return None
        return pickle.loads(env.payload)

    def gather_tolerant(self, obj: Any, root: int = 0) -> tuple[list[Any] | None, list[int]]:
        """A gather that survives dead contributors.

        Root returns ``(values, missing)``: ``values[r]`` is rank ``r``'s
        contribution or None, and ``missing`` lists the ranks that died
        without contributing. Non-root ranks return ``(None, [])``. The
        root must be alive (like the ULFM practice of treating root death
        as unrecoverable and restarting the job).
        """
        self._check_root(root)
        with self._world.tracer.span("gather_tolerant", category="mpi.collective", root=root):
            if self._rank != root:
                self._post(obj, self._world_ranks[root], _TAG_GATHER_FT)
                return None, []
            values: list[Any] = [None] * self.size
            values[root] = pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
            missing: list[int] = []
            mailbox = self._world.mailbox(self.world_rank)
            for r in range(self.size):
                if r == root:
                    continue
                self._fault_op("gather_tolerant")
                env = mailbox.match_or_dead(
                    self._id,
                    self._world_ranks[r],
                    _TAG_GATHER_FT,
                    op="gather_tolerant",
                    peer=f"rank {r}",
                )
                if env is None:
                    missing.append(r)
                else:
                    values[r] = pickle.loads(env.payload)
            return values, missing

    def abort(self) -> None:
        """Tear down the whole world (MPI_Abort): all ranks raise SpmdAbort."""
        self._world.abort()
        raise SpmdAbort(f"rank {self.world_rank} called abort()")
